"""Universally optimal multi-message unicast: ``(k, l)-routing`` (Theorem 3).

Problem (Definition 1.3): a set ``S`` of ``k`` source nodes each hold an
individual message for each of ``l`` target nodes ``T``; every target must end
up knowing the ``|S|`` messages addressed to it.

Theorem 3 solves the problem w.h.p. in

* ``eO(NQ_k)`` rounds for ``l <= NQ_k`` with arbitrary sources and random targets,
* ``eO(NQ_l)`` rounds for ``k <= NQ_l`` with random sources and arbitrary targets,
* ``eO(max(NQ_k, NQ_l))`` rounds for ``k * l <= NQ_k * n`` with random sources
  and random targets,

using adaptive helper sets (Lemma 5.2) and relaying through pseudo-random
intermediate nodes chosen by a kappa-wise independent hash (Lemma 5.3), so that
senders and receivers never need to learn each other's helper sets
(Algorithm 2).

What is physically simulated: every hop of every message that crosses the
global network (source-helpers -> intermediates, target-helpers' requests ->
intermediates, intermediates' replies -> target-helpers), scheduled by
:func:`~repro.core.transport.throttled_global_exchange` so the per-node budget
is respected.  What is charged: the helper-set construction (Lemma 5.2), the
hash-seed broadcast and the broadcast of ``S``'s identifiers (Theorem 1), and
the local-mode distribution/collection of messages between sources/targets and
their helpers (bounded by the weak diameter ``eO(NQ_k)``).
"""

from __future__ import annotations

import dataclasses
import enum
import math
from collections import defaultdict
from typing import Any, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.clustering import Clustering, distributed_nq_clustering
from repro.core.hashing import PairwiseHash
from repro.core.helper_sets import HelperAssignment, compute_adaptive_helper_sets
from repro.core.neighborhood_quality import neighborhood_quality
from repro.core.transport import GlobalTransfer, throttled_global_exchange
from repro.simulator.config import log2_ceil
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = ["RoutingScenario", "RoutingResult", "KLRouting"]


class RoutingScenario(enum.Enum):
    """The four source/target sampling scenarios of Definition 1.3."""

    ARBITRARY_SOURCES_RANDOM_TARGETS = "arbitrary-sources/random-targets"
    RANDOM_SOURCES_ARBITRARY_TARGETS = "random-sources/arbitrary-targets"
    RANDOM_SOURCES_RANDOM_TARGETS = "random-sources/random-targets"
    ARBITRARY_SOURCES_ARBITRARY_TARGETS = "arbitrary-sources/arbitrary-targets"


@dataclasses.dataclass
class RoutingResult:
    """Outcome of a (k, l)-routing run."""

    delivered: Dict[Node, Dict[Node, Any]]
    k: int
    l: int
    nq: int
    scenario: RoutingScenario
    intermediate_load: Dict[Node, int]
    metrics: RoundMetrics

    def all_delivered(self, messages: Dict[Tuple[Node, Node], Any]) -> bool:
        """Whether every (source, target) message arrived intact."""
        for (source, target), payload in messages.items():
            if self.delivered.get(target, {}).get(source) != payload:
                return False
        return True


class KLRouting:
    """Theorem 3: (k, l)-routing in ``eO(NQ_k)`` rounds (scenario-dependent).

    Parameters
    ----------
    simulator: the network.
    messages: mapping ``(source, target) -> payload`` (each payload O(log n) bits).
    scenario: which of the four Definition 1.3 scenarios the caller set up;
        determines whether source helpers are the sources themselves
        (case 1: ``H_s = {s}``) or sampled adaptively (case 3).
    seed: randomness for helper sampling and the hash family.
    """

    def __init__(
        self,
        simulator: HybridSimulator,
        messages: Dict[Tuple[Node, Node], Any],
        *,
        scenario: RoutingScenario = RoutingScenario.ARBITRARY_SOURCES_RANDOM_TARGETS,
        seed: Optional[int] = None,
        nq: Optional[int] = None,
    ) -> None:
        if not messages:
            raise ValueError("messages must be non-empty")
        self.simulator = simulator
        self.messages = dict(messages)
        self.scenario = scenario
        self.seed = seed
        self._nq_hint = nq
        node_set = set(simulator.nodes)
        for source, target in self.messages:
            if source not in node_set or target not in node_set:
                raise KeyError(f"message endpoints ({source!r}, {target!r}) not in the network")

    # ------------------------------------------------------------------
    def run(self) -> RoutingResult:
        sim = self.simulator
        log_n = log2_ceil(max(sim.n, 2))

        sources: List[Node] = sorted({s for s, _ in self.messages}, key=sim.id_of)
        targets: List[Node] = sorted({t for _, t in self.messages}, key=sim.id_of)
        k = len(sources)
        l = len(targets)

        nq = self._nq_hint
        if nq is None:
            nq = neighborhood_quality(sim.graph, max(k, 1))
        nq = max(1, nq)
        sim.charge_rounds(nq, "distributed computation of NQ_k", "Lemma 3.3")

        clustering = distributed_nq_clustering(sim, max(k, 1), nq=nq)

        # Helper sets for targets (always) and for sources (case 3 only).
        target_helpers = compute_adaptive_helper_sets(
            sim, targets, max(k, 1), nq=nq, clustering=clustering, seed=self.seed
        )
        if self.scenario is RoutingScenario.RANDOM_SOURCES_RANDOM_TARGETS:
            source_helpers = compute_adaptive_helper_sets(
                sim,
                sources,
                max(k, 1),
                nq=nq,
                clustering=clustering,
                seed=None if self.seed is None else self.seed + 1,
            )
        else:
            # Case (1)/(2): the sources send their own messages, H_s = {s}.
            source_helpers = HelperAssignment(
                helpers={s: [s] for s in sources}, load={v: 0 for v in sim.nodes}
            )

        # Hash family (Lemma 5.3); the seed (Theta(NQ_k log n) words) is
        # broadcast with Theorem 1, charged.
        universe = max(sim.all_ids()) + 1
        independence = max(2, nq * log_n)
        pair_hash = PairwiseHash(
            universe=universe,
            buckets=sim.n,
            independence=independence,
            seed=self.seed,
        )
        sim.charge_rounds(
            nq * log_n,
            "broadcasting the kappa-wise independent hash seed",
            "Lemma 5.3 via Theorem 1",
        )
        sim.charge_rounds(
            nq * log_n,
            "broadcasting the set of source identifiers",
            "Theorem 3 via Theorem 1",
        )
        node_by_position = sim.nodes  # deterministic order for bucket -> node

        # Phase A: sources hand their labelled messages to their helpers over
        # the local mode (weak diameter eO(NQ_k), charged), balanced.
        sim.charge_rounds(
            4 * nq * log_n,
            "sources distribute messages to their helpers over the local mode",
            "Theorem 3 / Lemma 5.2 property (2)",
        )
        helper_outbox: Dict[Node, List[Tuple[int, int, Any]]] = defaultdict(list)
        for (source, target), payload in sorted(
            self.messages.items(), key=lambda item: (sim.id_of(item[0][0]), sim.id_of(item[0][1]))
        ):
            helpers = source_helpers.helpers_of(source)
            index = len(helper_outbox) % max(1, len(helpers))
            chosen = helpers[hash((sim.id_of(source), sim.id_of(target))) % len(helpers)]
            helper_outbox[chosen].append((sim.id_of(source), sim.id_of(target), payload))

        # Phase B: helpers push messages to intermediate nodes (global, measured).
        to_intermediate: List[GlobalTransfer] = []
        for helper, items in sorted(helper_outbox.items(), key=lambda kv: sim.id_of(kv[0])):
            for source_id, target_id, payload in items:
                bucket = pair_hash(source_id, target_id)
                intermediate = node_by_position[bucket % len(node_by_position)]
                to_intermediate.append(
                    GlobalTransfer(
                        sender=helper,
                        receiver=intermediate,
                        payload=(source_id, target_id, payload),
                        tag="rt-st",
                    )
                )
        throttled_global_exchange(sim, to_intermediate)
        intermediate_store: Dict[Node, Dict[Tuple[int, int], Any]] = defaultdict(dict)
        intermediate_load: Dict[Node, int] = defaultdict(int)
        for transfer in to_intermediate:
            source_id, target_id, payload = transfer.payload
            intermediate_store[transfer.receiver][(source_id, target_id)] = payload
            intermediate_load[transfer.receiver] += 1

        # Phase C: targets hand requests to their helpers (local, charged), the
        # helpers query the intermediates (global, measured), the intermediates
        # reply (global, measured).
        sim.charge_rounds(
            4 * nq * log_n,
            "targets distribute requests to their helpers over the local mode",
            "Theorem 3 / Lemma 5.2 property (2)",
        )
        request_transfers: List[GlobalTransfer] = []
        request_owner: Dict[Tuple[int, int], Node] = {}
        for target in targets:
            helpers = target_helpers.helpers_of(target)
            for position, source in enumerate(sources):
                if (source, target) not in self.messages:
                    continue
                helper = helpers[position % len(helpers)]
                source_id = sim.id_of(source)
                target_id = sim.id_of(target)
                bucket = pair_hash(source_id, target_id)
                intermediate = node_by_position[bucket % len(node_by_position)]
                request_transfers.append(
                    GlobalTransfer(
                        sender=helper,
                        receiver=intermediate,
                        payload=(source_id, target_id, sim.id_of(helper)),
                        tag="rt-rq",
                    )
                )
                request_owner[(source_id, target_id)] = helper
        throttled_global_exchange(sim, request_transfers)

        reply_transfers: List[GlobalTransfer] = []
        for transfer in request_transfers:
            source_id, target_id, helper_id = transfer.payload
            intermediate = transfer.receiver
            payload = intermediate_store[intermediate].get((source_id, target_id))
            reply_transfers.append(
                GlobalTransfer(
                    sender=intermediate,
                    receiver=sim.node_of_id(helper_id),
                    payload=(source_id, target_id, payload),
                    tag="rt-rp",
                )
            )
        throttled_global_exchange(sim, reply_transfers)

        # Phase D: targets collect from their helpers over the local mode (charged).
        sim.charge_rounds(
            4 * nq * log_n,
            "targets collect delivered messages from their helpers",
            "Theorem 3 / Lemma 5.2 property (2)",
        )
        delivered: Dict[Node, Dict[Node, Any]] = {t: {} for t in targets}
        for transfer in reply_transfers:
            source_id, target_id, payload = transfer.payload
            source = sim.node_of_id(source_id)
            target = sim.node_of_id(target_id)
            delivered[target][source] = payload

        for node in sim.nodes:
            intermediate_load.setdefault(node, 0)

        return RoutingResult(
            delivered=delivered,
            k=k,
            l=l,
            nq=nq,
            scenario=self.scenario,
            intermediate_load=dict(intermediate_load),
            metrics=sim.metrics,
        )
