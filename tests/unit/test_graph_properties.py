"""Unit tests for the structural graph primitives (Section 1.2 notation)."""

import math

import networkx as nx
import pytest

from repro.graphs.generators import cycle_graph, grid_graph, path_graph, star_graph
from repro.graphs.weighted import assign_random_weights, unit_weights
from repro.graphs.properties import (
    _reference_diameter,
    _reference_h_hop_limited_distances,
    ball,
    ball_size,
    ball_sizes_all_radii,
    diameter,
    eccentricity,
    edge_weight,
    h_hop_limited_distances,
    hop_distance,
    hop_distances_from,
    is_connected,
    power_graph,
    strong_diameter,
    total_edge_weight,
    validate_paper_graph,
    weak_diameter,
    weighted_distances_from,
)


class TestHopDistances:
    def test_bfs_distances_on_path(self):
        g = path_graph(10)
        dist = hop_distances_from(g, 0)
        assert dist[0] == 0
        assert dist[9] == 9

    def test_hop_distance_symmetric(self):
        g = grid_graph(4, 2)
        assert hop_distance(g, 0, 15) == hop_distance(g, 15, 0)

    def test_hop_distance_same_node(self):
        g = path_graph(5)
        assert hop_distance(g, 2, 2) == 0

    def test_hop_distance_disconnected(self):
        g = nx.Graph()
        g.add_nodes_from([0, 1])
        assert hop_distance(g, 0, 1) == math.inf

    def test_unknown_source_raises(self):
        with pytest.raises(KeyError):
            hop_distances_from(path_graph(3), 99)

    def test_hop_distance_unknown_source_raises(self):
        with pytest.raises(KeyError):
            hop_distance(path_graph(3), 99, 0)

    def test_hop_distance_terminates_early(self):
        # The BFS must stop as soon as the target is found: with the target
        # adjacent to the source, only the source's neighborhood may be
        # explored, no matter how large the rest of the component is.
        g = path_graph(10_000)
        explored = []
        original_neighbors = g.neighbors

        def counting_neighbors(node):
            explored.append(node)
            return original_neighbors(node)

        g.neighbors = counting_neighbors
        try:
            assert hop_distance(g, 5000, 5001) == 1
        finally:
            del g.neighbors
        assert len(explored) <= 1

    def test_hop_distance_values_unchanged(self):
        g = grid_graph(5, 2)
        for u in (0, 7, 24):
            full = hop_distances_from(g, u)
            for v in (0, 3, 12, 24):
                assert hop_distance(g, u, v) == full.get(v, math.inf)


class TestBalls:
    def test_ball_radius_zero(self):
        g = path_graph(10)
        assert ball(g, 5, 0) == {5}

    def test_ball_radius_one_on_path_interior(self):
        g = path_graph(10)
        assert ball(g, 5, 1) == {4, 5, 6}

    def test_ball_covers_graph_at_diameter(self):
        g = grid_graph(3, 2)
        assert ball(g, 0, diameter(g)) == set(g.nodes)

    def test_ball_size_monotone_in_radius(self):
        g = grid_graph(4, 2)
        sizes = [ball_size(g, 0, r) for r in range(7)]
        assert sizes == sorted(sizes)

    def test_ball_sizes_all_radii_matches_ball_size(self):
        g = grid_graph(4, 2)
        sizes = ball_sizes_all_radii(g, 0)
        for radius, size in enumerate(sizes):
            assert size == ball_size(g, 0, radius)

    def test_ball_negative_radius_raises(self):
        with pytest.raises(ValueError):
            ball(path_graph(3), 0, -1)


class TestDiameters:
    def test_path_diameter(self):
        assert diameter(path_graph(7)) == 6

    def test_star_diameter(self):
        assert diameter(star_graph(8)) == 2

    def test_eccentricity_of_path_end_and_middle(self):
        g = path_graph(9)
        assert eccentricity(g, 0) == 8
        assert eccentricity(g, 4) == 4

    def test_diameter_of_disconnected_raises(self):
        g = nx.Graph()
        g.add_nodes_from([0, 1, 2])
        g.add_edge(0, 1)
        with pytest.raises(ValueError):
            diameter(g)

    def test_weak_diameter_uses_whole_graph(self):
        # Two far ends of a cycle have weak diameter n/2 even though the induced
        # subgraph on them alone is disconnected.
        g = cycle_graph(10)
        assert weak_diameter(g, {0, 5}) == 5
        assert strong_diameter(g, {0, 5}) == math.inf

    def test_strong_diameter_of_connected_subset(self):
        g = path_graph(10)
        assert strong_diameter(g, {3, 4, 5}) == 2

    def test_weak_diameter_empty_and_singleton(self):
        g = path_graph(4)
        assert weak_diameter(g, []) == 0
        assert weak_diameter(g, [2]) == 0
        # Duplicated members are one member.
        assert weak_diameter(g, [2, 2, 2]) == 0

    def test_weak_diameter_disconnected_members_is_inf(self):
        g = nx.Graph()
        g.add_edges_from([(0, 1), (2, 3)])
        assert weak_diameter(g, [0, 2]) == math.inf
        assert weak_diameter(g, [2, 0]) == math.inf
        # Members within one component stay finite.
        assert weak_diameter(g, [0, 1]) == 1

    def test_weak_diameter_missing_member_raises_regardless_of_order(self):
        # The reference implementation surfaced a member that is not a graph
        # node as `inf` or `KeyError` depending on its position in the
        # iteration order; the GraphIndex path always raises.
        g = path_graph(4)
        with pytest.raises(KeyError):
            weak_diameter(g, [99, 0])
        with pytest.raises(KeyError):
            weak_diameter(g, [0, 99])

    def test_weak_diameter_of_all_nodes_is_the_diameter(self):
        for g in (path_graph(9), cycle_graph(12), grid_graph(4, 2), star_graph(7)):
            assert weak_diameter(g, g.nodes) == diameter(g)

    def test_weak_diameter_inf_where_diameter_raises(self):
        # The documented contract split on disconnected graphs: weak_diameter
        # over all nodes reports `inf`, diameter raises ValueError — and the
        # GraphIndex path raises exactly the reference's error.
        g = nx.Graph()
        g.add_nodes_from(range(4))
        g.add_edges_from([(0, 1), (2, 3)])
        assert weak_diameter(g, g.nodes) == math.inf
        with pytest.raises(ValueError, match="disconnected"):
            diameter(g)
        with pytest.raises(ValueError, match="disconnected"):
            _reference_diameter(g)

    def test_index_diameter_error_matches_reference_error(self):
        g = nx.Graph()
        g.add_nodes_from([0, 1, 2])
        g.add_edge(0, 1)
        with pytest.raises(ValueError) as fast_error:
            diameter(g)
        with pytest.raises(ValueError) as reference_error:
            _reference_diameter(g)
        assert str(fast_error.value) == str(reference_error.value)
        empty = nx.Graph()
        with pytest.raises(ValueError) as fast_empty:
            diameter(empty)
        with pytest.raises(ValueError) as reference_empty:
            _reference_diameter(empty)
        assert str(fast_empty.value) == str(reference_empty.value)


class TestWeightedDistances:
    def test_unit_weight_default(self):
        g = path_graph(4)
        assert edge_weight(g, 0, 1) == 1
        assert total_edge_weight(g) == 3

    def test_weighted_distances(self):
        g = path_graph(4)
        g[0][1]["weight"] = 5
        g[1][2]["weight"] = 2
        dist = weighted_distances_from(g, 0)
        assert dist[2] == 7

    def test_h_hop_limited_distances_respects_hop_budget(self):
        # A direct heavy edge vs. a light 3-hop detour: with h = 1 only the
        # heavy edge is available.
        g = nx.Graph()
        g.add_edge(0, 3, weight=10)
        g.add_edge(0, 1, weight=1)
        g.add_edge(1, 2, weight=1)
        g.add_edge(2, 3, weight=1)
        assert h_hop_limited_distances(g, 0, 1)[3] == 10
        assert h_hop_limited_distances(g, 0, 3)[3] == 3

    def test_h_hop_limited_distances_unreachable_omitted(self):
        g = path_graph(6)
        limited = h_hop_limited_distances(g, 0, 2)
        assert 5 not in limited
        assert limited[2] == 2

    def test_h_hop_zero(self):
        g = path_graph(3)
        assert h_hop_limited_distances(g, 1, 0) == {1: 0.0}

    def test_h_hop_negative_raises(self):
        with pytest.raises(ValueError):
            h_hop_limited_distances(path_graph(3), 0, -1)

    def test_reweighting_invalidates_cached_index(self):
        # Re-weighting keeps node/edge counts constant, so the GraphIndex
        # count-based staleness check alone would keep serving the weights the
        # index was built with; the weighted helpers must invalidate it.
        g = path_graph(6)
        assert h_hop_limited_distances(g, 0, 5)[5] == 5.0  # caches the index
        assign_random_weights(g, max_weight=9, seed=1)
        reweighted = h_hop_limited_distances(g, 0, 5)
        assert reweighted == _reference_h_hop_limited_distances(g, 0, 5)
        assert reweighted[5] == sum(g[u][v]["weight"] for u, v in g.edges)
        unit_weights(g)
        assert h_hop_limited_distances(g, 0, 5)[5] == 5.0


class TestPowerGraph:
    def test_power_graph_square_of_path(self):
        g = path_graph(5)
        g2 = power_graph(g, 2)
        assert g2.has_edge(0, 2)
        assert not g2.has_edge(0, 3)

    def test_power_graph_at_diameter_is_complete(self):
        g = path_graph(5)
        gd = power_graph(g, 4)
        assert gd.number_of_edges() == 10

    def test_power_graph_invalid(self):
        with pytest.raises(ValueError):
            power_graph(path_graph(3), 0)


class TestValidation:
    def test_connected_check(self):
        assert is_connected(path_graph(5))
        g = nx.Graph()
        g.add_nodes_from([0, 1])
        assert not is_connected(g)
        assert is_connected(nx.Graph())

    def test_validate_accepts_standard_graph(self):
        validate_paper_graph(grid_graph(3, 2))

    def test_validate_rejects_disconnected(self):
        g = nx.Graph()
        g.add_nodes_from([0, 1, 2])
        g.add_edge(0, 1)
        with pytest.raises(ValueError):
            validate_paper_graph(g)

    def test_validate_rejects_nonpositive_weight(self):
        g = path_graph(3)
        g[0][1]["weight"] = 0
        with pytest.raises(ValueError):
            validate_paper_graph(g)

    def test_validate_rejects_superpolynomial_weight(self):
        g = path_graph(3)
        g[0][1]["weight"] = 10**12
        with pytest.raises(ValueError):
            validate_paper_graph(g)

    def test_validate_rejects_empty(self):
        with pytest.raises(ValueError):
            validate_paper_graph(nx.Graph())
