"""Round-count regression pins for the batch-migrated algorithms.

The batch messaging engine must not change algorithm *behavior* — only how
fast the simulation executes.  These tests pin the exact round counts of
``KDissemination`` and ``ApproxSSSP`` on fixed seeded instances, for both the
batch and the legacy engine, so any scheduling drift in a future refactor
fails loudly instead of silently shifting the paper's reproduced numbers.

If a change *intentionally* alters round counts (e.g. a different cluster-tree
shape), update the pinned constants and say so in the commit message.
"""

import random

import pytest

from repro.core.bcc import BCCBroadcast
from repro.core.dissemination import KDissemination
from repro.core.ksp import KSourceShortestPaths
from repro.core.neighborhood_quality import DistributedNQComputation
from repro.core.shortest_paths import KLShortestPaths, UnweightedApproxAPSP
from repro.core.sssp import ApproxSSSP
from repro.graphs.generators import grid_graph, path_graph
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator

# (label, graph builder, k, seed) -> (measured_rounds, total_rounds, global_messages)
DISSEMINATION_PINS = {
    ("path48", 24, 11): (18, 2381, 262),
    ("grid7", 16, 5): (14, 1175, 192),
}

# (label, k, seed) -> (nq, measured_rounds, total_rounds, local_messages).
# nq/measured/total are pinned for BOTH engines — the frontier rewrite must
# not move them.  local_messages coincide here because no node's ball
# saturates before the global termination on these instances; on saturating
# instances the frontier engine sends strictly fewer (see
# test_distributed_nq_engines_agree_exactly).
NQ_PINS = {
    ("path48", 24, 11): (5, 5, 101, 470),
    ("grid7", 16, 5): (3, 3, 75, 504),
}

# A saturating instance: k >> n forces exploration to the diameter, so
# interior nodes exhaust their balls early and the frontier engine goes
# quiet on them while the legacy engine keeps re-broadcasting.
NQ_EQUIVALENCE_CASES = sorted(NQ_PINS) + [("path9", 1000, 0)]

# (label, epsilon, seed) -> (measured_rounds, total_rounds)
SSSP_PINS = {
    ("path48", 0.25, 11): (0, 576),
    ("grid7", 0.5, 5): (0, 144),
}

# The shortest-paths stack (PR 3): the schedule-identical guarantee of the
# batch migration.  Each pin is (measured_rounds, total_rounds,
# global_messages) and must hold for BOTH engines — the Theorem 1 broadcasts
# inside these algorithms are physically simulated KDissemination instances,
# so any scheduling drift in the batch engine shows up here first.
#
# (label, epsilon, seed) -> pin
APSP_PINS = {
    ("path48", 0.5, 11): (35, 6116, 668),
    ("grid7", 0.5, 11): (24, 2736, 388),
}

# (label, sources_in_skeleton, seed) -> pin.  The skeleton case moves no
# global traffic (everything is charged); the arbitrary-sources case
# physically broadcasts the proxy offsets via Theorem 1.
KSP_PINS = {
    ("path48", True, 11): (0, 612, 0),
    ("grid7", True, 11): (0, 612, 0),
    ("path48", False, 11): (14, 1618, 139),
    ("grid7", False, 11): (19, 1815, 181),
}

# (label, rounds, seed) -> pin for the pipelined BCC bridge.
BCC_PINS = {
    ("path48", 2, 11): (42, 4916, 668),
    ("grid7", 2, 11): (26, 2110, 388),
}

# (label, epsilon, seed) -> pin for the Theorem 5 reversal pipeline.
KLSP_PINS = {
    ("path48", 0.25, 11): (9, 985, 144),
    ("grid7", 0.25, 11): (7, 983, 144),
}

GRAPHS = {
    "path48": lambda: path_graph(48),
    "grid7": lambda: grid_graph(7, 2),
    "path9": lambda: path_graph(9),
}


def _scatter(graph, k, seed):
    rng = random.Random(seed)
    nodes = sorted(graph.nodes)
    tokens = {}
    for index in range(k):
        tokens.setdefault(rng.choice(nodes), []).append(("tok", index))
    return tokens


@pytest.mark.parametrize("engine", ["batch", "legacy"])
@pytest.mark.parametrize("pin", sorted(DISSEMINATION_PINS), ids=lambda p: f"{p[0]}-k{p[1]}")
def test_dissemination_round_counts_are_pinned(pin, engine):
    label, k, seed = pin
    graph = GRAPHS[label]()
    tokens = _scatter(graph, k, seed)
    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    result = KDissemination(sim, tokens, engine=engine).run()
    expected = DISSEMINATION_PINS[pin]
    actual = (
        result.metrics.measured_rounds,
        result.metrics.total_rounds,
        result.metrics.global_messages,
    )
    assert actual == expected, (
        f"{label} k={k} seed={seed} engine={engine}: rounds/messages {actual} "
        f"drifted from the pinned {expected}"
    )
    assert result.metrics.capacity_violations == 0
    assert result.all_nodes_know_all_tokens()


@pytest.mark.parametrize("engine", ["batch", "legacy"])
@pytest.mark.parametrize("pin", sorted(SSSP_PINS), ids=lambda p: f"{p[0]}-eps{p[1]}")
def test_sssp_round_counts_are_pinned(pin, engine):
    label, epsilon, seed = pin
    graph = GRAPHS[label]()
    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    result = ApproxSSSP(sim, 0, epsilon=epsilon, engine=engine).run()
    expected = SSSP_PINS[pin]
    actual = (result.metrics.measured_rounds, result.metrics.total_rounds)
    assert actual == expected


@pytest.mark.parametrize("engine", ["batch", "legacy"])
@pytest.mark.parametrize("pin", sorted(NQ_PINS), ids=lambda p: f"{p[0]}-k{p[1]}")
def test_distributed_nq_round_counts_are_pinned(pin, engine):
    label, k, seed = pin
    graph = GRAPHS[label]()
    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    result = DistributedNQComputation(sim, k, engine=engine).run()
    expected = NQ_PINS[pin]
    actual = (
        result.nq,
        result.metrics.measured_rounds,
        result.metrics.total_rounds,
        result.metrics.local_messages,
    )
    assert actual == expected, (
        f"{label} k={k} seed={seed} engine={engine}: NQ rounds/messages {actual} "
        f"drifted from the pinned {expected}"
    )


@pytest.mark.parametrize("pin", NQ_EQUIVALENCE_CASES, ids=lambda p: f"{p[0]}-k{p[1]}")
def test_distributed_nq_engines_agree_exactly(pin):
    """Frontier and whole-ball flooding produce identical results and rounds."""
    label, k, seed = pin
    graph = GRAPHS[label]()

    def run(engine):
        sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
        return DistributedNQComputation(sim, k, engine=engine).run()

    batch, legacy = run("batch"), run("legacy")
    assert batch.nq == legacy.nq
    assert batch.per_node == legacy.per_node
    batch_summary = batch.metrics.summary()
    legacy_summary = legacy.metrics.summary()
    # Traffic volume may only shrink: the frontier engine never re-broadcasts
    # known ball members (fewer words) and skips saturated nodes entirely
    # (fewer messages).  Everything else — rounds, charges, global traffic —
    # must coincide exactly.
    assert batch_summary.pop("local_words") <= legacy_summary.pop("local_words")
    assert batch_summary.pop("local_messages") <= legacy_summary.pop("local_messages")
    assert batch_summary == legacy_summary


@pytest.mark.parametrize("pin", sorted(DISSEMINATION_PINS), ids=lambda p: f"{p[0]}-k{p[1]}")
def test_batch_and_legacy_engines_agree_exactly(pin):
    """Beyond the pins: the two engines agree on the full metrics summary."""
    label, k, seed = pin
    graph = GRAPHS[label]()
    tokens = _scatter(graph, k, seed)

    def run(engine):
        sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
        return KDissemination(sim, tokens, engine=engine).run()

    batch, legacy = run("batch"), run("legacy")
    assert batch.metrics.summary() == legacy.metrics.summary()
    assert batch.known_tokens == legacy.known_tokens


# ----------------------------------------------------------------------
# PR 3: the shortest-paths stack (APSP / k-SP / BCC)
# ----------------------------------------------------------------------
def _metrics_triple(sim):
    return (
        sim.metrics.measured_rounds,
        sim.metrics.total_rounds,
        sim.metrics.global_messages,
    )


@pytest.mark.parametrize("engine", ["batch", "legacy"])
@pytest.mark.parametrize("pin", sorted(APSP_PINS), ids=lambda p: f"{p[0]}-eps{p[1]}")
def test_apsp_round_counts_are_pinned(pin, engine):
    label, epsilon, seed = pin
    graph = GRAPHS[label]()
    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    UnweightedApproxAPSP(sim, epsilon=epsilon, engine=engine).run()
    assert _metrics_triple(sim) == APSP_PINS[pin], (
        f"{label} eps={epsilon} engine={engine}: APSP rounds/messages "
        f"{_metrics_triple(sim)} drifted from the pinned {APSP_PINS[pin]}"
    )
    assert sim.metrics.capacity_violations == 0


@pytest.mark.parametrize("engine", ["batch", "legacy"])
@pytest.mark.parametrize(
    "pin", sorted(KSP_PINS), ids=lambda p: f"{p[0]}-{'skel' if p[1] else 'arb'}"
)
def test_ksp_round_counts_are_pinned(pin, engine):
    label, in_skeleton, seed = pin
    graph = GRAPHS[label]()
    nodes = sorted(graph.nodes)
    sources = nodes[::7] if in_skeleton else nodes[:5]
    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)
    KSourceShortestPaths(
        sim,
        sources,
        epsilon=0.25,
        sources_in_skeleton=in_skeleton,
        seed=seed,
        engine=engine,
    ).run()
    assert _metrics_triple(sim) == KSP_PINS[pin], (
        f"{label} in_skeleton={in_skeleton} engine={engine}: k-SP rounds "
        f"{_metrics_triple(sim)} drifted from the pinned {KSP_PINS[pin]}"
    )
    assert sim.metrics.capacity_violations == 0


@pytest.mark.parametrize("engine", ["batch", "legacy"])
@pytest.mark.parametrize("pin", sorted(BCC_PINS), ids=lambda p: f"{p[0]}-r{p[1]}")
def test_bcc_broadcast_round_counts_are_pinned(pin, engine):
    label, bcc_rounds, seed = pin
    graph = GRAPHS[label]()
    schedule = [
        {v: (f"round{i}", v) for v in graph.nodes} for i in range(bcc_rounds)
    ]
    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    result = BCCBroadcast(sim, schedule, engine=engine).run()
    assert result.all_rounds_complete()
    assert _metrics_triple(sim) == BCC_PINS[pin], (
        f"{label} rounds={bcc_rounds} engine={engine}: BCC rounds "
        f"{_metrics_triple(sim)} drifted from the pinned {BCC_PINS[pin]}"
    )


@pytest.mark.parametrize("engine", ["batch", "legacy"])
@pytest.mark.parametrize("pin", sorted(KLSP_PINS), ids=lambda p: f"{p[0]}-eps{p[1]}")
def test_klsp_round_counts_are_pinned(pin, engine):
    label, epsilon, seed = pin
    graph = GRAPHS[label]()
    nodes = sorted(graph.nodes)
    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)
    KLShortestPaths(
        sim, nodes[:6], nodes[-8:], epsilon=epsilon, seed=seed, engine=engine
    ).run()
    assert _metrics_triple(sim) == KLSP_PINS[pin], (
        f"{label} eps={epsilon} engine={engine}: (k,l)-SP rounds "
        f"{_metrics_triple(sim)} drifted from the pinned {KLSP_PINS[pin]}"
    )
    assert sim.metrics.capacity_violations == 0


@pytest.mark.parametrize("pin", sorted(APSP_PINS), ids=lambda p: f"{p[0]}-eps{p[1]}")
def test_apsp_engines_agree_exactly(pin):
    """Beyond the pins: both engines agree on the full metrics summary and on
    every materialised estimate."""
    label, epsilon, seed = pin
    graph = GRAPHS[label]()

    def run(engine):
        sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
        return UnweightedApproxAPSP(sim, epsilon=epsilon, engine=engine).run()

    batch, legacy = run("batch"), run("legacy")
    assert batch.metrics.summary() == legacy.metrics.summary()
    assert batch.estimates == legacy.estimates
