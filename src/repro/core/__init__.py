"""The paper's algorithmic contributions.

Modules are layered bottom-up:

* parameter / structure: :mod:`neighborhood_quality`, :mod:`ruling_sets`,
  :mod:`clustering`, :mod:`overlay`, :mod:`load_balancing`
* information dissemination: :mod:`dissemination` (Theorem 1),
  :mod:`aggregation` (Theorem 2), :mod:`helper_sets`, :mod:`hashing`,
  :mod:`routing` (Theorem 3)
* shortest-path substrates: :mod:`skeleton`, :mod:`spanner`,
  :mod:`minor_aggregation`, :mod:`euler`, :mod:`sssp` (Theorem 13),
  :mod:`ksp` (Theorem 14)
* universally optimal graph problems: :mod:`shortest_paths`
  (Theorems 5, 6, 7, 8), :mod:`cuts` (Theorem 9)
"""
