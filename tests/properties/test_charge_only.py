"""Charge-only mode must be *accounting-identical* to payload runs.

Charge-only traffic carries only the (sender, receiver, words) columns — no
payload objects are materialised, queued or delivered — yet schedules, round
counts and every :class:`~repro.simulator.metrics.RoundMetrics` field must be
bit-identical to the payload run, because the engine's accounting reads only
the words columns.  Three activation levels are pinned across the 6-family x
3-seed grid on both backends:

* **algorithm-level** — ``KDissemination(..., charge_only=True)`` builds
  payload-free planes at the source;
* **simulator-level** — ``HybridSimulator(charge_only=True)`` drops payload
  references when plane batches are queued;
* **exchange-level** — ``batched_global_exchange(..., charge_only=True)``
  demotes one workload via ``TokenPlane.charge_view()``.

Reading payload *content* out of charge-only traffic is a hard
:class:`~repro.simulator.errors.ChargeOnlyError`, never a silent wrong
answer.  The fault layer must filter payload-free planes exactly like
payload planes: a crash/drop/link-failure schedule replays bit-identically
in both modes (the fault x charge-only regression).
"""

from __future__ import annotations

import random

import pytest

from repro.core.dissemination import KDissemination
from repro.graphs.generators import (
    barbell_graph,
    broom_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
)
from repro.simulator import _accel
from repro.simulator.config import ModelConfig
from repro.simulator.engine import (
    BatchAlgorithm,
    TokenPlane,
    batched_global_exchange,
    resilient_batched_global_exchange,
)
from repro.simulator.errors import ChargeOnlyError
from repro.simulator.faults import CrashEvent, FaultSchedule, LinkFailure
from repro.simulator.messages import GLOBAL_MODE
from repro.simulator.network import HybridSimulator

SEEDS = [0, 1, 2]

GRAPH_FAMILIES = {
    "path": lambda seed: path_graph(30),
    "cycle": lambda seed: cycle_graph(30),
    "grid": lambda seed: grid_graph(6, 2),
    "barbell": lambda seed: barbell_graph(8, 12),
    "broom": lambda seed: broom_graph(18, 10),
    "erdos_renyi": lambda seed: erdos_renyi_graph(30, 0.12, seed=seed),
}

CASES = [(family, seed) for family in sorted(GRAPH_FAMILIES) for seed in SEEDS]


def _ids(case):
    family, seed = case
    return f"{family}-s{seed}"


@pytest.fixture(params=["numpy", "python"])
def backend(request, monkeypatch):
    """Run the test body under both array backends."""
    if request.param == "python":
        monkeypatch.setattr(_accel, "np", None)
    elif _accel.np is None:
        pytest.skip("NumPy not available; vectorised leg is inactive")
    return request.param


# ----------------------------------------------------------------------
# The grid: payload vs algorithm-level vs simulator-level charge-only
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_dissemination_charge_only_is_accounting_identical(case, backend):
    family, seed = case
    graph = GRAPH_FAMILIES[family](seed)
    holders = sorted(graph.nodes, key=str)
    rng = random.Random(f"co-{family}-{seed}")
    tokens = {}
    for index in range(rng.randrange(10, 22)):
        tokens.setdefault(rng.choice(holders), []).append(("tok", index))

    def run(sim_charge_only, algo_charge_only):
        sim = HybridSimulator(
            graph, ModelConfig.hybrid0(), seed=seed, charge_only=sim_charge_only
        )
        algo = KDissemination(sim, tokens, charge_only=algo_charge_only)
        result = algo.run()
        assert result.all_nodes_know_all_tokens()
        return result.metrics, tuple(algo.phase_log)

    payload_metrics, payload_phases = run(False, False)
    algo_metrics, algo_phases = run(False, True)
    sim_metrics, sim_phases = run(True, False)

    assert payload_metrics.diff(algo_metrics) == {}
    assert payload_metrics.diff(sim_metrics) == {}
    assert algo_phases == payload_phases
    assert sim_phases == payload_phases
    assert payload_metrics.capacity_violations == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_exchange_level_charge_only_is_accounting_identical(seed, backend):
    graph = erdos_renyi_graph(28, 0.18, seed=seed)
    rng = random.Random(900 + seed)
    triples = [
        (
            rng.randrange(28),
            rng.randrange(28),
            ("m", i, "x" * (rng.choice([1, 2, 5, 9]) * 8)),
        )
        for i in range(rng.randrange(60, 140))
    ]

    def run(**kwargs):
        sim = HybridSimulator(graph, ModelConfig(strict=False), seed=seed)
        batched_global_exchange(sim, list(triples), tag="ce", collect=False, **kwargs)
        return sim.metrics

    payload_metrics = run()
    charged_metrics = run(charge_only=True)
    assert payload_metrics.diff(charged_metrics) == {}
    assert payload_metrics.global_messages > 0


# ----------------------------------------------------------------------
# Guards: payload content is unreachable, loudly
# ----------------------------------------------------------------------
def test_charge_view_shares_columns_and_drops_payloads(backend):
    plane = TokenPlane([0, 1, 2], [3, 4, 5], [1, 2, 3], ["a", "b", "c"])
    view = plane.charge_view()
    assert view.payloads is None
    assert len(view) == len(plane) == 3
    assert view.senders is plane.senders
    assert view.receivers is plane.receivers
    assert view.words is plane.words
    # Idempotent: a charge-only plane is its own charge view.
    assert view.charge_view() is view
    with pytest.raises(ChargeOnlyError):
        list(view.iter_triples(HybridSimulator(path_graph(6), ModelConfig.hybrid())))


def test_collect_from_charge_only_exchange_raises(backend):
    sim = HybridSimulator(path_graph(8), ModelConfig.hybrid(), seed=0)
    triples = [(0, 5, "x"), (1, 6, "y")]
    with pytest.raises(ChargeOnlyError):
        batched_global_exchange(sim, triples, tag="g", charge_only=True)
    with pytest.raises(ChargeOnlyError):
        resilient_batched_global_exchange(sim, triples, tag="g", charge_only=True)
    # collect=False is the supported combination and must work.
    assert (
        batched_global_exchange(
            sim, triples, tag="g", collect=False, charge_only=True
        )
        == {}
    )


def test_charge_only_inbox_read_raises(backend):
    sim = HybridSimulator(path_graph(8), ModelConfig.hybrid(), seed=0, charge_only=True)
    batched_global_exchange(sim, [(0, 5, "x"), (1, 6, "y")], tag="g", collect=False)
    with pytest.raises(ChargeOnlyError):
        sim.per_node_inbox(GLOBAL_MODE)


def test_charge_only_requires_the_batch_engine():
    sim = HybridSimulator(path_graph(6), ModelConfig.hybrid())
    with pytest.raises(ValueError, match="charge_only"):
        BatchAlgorithm(sim, engine="legacy", charge_only=True)
    with pytest.raises(ValueError, match="charge_only"):
        KDissemination(sim, {0: ["t"]}, engine="batch-reference", charge_only=True)


# ----------------------------------------------------------------------
# Fault x charge-only: filtering works on payload-free planes
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_fault_schedule_replays_identically_charge_only(seed, backend):
    """Crash windows, drops and retransmission under charge-only traffic
    must replay the payload run's fault trajectory bit-for-bit."""
    graph = erdos_renyi_graph(24, 0.2, seed=seed)
    schedule = FaultSchedule(
        seed=seed,
        global_drop_rate=0.3,
        crashes=(CrashEvent(node=3, crash_round=1, recover_round=5),),
    )
    rng = random.Random(1500 + seed)
    triples = [
        (rng.randrange(24), rng.randrange(24), ("f", i))
        for i in range(rng.randrange(40, 90))
    ]

    def run(charge_only):
        sim = HybridSimulator(
            graph, ModelConfig.hybrid(), seed=seed, fault_schedule=schedule
        )
        outcome = resilient_batched_global_exchange(
            sim,
            list(triples),
            tag="fco",
            collect=False,
            charge_only=charge_only,
        )
        return (
            sim.metrics.summary(),
            outcome.attempts,
            outcome.retransmissions,
            sorted(outcome.undelivered_positions),
        )

    payload_run = run(False)
    charged_run = run(True)
    assert charged_run == payload_run
    assert payload_run[0]["dropped_messages"] > 0  # faults actually fired


def test_failed_edge_filtering_matches_on_charge_only_planes(backend):
    """Local-mode link-failure filtering must drop the same records whether
    or not the plane carries payloads."""
    graph = path_graph(8)
    schedule = FaultSchedule(link_failures=(LinkFailure(2, 3, end_round=2),))

    def run(charge_only):
        sim = HybridSimulator(
            graph,
            ModelConfig.hybrid(),
            seed=0,
            fault_schedule=schedule,
            charge_only=charge_only,
        )
        for r in range(3):
            sim.local_send_batch_ids(
                [2, 3, 4],
                [3, 2, 5],
                [("p", r, 0), ("p", r, 1), ("p", r, 2)],
                tag="lf",
            )
            sim.advance_round()
        return sim.metrics.summary()

    payload_summary = run(False)
    charged_summary = run(True)
    assert charged_summary == payload_summary
    assert payload_summary["dropped_messages"] == 4


@pytest.mark.parametrize("case", CASES[::3], ids=_ids)
def test_crashed_endpoint_dissemination_identical_charge_only(case, backend):
    """A transient crash window mid-dissemination: payload and simulator-level
    charge-only runs must agree on every metric including the fault counters."""
    family, seed = case
    graph = GRAPH_FAMILIES[family](seed)
    holders = sorted(graph.nodes, key=str)
    rng = random.Random(f"cof-{family}-{seed}")
    tokens = {}
    for index in range(12):
        tokens.setdefault(rng.choice(holders), []).append(("tok", index))
    schedule = FaultSchedule(
        seed=seed, crashes=(CrashEvent(node=1, crash_round=2, recover_round=4),)
    )

    def run(charge_only):
        sim = HybridSimulator(
            graph,
            ModelConfig.hybrid0(),
            seed=seed,
            fault_schedule=schedule,
            charge_only=charge_only,
        )
        return KDissemination(sim, tokens).run().metrics.summary()

    assert run(True) == run(False)


# ----------------------------------------------------------------------
# Legacy tuple paths: *_send_batch bucket deliveries, charge-only
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_tuple_batches_charge_only_are_accounting_identical(seed, backend):
    """Multi-round legacy-tuple traffic (global + local) under a crash +
    drop schedule: charge-only must replay every metric bit-for-bit."""
    n = 24
    graph = path_graph(n)
    schedule = FaultSchedule(
        seed=seed,
        crashes=(CrashEvent(node=2, crash_round=1, recover_round=3),),
        link_failures=(LinkFailure(5, 6, end_round=3),),
        global_drop_rate=0.2,
        local_drop_rate=0.15,
    )

    def run(charge_only):
        rng = random.Random(f"tuple-{seed}")
        sim = HybridSimulator(
            graph,
            ModelConfig.hybrid(strict=False),
            seed=seed,
            fault_schedule=schedule,
            charge_only=charge_only,
        )
        for r in range(4):
            sim.global_send_batch(
                [
                    (rng.randrange(n), rng.randrange(n), ("p", r, i))
                    for i in range(40)
                ],
                tag="tg",
            )
            sim.local_send_batch(
                [(i, i + 1, ("l", r, i)) for i in range(0, n - 1, 2)],
                tag="tl",
            )
            sim.advance_round()
        return sim.metrics.summary()

    payload_summary = run(False)
    charged_summary = run(True)
    assert charged_summary == payload_summary
    assert payload_summary["dropped_messages"] > 0


def test_tuple_inbox_read_raises_charge_only(backend):
    """Reading tuple traffic queued charge-only is a hard error on both
    modes; a traffic-free round stays readable (an empty inbox is exact)."""
    sim = HybridSimulator(
        path_graph(8), ModelConfig.hybrid(), seed=0, charge_only=True
    )
    sim.global_send_to_node(0, 5, ("g", 0))
    sim.local_send(3, 4, ("l", 0))
    sim.advance_round()
    with pytest.raises(ChargeOnlyError):
        sim.global_inbox(5)
    with pytest.raises(ChargeOnlyError):
        sim.local_inbox(4)
    # The next round carries nothing: empty inboxes are exact, not a read
    # of suppressed payloads.
    sim.advance_round()
    assert sim.global_inbox(5) == []
    assert sim.local_inbox(4) == []


def test_mixed_tuple_and_plane_round_charge_only_identical(backend):
    """One round mixing a token plane with legacy tuple sends: accounting
    must match the payload run, and the read guard must still fire."""
    n = 16

    def run(charge_only):
        sim = HybridSimulator(
            path_graph(n),
            ModelConfig.hybrid(strict=False),
            seed=7,
            charge_only=charge_only,
        )
        rng = random.Random("mixed")
        count = 48
        plane = TokenPlane(
            [rng.randrange(n) for _ in range(count)],
            [rng.randrange(n) for _ in range(count)],
            [rng.choice([1, 2]) for _ in range(count)],
            [("pp", i) for i in range(count)],
        )
        sim.global_send_plane(plane, tag="mx")
        sim.global_send_batch(
            [(rng.randrange(n), rng.randrange(n), ("tp", i)) for i in range(20)],
            tag="mt",
        )
        sim.advance_round()
        return sim

    payload_sim = run(False)
    charged_sim = run(True)
    assert charged_sim.metrics.diff(payload_sim.metrics) == {}
    with pytest.raises(ChargeOnlyError):
        charged_sim.global_inbox(1)


def test_tuple_charge_only_sparse_learning_is_identical(backend):
    """HYBRID_0 sender-id learning reads only the sender column, so tuple
    traffic with suppressed payloads must teach exactly the same ids."""
    n = 12
    graph = path_graph(n)

    def run(charge_only):
        sim = HybridSimulator(
            graph, ModelConfig.hybrid0(), seed=5, charge_only=charge_only
        )
        # Teach node 0 a distant identifier so its sends genuinely extend
        # the receiver's knowledge (neighbors are known from the start).
        far_id = sim.id_of(9)
        sim.declare_learned_ids(0, [far_id])
        for r in range(3):
            sim.global_send(0, far_id, ("t", r))
            sim.global_send_batch(
                [(i, i + 1, ("u", r, i)) for i in range(n - 1)], tag="k"
            )
            sim.advance_round()
        return (
            {node: sim.known_ids(node) for node in sim.nodes},
            sim.metrics.summary(),
        )

    assert run(True) == run(False)
