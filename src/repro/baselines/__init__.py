"""Baselines: prior existentially optimal algorithms and centralized references.

The paper's tables compare the new universally optimal algorithms against the
existentially optimal state of the art ([AHK+20], [KS20], [AG21a], [CHLP21b]).
This subpackage provides

* :mod:`repro.baselines.centralized` — exact BFS/Dijkstra/APSP references used
  as ground truth by the tests and the stretch measurements,
* :mod:`repro.baselines.existential` — the *analytic* round bounds of the prior
  algorithms (the quantities appearing in the paper's table rows), and
* :mod:`repro.baselines.naive` — simulatable baselines (LOCAL flooding, naive
  global gossip, the sqrt(n)-skeleton APSP of [KS20]) whose measured rounds
  provide the comparison curves in the benchmark output.
"""

from repro.baselines.centralized import (
    exact_apsp,
    exact_sssp,
    exact_hop_apsp,
    measure_stretch,
    max_stretch_of_table,
)
from repro.baselines.existential import ExistentialBounds
from repro.baselines.naive import (
    LocalFloodingBroadcast,
    NaiveGlobalBroadcast,
    SqrtNSkeletonAPSP,
)

__all__ = [
    "exact_apsp",
    "exact_sssp",
    "exact_hop_apsp",
    "measure_stretch",
    "max_stretch_of_table",
    "ExistentialBounds",
    "LocalFloodingBroadcast",
    "NaiveGlobalBroadcast",
    "SqrtNSkeletonAPSP",
]
