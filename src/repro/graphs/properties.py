"""Structural graph primitives used throughout the paper (Section 1.2).

All graphs are ``networkx.Graph`` instances whose nodes are hashable (typically
integers) and whose edges may carry a ``weight`` attribute.  Unweighted graphs
are treated as having unit weights (``w == 1``), matching the paper's
convention.

The functions here are *centralized* helpers: they are used by the graph
generators, by the centralized reference solvers, and by the theory-side
predictions.  The distributed algorithms in :mod:`repro.core` never call them
to cheat; they only ever access the simulator's communication interface.
"""

from __future__ import annotations

import math
from collections import deque
from typing import Dict, Hashable, Iterable, List, Optional, Set, Tuple

import networkx as nx

from repro.graphs.index import get_index

Node = Hashable

__all__ = [
    "ball",
    "ball_size",
    "ball_sizes_all_radii",
    "hop_distance",
    "hop_distances_from",
    "all_hop_distances",
    "weighted_distances_from",
    "all_weighted_distances",
    "h_hop_limited_distances",
    "eccentricity",
    "diameter",
    "weak_diameter",
    "strong_diameter",
    "power_graph",
    "is_connected",
    "validate_paper_graph",
    "edge_weight",
    "total_edge_weight",
]


def edge_weight(graph: nx.Graph, u: Node, v: Node) -> float:
    """Return the weight of the edge ``{u, v}``, defaulting to 1."""
    return graph[u][v].get("weight", 1)


def total_edge_weight(graph: nx.Graph) -> float:
    """Sum of all edge weights (unit weights if unweighted)."""
    return sum(data.get("weight", 1) for _, _, data in graph.edges(data=True))


def hop_distances_from(graph: nx.Graph, source: Node) -> Dict[Node, int]:
    """Unweighted (hop) distances from ``source`` via BFS.

    Nodes unreachable from ``source`` are omitted from the result.
    """
    if source not in graph:
        raise KeyError(f"source {source!r} not in graph")
    dist: Dict[Node, int] = {source: 0}
    queue = deque([source])
    while queue:
        u = queue.popleft()
        du = dist[u]
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = du + 1
                queue.append(v)
    return dist


def hop_distance(graph: nx.Graph, u: Node, v: Node) -> int:
    """Hop distance between ``u`` and ``v``; ``math.inf`` if disconnected.

    The BFS stops the moment ``v`` is discovered instead of exploring the rest
    of ``u``'s component (the full component is only traversed when ``v`` is
    unreachable, where that is unavoidable).
    """
    if u == v:
        return 0
    if u not in graph:
        raise KeyError(f"source {u!r} not in graph")
    dist: Dict[Node, int] = {u: 0}
    queue = deque([u])
    while queue:
        x = queue.popleft()
        dx = dist[x]
        for y in graph.neighbors(x):
            if y not in dist:
                if y == v:
                    return dx + 1
                dist[y] = dx + 1
                queue.append(y)
    return math.inf


def all_hop_distances(graph: nx.Graph) -> Dict[Node, Dict[Node, int]]:
    """All-pairs hop distances as dicts, assembled from dense index rows.

    Delegates to the cached :class:`~repro.graphs.index.GraphIndex`: one flat
    multi-source sweep per node instead of one Python-dict BFS per node.
    Unreachable nodes are omitted from each row, matching
    :func:`hop_distances_from`; only the key order inside a row differs.
    """
    index = get_index(graph)
    nodes = index.nodes
    return {
        v: {nodes[i]: d for i, d in enumerate(index.hop_distance_row(v)) if d >= 0}
        for v in nodes
    }


def _reference_all_hop_distances(graph: nx.Graph) -> Dict[Node, Dict[Node, int]]:
    """Index-free ground truth for :func:`all_hop_distances` (tests only)."""
    return {v: hop_distances_from(graph, v) for v in graph.nodes}


def weighted_distances_from(graph: nx.Graph, source: Node) -> Dict[Node, float]:
    """Weighted single-source distances via Dijkstra (unit weights by default).

    Delegates to the cached :class:`~repro.graphs.index.GraphIndex` flat-array
    Dijkstra — identical values to ``networkx`` (pinned by
    ``tests/properties/test_weighted_equivalence.py``), with the CSR adjacency
    and tie keys shared across queries on the same graph.  Unreachable nodes
    are omitted; a missing source raises ``KeyError``.
    """
    return get_index(graph).sssp_dict(source)


def _reference_weighted_distances_from(
    graph: nx.Graph, source: Node
) -> Dict[Node, float]:
    """Index-free ground truth for :func:`weighted_distances_from` (tests only)."""
    return nx.single_source_dijkstra_path_length(graph, source, weight="weight")


def all_weighted_distances(graph: nx.Graph) -> Dict[Node, Dict[Node, float]]:
    """All-pairs weighted distances, one flat index Dijkstra row per node."""
    index = get_index(graph)
    return {v: index.sssp_dict(v) for v in graph.nodes}


def h_hop_limited_distances(
    graph: nx.Graph, source: Node, h: int
) -> Dict[Node, float]:
    """``h``-hop limited weighted distances ``d^h(source, .)`` (Section 1.2).

    ``d^h(u, v)`` is the weight of a shortest ``u``-``v`` path among all paths
    using at most ``h`` edges; nodes with no such path are omitted.  Delegates
    to the cached :class:`~repro.graphs.index.GraphIndex` flat-array
    Bellman-Ford (identical values to the reference; ``KeyError`` on a missing
    source, like the other BFS primitives).
    """
    return get_index(graph).h_hop_limited_distances(source, h)


def _reference_h_hop_limited_distances(
    graph: nx.Graph, source: Node, h: int
) -> Dict[Node, float]:
    """Index-free ground truth for :func:`h_hop_limited_distances` (tests only):
    ``h`` rounds of dict-based Bellman-Ford relaxation."""
    if h < 0:
        raise ValueError("h must be non-negative")
    dist: Dict[Node, float] = {source: 0.0}
    frontier: Set[Node] = {source}
    for _ in range(h):
        updates: Dict[Node, float] = {}
        for u in frontier:
            du = dist[u]
            for v in graph.neighbors(u):
                cand = du + edge_weight(graph, u, v)
                if cand < dist.get(v, math.inf) and cand < updates.get(v, math.inf):
                    updates[v] = cand
        if not updates:
            break
        frontier = set()
        for v, d in updates.items():
            if d < dist.get(v, math.inf):
                dist[v] = d
                frontier.add(v)
        if not frontier:
            break
    return dist


def ball(graph: nx.Graph, center: Node, radius: int) -> Set[Node]:
    """The ball ``B_t(v) = {w : hop(v, w) <= t}`` (Section 1.2), including ``v``."""
    if radius < 0:
        raise ValueError("radius must be non-negative")
    dist: Dict[Node, int] = {center: 0}
    queue = deque([center])
    while queue:
        u = queue.popleft()
        du = dist[u]
        if du == radius:
            continue
        for v in graph.neighbors(u):
            if v not in dist:
                dist[v] = du + 1
                queue.append(v)
    return set(dist)


def ball_size(graph: nx.Graph, center: Node, radius: int) -> int:
    """``|B_t(v)|``."""
    return len(ball(graph, center, radius))


def ball_sizes_all_radii(graph: nx.Graph, center: Node) -> List[int]:
    """Return ``[|B_0(v)|, |B_1(v)|, ..., |B_ecc(v)|]`` in one BFS pass.

    Delegates to the cached :class:`~repro.graphs.index.GraphIndex`.
    """
    return get_index(graph).ball_sizes_all_radii(center)


def _reference_ball_sizes_all_radii(graph: nx.Graph, center: Node) -> List[int]:
    """Index-free ground truth for :func:`ball_sizes_all_radii` (tests only)."""
    dist = hop_distances_from(graph, center)
    if not dist:
        return [1]
    ecc = max(dist.values())
    counts = [0] * (ecc + 1)
    for d in dist.values():
        counts[d] += 1
    sizes = []
    running = 0
    for c in counts:
        running += c
        sizes.append(running)
    return sizes


def eccentricity(graph: nx.Graph, v: Node) -> int:
    """Maximum hop distance from ``v`` to any reachable node.

    Delegates to the cached :class:`~repro.graphs.index.GraphIndex`.
    """
    return get_index(graph).eccentricity(v)


def _reference_eccentricity(graph: nx.Graph, v: Node) -> int:
    """Index-free ground truth for :func:`eccentricity` (tests only)."""
    dist = hop_distances_from(graph, v)
    return max(dist.values()) if dist else 0


def diameter(graph: nx.Graph) -> int:
    """Hop diameter ``D = max_{v,w} hop(v, w)`` (Section 1.2).

    Raises ``ValueError`` on disconnected graphs.  Delegates to the cached
    :class:`~repro.graphs.index.GraphIndex`, which computes the exact value
    with a double sweep plus iFUB eccentricity pruning instead of ``n`` full
    BFS passes (and memoises it per graph).
    """
    return get_index(graph).diameter()


def _reference_diameter(graph: nx.Graph) -> int:
    """Index-free ground truth for :func:`diameter` (tests only): n BFS passes."""
    if graph.number_of_nodes() == 0:
        raise ValueError("diameter of empty graph is undefined")
    best = 0
    reference_size = graph.number_of_nodes()
    for v in graph.nodes:
        dist = hop_distances_from(graph, v)
        if len(dist) != reference_size:
            raise ValueError("graph is disconnected; diameter undefined")
        best = max(best, max(dist.values()))
    return best


def weak_diameter(graph: nx.Graph, nodes: Iterable[Node]) -> int:
    """Weak diameter of a node set: max pairwise hop distance *in G* (Section 1.2).

    Empty and singleton sets have weak diameter 0; a member set spanning
    several components returns ``math.inf`` (in contrast to :func:`diameter`,
    which raises on disconnected graphs — pinned by the tests).  A member that
    is not a node of the graph raises ``KeyError`` no matter where it appears
    in the iteration order.  Delegates to the cached
    :class:`~repro.graphs.index.GraphIndex`, whose per-member BFS stops as
    soon as every other member is discovered instead of sweeping the whole
    component and re-scanning the target set.
    """
    node_list = list(nodes)
    if not node_list:
        return 0
    return get_index(graph).weak_diameter(node_list)


def _reference_weak_diameter(graph: nx.Graph, nodes: Iterable[Node]) -> int:
    """Index-free ground truth for :func:`weak_diameter` (tests only): one full
    BFS per member plus a target-set scan.  Kept verbatim — including the
    historical quirk that a member missing from the graph surfaces as ``inf``
    or ``KeyError`` depending on iteration order, which the fast path fixes."""
    node_list = list(nodes)
    if not node_list:
        return 0
    best = 0
    targets = set(node_list)
    for v in node_list:
        dist = hop_distances_from(graph, v)
        for t in targets:
            if t not in dist:
                return math.inf
            best = max(best, dist[t])
    return best


def strong_diameter(graph: nx.Graph, nodes: Iterable[Node]) -> int:
    """Strong diameter: diameter of the subgraph induced by ``nodes``.

    Runs on the induced subgraph's own (ephemeral) :class:`GraphIndex` via
    :func:`diameter`; a disconnected induced subgraph yields ``math.inf``.
    """
    sub = graph.subgraph(set(nodes))
    if sub.number_of_nodes() == 0:
        return 0
    if sub.number_of_nodes() == 1:
        return 0
    try:
        return diameter(sub)
    except ValueError:
        return math.inf


def _reference_strong_diameter(graph: nx.Graph, nodes: Iterable[Node]) -> int:
    """Index-free ground truth for :func:`strong_diameter` (tests only)."""
    sub = graph.subgraph(set(nodes))
    if sub.number_of_nodes() <= 1:
        return 0
    try:
        return _reference_diameter(sub)
    except ValueError:
        return math.inf


def power_graph(graph: nx.Graph, t: int) -> nx.Graph:
    """The power graph ``G^t``: edge ``{u, v}`` iff ``hop(u, v) <= t`` (Section 3).

    Node set is preserved; edges carry no weights.
    """
    if t < 1:
        raise ValueError("power must be at least 1")
    result = nx.Graph()
    result.add_nodes_from(graph.nodes)
    for v in graph.nodes:
        for w in ball(graph, v, t):
            if w != v:
                result.add_edge(v, w)
    return result


def is_connected(graph: nx.Graph) -> bool:
    """Whether the graph is connected (empty graphs count as connected)."""
    n = graph.number_of_nodes()
    if n <= 1:
        return True
    start = next(iter(graph.nodes))
    return len(hop_distances_from(graph, start)) == n


def validate_paper_graph(graph: nx.Graph, *, require_weights_polynomial: bool = True) -> None:
    """Validate the standing assumptions of Section 1.2.

    The paper assumes undirected, connected graphs with positive edge weights
    polynomial in ``n``.  Raises ``ValueError`` when an assumption is violated.
    """
    n = graph.number_of_nodes()
    if n == 0:
        raise ValueError("graph must be non-empty")
    if graph.is_directed():
        raise ValueError("graph must be undirected")
    if not is_connected(graph):
        raise ValueError("graph must be connected")
    if require_weights_polynomial:
        # "Polynomial in n" is interpreted as w <= n^4, generous enough for every
        # construction in this repository while still catching accidents like
        # exponential weights.
        limit = max(n, 2) ** 4
        for u, v, data in graph.edges(data=True):
            w = data.get("weight", 1)
            if w <= 0:
                raise ValueError(f"edge ({u!r}, {v!r}) has non-positive weight {w}")
            if w > limit:
                raise ValueError(
                    f"edge ({u!r}, {v!r}) weight {w} exceeds polynomial bound {limit}"
                )
