"""Simulating the Broadcast Congested Clique in HYBRID (Corollary 2.1).

The Broadcast Congested Clique (BCC) is the distributed model in which, every
round, each node broadcasts one O(log n)-bit message to the entire network.
Corollary 2.1 of the paper: one BCC round can be simulated in eO(NQ_n) rounds
of HYBRID_0 (run Theorem 1 with the n per-node broadcast values as the tokens),
and this is universally optimal — eOmega(NQ_n) HYBRID rounds are necessary by
the Theorem 4 lower bound with k = n.

:class:`BCCSimulator` exposes exactly that: callers provide per-node O(log n)-
bit values round by round, each ``simulate_round`` call runs a k-dissemination
instance (physically simulated + charged, like Theorem 1 itself) and returns
the full message vector every node now knows.  This is the building block that
lets the many known BCC algorithms (Section 2.1 "Application") run unchanged on
a HYBRID network.

:class:`BCCBroadcast` is the batch-native pipeline for a whole *schedule* of
BCC rounds: a :class:`~repro.simulator.engine.BatchAlgorithm` that evaluates
``NQ_n`` and the Lemma 3.5 clustering once and reuses them across every
simulated round (one :class:`~repro.core.dissemination.KDissemination`
instance per round, all riding the batch messaging engine).  Both classes
accept ``engine="batch"`` (default) or ``engine="legacy"``; the two engines
are schedule-identical, pinned by ``tests/unit/test_round_regression.py``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Hashable, List, Optional, Sequence

from repro.core.clustering import Clustering, distributed_nq_clustering
from repro.core.dissemination import KDissemination
from repro.core.neighborhood_quality import neighborhood_quality
from repro.lowerbounds.universal import UniversalLowerBound, bcc_simulation_lower_bound
from repro.simulator.engine import BatchAlgorithm
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = ["BCCRoundResult", "BCCSimulator", "BCCBroadcast", "BCCBroadcastResult"]


@dataclasses.dataclass
class BCCRoundResult:
    """Outcome of one simulated BCC round."""

    broadcasts: Dict[Node, Any]
    received: Dict[Node, Dict[Node, Any]]
    rounds_used: int

    def all_nodes_received_everything(self) -> bool:
        expected = dict(self.broadcasts)
        return all(view == expected for view in self.received.values())


def _run_bcc_round(
    simulator: HybridSimulator,
    broadcasts: Dict[Node, Any],
    *,
    nq: int,
    clustering: Optional[Clustering] = None,
    engine: str = "batch",
) -> BCCRoundResult:
    """One Corollary 2.1 round: Theorem 1 with the n broadcast values as tokens."""
    node_set = set(simulator.nodes)
    if set(broadcasts) != node_set:
        raise ValueError("broadcasts must contain exactly one value per node")
    rounds_before = simulator.metrics.total_rounds
    tokens = {
        node: [("bcc", simulator.id_of(node), value)]
        for node, value in broadcasts.items()
    }
    result = KDissemination(
        simulator, tokens, nq=nq, clustering=clustering, engine=engine
    ).run()
    received: Dict[Node, Dict[Node, Any]] = {}
    for node, known in result.known_tokens.items():
        view: Dict[Node, Any] = {}
        for token in known:
            if isinstance(token, tuple) and len(token) == 3 and token[0] == "bcc":
                view[simulator.node_of_id(token[1])] = token[2]
        received[node] = view
    return BCCRoundResult(
        broadcasts=dict(broadcasts),
        received=received,
        rounds_used=simulator.metrics.total_rounds - rounds_before,
    )


class BCCSimulator:
    """Simulate Broadcast Congested Clique rounds on a HYBRID network.

    Parameters
    ----------
    simulator: the underlying HYBRID / HYBRID_0 network.
    nq_hint: ``NQ_n`` if already known (avoids recomputation per round).
    engine: ``"batch"`` (default) or ``"legacy"`` transport for the Theorem 1
        instance backing each simulated round.
    """

    def __init__(
        self,
        simulator: HybridSimulator,
        *,
        nq_hint: Optional[int] = None,
        engine: str = "batch",
    ) -> None:
        self.simulator = simulator
        self.engine = engine
        self.nq = nq_hint if nq_hint is not None else neighborhood_quality(
            simulator.graph, simulator.n
        )
        self.rounds_simulated = 0

    def lower_bound(self) -> UniversalLowerBound:
        """Corollary 2.1's eOmega(NQ_n) lower bound, evaluated on this graph."""
        return bcc_simulation_lower_bound(self.simulator.graph)

    def simulate_round(self, broadcasts: Dict[Node, Any]) -> BCCRoundResult:
        """Simulate one BCC round in which each node broadcasts one value.

        ``broadcasts`` must contain exactly one value per node.  Returns every
        node's received message vector; the cost appears on the underlying
        simulator's metrics (one Theorem 1 instance with ``k = n`` tokens).
        """
        result = _run_bcc_round(
            self.simulator, broadcasts, nq=self.nq, engine=self.engine
        )
        self.rounds_simulated += 1
        return result

    @property
    def metrics(self) -> RoundMetrics:
        return self.simulator.metrics


@dataclasses.dataclass
class BCCBroadcastResult:
    """Outcome of a pipelined multi-round BCC simulation."""

    rounds: List[BCCRoundResult]
    nq: int
    metrics: RoundMetrics

    def all_rounds_complete(self) -> bool:
        return all(r.all_nodes_received_everything() for r in self.rounds)


class BCCBroadcast(BatchAlgorithm):
    """Corollary 2.1, pipelined: simulate a whole schedule of BCC rounds.

    Unlike repeated :meth:`BCCSimulator.simulate_round` calls — which rebuild
    the Lemma 3.5 clustering inside every Theorem 1 instance — this driver
    evaluates ``NQ_n`` once, builds the clustering once (charged once), and
    reuses both across all rounds of the schedule.  ``schedule`` is a sequence
    of per-round broadcast mappings, each containing exactly one value per
    node.
    """

    def __init__(
        self,
        simulator: HybridSimulator,
        schedule: Sequence[Dict[Node, Any]],
        *,
        nq_hint: Optional[int] = None,
        engine: str = "batch",
    ) -> None:
        super().__init__(simulator, engine=engine)
        if not schedule:
            raise ValueError("schedule must contain at least one BCC round")
        node_set = set(simulator.nodes)
        self.schedule = [dict(broadcasts) for broadcasts in schedule]
        for broadcasts in self.schedule:
            if set(broadcasts) != node_set:
                raise ValueError("broadcasts must contain exactly one value per node")
        self._nq_hint = nq_hint
        self.nq = 0
        self.clustering: Optional[Clustering] = None
        self._results: List[BCCRoundResult] = []

    def phases(self):
        rounds = tuple(
            (f"bcc-round-{i}", self._make_round_phase(i))
            for i in range(len(self.schedule))
        )
        return (("parameters", self._phase_parameters),) + rounds

    def _phase_parameters(self) -> None:
        sim = self.simulator
        self._results = []  # a re-run recomputes the schedule, not appends to it
        nq = self._nq_hint
        if nq is None:
            nq = neighborhood_quality(sim.graph, sim.n)
        self.nq = max(1, nq)
        self.clustering = distributed_nq_clustering(sim, sim.n, nq=self.nq)

    def _make_round_phase(self, position: int):
        def _run() -> None:
            self._results.append(
                _run_bcc_round(
                    self.simulator,
                    self.schedule[position],
                    nq=self.nq,
                    clustering=self.clustering,
                    engine=self.engine,
                )
            )

        return _run

    def finish(self) -> BCCBroadcastResult:
        return BCCBroadcastResult(
            rounds=self._results, nq=self.nq, metrics=self.simulator.metrics
        )
