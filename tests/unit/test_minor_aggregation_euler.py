"""Unit tests for the Minor-Aggregation model simulation (Lemma 8.2) and the
Eulerian-orientation oracle (Lemmas 8.5, 8.6)."""

import networkx as nx
import pytest

from repro.core.euler import (
    EulerOracle,
    eulerian_orientation,
    forests_decomposition,
    is_eulerian,
    verify_orientation_balanced,
)
from repro.core.minor_aggregation import MinorAggregation
from repro.graphs.generators import cycle_graph, grid_graph, path_graph, complete_graph
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator


class TestMinorAggregation:
    def _engine(self, graph):
        sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=0)
        return MinorAggregation(sim), sim

    def test_no_contraction_gives_singleton_supernodes(self):
        engine, _ = self._engine(grid_graph(3, 2))
        result = engine.run_round(
            contract=lambda u, v: False,
            node_values={v: 1 for v in engine.graph.nodes},
            consensus_op=lambda a, b: a + b,
            edge_proposal=lambda e, ya, yb: (yb, ya),
            aggregate_op=lambda a, b: a + b,
        )
        assert len(result.supernodes) == engine.graph.number_of_nodes()
        assert all(value == 1 for value in result.consensus.values())

    def test_full_contraction_gives_one_supernode(self):
        engine, _ = self._engine(grid_graph(3, 2))
        result = engine.run_round(
            contract=lambda u, v: True,
            node_values={v: 1 for v in engine.graph.nodes},
            consensus_op=lambda a, b: a + b,
            edge_proposal=lambda e, ya, yb: (None, None),
            aggregate_op=lambda a, b: a + b,
        )
        assert len(result.supernodes) == 1
        root_value = result.consensus[0]
        assert root_value == engine.graph.number_of_nodes()
        # No inter-supernode edges, so no aggregates.
        assert result.aggregates == {}

    def test_partial_contraction_consensus_per_component(self):
        # Contract the path 0-1-2-3-4-5 into {0,1,2} and {3,4,5}.
        engine, _ = self._engine(path_graph(6))
        result = engine.run_round(
            contract=lambda u, v: max(u, v) <= 2 or min(u, v) >= 3,
            node_values={v: v for v in range(6)},
            consensus_op=lambda a, b: a + b,
            edge_proposal=lambda e, ya, yb: (yb, ya),
            aggregate_op=lambda a, b: a + b,
        )
        assert len(result.supernodes) == 2
        assert sorted(result.consensus.values()) == [0 + 1 + 2, 3 + 4 + 5]
        # Each supernode learns the other's consensus through the single
        # connecting edge {2, 3}.
        values = {result.consensus_at(0), result.aggregate_at(0)}
        assert values == {3, 12}

    def test_aggregation_counts_incident_edges(self):
        # Star: contract nothing, each edge proposes 1 to both endpoints; the
        # hub must aggregate degree-many proposals.
        engine, _ = self._engine(complete_graph(5))
        result = engine.run_round(
            contract=lambda u, v: False,
            node_values={v: 0 for v in engine.graph.nodes},
            consensus_op=lambda a, b: a + b,
            edge_proposal=lambda e, ya, yb: (1, 1),
            aggregate_op=lambda a, b: a + b,
        )
        for node in engine.graph.nodes:
            assert result.aggregate_at(node) == 4

    def test_rounds_charge_accumulates(self):
        engine, sim = self._engine(grid_graph(3, 2))
        for _ in range(3):
            engine.run_round(
                contract=lambda u, v: False,
                node_values={v: 1 for v in engine.graph.nodes},
                consensus_op=lambda a, b: a + b,
                edge_proposal=lambda e, ya, yb: (None, None),
                aggregate_op=lambda a, b: a + b,
            )
        assert engine.rounds_executed == 3
        assert sim.metrics.charged_rounds > 0


class TestEulerianOrientation:
    def test_is_eulerian(self):
        assert is_eulerian(cycle_graph(6))
        assert not is_eulerian(path_graph(4))

    def test_cycle_orientation_balanced(self):
        g = cycle_graph(8)
        orientation = eulerian_orientation(g)
        assert verify_orientation_balanced(g, orientation)

    def test_torus_like_even_graph(self):
        # The complete graph K5 is 4-regular, hence Eulerian.
        g = complete_graph(5)
        orientation = eulerian_orientation(g)
        assert verify_orientation_balanced(g, orientation)

    def test_two_disjoint_cycles(self):
        g = nx.Graph()
        nx.add_cycle(g, [0, 1, 2, 3])
        nx.add_cycle(g, [10, 11, 12])
        orientation = eulerian_orientation(g)
        assert verify_orientation_balanced(g, orientation)

    def test_multigraph_supported(self):
        g = nx.MultiGraph()
        g.add_edge(0, 1)
        g.add_edge(0, 1)
        orientation = eulerian_orientation(g)
        assert len(orientation) == 2
        out_deg = sum(1 for u, v in orientation if u == 0)
        assert out_deg == 1

    def test_odd_degree_rejected(self):
        with pytest.raises(ValueError):
            eulerian_orientation(path_graph(3))

    def test_verify_rejects_incomplete_orientation(self):
        g = cycle_graph(4)
        orientation = eulerian_orientation(g)[:-1]
        assert not verify_orientation_balanced(g, orientation)

    def test_verify_rejects_unbalanced_orientation(self):
        g = cycle_graph(4)
        # Orient all edges toward node 0's neighbor order: definitely unbalanced.
        bad = [(0, 1), (2, 1), (2, 3), (0, 3)]
        assert not verify_orientation_balanced(g, bad)


class TestForestsDecomposition:
    def test_union_covers_all_edges(self):
        g = grid_graph(4, 2)
        forests = forests_decomposition(g, 2)
        covered = {frozenset(edge) for forest in forests for edge in forest}
        assert covered == {frozenset(edge) for edge in g.edges}

    def test_each_part_is_a_forest(self):
        g = grid_graph(4, 2)
        forests = forests_decomposition(g, 2)
        for forest_edges in forests:
            forest = nx.Graph()
            forest.add_nodes_from(g.nodes)
            forest.add_edges_from(forest_edges)
            assert nx.is_forest(forest)

    def test_forest_count_bounded_for_planar_graph(self):
        # Grids have arboricity <= 2, so O(arboricity) forests suffice.
        g = grid_graph(5, 2)
        forests = forests_decomposition(g, 2)
        assert len(forests) <= 4

    def test_invalid_bound(self):
        with pytest.raises(ValueError):
            forests_decomposition(path_graph(4), 0)


class TestEulerOracle:
    def test_oracle_orients_and_charges(self):
        sim = HybridSimulator(grid_graph(4, 2), ModelConfig.hybrid0(), seed=0)
        oracle = EulerOracle(sim)
        subgraph = cycle_graph(6)
        orientation = oracle.orient(subgraph)
        assert verify_orientation_balanced(subgraph, orientation)
        assert oracle.calls == 1
        assert sim.metrics.charged_rounds > 0
