"""Sharded multi-core round scheduling with a deterministic merge.

The single-process two-tier scheduler (:func:`repro.simulator.engine.
plan_token_rounds`) is exact but serial: every congested exchange plans its
whole token plane on one core.  This module partitions a plane into
**node-disjoint** position buckets, plans each bucket independently — on a
persistent ``multiprocessing`` pool over shared-memory NumPy columns when
available, sequentially in-process otherwise — and merges the per-bucket
schedules back into one schedule that is **token-for-token identical** to the
single-process reference (and hence to ``_reference_shard_transfers``, the
repo's standing oracle).

Why per-bucket planning is exact
--------------------------------
The greedy-FIFO admits a token iff its sender's sent-counter and its
receiver's received-counter still fit the budget.  Sent- and received-
counters are *separate* per node, so the conflict structure is the bipartite
graph with one vertex per sender role and one per receiver role and one edge
per distinct (sender, receiver) pair.  Partitioning tokens by the connected
components of that graph (union-find over the distinct pairs) means no two
buckets ever touch the same counter: the greedy's admission decision for a
token depends only on tokens of its own component.

Rounds also stay aligned across buckets: at the start of every round all
counters are zero, so the first pending token of every component is always
admitted — **provided no token is individually oversized** (``words +
tag_words > budget``).  Each component therefore admits at least one token
per round until it drains, which makes "bucket-local round r" equal "global
round r restricted to the bucket".  Because the greedy preserves submission
order, every global shard lists its tokens in ascending plane position — so
merging the buckets' round-``r`` shards in ascending position order
reconstructs the global shard exactly.  Workloads containing *any*
individually-oversized token fall back to the single-process planner (the
forced-oversized branch is a global condition that can couple components);
the oversized property tests pass through that fallback unchanged.

Determinism
-----------
Every choice is a pure function of the plane and the worker count: components
are keyed by their smallest bipartite vertex, ordered by (descending token
count, ascending first position), and assigned to the least-loaded bucket
(ties to the lowest bucket index) via a heap.  Worker processes only compute
— the merge order is fixed by plane positions, so scheduling is bit-identical
whether buckets ran in-process, on 2 workers, or on 7.

Process execution
-----------------
The process path lays the (senders, receivers, words-with-tag, positions)
columns into one shared-memory ``int64`` block per plan call; workers attach
read-only, plan their bucket with the engine's own ``_plan_rounds_numpy``,
and return position arrays.  The pool is persistent (created lazily, reused
across plan calls, ``close()``/context-manager to dispose) and any pool
failure degrades permanently to in-process planning for the planner's
lifetime — never to a different schedule.  Under ``REPRO_NO_NUMPY=1`` (or a
monkeypatched ``_accel.np``) the whole path is sequential pure Python over
the same partition, preserving identity on the fallback backend.

``REPRO_SHARD_WORKERS=k`` (k >= 2) installs a planner process-wide for every
exchange via :func:`planner_from_env` (resolved lazily by
:func:`repro.simulator.engine.installed_planner`).

Shared worker-pool service
--------------------------
Planners do not own pools.  :class:`WorkerPoolService` holds the one
persistent process pool of the whole simulator process; planners (and the
delivery engine, below) acquire refcounted leases from
:func:`shared_pool_service` and release them on ``close()`` or garbage
collection, so re-installing planners never stacks up idle pools, and an
``atexit`` hook disposes whatever is still alive at interpreter exit.  The
shared-memory blocks themselves stay per-call, parent-owned and unlinked in
a ``finally`` — a leaked planner can never leak a block.

Sharded delivery
----------------
:class:`ShardedDelivery` extends the same machinery from planning to
``advance_round``'s delivery stages: fault keep-masks over the plane
columns, grouped per-node capacity reductions, the round capacity sweep,
and the sparse-regime learning-key filter.  Unlike scheduling — which needs
the component partition — every delivery stage is either token-elementwise
or an exact reduce-then-merge (integer word weights summed in float64 are
exact below 2^53), so ascending contiguous spans partition the work and the
span-order merge reproduces the serial arrays **bit-identically** for every
worker count, with or without the process pool (see DESIGN.md, "Sharded
delivery").
"""

from __future__ import annotations

import atexit
import heapq
import weakref
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.simulator import _accel
from repro.simulator.config import resolve_shard_workers

__all__ = [
    "ShardedPlanner",
    "ShardedDelivery",
    "WorkerPoolService",
    "planner_from_env",
    "shared_pool_service",
    "token_components",
    "assign_buckets",
    "merge_round_schedules",
]

#: Pool dispatch failures that demote a planner to in-process execution.
_POOL_ERRORS = (OSError, ImportError, ValueError)


# ----------------------------------------------------------------------
# The shared worker-pool service
# ----------------------------------------------------------------------
class WorkerPoolService:
    """One persistent process pool, leased to planners and delivery engines.

    The pool is created lazily on the first dispatch (``fork`` start method
    when available) and disposed when the last lease is released — or at
    interpreter exit via the ``atexit`` hook registered by
    :func:`shared_pool_service`.  ``close()`` is idempotent and never breaks
    the service: a later dispatch simply re-creates the pool.  The service
    keeps no per-call state; shared-memory blocks are owned by the caller.
    """

    def __init__(self, workers: int) -> None:
        if workers < 1:
            raise ValueError("workers must be at least 1")
        self.workers = int(workers)
        self._pool: Optional[Any] = None
        self._refs = 0

    # -- leases --------------------------------------------------------
    @property
    def refs(self) -> int:
        return self._refs

    @property
    def pool_alive(self) -> bool:
        return self._pool is not None

    def acquire(self) -> "WorkerPoolService":
        self._refs += 1
        return self

    def release(self) -> None:
        """Drop one lease; the last release disposes the pool (the service
        object itself stays reusable)."""
        self._refs -= 1
        if self._refs <= 0:
            self._refs = 0
            self.close()

    def grow(self, workers: int) -> None:
        """Raise the pool size (disposing a smaller live pool, if any)."""
        if workers > self.workers:
            self.workers = int(workers)
            self.close()

    # -- lifecycle -----------------------------------------------------
    def close(self) -> None:
        """Dispose of the pool processes (idempotent)."""
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.terminate()
            pool.join()

    # -- dispatch ------------------------------------------------------
    def _ensure_pool(self):
        pool = self._pool
        if pool is None:
            import multiprocessing

            methods = multiprocessing.get_all_start_methods()
            method = "fork" if "fork" in methods else None
            context = multiprocessing.get_context(method)
            # Forked workers inherit the parent's resource tracker: their
            # block attachments must NOT be unregistered child-side (the
            # parent's unlink dedupes the one shared cache entry).  Spawned
            # workers have private trackers and must unregister, or each
            # worker exit would try to unlink the parent-owned block.
            pool = self._pool = context.Pool(
                processes=self.workers,
                initializer=_set_tracker_shared,
                initargs=(method == "fork",),
            )
        return pool

    def apply_async(self, func, args):
        return self._ensure_pool().apply_async(func, args)


_shared_service: Optional[WorkerPoolService] = None
_atexit_registered = False


def _shutdown_shared_service() -> None:  # pragma: no cover - exit hook
    service = _shared_service
    if service is not None:
        service.close()


def shared_pool_service(workers: int) -> WorkerPoolService:
    """Acquire a lease on the process-wide pool service (creating or growing
    it as needed).  Callers must :meth:`~WorkerPoolService.release` the
    returned lease exactly once."""
    global _shared_service, _atexit_registered
    service = _shared_service
    if service is None:
        service = _shared_service = WorkerPoolService(workers)
        if not _atexit_registered:
            atexit.register(_shutdown_shared_service)
            _atexit_registered = True
    else:
        service.grow(workers)
    return service.acquire()


class _ServiceLease:
    """A release-once handle on a :class:`WorkerPoolService` reference.

    Both an explicit ``close()`` and the holder's ``weakref.finalize`` route
    through :meth:`release`, which forwards to the service exactly once —
    so close-then-GC never double-releases the refcount.
    """

    __slots__ = ("service",)

    def __init__(self, service: WorkerPoolService) -> None:
        self.service: Optional[WorkerPoolService] = service

    def release(self) -> None:
        service, self.service = self.service, None
        if service is not None:
            service.release()


# ----------------------------------------------------------------------
# Partition: bipartite components -> deterministic buckets
# ----------------------------------------------------------------------
def token_components(senders, receivers) -> List[int]:
    """Component label per token (a plain list; labels are root vertex keys).

    Union-find over the distinct (sender, receiver) pairs of the bipartite
    role graph: sender node ``s`` is vertex ``2 * s``, receiver node ``r`` is
    vertex ``2 * r + 1`` (a node's sender and receiver counters are
    independent, so the two roles must not be conflated).  Tokens sharing a
    component share at least one greedy counter transitively; tokens in
    different components provably never interact.
    """
    np = _accel.np
    if np is not None and isinstance(senders, np.ndarray):
        span = int(max(int(senders.max()), int(receivers.max()))) + 1
        pair_keys = np.unique(senders * span + receivers)
        pair_list = [(int(key) // span, int(key) % span) for key in pair_keys]
        sender_column = senders.tolist()
    else:
        pair_list = sorted(set(zip(senders, receivers)))
        sender_column = senders
    parent: Dict[int, int] = {}

    def find(vertex: int) -> int:
        root = vertex
        while parent[root] != root:
            root = parent[root]
        while parent[vertex] != root:  # path compression
            parent[vertex], vertex = root, parent[vertex]
        return root

    for s, r in pair_list:
        a, b = 2 * s, 2 * r + 1
        if a not in parent:
            parent[a] = a
        if b not in parent:
            parent[b] = b
        ra, rb = find(a), find(b)
        if ra != rb:
            if ra < rb:  # smallest vertex key wins: deterministic labels
                parent[rb] = ra
            else:
                parent[ra] = rb
    return [find(2 * s) for s in sender_column]


def assign_buckets(labels: Sequence[int], workers: int) -> List[List[int]]:
    """Group component labels into at most ``workers`` position buckets.

    Components are ordered by (descending size, ascending first position) and
    greedily placed on the least-loaded bucket, ties to the lowest bucket
    index — the classic LPT balance, made deterministic.  Each bucket's
    positions are returned in ascending order (the order the per-bucket
    planners and the merge both rely on).  Buckets that received nothing are
    dropped.
    """
    positions_by_label: Dict[int, List[int]] = {}
    for position, label in enumerate(labels):
        positions_by_label.setdefault(label, []).append(position)
    components = sorted(
        positions_by_label.values(), key=lambda ps: (-len(ps), ps[0])
    )
    heap = [(0, index) for index in range(max(1, workers))]
    buckets: List[List[int]] = [[] for _ in range(max(1, workers))]
    for positions in components:
        load, index = heapq.heappop(heap)
        buckets[index].extend(positions)
        heapq.heappush(heap, (load + len(positions), index))
    return [sorted(bucket) for bucket in buckets if bucket]


def merge_round_schedules(schedules: List[List[Any]]) -> List[Any]:
    """Merge per-bucket schedules round-by-round in ascending position order.

    ``schedules[b][r]`` holds bucket ``b``'s global plane positions admitted
    in round ``r``.  Because buckets are node-disjoint and gap-free (every
    bucket admits at least one token per round until it drains), the global
    round-``r`` shard is exactly the ascending-position union of the buckets'
    round-``r`` shards.
    """
    np = _accel.np
    depth = max((len(schedule) for schedule in schedules), default=0)
    merged: List[Any] = []
    for r in range(depth):
        chunks = [
            schedule[r]
            for schedule in schedules
            if r < len(schedule) and len(schedule[r])
        ]
        if np is not None and chunks and isinstance(chunks[0], np.ndarray):
            shard = chunks[0] if len(chunks) == 1 else np.concatenate(chunks)
            merged.append(np.sort(shard))
        else:
            flat: List[int] = []
            for chunk in chunks:
                flat.extend(chunk)
            flat.sort()
            merged.append(flat)
    return merged


# ----------------------------------------------------------------------
# Worker-side tasks (top level: picklable by reference)
# ----------------------------------------------------------------------
#: Set by the pool initializer in workers: ``True`` when this worker shares
#: the parent's resource tracker (fork start method).
_tracker_shared = False


def _set_tracker_shared(flag: bool) -> None:
    global _tracker_shared
    _tracker_shared = bool(flag)


def _attach_block(shm_name: str):
    """Attach a parent-owned shared-memory block (workers never unlink)."""
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(name=shm_name)
    if not _tracker_shared:
        try:
            # A private (spawn-style) resource tracker would unlink the
            # parent-owned block when this worker exits; drop the
            # registration the attach just made.
            from multiprocessing import resource_tracker

            resource_tracker.unregister(shm._name, "shared_memory")
        except Exception:
            pass
    return shm


def _plan_bucket_worker(
    shm_name: str, total: int, offset: int, length: int, budget: int
):
    """Plan one bucket from the shared-memory columns (runs in a worker).

    The block layout is ``[senders | receivers | wt | positions...]`` with
    the three column segments ``total`` long and this bucket's positions at
    ``[offset, offset + length)``.  Returned shards are position arrays
    copied out of the (parent-owned, parent-unlinked) block.
    """
    from repro.simulator.engine import _plan_rounds_numpy

    np = _accel.np
    shm = _attach_block(shm_name)
    try:
        block = np.ndarray((shm.size // 8,), dtype=np.int64, buffer=shm.buf)
        positions = block[offset : offset + length].copy()
        senders = block[0:total][positions]
        receivers = block[total : 2 * total][positions]
        wt = block[2 * total : 3 * total][positions]
        del block
        shards = _plan_rounds_numpy(np, senders, receivers, wt, budget)
        return [positions[shard] for shard in shards]
    finally:
        shm.close()


def isin_sorted(np, values, table):
    """Vectorised membership of ``values`` in a **sorted** int64 ``table``."""
    if not len(table):
        return np.zeros(len(values), dtype=bool)
    slots = np.searchsorted(table, values)
    slots[slots == len(table)] = 0
    return table[slots] == values


def span_keep_mask(np, senders, receivers, crashed, failed, n: int):
    """Crash/edge keep-mask over one span of plane tokens.

    ``crashed`` / ``failed`` are sorted int64 arrays (crashed node indices,
    directed ``u * n + v`` failed-edge keys).  Pure elementwise — the mask of
    a span equals the span of the whole-column mask, so any contiguous
    partition concatenates back bit-identically.  Drop draws are *not* taken
    here: the RNG consumes one draw per crash/edge survivor in ascending
    token order, which the caller applies serially after the merge.
    """
    keep = np.ones(len(senders), dtype=bool)
    if len(crashed):
        keep &= ~isin_sorted(np, senders, crashed)
        keep &= ~isin_sorted(np, receivers, crashed)
    if len(failed):
        keep &= ~isin_sorted(np, senders * n + receivers, failed)
    return keep


def _keep_mask_worker(shm_name: str, m: int, c: int, f: int, lo: int, hi: int, n: int):
    """Keep-mask for the token span ``[lo, hi)`` (runs in a worker).

    Block layout: ``[senders(m) | receivers(m) | crashed(c) | failed(f)]``.
    """
    np = _accel.np
    shm = _attach_block(shm_name)
    try:
        block = np.ndarray((2 * m + c + f,), dtype=np.int64, buffer=shm.buf)
        return span_keep_mask(
            np,
            block[lo:hi],
            block[m + lo : m + hi],
            block[2 * m : 2 * m + c],
            block[2 * m + c :],
            n,
        )
    finally:
        shm.close()


def span_counters(np, senders, receivers, wt):
    """Grouped per-node word sums of one span, compressed.

    Returns ``(sent_nodes, sent_sums, recv_nodes, recv_sums)`` — the distinct
    node indices of each role with their word totals.  Scatter-adding the
    spans into the round's counter arrays in any order equals one whole-shard
    ``bincount``: word weights are integers, so every partial sum is an
    exactly-representable float64 and addition is exact.
    """
    sent_nodes, sent_inverse = np.unique(senders, return_inverse=True)
    sent_sums = np.bincount(sent_inverse, weights=wt)
    recv_nodes, recv_inverse = np.unique(receivers, return_inverse=True)
    recv_sums = np.bincount(recv_inverse, weights=wt)
    return sent_nodes, sent_sums, recv_nodes, recv_sums


def _counter_span_worker(shm_name: str, m: int, lo: int, hi: int):
    """Grouped counters for the token span ``[lo, hi)`` (runs in a worker).

    Block layout: ``[senders(m) | receivers(m) | wt(m)]``.
    """
    np = _accel.np
    shm = _attach_block(shm_name)
    try:
        block = np.ndarray((3 * m,), dtype=np.int64, buffer=shm.buf)
        return span_counters(
            np, block[lo:hi], block[m + lo : m + hi], block[2 * m + lo : 2 * m + hi]
        )
    finally:
        shm.close()


def _sweep_range_worker(shm_name: str, n: int, lo: int, hi: int, budget: int):
    """Capacity-sweep summary of the node range ``[lo, hi)`` (in a worker).

    Block layout: ``[sent(n) | recv(n)]`` as float64.  Returns, per
    direction, ``(range_max, over_budget_count, first_over_index or -1)`` —
    everything the serial sweep derives from the whole arrays, merged by
    max / sum / min respectively.
    """
    np = _accel.np
    shm = _attach_block(shm_name)
    try:
        block = np.ndarray((2 * n,), dtype=np.float64, buffer=shm.buf)
        summary = []
        for base in (0, n):
            span = block[base + lo : base + hi]
            over = np.flatnonzero(span > budget)
            summary.append(
                (
                    float(span.max()) if span.size else 0.0,
                    int(over.size),
                    int(over[0]) + lo if over.size else -1,
                )
            )
        return summary
    finally:
        shm.close()


def filter_fresh_keys(np, keys, levels):
    """Order-preserving filter of ``keys`` against sorted memo ``levels``.

    The span-parallel twin of ``_PairMemo.unknown``: filtering a span equals
    the span of the whole-column filter, so concatenating span results in
    ascending span order reproduces the serial candidate stream exactly.
    """
    filtered = False
    for level in levels:
        if len(level) and len(keys):
            slots = np.searchsorted(level, keys)
            slots[slots == len(level)] = 0
            keys = keys[level[slots] != keys]
            filtered = True
    return keys if filtered else np.array(keys, dtype=np.int64)


def _fresh_keys_worker(shm_name: str, k: int, l1: int, l2: int, lo: int, hi: int):
    """Memo-filter the key span ``[lo, hi)`` (runs in a worker).

    Block layout: ``[keys(k) | level1(l1) | level2(l2)]``.
    """
    np = _accel.np
    shm = _attach_block(shm_name)
    try:
        block = np.ndarray((k + l1 + l2,), dtype=np.int64, buffer=shm.buf)
        return filter_fresh_keys(
            np,
            block[lo:hi],
            (block[k : k + l1], block[k + l1 : k + l1 + l2]),
        )
    finally:
        shm.close()


# ----------------------------------------------------------------------
# The planner
# ----------------------------------------------------------------------
class ShardedPlanner:
    """Plan token planes over node-disjoint buckets, optionally on a pool.

    Drop-in for :func:`~repro.simulator.engine.plan_token_rounds` — install
    process-wide with :func:`repro.simulator.engine.install_planner` (or
    ``REPRO_SHARD_WORKERS``) or call :meth:`plan` directly.  Schedules are
    bit-identical to the single-process planner for every worker count (see
    the module docstring for the argument and
    ``tests/properties/test_sharded_engine.py`` for the pins).

    Parameters
    ----------
    workers: bucket / pool size; ``None`` reads ``REPRO_SHARD_WORKERS``.
    use_processes: ``True`` forces the pool for every sharded plan, ``False``
        keeps all planning in-process (the property grids use this), and
        ``None`` (default) uses the pool only for workloads of at least
        ``process_min_tokens`` tokens — below that the fork/IPC overhead
        dwarfs the planning itself.
    min_tokens: workloads smaller than this skip partitioning entirely and
        delegate to the single-process planner.
    pool_service: an explicit :class:`WorkerPoolService` to lease from;
        ``None`` (default) leases the process-wide shared service on first
        pool use.  The planner never owns the pool — ``close()`` (or garbage
        collection) releases the lease, and the pool survives as long as any
        other planner or delivery engine still holds one.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        *,
        use_processes: Optional[bool] = None,
        min_tokens: int = 256,
        process_min_tokens: int = 4096,
        pool_service: Optional[WorkerPoolService] = None,
    ) -> None:
        self.workers = resolve_shard_workers() if workers is None else int(workers)
        if self.workers < 1:
            raise ValueError("workers must be at least 1")
        self.use_processes = use_processes
        self.min_tokens = int(min_tokens)
        self.process_min_tokens = int(process_min_tokens)
        self._pool_service = pool_service
        self._lease: Optional[_ServiceLease] = None
        self._finalizer = None
        self._pool_broken = False
        self._delivery: Optional["ShardedDelivery"] = None
        #: Introspection counters: plans that went through the partition
        #: machinery, and the subset executed on the process pool.
        self.sharded_plans = 0
        self.process_plans = 0

    # -- lifecycle -----------------------------------------------------
    def _service(self) -> WorkerPoolService:
        """The leased pool service (acquired lazily, released by close/GC)."""
        lease = self._lease
        if lease is None:
            if self._pool_service is not None:
                service = self._pool_service.acquire()
            else:
                service = shared_pool_service(self.workers)
            lease = self._lease = _ServiceLease(service)
            # GC of an un-closed planner must release its lease, or a
            # re-install over a live pool would pin the pool forever.
            self._finalizer = weakref.finalize(self, lease.release)
        return lease.service

    def close(self) -> None:
        """Release the worker-pool lease (idempotent; the planner stays
        usable — in-process, or re-leasing the pool on the next plan)."""
        lease, self._lease = self._lease, None
        self._finalizer = None
        if lease is not None:
            lease.release()

    def __enter__(self) -> "ShardedPlanner":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def delivery(self) -> "ShardedDelivery":
        """The delivery-stage engine riding this planner's pool lease."""
        engine = self._delivery
        if engine is None:
            engine = self._delivery = ShardedDelivery(self)
        return engine

    # -- planning ------------------------------------------------------
    def plan(self, plane, budget: int, tag_words: int = 0) -> List[Any]:
        """Schedule ``plane`` into per-round position shards (see
        :func:`~repro.simulator.engine.plan_token_rounds` for the contract)."""
        from repro.simulator.engine import plan_token_rounds

        m = len(plane)
        if m == 0:
            return []
        if self.workers <= 1 or m < self.min_tokens:
            return plan_token_rounds(plane, budget, tag_words)
        np = _accel.np
        senders = plane.senders
        if np is not None and isinstance(senders, np.ndarray):
            return self._plan_numpy(np, plane, budget, tag_words)
        return self._plan_python(plane, budget, tag_words)

    def _plan_numpy(self, np, plane, budget: int, tag_words: int) -> List[Any]:
        from repro.simulator.engine import _plan_rounds_numpy, plan_token_rounds

        senders = plane.senders
        receivers = plane.receivers
        wt = plane.words + tag_words if tag_words else plane.words
        if int(wt.max()) > budget:
            # Oversized tokens couple components through the global
            # forced-oversized branch: fall back rather than approximate.
            return plan_token_rounds(plane, budget, tag_words)
        sent = np.bincount(senders, weights=wt, minlength=1)
        if sent.max() <= budget:
            recv = np.bincount(receivers, weights=wt, minlength=1)
            if recv.max() <= budget:
                # Uncongested: one shard, nothing to shard or merge.
                return [np.arange(senders.size, dtype=np.int64)]
        labels = token_components(senders, receivers)
        buckets = assign_buckets(labels, self.workers)
        if len(buckets) <= 1:
            # One connected component: sharding cannot help; stay serial.
            return plan_token_rounds(plane, budget, tag_words)
        self.sharded_plans += 1
        position_arrays = [
            np.asarray(bucket, dtype=np.int64) for bucket in buckets
        ]
        schedules = None
        if self._want_processes(senders.size):
            try:
                schedules = self._plan_buckets_pool(
                    np, senders, receivers, wt, position_arrays, budget
                )
            except _POOL_ERRORS:
                self._pool_broken = True
                self.close()
        if schedules is None:
            schedules = [
                [
                    positions[shard]
                    for shard in _plan_rounds_numpy(
                        np,
                        senders[positions],
                        receivers[positions],
                        wt[positions],
                        budget,
                    )
                ]
                for positions in position_arrays
            ]
        return merge_round_schedules(schedules)

    def _plan_python(self, plane, budget: int, tag_words: int) -> List[Any]:
        from repro.simulator.engine import _plan_rounds_python, plan_token_rounds

        senders = plane.senders
        receivers = plane.receivers
        words = plane.words
        if hasattr(senders, "tolist"):  # numpy columns, gate forced off
            senders = senders.tolist()
            receivers = receivers.tolist()
            words = words.tolist()
        wt = [w + tag_words for w in words] if tag_words else words
        if max(wt) > budget:
            return plan_token_rounds(plane, budget, tag_words)
        labels = token_components(senders, receivers)
        buckets = assign_buckets(labels, self.workers)
        if len(buckets) <= 1:
            return plan_token_rounds(plane, budget, tag_words)
        self.sharded_plans += 1
        schedules = []
        for positions in buckets:
            shards = _plan_rounds_python(
                [senders[p] for p in positions],
                [receivers[p] for p in positions],
                [wt[p] for p in positions],
                budget,
            )
            schedules.append(
                [[positions[i] for i in shard] for shard in shards]
            )
        return merge_round_schedules(schedules)

    # -- process pool --------------------------------------------------
    def _want_processes(self, total: int) -> bool:
        if self._pool_broken or self.use_processes is False:
            return False
        if self.use_processes:
            return True
        return total >= self.process_min_tokens

    def _plan_buckets_pool(
        self, np, senders, receivers, wt, position_arrays, budget: int
    ) -> List[List[Any]]:
        from multiprocessing import shared_memory

        service = self._service()
        total = int(senders.size)
        positions_total = sum(int(p.size) for p in position_arrays)
        shm = shared_memory.SharedMemory(
            create=True, size=8 * (3 * total + positions_total)
        )
        try:
            block = np.ndarray(
                (3 * total + positions_total,), dtype=np.int64, buffer=shm.buf
            )
            block[0:total] = senders
            block[total : 2 * total] = receivers
            block[2 * total : 3 * total] = wt.astype(np.int64, copy=False)
            offset = 3 * total
            tasks = []
            for positions in position_arrays:
                block[offset : offset + positions.size] = positions
                tasks.append(
                    service.apply_async(
                        _plan_bucket_worker,
                        (shm.name, total, offset, int(positions.size), budget),
                    )
                )
                offset += positions.size
            schedules = [task.get() for task in tasks]
            del block
        finally:
            shm.close()
            try:
                shm.unlink()
            except (FileNotFoundError, OSError):  # pragma: no cover
                pass
        self.process_plans += 1
        return schedules


class ShardedDelivery:
    """Span-parallel execution of ``advance_round``'s delivery stages.

    Rides the owning :class:`ShardedPlanner`'s pool lease and degrade state:
    a pool failure in either layer permanently degrades both to in-process
    execution.  Unlike planning — where components matter because the greedy
    counters couple tokens — every delivery stage is either token-elementwise
    (fault masks, memo filtering) or an exact reduction of integer word
    weights (per-node counters, capacity sweep), so *any* contiguous
    partition merged in ascending span order is bit-identical to the serial
    whole-array computation.  The in-process fallback of each stage therefore
    IS the serial twin — identity is structural, not probabilistic (see
    DESIGN.md "Sharded delivery" and ``tests/properties/test_sharded_delivery.py``).

    Thresholds mirror the planner's: stages engage the pool only when the
    operand is at least ``min_tokens`` long *and* the planner's process
    policy wants the pool (``use_processes=True`` forces it, ``None`` needs
    ``process_min_tokens``; delivery's default is higher than planning's
    because one shared-memory round-trip must beat a single vectorised
    sweep, not a greedy planning loop).  The capacity sweep additionally
    needs ``sweep_min_nodes`` nodes: below that the two counter arrays are
    cheaper to scan serially than to copy into shared memory.
    """

    def __init__(
        self,
        planner: ShardedPlanner,
        *,
        min_tokens: int = 256,
        process_min_tokens: int = 1 << 16,
        sweep_min_nodes: int = 1 << 22,
    ) -> None:
        self.planner = planner
        self.min_tokens = int(min_tokens)
        self.process_min_tokens = int(process_min_tokens)
        self.sweep_min_nodes = int(sweep_min_nodes)
        #: Introspection counter: stages executed on the worker pool.
        self.pool_stages = 0

    @property
    def workers(self) -> int:
        return self.planner.workers

    def _bounds(self, total: int) -> List[int]:
        """Deterministic contiguous span boundaries (ascending)."""
        spans = min(self.workers, total)
        return [total * i // spans for i in range(spans + 1)]

    def _want_pool(self, total: int) -> bool:
        planner = self.planner
        if (
            self.workers <= 1
            or total < self.min_tokens
            or planner._pool_broken
            or planner.use_processes is False
        ):
            return False
        if planner.use_processes:
            return True
        return total >= self.process_min_tokens

    def _pool_spans(self, np, block_values, dtype, worker, task_args):
        """Run ``worker`` over one shared block, one task per span.

        ``block_values`` are concatenated into a fresh shared-memory block
        (parent-owned: created and unlinked here, workers only attach);
        ``task_args(shm_name)`` yields each task's argument tuple in
        ascending span order, which is also the order results are returned
        in.  Returns ``None`` when the pool path failed — the planner (and
        with it this engine) degrades permanently to in-process execution.
        """
        planner = self.planner
        try:
            from multiprocessing import shared_memory

            service = planner._service()
            size = sum(len(values) for values in block_values)
            shm = shared_memory.SharedMemory(
                create=True, size=max(1, dtype().itemsize * size)
            )
            try:
                block = np.ndarray((size,), dtype=dtype, buffer=shm.buf)
                offset = 0
                for values in block_values:
                    block[offset : offset + len(values)] = values
                    offset += len(values)
                tasks = [
                    service.apply_async(worker, args)
                    for args in task_args(shm.name)
                ]
                results = [task.get() for task in tasks]
                del block
            finally:
                shm.close()
                try:
                    shm.unlink()
                except (FileNotFoundError, OSError):  # pragma: no cover
                    pass
        except _POOL_ERRORS:
            planner._pool_broken = True
            planner.close()
            return None
        self.pool_stages += 1
        return results

    # -- stages --------------------------------------------------------
    def keep_mask(self, np, senders, receivers, crashed, failed, n: int):
        """Crash/edge keep-mask over a plane's token columns.

        ``crashed`` / ``failed`` are the fault state's sorted index/edge-key
        arrays.  Elementwise, so the span concatenation is bit-identical to
        the serial :func:`span_keep_mask` over the whole columns.
        """
        m = len(senders)
        if self._want_pool(m):
            bounds = self._bounds(m)
            crashed_len, failed_len = len(crashed), len(failed)
            parts = self._pool_spans(
                np,
                (senders, receivers, crashed, failed),
                np.int64,
                _keep_mask_worker,
                lambda name: [
                    (name, m, crashed_len, failed_len, lo, hi, n)
                    for lo, hi in zip(bounds, bounds[1:])
                ],
            )
            if parts is not None:
                return np.concatenate(parts)
        return span_keep_mask(np, senders, receivers, crashed, failed, n)

    def apply_counters(self, np, senders, receivers, wt, sent_arr, recv_arr) -> None:
        """Accumulate a shard's grouped per-node word sums into the round's
        counter arrays.

        Pool path: each span returns compressed ``(nodes, sums)`` pairs that
        the parent scatter-adds.  Word weights are integers, so every
        partial sum is an exactly-representable float64 and the result
        equals the serial whole-shard ``bincount`` bit for bit, in any
        span order.
        """
        m = len(senders)
        if self._want_pool(m):
            bounds = self._bounds(m)
            parts = self._pool_spans(
                np,
                (senders, receivers, wt),
                np.int64,
                _counter_span_worker,
                lambda name: [
                    (name, m, lo, hi) for lo, hi in zip(bounds, bounds[1:])
                ],
            )
            if parts is not None:
                for sent_nodes, sent_sums, recv_nodes, recv_sums in parts:
                    sent_arr[sent_nodes] += sent_sums
                    recv_arr[recv_nodes] += recv_sums
                return
        sent_arr += np.bincount(senders, weights=wt, minlength=len(sent_arr))
        recv_arr += np.bincount(receivers, weights=wt, minlength=len(recv_arr))

    def sweep(self, np, sent_arr, recv_arr, budget: int):
        """Pool-parallel capacity sweep of the round's counter arrays.

        Returns ``[(max, over_count, first_over), ...]`` for the sent and
        received directions (``first_over`` is ``-1`` when nothing exceeds
        ``budget``), merged from per-range summaries by max / sum / min —
        exactly what the serial sweep derives from the whole arrays.
        Returns ``None`` when not engaged; the caller sweeps serially.
        """
        n = len(sent_arr)
        if not self._want_pool(n):
            return None
        if self.planner.use_processes is not True and n < self.sweep_min_nodes:
            return None
        bounds = self._bounds(n)
        parts = self._pool_spans(
            np,
            (sent_arr, recv_arr),
            np.float64,
            _sweep_range_worker,
            lambda name: [
                (name, n, lo, hi, budget) for lo, hi in zip(bounds, bounds[1:])
            ],
        )
        if parts is None:
            return None
        merged = []
        for direction in (0, 1):
            ranges = [part[direction] for part in parts]
            merged.append(
                (
                    max(entry[0] for entry in ranges),
                    sum(entry[1] for entry in ranges),
                    min(
                        (entry[2] for entry in ranges if entry[2] >= 0),
                        default=-1,
                    ),
                )
            )
        return merged

    def fresh_keys(self, np, keys, levels):
        """Order-preserving pair-memo filter of a plane's packed pair keys.

        ``levels`` are the memo's sorted arrays (at most two).  Elementwise
        and order-preserving, so ascending-span concatenation equals the
        serial :func:`filter_fresh_keys` over the whole key column.
        """
        k = len(keys)
        if self._want_pool(k):
            levels = [level for level in levels if len(level)][:2]
            while len(levels) < 2:
                levels.append(keys[:0])
            bounds = self._bounds(k)
            level_sizes = (len(levels[0]), len(levels[1]))
            parts = self._pool_spans(
                np,
                (keys, levels[0], levels[1]),
                np.int64,
                _fresh_keys_worker,
                lambda name: [
                    (name, k, level_sizes[0], level_sizes[1], lo, hi)
                    for lo, hi in zip(bounds, bounds[1:])
                ],
            )
            if parts is not None:
                return np.concatenate(parts)
        return filter_fresh_keys(np, keys, levels)


def planner_from_env() -> Optional[ShardedPlanner]:
    """The process-wide default planner: a :class:`ShardedPlanner` when
    ``REPRO_SHARD_WORKERS`` asks for 2+ workers, else ``None`` (single-process
    planning).  Called lazily by
    :func:`repro.simulator.engine.installed_planner` on the first exchange."""
    workers = resolve_shard_workers()
    if workers <= 1:
        return None
    return ShardedPlanner(workers=workers)
