"""Property-based tests for the end-to-end algorithm guarantees: dissemination
completeness (Theorem 1), routing delivery (Theorem 3), SSSP / k-SSP / APSP
stretch (Theorems 5, 6, 13, 14) and hashing balance (Lemma 5.3)."""

import math
import random
from collections import Counter

import networkx as nx
from hypothesis import given, settings, strategies as st

from repro.baselines.centralized import exact_hop_apsp, max_stretch_of_table
from repro.core.dissemination import KDissemination
from repro.core.hashing import PairwiseHash
from repro.core.ksp import KSourceShortestPaths
from repro.core.routing import KLRouting, RoutingScenario
from repro.core.shortest_paths import UnweightedApproxAPSP
from repro.core.sssp import approx_sssp_distances, exact_sssp_distances
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator


@st.composite
def connected_graphs(draw, min_nodes=6, max_nodes=28):
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    parents = [draw(st.integers(min_value=0, max_value=i - 1)) for i in range(1, n)]
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for child, parent in enumerate(parents, start=1):
        graph.add_edge(child, parent)
    extra_edges = draw(st.integers(min_value=0, max_value=n // 2))
    for _ in range(extra_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            graph.add_edge(u, v)
    return graph


@st.composite
def weighted_connected_graphs(draw, min_nodes=6, max_nodes=24, max_weight=10):
    graph = draw(connected_graphs(min_nodes=min_nodes, max_nodes=max_nodes))
    for u, v in graph.edges:
        graph[u][v]["weight"] = draw(st.integers(min_value=1, max_value=max_weight))
    return graph


# ----------------------------------------------------------------------
# Theorem 1: dissemination completeness
# ----------------------------------------------------------------------
@settings(max_examples=15, deadline=None)
@given(connected_graphs(), st.integers(min_value=1, max_value=20), st.integers(min_value=0, max_value=10**6))
def test_dissemination_delivers_every_token(graph, k, seed):
    rng = random.Random(seed)
    nodes = sorted(graph.nodes)
    tokens = {}
    for index in range(k):
        tokens.setdefault(rng.choice(nodes), []).append(("tok", index))
    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    result = KDissemination(sim, tokens).run()
    assert result.all_nodes_know_all_tokens()
    assert sim.metrics.capacity_violations == 0


# ----------------------------------------------------------------------
# Theorem 3: routing delivery
# ----------------------------------------------------------------------
@settings(max_examples=10, deadline=None)
@given(
    connected_graphs(min_nodes=10, max_nodes=28),
    st.integers(min_value=1, max_value=6),
    st.integers(min_value=1, max_value=3),
    st.integers(min_value=0, max_value=10**6),
)
def test_routing_delivers_every_message(graph, k, l, seed):
    rng = random.Random(seed)
    nodes = sorted(graph.nodes)
    sources = rng.sample(nodes, min(k, len(nodes)))
    targets = rng.sample(nodes, min(l, len(nodes)))
    messages = {(s, t): (si, ti) for si, s in enumerate(sources) for ti, t in enumerate(targets)}
    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)
    result = KLRouting(
        sim, messages, scenario=RoutingScenario.ARBITRARY_SOURCES_RANDOM_TARGETS, seed=seed
    ).run()
    assert result.all_delivered(messages)


# ----------------------------------------------------------------------
# Theorem 13: SSSP stretch
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(weighted_connected_graphs(), st.sampled_from([0.1, 0.25, 0.5, 1.0]))
def test_sssp_stretch_never_violated(graph, epsilon):
    source = 0
    truth = exact_sssp_distances(graph, source)
    approx = approx_sssp_distances(graph, source, epsilon)
    for node, true_distance in truth.items():
        assert approx[node] >= true_distance - 1e-9
        assert approx[node] <= (1 + epsilon) * true_distance + 1e-9


# ----------------------------------------------------------------------
# Theorem 14: k-SSP stretch (sources in skeleton)
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(weighted_connected_graphs(min_nodes=8, max_nodes=20), st.integers(min_value=0, max_value=10**6))
def test_ksp_stretch_never_violated(graph, seed):
    rng = random.Random(seed)
    nodes = sorted(graph.nodes)
    sources = rng.sample(nodes, min(3, len(nodes)))
    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)
    result = KSourceShortestPaths(
        sim, sources, epsilon=0.25, sources_in_skeleton=True, seed=seed
    ).run()
    for source in sources:
        truth = nx.single_source_dijkstra_path_length(graph, source, weight="weight")
        for node in nodes:
            estimate = result.estimate(node, source)
            assert estimate >= truth[node] - 1e-6
            assert estimate <= (1 + 0.25) * truth[node] + 1e-6


# ----------------------------------------------------------------------
# Theorem 6: unweighted APSP stretch
# ----------------------------------------------------------------------
@settings(max_examples=8, deadline=None)
@given(connected_graphs(min_nodes=8, max_nodes=22), st.sampled_from([0.25, 0.5, 0.9]))
def test_unweighted_apsp_stretch_never_violated(graph, epsilon):
    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=0)
    table = UnweightedApproxAPSP(sim, epsilon=epsilon).run()
    truth = {
        v: {w: float(d) for w, d in row.items()} for v, row in exact_hop_apsp(graph).items()
    }
    stretch = max_stretch_of_table(truth, table.estimates)
    assert stretch <= table.stretch_bound + 1e-6


# ----------------------------------------------------------------------
# Lemma 5.3: hash balance
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(
    st.integers(min_value=8, max_value=64),
    st.integers(min_value=2, max_value=16),
    st.integers(min_value=0, max_value=10**6),
)
def test_pairwise_hash_stays_in_range_and_covers_buckets(universe, independence, seed):
    buckets = max(2, universe // 2)
    h = PairwiseHash(universe, buckets, independence, seed=seed)
    values = [h(i, j) for i in range(universe) for j in range(0, universe, 3)]
    assert all(0 <= value < buckets for value in values)
    # With many pairs the hash should hit a reasonable fraction of buckets.
    assert len(set(values)) >= min(buckets, len(values)) // 4
