"""Centralized reference solvers (ground truth for tests and stretch measurement)."""

from __future__ import annotations

import math
from typing import Dict, Hashable, Iterable, Optional, Tuple

import networkx as nx

from repro.graphs.index import get_index
from repro.graphs.properties import all_hop_distances

Node = Hashable

__all__ = [
    "exact_sssp",
    "exact_apsp",
    "exact_hop_apsp",
    "measure_stretch",
    "max_stretch_of_table",
]


def exact_sssp(graph: nx.Graph, source: Node) -> Dict[Node, float]:
    """Exact weighted single-source distances (Dijkstra).

    Runs on the cached :class:`~repro.graphs.index.GraphIndex` flat-array
    Dijkstra; agreement with ``networkx`` is pinned exactly by
    ``tests/properties/test_weighted_equivalence.py``, so this stays valid
    ground truth for the stretch measurements.
    """
    return get_index(graph).sssp_dict(source)


def exact_apsp(graph: nx.Graph) -> Dict[Node, Dict[Node, float]]:
    """Exact weighted all-pairs distances (one flat Dijkstra row per node)."""
    index = get_index(graph)
    return {v: index.sssp_dict(v) for v in graph.nodes}


def exact_hop_apsp(graph: nx.Graph) -> Dict[Node, Dict[Node, int]]:
    """Exact unweighted (hop) all-pairs distances.

    Assembled from the dense :class:`~repro.graphs.index.GraphIndex` sweeps
    (one flat-array BFS row per node) instead of one Python-dict BFS per node;
    ``tests/properties/test_apsp_equivalence.py`` pins exact agreement with
    the dict-BFS reference.
    """
    return all_hop_distances(graph)


def measure_stretch(
    true_distance: float, estimate: float, *, tolerance: float = 1e-9
) -> float:
    """The multiplicative stretch of a single estimate (inf if the estimate is missing)."""
    if estimate is None:
        return math.inf
    if true_distance == 0:
        return 1.0 if abs(estimate) <= tolerance else math.inf
    return estimate / true_distance


def max_stretch_of_table(
    ground_truth: Dict[Node, Dict[Node, float]],
    estimates: Dict[Node, Dict[Node, float]],
    *,
    pairs: Optional[Iterable[Tuple[Node, Node]]] = None,
    require_no_underestimate: bool = True,
    tolerance: float = 1e-6,
) -> float:
    """Maximum stretch of an estimate table against exact distances.

    ``estimates[target][source]`` is compared against
    ``ground_truth[target][source]`` for the requested pairs (default: every
    pair present in the estimate table).  Raises ``AssertionError`` if an
    estimate underestimates the true distance beyond the tolerance (approximate
    shortest-paths algorithms in this paper never underestimate).
    """
    worst = 1.0
    if pairs is None:
        pair_iter = (
            (target, source)
            for target, row in estimates.items()
            for source in row
        )
    else:
        pair_iter = iter(pairs)
    for target, source in pair_iter:
        true_value = ground_truth.get(target, {}).get(source, math.inf)
        estimate = estimates.get(target, {}).get(source, math.inf)
        if math.isinf(true_value):
            continue
        if require_no_underestimate and estimate < true_value - tolerance * max(1.0, true_value):
            raise AssertionError(
                f"estimate {estimate} underestimates true distance {true_value} "
                f"for pair ({source!r} -> {target!r})"
            )
        worst = max(worst, measure_stretch(true_value, estimate))
    return worst
