"""Unit tests for the graph generators."""

import networkx as nx
import pytest

from repro.graphs.generators import (
    GRAPH_FAMILIES,
    GraphSpec,
    balanced_tree,
    barbell_graph,
    broom_graph,
    caterpillar_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi_graph,
    generate_graph,
    grid_graph,
    lollipop_graph,
    path_graph,
    random_geometric_graph,
    random_regular_graph,
    star_graph,
    torus_graph,
    two_cluster_graph,
)
from repro.graphs.properties import diameter, is_connected


class TestPathAndCycle:
    def test_path_node_and_edge_counts(self):
        g = path_graph(10)
        assert g.number_of_nodes() == 10
        assert g.number_of_edges() == 9

    def test_path_diameter(self):
        assert diameter(path_graph(10)) == 9

    def test_single_node_path(self):
        g = path_graph(1)
        assert g.number_of_nodes() == 1
        assert g.number_of_edges() == 0

    def test_path_rejects_zero_nodes(self):
        with pytest.raises(ValueError):
            path_graph(0)

    def test_cycle_counts(self):
        g = cycle_graph(12)
        assert g.number_of_nodes() == 12
        assert g.number_of_edges() == 12
        assert all(g.degree(v) == 2 for v in g.nodes)

    def test_cycle_diameter(self):
        assert diameter(cycle_graph(12)) == 6

    def test_cycle_rejects_too_small(self):
        with pytest.raises(ValueError):
            cycle_graph(2)


class TestGridsAndTori:
    def test_grid_node_count(self):
        g = grid_graph(4, 2)
        assert g.number_of_nodes() == 16

    def test_grid_3d_node_count(self):
        g = grid_graph(3, 3)
        assert g.number_of_nodes() == 27

    def test_grid_nodes_relabelled_to_integers(self):
        g = grid_graph(4, 2)
        assert set(g.nodes) == set(range(16))

    def test_grid_diameter_matches_manhattan(self):
        # Diameter of a d-dim grid with side m is d * (m - 1).
        assert diameter(grid_graph(4, 2)) == 6
        assert diameter(grid_graph(3, 3)) == 6

    def test_grid_rejects_bad_params(self):
        with pytest.raises(ValueError):
            grid_graph(0, 2)
        with pytest.raises(ValueError):
            grid_graph(3, 0)

    def test_torus_is_regular(self):
        g = torus_graph(4, 2)
        assert all(g.degree(v) == 4 for v in g.nodes)

    def test_torus_rejects_small_side(self):
        with pytest.raises(ValueError):
            torus_graph(2, 2)


class TestTreesAndStars:
    def test_balanced_tree_size(self):
        g = balanced_tree(2, 3)
        assert g.number_of_nodes() == 15

    def test_balanced_tree_branching_one_is_path(self):
        g = balanced_tree(1, 5)
        assert g.number_of_nodes() == 6
        assert diameter(g) == 5

    def test_star_structure(self):
        g = star_graph(10)
        assert g.number_of_nodes() == 10
        degrees = sorted(dict(g.degree()).values())
        assert degrees[-1] == 9
        assert degrees[0] == 1

    def test_complete_graph(self):
        g = complete_graph(6)
        assert g.number_of_edges() == 15
        assert diameter(g) == 1


class TestRandomFamilies:
    def test_erdos_renyi_connected(self):
        g = erdos_renyi_graph(50, 0.05, seed=3)
        assert is_connected(g)
        assert g.number_of_nodes() == 50

    def test_erdos_renyi_deterministic_given_seed(self):
        g1 = erdos_renyi_graph(40, 0.1, seed=7)
        g2 = erdos_renyi_graph(40, 0.1, seed=7)
        assert set(g1.edges) == set(g2.edges)

    def test_erdos_renyi_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            erdos_renyi_graph(10, 1.5)

    def test_random_regular_degree(self):
        g = random_regular_graph(30, 4, seed=1)
        assert all(g.degree(v) == 4 for v in g.nodes)
        assert is_connected(g)

    def test_random_regular_rejects_odd_product(self):
        with pytest.raises(ValueError):
            random_regular_graph(7, 3)

    def test_geometric_connected(self):
        g = random_geometric_graph(40, 0.35, seed=2)
        assert is_connected(g)
        assert g.number_of_nodes() == 40


class TestWorstCaseFamilies:
    def test_barbell_counts(self):
        g = barbell_graph(5, 6)
        assert g.number_of_nodes() == 16
        assert is_connected(g)

    def test_lollipop_counts(self):
        g = lollipop_graph(5, 6)
        assert g.number_of_nodes() == 11
        assert is_connected(g)

    def test_caterpillar(self):
        g = caterpillar_graph(5, 3)
        assert g.number_of_nodes() == 5 + 15
        assert is_connected(g)

    def test_caterpillar_no_legs_is_path(self):
        g = caterpillar_graph(6, 0)
        assert diameter(g) == 5

    def test_broom(self):
        g = broom_graph(10, 5)
        assert g.number_of_nodes() == 15
        assert is_connected(g)
        assert diameter(g) == 10

    def test_two_cluster_bridge(self):
        g = two_cluster_graph(6, 8)
        assert is_connected(g)
        assert g.number_of_nodes() == 20
        assert diameter(g) >= 9


class TestGraphSpec:
    def test_spec_build_and_label(self):
        spec = GraphSpec.of("grid", side=4, dim=2)
        graph = spec.build()
        assert graph.number_of_nodes() == 16
        assert spec.label() == "grid(dim=2,side=4)"

    def test_spec_roundtrip_through_generate(self):
        spec = GraphSpec.of("path", n=7)
        graph = generate_graph(spec)
        assert graph.graph["spec"] == spec

    def test_spec_unknown_family(self):
        with pytest.raises(KeyError):
            generate_graph(GraphSpec.of("moebius", n=5))

    def test_spec_hashable(self):
        a = GraphSpec.of("path", n=5)
        b = GraphSpec.of("path", n=5)
        assert a == b
        assert len({a, b}) == 1

    def test_all_registered_families_buildable(self):
        samples = {
            "path": {"n": 8},
            "cycle": {"n": 8},
            "grid": {"side": 3, "dim": 2},
            "torus": {"side": 3, "dim": 2},
            "tree": {"branching": 2, "height": 2},
            "star": {"n": 6},
            "complete": {"n": 5},
            "erdos_renyi": {"n": 12, "p": 0.3, "seed": 0},
            "random_regular": {"n": 10, "degree": 3, "seed": 0},
            "barbell": {"clique_size": 3, "path_length": 2},
            "lollipop": {"clique_size": 3, "path_length": 2},
            "caterpillar": {"spine_length": 4, "legs_per_node": 1},
            "broom": {"path_length": 4, "bristle_count": 3},
            "geometric": {"n": 15, "radius": 0.5, "seed": 0},
            "two_cluster": {"cluster_size": 4, "bridge_length": 3},
        }
        assert set(samples) == set(GRAPH_FAMILIES)
        for family, params in samples.items():
            graph = generate_graph(GraphSpec.of(family, **params))
            assert is_connected(graph), family
