"""Figure 2 reproduction: the structure behind the broadcast algorithm.

Figure 2 of the paper illustrates Theorem 1's machinery: the graph is
partitioned into clusters of weak diameter eO(NQ_k) and size Theta(k / NQ_k),
the clusters are arranged in a logarithmic-depth cluster tree, and the k tokens
are converge-cast up and down that tree.

The benchmark measures the actual cluster statistics produced by our Lemma 3.5
implementation on every benchmark graph — cluster count, size range, weak
diameters — and asserts each of the lemma's guarantees, which are exactly the
invariants the figure depicts.
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.experiments import default_benchmark_specs, run_fig2_broadcast_structure
from repro.graphs.generators import GraphSpec

SPECS = default_benchmark_specs("small") + [GraphSpec.of("star", n=96)]
K_VALUES = [32, 96]


def _structure_rows():
    rows = []
    for spec in SPECS:
        for k in K_VALUES:
            rows.append(run_fig2_broadcast_structure(spec, k, seed=0))
    return rows


def test_fig2_broadcast_structure(benchmark, save_table):
    rows = benchmark.pedantic(_structure_rows, rounds=1, iterations=1)
    save_table("fig2_broadcast_structure", rows, "Figure 2 - Lemma 3.5 cluster structure")
    for row in rows:
        nq = row["NQ_k"]
        k = row["k"]
        n = row["n"]
        assert row["max weak diameter"] <= row["weak diameter bound"]
        lower = min(n, k / nq)
        assert row["min size"] >= math.floor(lower)
        assert row["max size"] <= math.ceil(2 * lower)
        # At most n * NQ_k / k clusters (each has >= k/NQ_k members).
        assert row["clusters"] <= math.ceil(n * nq / min(k, n))
