"""Figure 1 reproduction: the k-SSP complexity landscape.

Paper claim (Figure 1): with k = n^beta sources on the horizontal axis and the
round exponent delta (rounds = n^delta) on the vertical axis, this work's
constant-approximation k-SSP (Theorem 14) achieves delta = beta/2 — i.e. rounds
eO(sqrt k) — matching the eOmega(sqrt k) lower bound for every beta, whereas
the prior exact algorithm [CHLP21a] needs delta = max(1/3, beta/2).

The benchmark sweeps beta on two graph families, fits the measured
rounds-vs-k exponent in log-log space, and asserts the fitted exponent is close
to the predicted 1/2 (the 'who wins and with what slope' shape of the figure);
it also records the per-point stretch, which must stay within the constant
bound of Theorem 14.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import fit_fig1_exponent, run_fig1_ksp_point
from repro.graphs.generators import GraphSpec

BETAS = [0.3, 0.5, 0.7, 0.9, 1.0]
SPECS = [
    GraphSpec.of("grid", side=10, dim=2),
    GraphSpec.of("erdos_renyi", n=100, p=0.06, seed=13),
]


def _landscape_points():
    points = []
    for spec in SPECS:
        for beta in BETAS:
            points.append(run_fig1_ksp_point(spec, beta, epsilon=0.25, seed=4))
    return points


def test_fig1_ksp_landscape(benchmark, save_table):
    points = benchmark.pedantic(_landscape_points, rounds=1, iterations=1)
    save_table("fig1_ksp_landscape", points, "Figure 1 - k-SSP complexity landscape (Theorem 14)")
    for point in points:
        assert point["stretch measured"] <= 1.25 + 1e-6
        # Never below the existential lower bound sqrt(k) once polylog factors
        # are divided out generously.
        assert point["rounds (Thm 14, total)"] >= point["lower bound sqrt(k)"] / 64.0
    # Fitted exponent of rounds vs. k: Theorem 14 predicts 1/2 (rounds ~ sqrt k);
    # the fit over a small sweep carries polylog noise, so allow a wide band
    # that still excludes both constant scaling (0) and linear scaling (1).
    for spec in SPECS:
        subset = [p for p in points if p["graph"] == spec.label()]
        exponent = fit_fig1_exponent(subset)
        assert 0.1 <= exponent <= 0.9, f"{spec.label()}: fitted exponent {exponent}"
