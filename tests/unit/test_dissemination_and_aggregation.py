"""Unit tests for Theorem 1 (k-dissemination) and Theorem 2 (k-aggregation)."""

import math
import operator
import random

import pytest

from repro.core.aggregation import KAggregation
from repro.core.dissemination import (
    KDissemination,
    build_cluster_tree,
    match_cluster_tree_ids,
    rank_matched_transfers,
)
from repro.core.clustering import nq_clustering
from repro.core.neighborhood_quality import neighborhood_quality
from repro.graphs.generators import (
    barbell_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.simulator.config import ModelConfig, log2_ceil
from repro.simulator.network import HybridSimulator


def scatter(graph, k, seed=0, concentrated=False):
    rng = random.Random(seed)
    nodes = sorted(graph.nodes, key=str)
    tokens = {}
    if concentrated:
        tokens[nodes[0]] = [("tok", i) for i in range(k)]
        return tokens
    for i in range(k):
        holder = rng.choice(nodes)
        tokens.setdefault(holder, []).append(("tok", i))
    return tokens


def run_dissemination(graph, k, seed=0, concentrated=False, hybrid0=True):
    config = ModelConfig.hybrid0() if hybrid0 else ModelConfig.hybrid()
    sim = HybridSimulator(graph, config, seed=seed)
    tokens = scatter(graph, k, seed=seed, concentrated=concentrated)
    return KDissemination(sim, tokens).run(), sim


class TestClusterTree:
    def test_cluster_tree_spans_all_clusters(self):
        g = grid_graph(6, 2)
        clustering = nq_clustering(g, 24)
        tree = build_cluster_tree(clustering)
        assert sorted(tree.order) == sorted(c.index for c in clustering.clusters)

    def test_cluster_tree_depth_logarithmic(self):
        g = path_graph(100)
        clustering = nq_clustering(g, 50)
        tree = build_cluster_tree(clustering)
        assert tree.depth <= log2_ceil(len(clustering.clusters)) + 1

    def test_rank_matching_teaches_ids_both_ways(self):
        g = grid_graph(5, 2)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        clustering = nq_clustering(g, 12, id_of=sim.id_of)
        tree = build_cluster_tree(clustering)
        match_cluster_tree_ids(sim, clustering, tree)
        for child_index, parent_index in tree.parent.items():
            if parent_index is None:
                continue
            child = clustering.clusters[child_index]
            parent = clustering.clusters[parent_index]
            child_members = sorted(child.members, key=sim.id_of)
            parent_members = sorted(parent.members, key=sim.id_of)
            for rank, member in enumerate(child_members):
                counterpart = parent_members[rank % len(parent_members)]
                assert sim.knows_id(member, sim.id_of(counterpart))
                assert sim.knows_id(counterpart, sim.id_of(member))

    def test_rank_matched_transfers_only_use_matched_pairs(self):
        g = grid_graph(5, 2)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        clustering = nq_clustering(g, 12, id_of=sim.id_of)
        assert len(clustering.clusters) >= 2
        source, target = clustering.clusters[0], clustering.clusters[1]
        payloads = [("p", i) for i in range(17)]
        transfers = rank_matched_transfers(sim, source, target, payloads, "t")
        assert len(transfers) == 17
        source_members = sorted(source.members, key=sim.id_of)
        target_members = sorted(target.members, key=sim.id_of)
        for transfer in transfers:
            rank = source_members.index(transfer.sender)
            assert transfer.receiver == target_members[rank % len(target_members)]


class TestKDissemination:
    @pytest.mark.parametrize(
        "graph_builder,k",
        [
            (lambda: path_graph(40), 20),
            (lambda: cycle_graph(36), 12),
            (lambda: grid_graph(6, 2), 36),
            (lambda: star_graph(25), 10),
            (lambda: barbell_graph(8, 10), 16),
        ],
    )
    def test_every_node_learns_every_token(self, graph_builder, k):
        result, _ = run_dissemination(graph_builder(), k, seed=1)
        assert result.k == k
        assert result.all_nodes_know_all_tokens()

    def test_concentrated_distribution_also_works(self):
        result, _ = run_dissemination(path_graph(40), 20, seed=2, concentrated=True)
        assert result.all_nodes_know_all_tokens()

    def test_works_in_dense_id_hybrid_too(self):
        result, _ = run_dissemination(grid_graph(5, 2), 15, seed=3, hybrid0=False)
        assert result.all_nodes_know_all_tokens()

    def test_no_capacity_violations(self):
        result, sim = run_dissemination(grid_graph(6, 2), 30, seed=4)
        assert sim.metrics.capacity_violations == 0

    def test_zero_tokens_trivial(self):
        g = path_graph(10)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        result = KDissemination(sim, {}).run()
        assert result.k == 0
        assert result.all_nodes_know_all_tokens()

    def test_single_token(self):
        result, _ = run_dissemination(grid_graph(4, 2), 1, seed=5)
        assert result.k == 1
        assert result.all_nodes_know_all_tokens()

    def test_unknown_holder_rejected(self):
        g = path_graph(5)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        with pytest.raises(KeyError):
            KDissemination(sim, {99: ["x"]})

    def test_nq_value_matches_centralized(self):
        g = grid_graph(6, 2)
        k = 18
        result, _ = run_dissemination(g, k, seed=6)
        assert result.nq == neighborhood_quality(g, k)

    def test_round_cost_grows_with_nq_not_k_alone(self):
        # Same k on a star (NQ small) vs. a path (NQ ~ sqrt k): the path must
        # cost more rounds.
        k = 24
        star_result, star_sim = run_dissemination(star_graph(60), k, seed=7)
        path_result, path_sim = run_dissemination(path_graph(60), k, seed=7)
        assert star_result.nq < path_result.nq
        assert star_sim.metrics.total_rounds < path_sim.metrics.total_rounds

    def test_duplicate_tokens_counted_once(self):
        g = path_graph(20)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        tokens = {0: [("tok", 0), ("tok", 1)], 5: [("tok", 0)]}
        result = KDissemination(sim, tokens).run()
        assert result.k == 2
        assert result.all_nodes_know_all_tokens()


class TestKAggregation:
    def test_componentwise_minimum(self):
        g = grid_graph(5, 2)
        rng = random.Random(0)
        k = 6
        values = {v: [rng.randint(0, 1000) for _ in range(k)] for v in g.nodes}
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        result = KAggregation(sim, values, min).run()
        expected = [min(values[v][i] for v in g.nodes) for i in range(k)]
        assert result.aggregates == expected
        assert result.all_nodes_know_all_aggregates()

    def test_componentwise_sum(self):
        g = path_graph(30)
        k = 4
        values = {v: [1, 2, 3, v if isinstance(v, int) else 0] for v in g.nodes}
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        result = KAggregation(sim, values, operator.add).run()
        assert result.aggregates[0] == 30
        assert result.aggregates[1] == 60
        assert result.aggregates[3] == sum(range(30))

    def test_componentwise_max(self):
        g = cycle_graph(24)
        k = 3
        values = {v: [v, -v, v * v] for v in g.nodes}
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        result = KAggregation(sim, values, max).run()
        assert result.aggregates == [23, 0, 23 * 23]

    def test_all_nodes_receive_results(self):
        g = grid_graph(4, 2)
        values = {v: [v % 3, v % 5] for v in g.nodes}
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        result = KAggregation(sim, values, min).run()
        for node, known in result.known_aggregates.items():
            assert known == result.aggregates

    def test_requires_uniform_k(self):
        g = path_graph(4)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        with pytest.raises(ValueError):
            KAggregation(sim, {0: [1], 1: [1, 2], 2: [1], 3: [1]}, min)

    def test_requires_all_nodes(self):
        g = path_graph(4)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        with pytest.raises(ValueError):
            KAggregation(sim, {0: [1]}, min)

    def test_rejects_k_zero(self):
        g = path_graph(4)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        with pytest.raises(ValueError):
            KAggregation(sim, {v: [] for v in g.nodes}, min)

    def test_no_capacity_violations(self):
        g = grid_graph(5, 2)
        values = {v: [v % 7, v % 11, v % 13] for v in g.nodes}
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        KAggregation(sim, values, min).run()
        assert sim.metrics.capacity_violations == 0
