"""Unit tests for the universally optimal shortest paths (Theorems 5-8) and cut
approximation (Theorem 9)."""

import math
import random

import networkx as nx
import pytest

from repro.baselines.centralized import exact_apsp, exact_hop_apsp, max_stretch_of_table
from repro.core.cuts import (
    CutSparsifierAPSP,
    build_cut_sparsifier,
    cut_weight,
    nagamochi_ibaraki_forest_index,
)
from repro.core.shortest_paths import (
    KLShortestPaths,
    SkeletonAPSP,
    SpannerAPSP,
    UnweightedApproxAPSP,
)
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.weighted import assign_random_weights, unit_weights
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator


def hop_truth_as_float(graph):
    return {v: {w: float(d) for w, d in row.items()} for v, row in exact_hop_apsp(graph).items()}


class TestKLShortestPaths:
    def _run(self, graph, sources, targets, epsilon=0.25, seed=0):
        sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)
        return KLShortestPaths(sim, sources, targets, epsilon=epsilon, seed=seed).run(), sim

    def test_small_target_set_uses_sequential_sssp(self):
        g = assign_random_weights(grid_graph(5, 2), max_weight=6, seed=0)
        sources, targets = [0, 6, 12, 18, 24], [3, 21]
        table, sim = self._run(g, sources, targets, seed=0)
        truth = {t: nx.single_source_dijkstra_path_length(g, t, weight="weight") for t in targets}
        pairs = [(t, s) for t in targets for s in sources]
        stretch = max_stretch_of_table(truth, table.estimates, pairs=pairs)
        assert stretch <= 1.25 + 1e-6

    def test_larger_target_set_uses_ksp(self):
        g = assign_random_weights(grid_graph(6, 2), max_weight=6, seed=1)
        rng = random.Random(1)
        nodes = sorted(g.nodes)
        sources = rng.sample(nodes, 6)
        targets = rng.sample(nodes, 8)
        table, sim = self._run(g, sources, targets, seed=1)
        truth = {t: nx.single_source_dijkstra_path_length(g, t, weight="weight") for t in targets}
        pairs = [(t, s) for t in targets for s in sources]
        stretch = max_stretch_of_table(truth, table.estimates, pairs=pairs)
        assert stretch <= 1.25 + 1e-6

    def test_every_target_learns_every_source(self):
        g = grid_graph(4, 2)
        sources, targets = [0, 15], [5, 10]
        table, _ = self._run(g, sources, targets, seed=2)
        for target in targets:
            assert set(table.estimates[target]) == set(sources)

    def test_invalid_inputs(self):
        sim = HybridSimulator(path_graph(6), ModelConfig.hybrid(), seed=0)
        with pytest.raises(ValueError):
            KLShortestPaths(sim, [], [0])
        with pytest.raises(ValueError):
            KLShortestPaths(sim, [0], [1], epsilon=0.0)


class TestUnweightedApproxAPSP:
    @pytest.mark.parametrize(
        "graph_builder",
        [
            lambda: path_graph(40),
            lambda: cycle_graph(36),
            lambda: grid_graph(6, 2),
            lambda: star_graph(25),
        ],
    )
    def test_stretch_bound_holds(self, graph_builder):
        g = unit_weights(graph_builder())
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        table = UnweightedApproxAPSP(sim, epsilon=0.5).run()
        stretch = max_stretch_of_table(hop_truth_as_float(g), table.estimates)
        assert stretch <= table.stretch_bound + 1e-6

    def test_estimates_cover_all_pairs(self):
        g = grid_graph(4, 2)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        table = UnweightedApproxAPSP(sim, epsilon=0.5).run()
        assert set(table.estimates) == set(g.nodes)
        for row in table.estimates.values():
            assert set(row) == set(g.nodes)

    def test_rejects_bad_epsilon(self):
        sim = HybridSimulator(path_graph(5), ModelConfig.hybrid0(), seed=0)
        with pytest.raises(ValueError):
            UnweightedApproxAPSP(sim, epsilon=1.5)

    def test_round_cost_scales_with_nq_not_sqrt_n(self):
        # On a star graph NQ_n is tiny, so the algorithm must be far below the
        # sqrt(n)-round existential baseline ... measured in its NQ_n-dependent
        # charges rather than any sqrt(n) term.
        g = star_graph(100)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        table = UnweightedApproxAPSP(sim, epsilon=0.5).run()
        assert table.nq <= 2


class TestSpannerAPSP:
    def test_stretch_bound_holds_weighted(self):
        g = assign_random_weights(erdos_renyi_graph(30, 0.25, seed=3), max_weight=9, seed=3)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=3)
        table = SpannerAPSP(sim, epsilon=0.5).run()
        stretch = max_stretch_of_table(exact_apsp(g), table.estimates)
        assert stretch <= table.stretch_bound + 1e-6

    def test_stretch_bound_scales_with_epsilon(self):
        g = assign_random_weights(grid_graph(5, 2), max_weight=5, seed=4)
        sim_fine = HybridSimulator(g, ModelConfig.hybrid0(), seed=4)
        sim_coarse = HybridSimulator(g, ModelConfig.hybrid0(), seed=4)
        fine = SpannerAPSP(sim_fine, epsilon=0.2).run()
        coarse = SpannerAPSP(sim_coarse, epsilon=1.0).run()
        assert fine.stretch_bound <= coarse.stretch_bound

    def test_rejects_bad_epsilon(self):
        sim = HybridSimulator(path_graph(5), ModelConfig.hybrid0(), seed=0)
        with pytest.raises(ValueError):
            SpannerAPSP(sim, epsilon=0.0)


class TestSkeletonAPSP:
    @pytest.mark.parametrize("alpha", [1, 2])
    def test_stretch_bound_holds(self, alpha):
        g = assign_random_weights(grid_graph(6, 2), max_weight=7, seed=5)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=5)
        table = SkeletonAPSP(sim, alpha=alpha, seed=5).run()
        stretch = max_stretch_of_table(exact_apsp(g), table.estimates)
        assert stretch <= 4 * alpha - 1 + 1e-6

    def test_unweighted_cycle(self):
        g = unit_weights(cycle_graph(30))
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=6)
        table = SkeletonAPSP(sim, alpha=1, seed=6).run()
        stretch = max_stretch_of_table(hop_truth_as_float(g), table.estimates)
        assert stretch <= 3 + 1e-6

    def test_rejects_bad_alpha(self):
        sim = HybridSimulator(path_graph(5), ModelConfig.hybrid0(), seed=0)
        with pytest.raises(ValueError):
            SkeletonAPSP(sim, alpha=0)


class TestCutSparsifier:
    def test_forest_index_covers_all_edges(self):
        g = grid_graph(4, 2)
        index = nagamochi_ibaraki_forest_index(g)
        assert len(index) == g.number_of_edges()
        assert all(value >= 1 for value in index.values())

    def test_forest_index_of_clique_is_high_for_some_edges(self):
        g = erdos_renyi_graph(12, 1.0, seed=0)  # complete graph
        index = nagamochi_ibaraki_forest_index(g)
        assert max(index.values()) >= 3

    def test_cut_weight_helper(self):
        g = unit_weights(path_graph(4))
        assert cut_weight(g, {0, 1}) == 1
        assert cut_weight(g, {0, 2}) == 3

    def test_sparsifier_preserves_cuts_approximately(self):
        g = unit_weights(erdos_renyi_graph(40, 0.3, seed=7))
        eps = 0.5
        sparsifier = build_cut_sparsifier(g, eps, seed=7)
        rng = random.Random(7)
        nodes = sorted(g.nodes)
        for _ in range(20):
            side = {v for v in nodes if rng.random() < 0.5}
            if not side or len(side) == len(nodes):
                continue
            true_cut = cut_weight(g, side)
            approx_cut = cut_weight(sparsifier, side)
            assert approx_cut >= (1 - eps) * true_cut * 0.8
            assert approx_cut <= (1 + eps) * true_cut * 1.2

    def test_sparsifier_is_sparser_on_dense_graphs(self):
        g = unit_weights(erdos_renyi_graph(60, 0.6, seed=8))
        sparsifier = build_cut_sparsifier(g, 0.5, seed=8, oversampling=1.0)
        assert sparsifier.number_of_edges() < g.number_of_edges()

    def test_rejects_bad_epsilon(self):
        with pytest.raises(ValueError):
            build_cut_sparsifier(path_graph(4), 1.5)

    def test_theorem9_pipeline_min_cut(self):
        g = unit_weights(erdos_renyi_graph(30, 0.3, seed=9))
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=9)
        result = CutSparsifierAPSP(sim, epsilon=0.5, seed=9).run()
        true_min_cut = nx.stoer_wagner(g, weight="weight")[0]
        approx_min_cut = result.approximate_min_cut()
        assert approx_min_cut >= (1 - 0.5) * true_min_cut * 0.8
        assert approx_min_cut <= (1 + 0.5) * true_min_cut * 1.5
        assert sim.metrics.charged_rounds > 0
