"""Exact-equivalence tests: fast NQ engine vs. the Theta(n*m) reference.

The frontier-based analytics engine (:mod:`repro.graphs.index`) must agree
*exactly* — not approximately — with the original reference formulations kept
as ``_reference_*`` in :mod:`repro.core.neighborhood_quality` and
:mod:`repro.graphs.properties`, across six graph families x three seeds, for
per-node values, graph-level values, workload profiles, diameters,
eccentricities and ball-size sequences.  Any divergence is a correctness bug
in the engine, never an acceptable approximation.
"""

import math

import pytest

from repro.core.neighborhood_quality import (
    DistributedNQComputation,
    _reference_neighborhood_quality,
    _reference_neighborhood_quality_of_node,
    _reference_neighborhood_quality_per_node,
    _reference_nq_profile,
    neighborhood_quality,
    neighborhood_quality_of_node,
    neighborhood_quality_per_node,
    nq_profile,
)
from repro.graphs.generators import GraphSpec, generate_graph
from repro.graphs.index import GraphIndex, get_index
from repro.graphs.properties import (
    _reference_ball_sizes_all_radii,
    _reference_diameter,
    _reference_eccentricity,
    ball_sizes_all_radii,
    diameter,
    eccentricity,
)
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator

SEEDS = [0, 1, 2]

#: Six graph families; seed-dependent generators consume the seed directly,
#: deterministic families vary their size with it so each seed still yields a
#: distinct instance.
FAMILY_SPECS = {
    "path": lambda seed: GraphSpec.of("path", n=50 + 7 * seed),
    "cycle": lambda seed: GraphSpec.of("cycle", n=48 + 5 * seed),
    "grid": lambda seed: GraphSpec.of("grid", side=6 + seed, dim=2),
    "erdos_renyi": lambda seed: GraphSpec.of("erdos_renyi", n=60, p=0.08, seed=seed),
    "random_regular": lambda seed: GraphSpec.of("random_regular", n=60, degree=4, seed=seed),
    "barbell": lambda seed: GraphSpec.of("barbell", clique_size=6 + seed, path_length=20),
}

CASES = [
    pytest.param(family, seed, id=f"{family}-s{seed}")
    for family in FAMILY_SPECS
    for seed in SEEDS
]


def _workloads(n):
    # Integer, fractional, sub-n, super-n and threshold-exhausting workloads;
    # the last one drives nodes into the saturated (lazy-diameter) code path.
    return [1, 2, 2.5, 7, max(1, n // 2), n, 3 * n, 10**6]


@pytest.mark.parametrize("family,seed", CASES)
def test_per_node_nq_matches_reference(family, seed):
    graph = generate_graph(FAMILY_SPECS[family](seed))
    for k in _workloads(graph.number_of_nodes()):
        assert neighborhood_quality_per_node(graph, k) == (
            _reference_neighborhood_quality_per_node(graph, k)
        ), f"{family} seed={seed} k={k}"


@pytest.mark.parametrize("family,seed", CASES)
def test_graph_level_nq_matches_reference(family, seed):
    graph = generate_graph(FAMILY_SPECS[family](seed))
    for k in _workloads(graph.number_of_nodes()):
        assert neighborhood_quality(graph, k) == _reference_neighborhood_quality(
            graph, k
        ), f"{family} seed={seed} k={k}"


@pytest.mark.parametrize("family,seed", CASES)
def test_nq_profile_matches_reference(family, seed):
    graph = generate_graph(FAMILY_SPECS[family](seed))
    ks = _workloads(graph.number_of_nodes())
    assert nq_profile(graph, ks) == _reference_nq_profile(graph, ks)


@pytest.mark.parametrize("family,seed", CASES)
def test_structural_queries_match_reference(family, seed):
    graph = generate_graph(FAMILY_SPECS[family](seed))
    assert diameter(graph) == _reference_diameter(graph)
    for node in graph.nodes:
        assert eccentricity(graph, node) == _reference_eccentricity(graph, node)
        assert ball_sizes_all_radii(graph, node) == (
            _reference_ball_sizes_all_radii(graph, node)
        )


@pytest.mark.parametrize("family,seed", CASES)
def test_single_node_nq_matches_reference(family, seed):
    graph = generate_graph(FAMILY_SPECS[family](seed))
    d = diameter(graph)
    nodes = sorted(graph.nodes)[:5]
    for k in (1, 2.5, graph.number_of_nodes(), 10**6):
        for node in nodes:
            assert neighborhood_quality_of_node(graph, k, node) == (
                _reference_neighborhood_quality_of_node(graph, k, node)
            )
            # An explicitly supplied diameter must short-circuit identically.
            assert neighborhood_quality_of_node(graph, k, node, d) == (
                _reference_neighborhood_quality_of_node(graph, k, node, d)
            )


def test_error_behaviour_matches_reference():
    import networkx as nx

    disconnected = nx.Graph()
    disconnected.add_nodes_from([0, 1, 2])
    disconnected.add_edge(0, 1)
    with pytest.raises(ValueError):
        neighborhood_quality(disconnected, 4)
    with pytest.raises(ValueError):
        diameter(disconnected)
    with pytest.raises(ValueError):
        neighborhood_quality(generate_graph(GraphSpec.of("path", n=5)), 0)
    # Single-node graphs report 0 without validating k (reference behaviour).
    single = generate_graph(GraphSpec.of("path", n=1))
    assert neighborhood_quality(single, 5) == 0
    assert neighborhood_quality_per_node(single, 5) == {0: 0}


def test_index_is_cached_and_invalidated():
    graph = generate_graph(GraphSpec.of("path", n=20))
    index = get_index(graph)
    assert get_index(graph) is index
    first = neighborhood_quality(graph, 12)
    # Scalar NQ values are memoised per (graph, k)...
    assert index._nq_cache[12] == first
    # ...and the whole index is rebuilt when the topology changes size.
    graph.add_edge(0, 19)
    rebuilt = get_index(graph)
    assert rebuilt is not index
    assert neighborhood_quality(graph, 12) == _reference_neighborhood_quality(graph, 12)


@pytest.mark.parametrize(
    "family,seed",
    [pytest.param("grid", 0, id="grid"), pytest.param("erdos_renyi", 1, id="er")],
)
def test_distributed_engines_agree_and_match_centralized(family, seed):
    graph = generate_graph(FAMILY_SPECS[family](seed))
    k = max(4, graph.number_of_nodes() // 3)
    results = {}
    for engine in ("batch", "legacy"):
        sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
        results[engine] = DistributedNQComputation(sim, k, engine=engine).run()
    batch, legacy = results["batch"], results["legacy"]
    assert batch.nq == legacy.nq == neighborhood_quality(graph, k)
    assert batch.per_node == legacy.per_node
    assert batch.metrics.measured_rounds == legacy.metrics.measured_rounds
    assert batch.metrics.total_rounds == legacy.metrics.total_rounds
