"""(alpha, beta)-ruling sets (Definition 3.4).

A set ``W`` is an (alpha, beta)-ruling set for ``G = (V, E)`` if every node is
within hop distance ``beta`` of some node of ``W`` and any two distinct nodes
of ``W`` are at hop distance at least ``alpha``.

The paper uses the deterministic CONGEST construction of [KMW18], which yields
a ``(mu + 1, mu * ceil(log n))``-ruling set in ``O(mu log n)`` rounds.  We
provide a centralized greedy construction that satisfies the same (in fact a
slightly stronger) guarantee, and a distributed wrapper that charges the
[KMW18] round bound (DESIGN.md substitution note 1).
"""

from __future__ import annotations

import math
from typing import Dict, Hashable, List, Optional, Set

import networkx as nx

from repro.graphs.index import get_index
from repro.graphs.properties import hop_distances_from
from repro.simulator.config import log2_ceil
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = [
    "greedy_ruling_set",
    "verify_ruling_set",
    "distributed_ruling_set",
]


def greedy_ruling_set(
    graph: nx.Graph, alpha: int, order: Optional[List[Node]] = None
) -> Set[Node]:
    """Greedy (alpha, alpha - 1)-ruling set.

    Scans nodes in the given order (default: sorted by label) and adds a node to
    ``W`` whenever it is at hop distance at least ``alpha`` from every node
    already in ``W``.  The result satisfies

    * separation: pairwise hop distance of nodes in ``W`` is at least ``alpha``;
    * domination: every node is within ``alpha - 1`` hops of ``W`` (otherwise it
      would have been added itself), which is at most ``mu * ceil(log n)`` for
      ``alpha = mu + 1`` and ``n >= 2`` — i.e. it is also a valid
      ``(mu + 1, mu * ceil(log n))``-ruling set in the paper's sense.

    Delegates to the cached :class:`~repro.graphs.index.GraphIndex`: each new
    ruler grows a flat truncated frontier over the CSR adjacency and marks its
    radius-``alpha - 1`` ball in a shared flat ``covered`` array, instead of
    one Python-set BFS per ruler.  Output is identical to the set-based
    reference (:func:`_reference_greedy_ruling_set`).
    """
    if alpha < 1:
        raise ValueError("alpha must be at least 1")
    return set(get_index(graph).ruling_set(alpha, order))


def _reference_greedy_ruling_set(
    graph: nx.Graph, alpha: int, order: Optional[List[Node]] = None
) -> Set[Node]:
    """Index-free ground truth for :func:`greedy_ruling_set` (tests only)."""
    if alpha < 1:
        raise ValueError("alpha must be at least 1")
    nodes = order if order is not None else sorted(graph.nodes, key=str)
    ruling: Set[Node] = set()
    # Nodes within alpha - 1 hops of the current ruling set; a node is addable
    # iff it is not covered.  Each new ruler runs its own truncated BFS (with a
    # private visited set, so coverage by earlier rulers does not block the
    # traversal) and adds everything it reaches to the shared covered set.
    covered: Set[Node] = set()
    for v in nodes:
        if v in covered:
            continue
        ruling.add(v)
        visited: Set[Node] = {v}
        covered.add(v)
        frontier = {v}
        for _ in range(1, alpha):
            next_frontier = set()
            for u in frontier:
                for w in graph.neighbors(u):
                    if w not in visited:
                        visited.add(w)
                        covered.add(w)
                        next_frontier.add(w)
            frontier = next_frontier
            if not frontier:
                break
    return ruling


def verify_ruling_set(graph: nx.Graph, ruling: Set[Node], alpha: int, beta: int) -> bool:
    """Check Definition 3.4: separation >= alpha and domination <= beta."""
    ruling = set(ruling)
    if not ruling:
        return graph.number_of_nodes() == 0
    # Separation.
    for w in ruling:
        dist = hop_distances_from(graph, w)
        for other in ruling:
            if other != w and dist.get(other, math.inf) < alpha:
                return False
    # Domination: multi-source BFS from the ruling set.
    best: Dict[Node, int] = {w: 0 for w in ruling}
    frontier = set(ruling)
    depth = 0
    while frontier and depth < beta:
        depth += 1
        next_frontier = set()
        for u in frontier:
            for v in graph.neighbors(u):
                if v not in best:
                    best[v] = depth
                    next_frontier.add(v)
        frontier = next_frontier
    return all(v in best for v in graph.nodes)


def distributed_ruling_set(
    simulator: HybridSimulator, mu: int
) -> Set[Node]:
    """Compute a ``(mu + 1, mu * ceil(log n))``-ruling set on the simulator.

    The output is produced by the centralized greedy construction (which
    satisfies the required guarantees); the round cost ``O(mu log n)`` of the
    [KMW18] CONGEST algorithm is charged (DESIGN.md substitution note 1).
    """
    if mu < 1:
        raise ValueError("mu must be at least 1")
    n = simulator.n
    ruling = greedy_ruling_set(simulator.graph, alpha=mu + 1)
    simulator.charge_rounds(
        mu * log2_ceil(max(n, 2)),
        f"({mu + 1}, {mu}*ceil(log n))-ruling set construction",
        "[KMW18, Theorem 1.1]",
    )
    return ruling
