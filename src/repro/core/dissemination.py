"""Universally optimal multi-message broadcast: ``k-dissemination`` (Theorem 1).

Problem (Definition 1.1): ``k`` tokens of O(log n) bits are initially spread
arbitrarily over the nodes (a node may hold anywhere between 0 and k of them);
at the end every node must know all ``k`` tokens.

Theorem 1: the problem is solvable deterministically in ``eO(NQ_k)`` rounds in
HYBRID_0.  The algorithm (Section 4.2, Figure 2) has five phases:

1. **Parameter computation** — compute ``k`` (basic aggregation, Lemma 4.4) and
   ``NQ_k`` (Lemma 3.3).
2. **Clustering** — partition ``V`` into clusters of weak diameter
   ``<= 4 NQ_k ceil(log n)`` and size ``[k/NQ_k, 2k/NQ_k]`` (Lemma 3.5).
3. **Cluster chaining** — build a logical cluster tree of depth/degree
   ``O(log n)`` (Lemma 4.6) and match the nodes of adjacent clusters rank-by-
   rank so matched nodes can talk over the global mode.
4. **Load balancing** — within each cluster, spread the held tokens so every
   node holds at most ``NQ_k`` of them (Lemma 4.1).
5. **Dissemination** — converge-cast all tokens up the cluster tree to the root
   cluster (load balancing before each level), then cast them back down; a
   final intra-cluster flood of ``4 NQ_k ceil(log n)`` local rounds makes every
   node know every token.

The global-mode token movements of phase 5 are physically simulated (throttled
to the per-node budget); the local-mode coordination of phases 2-4 and the
final flood are charged per the paper's analysis (DESIGN.md substitution
note 1).

The implementation is a :class:`~repro.simulator.engine.BatchAlgorithm`: each
phase submits whole rounds of traffic through the batch messaging engine
(``engine="batch"``, the default) or through the legacy per-message transport
(``engine="legacy"``); both engines produce identical round counts, inboxes
and metrics.
"""

from __future__ import annotations

import dataclasses
import operator
from collections import defaultdict
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.clustering import Cluster, Clustering, distributed_nq_clustering
from repro.core.load_balancing import balance_items, cluster_load_balance
from repro.core.neighborhood_quality import neighborhood_quality
from repro.core.overlay import VirtualTree, basic_aggregation, build_virtual_tree
from repro.core.transport import GlobalTransfer
from repro.simulator import _accel
from repro.simulator.config import log2_ceil
from repro.simulator.engine import BatchAlgorithm, TokenPlane
from repro.simulator.messages import payload_words
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = ["DisseminationResult", "KDissemination", "ClusterTree"]


@dataclasses.dataclass
class ClusterTree:
    """A rooted logical tree whose vertices are clusters (phase 3)."""

    root: int
    parent: Dict[int, Optional[int]]
    children: Dict[int, List[int]]
    order: List[int]

    def levels(self) -> List[List[int]]:
        result: List[List[int]] = []
        current = [self.root]
        while current:
            result.append(current)
            nxt: List[int] = []
            for index in current:
                nxt.extend(self.children[index])
            current = nxt
        return result

    @property
    def depth(self) -> int:
        return len(self.levels()) - 1


def build_cluster_tree(clustering: Clustering) -> ClusterTree:
    """Binary cluster tree over cluster indices (constant degree, O(log) depth)."""
    order = [cluster.index for cluster in clustering.clusters]
    parent: Dict[int, Optional[int]] = {}
    children: Dict[int, List[int]] = {index: [] for index in order}
    if not order:
        raise ValueError("clustering has no clusters")
    parent[order[0]] = None
    for position, index in enumerate(order):
        if position == 0:
            continue
        parent_index = order[(position - 1) // 2]
        parent[index] = parent_index
        children[parent_index].append(index)
    return ClusterTree(root=order[0], parent=parent, children=children, order=order)


def match_cluster_tree_ids(
    simulator: HybridSimulator,
    clustering: Clustering,
    cluster_tree: ClusterTree,
    member_arrays: Optional[Dict[int, Any]] = None,
) -> None:
    """Phase 3 subphase 2 of Theorem 1: rank-match adjacent clusters.

    For every edge of the cluster tree, member ``i`` of one cluster is paired
    with member ``i mod |other|`` of the other; both learn each other's
    identifier so they can exchange global messages.  The round cost of the
    matching (O(log n), one tree level at a time) is charged by the caller.

    ``member_arrays`` (optional) supplies the id-sorted member node-index
    array of each cluster — the permutation-array ranges the plane engine
    already holds — in which case the matching is assembled as flat learner /
    learned index columns and applied with one grouped pass instead of a
    Python loop per matched position.  The knowledge learned is identical
    either way (the same set of (node, identifier) facts).
    """
    identifier_of = simulator.node_identifiers()
    np = _accel.np
    if member_arrays is not None and np is not None:
        learner_chunks: List[Any] = []
        learned_chunks: List[Any] = []
        for child_index, parent_index in cluster_tree.parent.items():
            if parent_index is None:
                continue
            child_arr = member_arrays[child_index]
            parent_arr = member_arrays[parent_index]
            span = max(child_arr.size, parent_arr.size)
            a = np.resize(child_arr, span)
            b = np.resize(parent_arr, span)
            learner_chunks.extend((a, b))
            learned_chunks.extend((b, a))
        if not learner_chunks:
            return
        learner_col = np.concatenate(learner_chunks)
        learned_col = np.concatenate(learned_chunks)
        order = np.argsort(learner_col, kind="stable")
        learner_col = learner_col[order]
        learned_col = learned_col[order]
        take = simulator._identifier_take()
        learned_ids = take(learned_col)
        starts = np.flatnonzero(
            np.concatenate(
                (np.ones(1, dtype=bool), learner_col[1:] != learner_col[:-1])
            )
        )
        bounds = np.append(starts, learner_col.size).tolist()
        learner_ids = take(learner_col[starts])
        learn_known = simulator.knowledge.learn_known
        for g, learner_id in enumerate(learner_ids):
            learn_known(learner_id, learned_ids[bounds[g] : bounds[g + 1]])
        return
    learned: Dict[Node, Set[int]] = defaultdict(set)
    for child_index, parent_index in cluster_tree.parent.items():
        if parent_index is None:
            continue
        child = clustering.clusters[child_index]
        parent = clustering.clusters[parent_index]
        child_members = sorted(child.members, key=identifier_of.__getitem__)
        parent_members = sorted(parent.members, key=identifier_of.__getitem__)
        span = max(len(child_members), len(parent_members))
        for position in range(span):
            a = child_members[position % len(child_members)]
            b = parent_members[position % len(parent_members)]
            learned[a].add(identifier_of[b])
            learned[b].add(identifier_of[a])
    learn_known = simulator.knowledge.learn_known
    for node, identifiers in learned.items():
        learn_known(identifier_of[node], identifiers)


def rank_matched_indices(
    source_indices: Sequence[int],
    target_indices: Sequence[int],
    count: int,
) -> Tuple[List[int], List[int]]:
    """Id-native :func:`rank_matched_triples`: ``(senders, receivers)`` columns.

    ``source_indices`` / ``target_indices`` are the id-sorted member lists of
    the two clusters as simulator node indices.  The rank-matching is cyclic
    with period ``len(source_indices)``, so the columns for ``count`` payloads
    are whole-pattern repetitions — built with list arithmetic, no per-token
    index math.
    """
    n_source = len(source_indices)
    n_target = len(target_indices)
    receiver_pattern = [
        target_indices[rank % n_target] for rank in range(n_source)
    ]
    source_pattern = list(source_indices)
    full, remainder = divmod(count, n_source)
    senders = source_pattern * full + source_pattern[:remainder]
    receivers = receiver_pattern * full + receiver_pattern[:remainder]
    return senders, receivers


def rank_matched_triples(
    source_members: Sequence[Node],
    target_members: Sequence[Node],
    payloads: Sequence[Any],
    words_map: Optional[Dict[Any, int]] = None,
) -> List[Tuple]:
    """(sender, receiver, payload) triples between rank-matched cluster members.

    ``source_members`` / ``target_members`` are the id-sorted member lists of
    the two clusters.  Payloads are spread round-robin over the source members
    (mirroring the load-balanced state) and each source member sends only to
    its fixed rank-matched counterpart in the target cluster, exactly the pairs
    taught by :func:`match_cluster_tree_ids`.  When ``words_map`` (payload ->
    precomputed word count) is given, 4-tuples ``(sender, receiver, payload,
    words)`` are produced so the exchange skips re-estimating payload sizes.
    """
    if not payloads:
        return []
    n_source = len(source_members)
    n_target = len(target_members)
    triples: List[Tuple] = []
    for position, payload in enumerate(payloads):
        sender_rank = position % n_source
        sender = source_members[sender_rank]
        receiver = target_members[sender_rank % n_target]
        if words_map is None:
            triples.append((sender, receiver, payload))
        else:
            triples.append((sender, receiver, payload, words_map[payload]))
    return triples


def rank_matched_transfers(
    simulator: HybridSimulator,
    source: Cluster,
    target: Cluster,
    payloads: Sequence[Any],
    tag: str,
) -> List[GlobalTransfer]:
    """Legacy wrapper around :func:`rank_matched_triples` producing transfers."""
    triples = rank_matched_triples(
        sorted(source.members, key=simulator.id_of),
        sorted(target.members, key=simulator.id_of),
        payloads,
    )
    return [
        GlobalTransfer(sender=sender, receiver=receiver, payload=payload, tag=tag)
        for sender, receiver, payload in triples
    ]


@dataclasses.dataclass
class DisseminationResult:
    """Outcome of a k-dissemination run.

    ``known_tokens`` maps each node to the tokens it knows, as frozensets;
    members of the same cluster share one frozenset (they learn the same
    tokens in the final intra-cluster flood).
    """

    tokens: Set[Any]
    known_tokens: Dict[Node, FrozenSet[Any]]
    k: int
    nq: int
    clustering: Clustering
    cluster_tree: ClusterTree
    metrics: RoundMetrics

    def all_nodes_know_all_tokens(self) -> bool:
        return all(known == self.tokens for known in self.known_tokens.values())


class KDissemination(BatchAlgorithm):
    """Theorem 1: deterministic ``eO(NQ_k)``-round k-dissemination in HYBRID_0."""

    def __init__(
        self,
        simulator: HybridSimulator,
        tokens_by_node: Dict[Node, Sequence[Any]],
        *,
        nq: Optional[int] = None,
        clustering: Optional[Clustering] = None,
        engine: str = "batch",
        charge_only: bool = False,
    ) -> None:
        super().__init__(simulator, engine=engine, charge_only=charge_only)
        node_set = set(simulator.nodes)
        self.tokens_by_node = {
            node: list(tokens) for node, tokens in tokens_by_node.items() if tokens
        }
        for node in self.tokens_by_node:
            if node not in node_set:
                raise KeyError(f"token holder {node!r} is not a node of the network")
        self._nq_hint = nq
        self._clustering_hint = clustering
        # Phase state.
        self._log_n = log2_ceil(max(simulator.n, 2))
        self.all_tokens: Set[Any] = set()
        self.k = 0
        self.nq = 0
        self.clustering: Optional[Clustering] = None
        self.cluster_tree: Optional[ClusterTree] = None
        self._sorted_members: Dict[int, List[Node]] = {}
        self._member_indices: Dict[int, List[int]] = {}
        self._member_arrays: Dict[int, Any] = {}
        # Permutation-array cluster layout (plane engine): one id-native
        # buffer of member node indices, id-sorted within each cluster's
        # ``[starts[ci], starts[ci + 1])`` range; ``_member_arrays`` holds
        # views into it.
        self._member_perm: Any = None
        self._member_starts: Any = None
        self._held: Dict[Node, List[Any]] = {}
        # Id-native token state (phase 5): tokens are handled as *ranks* into
        # the one str-sorted token list, so set algebra over cluster holdings
        # becomes boolean-mask work and the sorted payload order of every
        # exchange is simply ascending rank.
        self._sorted_tokens: List[Any] = []
        self._token_rank: Dict[Any, int] = {}
        self._cluster_masks: Any = None
        self._uniform_token_words: Optional[int] = None
        self._known_tokens: Dict[Node, FrozenSet[Any]] = {}
        # Each token crosses many cluster-tree edges; its word size is
        # computed once (tokens are hashable — they live in sets throughout
        # the algorithm) and reused by every exchange.
        self._token_words: Dict[Any, int] = {}
        self._words_by_rank: List[int] = []

    # ------------------------------------------------------------------
    def phases(self):
        return (
            ("parameters", self._phase_parameters),
            ("clustering", self._phase_clustering),
            ("load-balance", self._phase_load_balance),
            ("converge-cast", self._phase_converge_cast),
            ("down-cast", self._phase_down_cast),
        )

    @property
    def _trivial(self) -> bool:
        return self.k == 0

    # ------------------------------------------------------------------
    def _phase_parameters(self) -> None:
        """Phase 1: compute k (Lemma 4.4 aggregation, physically simulated) and
        NQ_k (Lemma 3.3, charged)."""
        sim = self.simulator
        for tokens in self.tokens_by_node.values():
            self.all_tokens.update(tokens)
        self.k = len(self.all_tokens)
        if self._trivial:
            return
        counts = {node: len(tokens) for node, tokens in self.tokens_by_node.items()}
        tree = build_virtual_tree(sim)
        basic_aggregation(
            sim,
            counts,
            lambda a, b: (a or 0) + (b or 0),
            tree=tree,
            engine=self.engine,
        )
        nq = self._nq_hint
        if nq is None:
            nq = neighborhood_quality(sim.graph, self.k)
        self.nq = max(1, nq)
        sim.charge_rounds(self.nq, "distributed computation of NQ_k", "Lemma 3.3")

    def _phase_clustering(self) -> None:
        """Phases 2 + 3: clustering (Lemma 3.5) and cluster chaining (Lemma 4.6
        plus rank matching), both charged."""
        if self._trivial:
            return
        sim = self.simulator
        log_n = self._log_n
        clustering = self._clustering_hint
        if clustering is None:
            clustering = distributed_nq_clustering(sim, self.k, nq=self.nq)
        self.clustering = clustering
        self.cluster_tree = build_cluster_tree(clustering)
        identifier_of = sim.node_identifiers()
        indexer = sim.node_indexer()
        np = _accel.np
        clusters = clustering.clusters
        permuted = False
        if np is not None and self.use_plane:
            # Clusters as index ranges over one permutation array
            # (:meth:`Clustering.member_layout`): cluster ``ci``'s id-sorted
            # members are the slice ``member_perm[starts[ci]:starts[ci + 1]]``
            # — array views into one buffer instead of a sorted list per
            # cluster.  The rank-matched workloads of phase 5 are tiled
            # straight from these ranges without touching individual tokens.
            try:
                member_perm, starts = clustering.member_layout(
                    np, indexer, identifier_of
                )
                permuted = True
            except TypeError:
                permuted = False  # non-integer identifiers: sorted-list path
        if permuted:
            self._member_perm = member_perm
            self._member_starts = starts
            bounds = starts.tolist()
            self._member_arrays = {
                c.index: member_perm[bounds[c.index] : bounds[c.index + 1]]
                for c in clusters
            }
        else:
            self._sorted_members = {
                cluster.index: sorted(cluster.members, key=identifier_of.__getitem__)
                for cluster in clusters
            }
            self._member_indices = {
                index: [indexer[member] for member in members]
                for index, members in self._sorted_members.items()
            }
            if np is not None:
                self._member_arrays = {
                    index: np.asarray(indices, dtype=np.int64)
                    for index, indices in self._member_indices.items()
                }
        sim.charge_rounds(
            log_n * log_n,
            "cluster-tree construction over cluster leaders",
            "Lemma 4.6",
        )
        sim.charge_rounds(
            log_n,
            "matching parent/child cluster nodes rank-by-rank",
            "Theorem 1, cluster chaining subphase 2",
        )
        leader_ids = frozenset(sim.id_of(c.leader) for c in clustering.clusters)
        sim.declare_learned_ids_bulk(
            (member for cluster in clustering.clusters for member in cluster.members),
            leader_ids,
        )
        match_cluster_tree_ids(
            sim,
            clustering,
            self.cluster_tree,
            member_arrays=self._member_arrays if permuted else None,
        )

    def _phase_load_balance(self) -> None:
        """Phase 4: initial load balancing inside each cluster (Lemma 4.1,
        charged)."""
        if self._trivial:
            return
        held: Dict[Node, List[Any]] = defaultdict(list)
        for node, tokens in self.tokens_by_node.items():
            held[node].extend(tokens)
        self._held = self._load_balance_all_clusters(
            self.clustering, held, self.nq, self._log_n, "initial"
        )

    def _phase_converge_cast(self) -> None:
        """Phase 5a: converge-cast all tokens up the cluster tree (measured).

        Token holdings are tracked as one boolean mask per cluster over the
        str-sorted token list, so the per-edge "new tokens" set difference and
        the parent union are whole-row mask operations; the payloads an edge
        carries are the mask's set ranks in ascending order — exactly the
        ``sorted(key=str)`` payload order of the historical set formulation,
        so the schedule is unchanged.
        """
        if self._trivial:
            return
        sim = self.simulator
        clustering = self.clustering
        cluster_tree = self.cluster_tree
        sorted_tokens = sorted(self.all_tokens, key=str)
        self._sorted_tokens = sorted_tokens
        token_rank = {token: rank for rank, token in enumerate(sorted_tokens)}
        self._token_rank = token_rank
        self._token_words = {token: payload_words(token) for token in sorted_tokens}
        self._words_by_rank = [self._token_words[token] for token in sorted_tokens]
        distinct_words = set(self._words_by_rank)
        # Homogeneous tokens (the normal case) let the plane builder emit the
        # words column as one list repetition instead of a per-token lookup.
        self._uniform_token_words = (
            distinct_words.pop() if len(distinct_words) == 1 else None
        )

        np = _accel.np
        k = self.k
        cluster_count = len(clustering.clusters)
        cluster_of = clustering.cluster_of
        if np is not None:
            masks = np.zeros((cluster_count, k), dtype=bool)
            for node, tokens in self._held.items():
                row = masks[cluster_of[node]]
                for token in tokens:
                    row[token_rank[token]] = True
        else:
            masks = [set() for _ in range(cluster_count)]
            for node, tokens in self._held.items():
                masks[cluster_of[node]].update(token_rank[token] for token in tokens)
        self._cluster_masks = masks

        levels = cluster_tree.levels()
        for level in reversed(levels[1:]):
            edges: List[Tuple[int, int, Any]] = []
            for cluster_index in level:
                parent_index = cluster_tree.parent[cluster_index]
                if np is not None:
                    new = masks[cluster_index] & ~masks[parent_index]
                    edges.append((cluster_index, parent_index, np.flatnonzero(new)))
                    masks[parent_index] |= masks[cluster_index]
                else:
                    new_ranks = sorted(masks[cluster_index] - masks[parent_index])
                    edges.append((cluster_index, parent_index, new_ranks))
                    masks[parent_index].update(masks[cluster_index])
            self._exchange_level(edges)
            # Load balancing at the receiving clusters before the next level.
            sim.charge_rounds(
                8 * self.nq * self._log_n,
                "intra-cluster load balancing between converge-cast levels",
                "Lemma 4.1",
            )

    def _phase_down_cast(self) -> None:
        """Phase 5b: cast every token back down the cluster tree (measured),
        then charge the final intra-cluster flood."""
        if self._trivial:
            return
        sim = self.simulator
        cluster_tree = self.cluster_tree
        masks = self._cluster_masks
        np = _accel.np
        k = self.k
        # The down-cast proceeds top-down, so every sender cluster already
        # holds the full token set when its level is processed and every
        # receiver is read exactly once; the per-child "missing" payload is
        # therefore the complement of the child's converge-cast-final mask —
        # no holdings need updating along the way.
        all_ranks = range(k)
        for level in cluster_tree.levels():
            edges: List[Tuple[int, int, Any]] = []
            for cluster_index in level:
                for child_index in cluster_tree.children[cluster_index]:
                    if np is not None:
                        missing = np.flatnonzero(~masks[child_index])
                    else:
                        have = masks[child_index]
                        missing = (
                            list(all_ranks)
                            if not have
                            else [rank for rank in all_ranks if rank not in have]
                        )
                    edges.append((cluster_index, child_index, missing))
            self._exchange_level(edges)
            sim.charge_rounds(
                8 * self.nq * self._log_n,
                "intra-cluster load balancing between down-cast levels",
                "Lemma 4.1",
            )

        # Final intra-cluster flood: every node learns its cluster's tokens.
        sim.charge_rounds(
            4 * self.nq * self._log_n,
            "final intra-cluster flooding of all tokens",
            "Theorem 1, dissemination phase",
        )
        # After the down-cast every cluster holds every token, so all nodes
        # share one frozenset (copying per member is an O(n * k) cost that
        # dwarfs the simulation at scale); frozenset makes the sharing safe —
        # accidental mutation raises instead of silently editing every
        # clustermate's entry.
        tokens_everywhere = frozenset(self.all_tokens)
        self._known_tokens = {
            member: tokens_everywhere
            for cluster in self.clustering.clusters
            for member in cluster.members
        }

    def finish(self) -> DisseminationResult:
        sim = self.simulator
        if self._trivial:
            return DisseminationResult(
                tokens=set(),
                known_tokens={v: frozenset() for v in sim.nodes},
                k=0,
                nq=0,
                clustering=Clustering(clusters=[], nq=0, k=0, cluster_of={}),
                cluster_tree=ClusterTree(root=0, parent={0: None}, children={0: []}, order=[0]),
                metrics=sim.metrics,
            )
        return DisseminationResult(
            tokens=self.all_tokens,
            known_tokens=self._known_tokens,
            k=self.k,
            nq=self.nq,
            clustering=self.clustering,
            cluster_tree=self.cluster_tree,
            metrics=sim.metrics,
        )

    # ------------------------------------------------------------------
    def _exchange_level(self, edges: Sequence[Tuple[int, int, Any]]) -> None:
        """Move one cluster-tree level of tokens: ``(source, target, ranks)``.

        ``ranks`` are ascending positions into the str-sorted token list.  On
        the plane engine the whole level is assembled as one id-native
        :class:`~repro.simulator.engine.TokenPlane` from the precomputed
        member-index columns (rank-matching is cyclic pattern repetition, word
        counts come from the shared per-rank table); the comparison engines
        build the historical tuple workload.  The token order — level-edge by
        level-edge, payloads in sorted order, senders cycling by rank — is
        identical either way, so so are the shard boundaries.
        """
        if self.use_plane:
            plane = self._build_level_plane(edges)
            if plane is not None:
                self.exchange(plane, "kdiss", collect=False)
            return
        sorted_tokens = self._sorted_tokens
        triples: List[Tuple] = []
        for source_index, target_index, ranks in edges:
            triples.extend(
                rank_matched_triples(
                    self._sorted_members[source_index],
                    self._sorted_members[target_index],
                    [sorted_tokens[rank] for rank in ranks],
                    self._token_words,
                )
            )
        if triples:
            self.exchange(triples, "kdiss", collect=False)

    def _build_level_plane(
        self, edges: Sequence[Tuple[int, int, Any]]
    ) -> Optional[TokenPlane]:
        """Assemble one level's id-native workload from token ranks.

        With NumPy active the sender/receiver columns are whole-chunk tile
        operations over the cached per-cluster member arrays (the cyclic
        rank-matching is exactly ``np.resize``), the words column is one
        ``np.full`` (homogeneous tokens) or a take from the per-rank word
        table, and the payload side list is one ``itemgetter`` pass over the
        str-sorted token list.  The fallback builds the same columns with
        list-pattern arithmetic.  Token order is identical to the tuple
        engines' workload, so the shard boundaries coincide.

        Under ``charge_only`` the payload pass is skipped entirely — the
        plane is built payload-free (``payloads=None``).  The id/word columns
        (and hence the schedule and every metric) are untouched by the
        elision; this is where charge-only dissemination stops scaling with
        token *content* and the n ~ 10^6 tier becomes feasible.
        """
        np = _accel.np
        sorted_tokens = self._sorted_tokens
        uniform = self._uniform_token_words
        charge_only = self.charge_only
        payloads: Optional[List[Any]] = None if charge_only else []
        if np is not None:
            member_arrays = self._member_arrays
            sender_chunks = []
            receiver_chunks = []
            rank_chunks = []
            for source_index, target_index, ranks in edges:
                count = len(ranks)
                if not count:
                    continue
                source = member_arrays[source_index]
                target = member_arrays[target_index]
                pattern = target[np.arange(source.size) % target.size]
                sender_chunks.append(np.resize(source, count))
                receiver_chunks.append(np.resize(pattern, count))
                rank_chunks.append(ranks)
                if charge_only:
                    continue
                if count == len(sorted_tokens):
                    payloads.extend(sorted_tokens)
                elif count == 1:
                    payloads.append(sorted_tokens[ranks[0]])
                else:
                    payloads.extend(operator.itemgetter(*ranks)(sorted_tokens))
            if not sender_chunks:
                return None
            if uniform is not None:
                count_total = sum(chunk.size for chunk in sender_chunks)
                words = np.full(count_total, uniform, dtype=np.int64)
            else:
                table = np.asarray(self._words_by_rank, dtype=np.int64)
                words = table.take(np.concatenate(rank_chunks))
            return TokenPlane(
                np.concatenate(sender_chunks),
                np.concatenate(receiver_chunks),
                words,
                payloads,
            )
        words_by_rank = self._words_by_rank
        senders: List[int] = []
        receivers: List[int] = []
        words: List[int] = []
        member_indices = self._member_indices
        for source_index, target_index, ranks in edges:
            if not len(ranks):
                continue
            sender_column, receiver_column = rank_matched_indices(
                member_indices[source_index],
                member_indices[target_index],
                len(ranks),
            )
            senders.extend(sender_column)
            receivers.extend(receiver_column)
            if uniform is not None:
                words.extend([uniform] * len(ranks))
            else:
                words.extend([words_by_rank[rank] for rank in ranks])
            if not charge_only:
                payloads.extend(sorted_tokens[rank] for rank in ranks)
        if not senders:
            return None
        return TokenPlane(senders, receivers, words, payloads)

    def _load_balance_all_clusters(
        self,
        clustering: Clustering,
        held: Dict[Node, List[Any]],
        nq: int,
        log_n: int,
        label: str,
    ) -> Dict[Node, List[Any]]:
        balanced: Dict[Node, List[Any]] = {}
        weak_diam = 4 * nq * log_n
        for cluster in clustering.clusters:
            allocation = balance_items(cluster.members, held)
            balanced.update(allocation)
        self.simulator.charge_rounds(
            2 * weak_diam,
            f"{label} intra-cluster load balancing",
            "Lemma 4.1",
        )
        return balanced
