"""Scenario: control-message dissemination and aggregation in a data center.

The paper's introduction motivates HYBRID networks with data centers that
combine high-bandwidth wired links (the local mode) with a shared, congestion-
limited wireless/out-of-band facility (the global mode).  This example models a
small data-center fabric as a 3-dimensional torus of racks and exercises two
control-plane tasks:

* announcing a batch of configuration changes to every rack
  (``k-dissemination``, Theorem 1), including the failure-notification special
  case where all announcements originate at a single rack, and
* collecting fabric-wide health statistics — per-metric minima / maxima / sums
  over every rack (``k-aggregation``, Theorem 2).

For both tasks the script prints the measured round counts next to the prior
existential bound and the universal lower bound, and verifies the outputs
against a direct computation.

Run with ``python examples/datacenter_control_plane.py``.
"""

from __future__ import annotations

import operator
import random

from repro import HybridSimulator, KAggregation, KDissemination, ModelConfig, neighborhood_quality
from repro.baselines.existential import ExistentialBounds
from repro.graphs import GraphSpec, generate_graph
from repro.lowerbounds import dissemination_lower_bound


def build_fabric():
    """A 5x5x5 torus: 125 racks, each wired to its 6 neighbours."""
    spec = GraphSpec.of("torus", side=5, dim=3)
    return spec, generate_graph(spec)


def disseminate_config_changes(graph, *, k: int, concentrated: bool, seed: int) -> None:
    rng = random.Random(seed)
    nodes = sorted(graph.nodes)
    tokens = {}
    if concentrated:
        # A single rack announces every change (e.g. a failure notification
        # fan-out from the rack that detected it).
        tokens[nodes[0]] = [("config-change", index) for index in range(k)]
        origin = "a single rack"
    else:
        for index in range(k):
            tokens.setdefault(rng.choice(nodes), []).append(("config-change", index))
        origin = "racks chosen at random"

    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    result = KDissemination(sim, tokens).run()
    assert result.all_nodes_know_all_tokens()

    n = graph.number_of_nodes()
    lower = dissemination_lower_bound(graph, k)
    print(
        f"  {k} config changes from {origin}: "
        f"{sim.metrics.total_rounds} rounds total "
        f"(NQ_k = {result.nq}, prior ~ sqrt(k) = "
        f"{ExistentialBounds.broadcast_ahk20(n, k):.1f} x polylog, "
        f"universal LB = {lower.rounds:.2f})"
    )


def aggregate_health_metrics(graph, *, seed: int) -> None:
    rng = random.Random(seed)
    # Each rack reports three metrics: temperature, free capacity, error count.
    metrics_by_rack = {
        rack: [rng.randint(18, 45), rng.randint(0, 64), rng.randint(0, 9)]
        for rack in graph.nodes
    }

    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    hottest = KAggregation(sim, metrics_by_rack, max).run()
    expected_max = [
        max(metrics_by_rack[rack][index] for rack in graph.nodes) for index in range(3)
    ]
    assert hottest.aggregates == expected_max

    sim2 = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    totals = KAggregation(sim2, metrics_by_rack, operator.add).run()
    expected_sum = [
        sum(metrics_by_rack[rack][index] for rack in graph.nodes) for index in range(3)
    ]
    assert totals.aggregates == expected_sum

    print(
        f"  health aggregation (3 metrics, max + sum): "
        f"{sim.metrics.total_rounds} + {sim2.metrics.total_rounds} rounds; "
        f"hottest rack temperature = {hottest.aggregates[0]} C, "
        f"total errors = {totals.aggregates[2]}"
    )


def main() -> None:
    spec, graph = build_fabric()
    n = graph.number_of_nodes()
    print(f"data-center fabric: {spec.label()}, {n} racks")
    print(f"NQ_n = {neighborhood_quality(graph, n)} (vs sqrt(n) = {n ** 0.5:.1f})")

    print("configuration dissemination (Theorem 1):")
    disseminate_config_changes(graph, k=60, concentrated=False, seed=1)
    disseminate_config_changes(graph, k=60, concentrated=True, seed=1)

    print("fleet health aggregation (Theorem 2):")
    aggregate_health_metrics(graph, seed=2)


if __name__ == "__main__":
    main()
