"""Unit tests for the node-communication problem (Lemma 7.1) and the universal
lower bounds (Theorems 4, 10-12, Corollary 2.1)."""

import math

import pytest

from repro.core.neighborhood_quality import neighborhood_quality
from repro.graphs.generators import grid_graph, path_graph, star_graph, two_cluster_graph
from repro.lowerbounds.node_communication import (
    NodeCommunicationInstance,
    node_communication_lower_bound,
)
from repro.lowerbounds.universal import (
    bcc_simulation_lower_bound,
    dissemination_lower_bound,
    routing_lower_bound,
    shortest_paths_lower_bound,
)


class TestNodeCommunicationProblem:
    def test_lower_bound_formula(self):
        value = node_communication_lower_bound(
            entropy_bits=1000, reachable_count=10, gamma_bits=10, hop_distance=100,
            success_probability=1.0,
        )
        assert value == pytest.approx(min((1000 - 1) / 100, 49.0))

    def test_locality_term_caps_the_bound(self):
        value = node_communication_lower_bound(
            entropy_bits=10**9, reachable_count=1, gamma_bits=1, hop_distance=10,
            success_probability=1.0,
        )
        assert value == pytest.approx(4.0)

    def test_never_negative(self):
        value = node_communication_lower_bound(
            entropy_bits=0.5, reachable_count=100, gamma_bits=100, hop_distance=2,
            success_probability=0.5,
        )
        assert value == 0.0

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            node_communication_lower_bound(
                entropy_bits=1, reachable_count=1, gamma_bits=1, hop_distance=1,
                success_probability=0.0,
            )

    def test_instance_construction_on_path(self):
        g = path_graph(50)
        instance = NodeCommunicationInstance.build(g, {49}, {0}, entropy_bits=100)
        assert instance.hop_distance == 49
        assert instance.reachable_count == 49  # B_48(node 49) misses only node 0
        assert instance.lower_bound_rounds(10, 1.0) > 0

    def test_instance_rejects_overlapping_sets(self):
        g = path_graph(10)
        with pytest.raises(ValueError):
            NodeCommunicationInstance.build(g, {0, 1}, {1, 2}, entropy_bits=10)

    def test_instance_rejects_empty_sets(self):
        g = path_graph(10)
        with pytest.raises(ValueError):
            NodeCommunicationInstance.build(g, set(), {1}, entropy_bits=10)


class TestUniversalLowerBounds:
    def test_path_bound_is_positive_and_below_nq(self):
        g = path_graph(400)
        k = 200
        bound = dissemination_lower_bound(g, k)
        nq = neighborhood_quality(g, k)
        assert bound.nq == nq
        assert bound.rounds > 0
        # Lemma 7.1's value is at most h/2 - 1 <= NQ_k; the eOmega(NQ_k)
        # statement hides polylog factors.
        assert bound.rounds <= nq

    def test_bottleneck_node_has_small_ball(self):
        g = path_graph(200)
        k = 100
        bound = dissemination_lower_bound(g, k)
        # Lemma 3.8: the chosen node maximizes NQ_k(v); on a path that is an end
        # node.
        assert bound.bottleneck_node in (0, 199)

    def test_trivial_regime_small_nq(self):
        g = star_graph(30)
        bound = dissemination_lower_bound(g, 10)
        assert bound.rounds == 0.0

    def test_bound_scales_with_k_on_paths(self):
        g = path_graph(400)
        small = dissemination_lower_bound(g, 64)
        large = dissemination_lower_bound(g, 256)
        assert large.rounds >= small.rounds

    def test_routing_and_sp_bounds_share_the_instance(self):
        g = path_graph(300)
        k = 120
        d_bound = dissemination_lower_bound(g, k)
        r_bound = routing_lower_bound(g, k, 5)
        sp_bound = shortest_paths_lower_bound(g, k)
        assert d_bound.rounds == r_bound.rounds == sp_bound.rounds
        assert r_bound.problem.endswith("-routing")
        assert "SP" in sp_bound.problem or "SSP" in sp_bound.problem

    def test_unweighted_variant_label(self):
        g = path_graph(300)
        bound = shortest_paths_lower_bound(g, 100, weighted=False)
        assert bound.problem == "unweighted k-SSP"

    def test_bcc_bound_uses_k_equals_n(self):
        g = path_graph(300)
        bound = bcc_simulation_lower_bound(g)
        assert bound.k == 300
        assert bound.problem == "BCC-round simulation"

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            dissemination_lower_bound(path_graph(10), 0)
        with pytest.raises(ValueError):
            routing_lower_bound(path_graph(10), 5, 0)

    def test_consistency_check_helper(self):
        g = path_graph(300)
        bound = dissemination_lower_bound(g, 150)
        assert bound.is_consistent_with_upper_bound(bound.rounds + 5)
        assert not bound.is_consistent_with_upper_bound(bound.rounds / 2 - 1)

    def test_two_cluster_graph_bottleneck(self):
        # The two-cluster graph is the canonical node-communication shape: with
        # a long enough bridge the bound is strictly positive.
        g = two_cluster_graph(20, 300)
        bound = dissemination_lower_bound(g, 300)
        assert bound.rounds > 0
