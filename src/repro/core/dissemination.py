"""Universally optimal multi-message broadcast: ``k-dissemination`` (Theorem 1).

Problem (Definition 1.1): ``k`` tokens of O(log n) bits are initially spread
arbitrarily over the nodes (a node may hold anywhere between 0 and k of them);
at the end every node must know all ``k`` tokens.

Theorem 1: the problem is solvable deterministically in ``eO(NQ_k)`` rounds in
HYBRID_0.  The algorithm (Section 4.2, Figure 2) has five phases:

1. **Parameter computation** — compute ``k`` (basic aggregation, Lemma 4.4) and
   ``NQ_k`` (Lemma 3.3).
2. **Clustering** — partition ``V`` into clusters of weak diameter
   ``<= 4 NQ_k ceil(log n)`` and size ``[k/NQ_k, 2k/NQ_k]`` (Lemma 3.5).
3. **Cluster chaining** — build a logical cluster tree of depth/degree
   ``O(log n)`` (Lemma 4.6) and match the nodes of adjacent clusters rank-by-
   rank so matched nodes can talk over the global mode.
4. **Load balancing** — within each cluster, spread the held tokens so every
   node holds at most ``NQ_k`` of them (Lemma 4.1).
5. **Dissemination** — converge-cast all tokens up the cluster tree to the root
   cluster (load balancing before each level), then cast them back down; a
   final intra-cluster flood of ``4 NQ_k ceil(log n)`` local rounds makes every
   node know every token.

The global-mode token movements of phase 5 are physically simulated (throttled
to the per-node budget); the local-mode coordination of phases 2-4 and the
final flood are charged per the paper's analysis (DESIGN.md substitution
note 1).
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Any, Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.clustering import Cluster, Clustering, distributed_nq_clustering
from repro.core.load_balancing import balance_items, cluster_load_balance
from repro.core.neighborhood_quality import neighborhood_quality
from repro.core.overlay import VirtualTree, basic_aggregation, build_virtual_tree
from repro.core.transport import GlobalTransfer, throttled_global_exchange
from repro.simulator.config import log2_ceil
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = ["DisseminationResult", "KDissemination", "ClusterTree"]


@dataclasses.dataclass
class ClusterTree:
    """A rooted logical tree whose vertices are clusters (phase 3)."""

    root: int
    parent: Dict[int, Optional[int]]
    children: Dict[int, List[int]]
    order: List[int]

    def levels(self) -> List[List[int]]:
        result: List[List[int]] = []
        current = [self.root]
        while current:
            result.append(current)
            nxt: List[int] = []
            for index in current:
                nxt.extend(self.children[index])
            current = nxt
        return result

    @property
    def depth(self) -> int:
        return len(self.levels()) - 1


def build_cluster_tree(clustering: Clustering) -> ClusterTree:
    """Binary cluster tree over cluster indices (constant degree, O(log) depth)."""
    order = [cluster.index for cluster in clustering.clusters]
    parent: Dict[int, Optional[int]] = {}
    children: Dict[int, List[int]] = {index: [] for index in order}
    if not order:
        raise ValueError("clustering has no clusters")
    parent[order[0]] = None
    for position, index in enumerate(order):
        if position == 0:
            continue
        parent_index = order[(position - 1) // 2]
        parent[index] = parent_index
        children[parent_index].append(index)
    return ClusterTree(root=order[0], parent=parent, children=children, order=order)


def match_cluster_tree_ids(
    simulator: HybridSimulator, clustering: Clustering, cluster_tree: ClusterTree
) -> None:
    """Phase 3 subphase 2 of Theorem 1: rank-match adjacent clusters.

    For every edge of the cluster tree, member ``i`` of one cluster is paired
    with member ``i mod |other|`` of the other; both learn each other's
    identifier so they can exchange global messages.  The round cost of the
    matching (O(log n), one tree level at a time) is charged by the caller.
    """
    for child_index, parent_index in cluster_tree.parent.items():
        if parent_index is None:
            continue
        child = clustering.clusters[child_index]
        parent = clustering.clusters[parent_index]
        child_members = sorted(child.members, key=simulator.id_of)
        parent_members = sorted(parent.members, key=simulator.id_of)
        span = max(len(child_members), len(parent_members))
        for position in range(span):
            a = child_members[position % len(child_members)]
            b = parent_members[position % len(parent_members)]
            simulator.declare_learned_ids(a, [simulator.id_of(b)])
            simulator.declare_learned_ids(b, [simulator.id_of(a)])


def rank_matched_transfers(
    simulator: HybridSimulator,
    source: Cluster,
    target: Cluster,
    payloads: Sequence[Any],
    tag: str,
) -> List[GlobalTransfer]:
    """Transfers carrying ``payloads`` from ``source`` to ``target`` cluster.

    Payloads are spread round-robin over the source members (mirroring the
    load-balanced state) and each source member sends only to its fixed
    rank-matched counterpart in the target cluster, exactly the pairs taught by
    :func:`match_cluster_tree_ids`.
    """
    if not payloads:
        return []
    source_members = sorted(source.members, key=simulator.id_of)
    target_members = sorted(target.members, key=simulator.id_of)
    transfers: List[GlobalTransfer] = []
    for position, payload in enumerate(payloads):
        sender_rank = position % len(source_members)
        sender = source_members[sender_rank]
        receiver = target_members[sender_rank % len(target_members)]
        transfers.append(
            GlobalTransfer(sender=sender, receiver=receiver, payload=payload, tag=tag)
        )
    return transfers


@dataclasses.dataclass
class DisseminationResult:
    """Outcome of a k-dissemination run."""

    tokens: Set[Any]
    known_tokens: Dict[Node, Set[Any]]
    k: int
    nq: int
    clustering: Clustering
    cluster_tree: ClusterTree
    metrics: RoundMetrics

    def all_nodes_know_all_tokens(self) -> bool:
        return all(known == self.tokens for known in self.known_tokens.values())


class KDissemination:
    """Theorem 1: deterministic ``eO(NQ_k)``-round k-dissemination in HYBRID_0."""

    def __init__(
        self,
        simulator: HybridSimulator,
        tokens_by_node: Dict[Node, Sequence[Any]],
        *,
        nq: Optional[int] = None,
        clustering: Optional[Clustering] = None,
    ) -> None:
        self.simulator = simulator
        self.tokens_by_node = {
            node: list(tokens) for node, tokens in tokens_by_node.items() if tokens
        }
        for node in self.tokens_by_node:
            if node not in set(simulator.nodes):
                raise KeyError(f"token holder {node!r} is not a node of the network")
        self._nq_hint = nq
        self._clustering_hint = clustering

    # ------------------------------------------------------------------
    def run(self) -> DisseminationResult:
        sim = self.simulator
        log_n = log2_ceil(max(sim.n, 2))

        all_tokens: Set[Any] = set()
        for tokens in self.tokens_by_node.values():
            all_tokens.update(tokens)
        k = len(all_tokens)
        if k == 0:
            return DisseminationResult(
                tokens=set(),
                known_tokens={v: set() for v in sim.nodes},
                k=0,
                nq=0,
                clustering=Clustering(clusters=[], nq=0, k=0, cluster_of={}),
                cluster_tree=ClusterTree(root=0, parent={0: None}, children={0: []}, order=[0]),
                metrics=sim.metrics,
            )

        # Phase 1: compute k (Lemma 4.4 aggregation, physically simulated) and
        # NQ_k (Lemma 3.3, charged).
        counts = {node: len(tokens) for node, tokens in self.tokens_by_node.items()}
        tree = build_virtual_tree(sim)
        basic_aggregation(sim, counts, lambda a, b: (a or 0) + (b or 0), tree=tree)
        nq = self._nq_hint
        if nq is None:
            nq = neighborhood_quality(sim.graph, k)
        nq = max(1, nq)
        sim.charge_rounds(nq, "distributed computation of NQ_k", "Lemma 3.3")

        # Phase 2: clustering (Lemma 3.5, charged).
        clustering = self._clustering_hint
        if clustering is None:
            clustering = distributed_nq_clustering(sim, k, nq=nq)

        # Phase 3: cluster chaining (Lemma 4.6 + rank matching, charged eO(1)).
        cluster_tree = build_cluster_tree(clustering)
        sim.charge_rounds(
            log_n * log_n,
            "cluster-tree construction over cluster leaders",
            "Lemma 4.6",
        )
        sim.charge_rounds(
            log_n,
            "matching parent/child cluster nodes rank-by-rank",
            "Theorem 1, cluster chaining subphase 2",
        )
        leader_ids = [sim.id_of(c.leader) for c in clustering.clusters]
        for cluster in clustering.clusters:
            for member in cluster.members:
                sim.declare_learned_ids(member, leader_ids)
        match_cluster_tree_ids(sim, clustering, cluster_tree)

        # Phase 4: initial load balancing inside each cluster (Lemma 4.1, charged).
        held: Dict[Node, List[Any]] = defaultdict(list)
        for node, tokens in self.tokens_by_node.items():
            held[node].extend(tokens)
        held = self._load_balance_all_clusters(clustering, held, nq, log_n, "initial")

        # Phase 5a: converge-cast all tokens up the cluster tree (measured).
        cluster_tokens: Dict[int, Set[Any]] = {
            cluster.index: set() for cluster in clustering.clusters
        }
        for node, tokens in held.items():
            cluster_tokens[clustering.cluster_of[node]].update(tokens)

        levels = cluster_tree.levels()
        for level in reversed(levels[1:]):
            transfers: List[GlobalTransfer] = []
            for cluster_index in level:
                parent_index = cluster_tree.parent[cluster_index]
                child = clustering.clusters[cluster_index]
                parent = clustering.clusters[parent_index]
                new_tokens = cluster_tokens[cluster_index] - cluster_tokens[parent_index]
                transfers.extend(
                    rank_matched_transfers(
                        sim, child, parent, sorted(new_tokens, key=str), "kdiss"
                    )
                )
                cluster_tokens[parent_index].update(new_tokens)
            if transfers:
                throttled_global_exchange(sim, transfers)
            # Load balancing at the receiving clusters before the next level.
            sim.charge_rounds(
                8 * nq * log_n,
                "intra-cluster load balancing between converge-cast levels",
                "Lemma 4.1",
            )

        # Phase 5b: cast every token back down the cluster tree (measured).
        root_index = cluster_tree.root
        cluster_tokens[root_index] = set(all_tokens)
        for level in levels:
            transfers = []
            for cluster_index in level:
                for child_index in cluster_tree.children[cluster_index]:
                    parent = clustering.clusters[cluster_index]
                    child = clustering.clusters[child_index]
                    missing = cluster_tokens[cluster_index] - cluster_tokens[child_index]
                    transfers.extend(
                        rank_matched_transfers(
                            sim, parent, child, sorted(missing, key=str), "kdiss"
                        )
                    )
                    cluster_tokens[child_index].update(missing)
            if transfers:
                throttled_global_exchange(sim, transfers)
            sim.charge_rounds(
                8 * nq * log_n,
                "intra-cluster load balancing between down-cast levels",
                "Lemma 4.1",
            )

        # Final intra-cluster flood: every node learns its cluster's tokens.
        sim.charge_rounds(
            4 * nq * log_n,
            "final intra-cluster flooding of all tokens",
            "Theorem 1, dissemination phase",
        )
        known_tokens: Dict[Node, Set[Any]] = {}
        for cluster in clustering.clusters:
            tokens_here = set(cluster_tokens[cluster.index])
            for member in cluster.members:
                known_tokens[member] = set(tokens_here)

        return DisseminationResult(
            tokens=all_tokens,
            known_tokens=known_tokens,
            k=k,
            nq=nq,
            clustering=clustering,
            cluster_tree=cluster_tree,
            metrics=sim.metrics,
        )

    # ------------------------------------------------------------------
    def _load_balance_all_clusters(
        self,
        clustering: Clustering,
        held: Dict[Node, List[Any]],
        nq: int,
        log_n: int,
        label: str,
    ) -> Dict[Node, List[Any]]:
        balanced: Dict[Node, List[Any]] = {}
        weak_diam = 4 * nq * log_n
        for cluster in clustering.clusters:
            allocation = balance_items(cluster.members, held)
            balanced.update(allocation)
        self.simulator.charge_rounds(
            2 * weak_diam,
            f"{label} intra-cluster load balancing",
            "Lemma 4.1",
        )
        return balanced

