"""The synchronous HYBRID(lambda, gamma) network simulator.

The simulator owns the local communication graph ``G`` and advances in
synchronous rounds (Section 1.3):

* **Local mode** — in each round a node may send an arbitrarily large message
  over each incident edge of ``G`` (unless ``lambda`` is finite, as in CONGEST,
  in which case the per-edge payload is capped).
* **Global mode** — in each round a node may send and receive at most
  ``gamma`` bits (equivalently, O(log n) messages of O(log n) bits) addressed to
  *any* node, provided the sender knows the receiver's identifier.  In HYBRID
  all identifiers are globally known; in HYBRID_0 a node initially only knows
  its own identifier and those of its graph neighbors, and knowledge spreads
  only through received messages.

Batch messaging engine
----------------------

The simulator is *batch-native*: queued traffic is stored as lightweight
``(sender, payload, tag, words)`` records pre-bucketed by receiver, and
capacity accounting is done with aggregated per-node word counters that are
updated at enqueue time — ``advance_round`` never iterates over individual
messages to enforce the budget.  Whole rounds of traffic are submitted with

* :meth:`HybridSimulator.local_send_batch` — an iterable of
  ``(sender, receiver, payload)`` (or ``(sender, receiver, payload, words)``
  with the payload size precomputed) triples over local edges,
* :meth:`HybridSimulator.global_send_batch` — the same shape for the global
  mode, addressed by node (or by identifier with ``by_id=True``), and
* :meth:`HybridSimulator.per_node_inbox` — the pre-bucketed delivery dict
  ``receiver -> [(sender, payload, tag, words), ...]`` of the last round,
  returned without materialising per-message objects.

Capacity-accounting semantics: every queued global record adds its word count
(payload words plus tag words) to the sender's and the receiver's running
totals for the round; at ``advance_round`` each total is compared against
:meth:`HybridSimulator.global_budget_words` exactly once per node.  Send-side
overruns raise in strict mode (they are always under the algorithm's control);
receive-side overruns raise only when ``enforce_receive_capacity`` is set and
are otherwise recorded in
:class:`~repro.simulator.metrics.RoundMetrics.capacity_violations`.  The
accounting is therefore identical to charging each message individually — only
the bookkeeping is O(#nodes) instead of O(#messages) per round.

Id-native plane API
-------------------

The round engine (:mod:`repro.simulator.engine`) talks to the simulator in
**token planes**: parallel arrays of integer node indices (positions in the
deterministic :attr:`HybridSimulator.nodes` order, see :meth:`node_indexer`)
plus a payload side list.  :meth:`global_send_plane` /
:meth:`local_send_plane` (and the array-argument conveniences
:meth:`global_send_batch_ids` / :meth:`local_send_batch_ids`) queue a whole
shard at once: membership is a range check, HYBRID_0 knowledge and local
adjacency are validated on the workload's *unique* (sender, receiver) pairs
with set/array operations, the capacity counters are updated via grouped
per-node reductions, and the delivery buckets are built in one sort/group pass
— **lazily**: plane records are expanded into per-receiver
``(sender, payload, tag, words)`` tuples only if somebody actually reads the
round's inbox.  The plane paths validate a workload up front and queue nothing
on error (the tuple paths abort mid-batch, keeping the already-queued prefix).

Like the analytics index, the plane paths cache id-native state on first use
(node-index maps, identifier arrays, adjacency keys) — but the graph is no
longer assumed frozen: the simulator records the graph's **version stamp**
(:func:`repro.graphs.index.graph_version`) and every plane send checks it, so
a mutation through :class:`repro.graphs.mutation.GraphMutator`,
:mod:`repro.graphs.weighted` or :func:`repro.graphs.index.invalidate_index`
makes the next plane send raise
:class:`~repro.simulator.errors.StaleGraphError` instead of silently
validating against dead adjacency keys.  After a deliberate mid-simulation
mutation, call :meth:`HybridSimulator.invalidate_index` to drop the cached
arrays and resynchronise the stamp.  Node additions/removals remain
unsupported (the node order, identifier assignment and knowledge state are
fixed at construction); edge edits are fully supported, including permanent
link-failure commits from the fault layer (see ``advance_round``).

Legacy per-message API
----------------------

``local_send`` / ``global_send`` / ``local_inbox`` / ``global_inbox`` are kept
as thin wrappers over the batch engine: the send wrappers enqueue a single
record, and the inbox wrappers lazily materialise
:class:`~repro.simulator.messages.Message` objects from the delivered records
(cached per round).  They are not deprecated for correctness work — unit tests
and small experiments read better with them — but hot paths should migrate to
the batch API (see :mod:`repro.simulator.engine`); new per-message conveniences
will not be added.

Algorithms drive the simulator directly::

    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=0)
    sim.global_send_batch([(u, v, payload) for v, payload in assignments])
    sim.advance_round()
    for sender, payload, tag, words in sim.per_node_inbox().get(v, ()):
        ...

Every send is size-accounted; capacity violations raise (strict mode) or are
recorded in :class:`~repro.simulator.metrics.RoundMetrics`.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.graphs.index import graph_version
from repro.graphs.mutation import GraphMutator
from repro.simulator import _accel
from repro.simulator.config import IdentifierRegime, ModelConfig
from repro.simulator.faults import FaultSchedule, FaultState
from repro.simulator.errors import (
    CapacityExceededError,
    ChargeOnlyError,
    LocalBandwidthExceededError,
    NotANeighborError,
    RoundLifecycleError,
    StaleGraphError,
    UnknownIdentifierError,
    UnknownNodeError,
)
from repro.simulator.knowledge import KnowledgeTracker
from repro.simulator.messages import GLOBAL_MODE, LOCAL_MODE, Message, payload_words
from repro.simulator.metrics import RoundMetrics
from repro.simulator.sharding import span_keep_mask

Node = Hashable

__all__ = ["HybridSimulator", "BatchRecord", "node_sort_key"]

#: One delivered (or pending) message as stored by the batch engine:
#: ``(sender, payload, tag, words)``.  The receiver is the bucket key and the
#: round is the simulator's ``_delivered_round``.
BatchRecord = Tuple[Node, Any, Optional[str], int]


# HYBRID_0 identifiers come from a polynomial range [n^c] (c = 3).  The
# range is capped so every identifier fits both a C ssize_t (required by
# random.sample over a range) and an int64 (required by the packed
# knowledge arrays); the cap stays >= n^2 for any graph that fits memory,
# so identifier collisions remain impossible and the sparse-regime
# semantics are unchanged.  Below the cap (n < ~1.66 * 10^6) the draw is
# bit-identical to the uncapped formulation.
_ID_UNIVERSE_CAP = 1 << 62


def _identifier_universe(n: int) -> int:
    return max(min(n**3, _ID_UNIVERSE_CAP), 8)


def node_sort_key(node: Node) -> Tuple[int, Any]:
    """Deterministic total order over nodes: numbers numerically, then strings.

    Integer-labelled graphs (the common case) order as ``0, 1, 2, ..., 10, 11``
    rather than the lexicographic ``0, 1, 10, 11, ..., 2`` a plain ``key=str``
    produces; non-numeric labels fall back to their string form in a separate
    group so mixed-type node sets still compare without a ``TypeError``.
    """
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return (1, str(node))
    return (0, node)


class _PairMemo:
    """Monotone memo of flat ``a * n + b`` pair keys with a vectorised filter.

    The plane paths only need per-(sender, receiver)-pair knowledge work the
    *first* time a pair appears; rank-matched exchanges repeat the same pairs
    every shard.  The memo keeps the authoritative Python set plus a
    *two-level* sorted view: a big snapshot and a small recent buffer of keys
    absorbed since the last merge.  A shard's keys are filtered against both
    with ``searchsorted`` sweeps, so :meth:`unknown` is exact — every
    returned key is genuinely new (modulo duplicates within the shard) and
    never re-enters the caller's per-pair Python loop.  The buffers merge
    geometrically (recent >= 1/4 of the set), keeping total re-sorting
    linearithmic in the final set size however the keys trickle in.
    """

    __slots__ = ("known", "_sorted", "_recent")

    def __init__(self) -> None:
        self.known: Set[int] = set()
        self._sorted = None
        self._recent = None

    def unknown(self, np, keys):
        """The subset of ``keys`` not yet absorbed (exact; may have dupes)."""
        for level in (self._sorted, self._recent):
            if level is None or not level.size or not keys.size:
                continue
            slot = np.searchsorted(level, keys)
            slot[slot == level.size] = 0
            keys = keys[level[slot] != keys]
        return keys

    def levels(self):
        """The non-empty sorted views, for the span-parallel filter twin of
        :meth:`unknown` (:meth:`repro.simulator.sharding.ShardedDelivery.fresh_keys`)."""
        return tuple(
            level
            for level in (self._sorted, self._recent)
            if level is not None and level.size
        )

    def absorb(self, np, fresh) -> None:
        """Fold a sorted array of newly-seen keys into the recent buffer.

        The caller has already added them to :attr:`known`; once the recent
        buffer outgrows a quarter of the set it is merged into the snapshot.
        """
        recent = self._recent
        if recent is None or not recent.size:
            recent = fresh
        else:
            recent = np.concatenate((recent, fresh))
            recent.sort()
        if 4 * recent.size >= len(self.known):
            snapshot = self._sorted
            if snapshot is None or not snapshot.size:
                merged = recent
            else:
                merged = np.concatenate((snapshot, recent))
                merged.sort()
            self._sorted = merged
            self._recent = None
        else:
            self._recent = recent


class _PlaneBatch:
    """One queued shard of id-native traffic (see the module docstring).

    ``senders`` / ``receivers`` / ``words`` are the *selected* columns of the
    submitted plane (tag words already folded into ``words``), ``payloads``
    the plane's full side list and ``positions`` the selected indices into it
    (``None`` when the whole plane was sent).  ``payloads`` is ``None`` for
    charge-only traffic — scheduling, fault filtering, capacity accounting
    and id learning never read it; only :meth:`records` (inbox assembly)
    does, and raises.  ``fresh_pairs`` (optional) is
    the precomputed ``receiver * n + sender`` key column of the shard's
    first-occurrence pairs — the only pairs sender-id learning can concern —
    so delivery never rescans the full columns.  Per-receiver record tuples
    are only built if the round's inbox is actually read.
    """

    __slots__ = (
        "senders", "receivers", "words", "payloads", "positions", "tag",
        "fresh_pairs",
    )

    def __init__(
        self, senders, receivers, words, payloads, positions, tag,
        fresh_pairs=None,
    ) -> None:
        self.senders = senders
        self.receivers = receivers
        self.words = words
        self.payloads = payloads
        self.positions = positions
        self.tag = tag
        self.fresh_pairs = fresh_pairs

    def __len__(self) -> int:
        return len(self.senders)

    def records(self, nodes: List[Node]):
        """Yield ``(receiver, record)`` pairs in submission order."""
        tag = self.tag
        payloads = self.payloads
        if payloads is None:
            raise ChargeOnlyError(
                "this plane traffic was queued charge-only (no payload "
                "column); its schedule and accounting are exact, but the "
                "round's inbox contents were never materialised"
            )
        positions = self.positions
        senders = self.senders
        receivers = self.receivers
        words = self.words
        if hasattr(senders, "tolist"):
            senders = senders.tolist()
            receivers = receivers.tolist()
            words = words.tolist()
        if positions is None:
            for k, sender_index in enumerate(senders):
                yield nodes[receivers[k]], (
                    nodes[sender_index], payloads[k], tag, words[k]
                )
        else:
            if hasattr(positions, "tolist"):
                positions = positions.tolist()
            for k, sender_index in enumerate(senders):
                yield nodes[receivers[k]], (
                    nodes[sender_index], payloads[positions[k]], tag, words[k]
                )


class HybridSimulator:
    """Round-based simulator of a HYBRID(lambda, gamma) network.

    Parameters
    ----------
    graph:
        The local communication graph.  Nodes may be any hashable objects; for
        the HYBRID (dense) identifier regime with integer nodes ``0..n-1`` the
        identifier of node ``v`` is ``v`` itself, matching the paper's "[n]"
        convention up to a shift.
    config:
        The :class:`~repro.simulator.config.ModelConfig` describing lambda,
        gamma, and the identifier regime.
    seed:
        Seed for the simulator's own randomness (sparse identifier assignment).
    capacity_multiplier:
        Slack factor applied to the per-node global budget.  The paper's
        guarantees are "O(log n) messages w.h.p."; on the small instances used
        in tests the hidden constants matter, so callers may allow a small
        constant slack.  The default of 1 enforces the budget exactly.
    enforce_receive_capacity:
        If True, a node receiving more than its budget in one round raises in
        strict mode.  By default receive-side overload is only *recorded*
        (mirroring the paper's remark that an adversary may drop the excess;
        our algorithms are expected to keep the bound and the tests assert
        ``capacity_violations == 0`` where the paper claims it).
    fault_schedule:
        Optional :class:`~repro.simulator.faults.FaultSchedule`.  An empty (or
        absent) schedule installs **no** fault state — ``fault_state`` stays
        ``None`` and no fault code path runs, so the run is bit-identical to a
        fault-free simulator.  A non-empty schedule makes ``advance_round``
        drop the traffic of crashed nodes and failed links, apply seeded
        per-mode message drops, and degrade the global budget per the
        schedule's windows (see :mod:`repro.simulator.faults`).
    charge_only:
        When true, sends queue **no payload references**: the round engine
        runs on the (sender, receiver, words) data alone, so schedules,
        capacity accounting, metrics, round counts and HYBRID_0 identifier
        learning are bit-identical to a payload run (the property suites pin
        this), while memory stays flat in the payload volume.  This covers
        both the id-native plane paths and the legacy tuple
        ``*_send_batch``/``*_send`` paths, so mixed-era workloads run
        payload-free too.  Reading a round's inbox for charge-only traffic
        raises :class:`~repro.simulator.errors.ChargeOnlyError`; fault
        filtering and delivery acks (``delivered_plane_positions``) are
        unaffected.
    """

    def __init__(
        self,
        graph: nx.Graph,
        config: Optional[ModelConfig] = None,
        *,
        seed: Optional[int] = None,
        capacity_multiplier: int = 1,
        enforce_receive_capacity: bool = False,
        fault_schedule: Optional[FaultSchedule] = None,
        charge_only: bool = False,
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("cannot simulate an empty network")
        if capacity_multiplier < 1:
            raise ValueError("capacity_multiplier must be at least 1")
        self.graph = graph
        self.config = config if config is not None else ModelConfig.hybrid()
        self.n = graph.number_of_nodes()
        self.rng = random.Random(seed)
        self.capacity_multiplier = capacity_multiplier
        self.enforce_receive_capacity = enforce_receive_capacity
        self.charge_only = bool(charge_only)
        self.fault_schedule = fault_schedule
        # The empty-schedule identity guarantee: only a non-empty schedule
        # builds a FaultState; with fault_state None not a single fault branch
        # is taken anywhere in the round lifecycle.
        self.fault_state: Optional[FaultState] = (
            FaultState(fault_schedule, self.n)
            if fault_schedule is not None and not fault_schedule.is_empty()
            else None
        )
        self.metrics = RoundMetrics()
        self.round = 0
        # Version stamp of the graph the id-native caches describe.  Plane
        # sends compare it against the live stamp and raise StaleGraphError on
        # mismatch; ``invalidate_index`` resynchronises it after a deliberate
        # mutation.
        self._graph_version = graph_version(graph)
        # Edges the fault layer deleted for good (permanent link failures
        # committed at window close, in commit order).  See ``advance_round``.
        self.committed_link_removals: List[Tuple[Node, Node]] = []

        self._nodes: List[Node] = sorted(graph.nodes, key=node_sort_key)
        self._node_set: Set[Node] = set(self._nodes)
        self._index_of: Dict[Node, int] = {
            node: index for index, node in enumerate(self._nodes)
        }
        # Lazy id-native caches (frozen-graph caveat; see invalidate_index):
        # identifiers aligned with the node order, and the directed adjacency
        # as flat s * n + r keys for O(1)/vectorised edge validation.
        self._ids_by_index: Optional[List[int]] = None
        self._ids_np: Optional[Any] = None
        self._ids_table: Optional[Any] = None
        self._edge_keys: Optional[Any] = None
        # Monotone plane-path memos: knowledge only ever grows, so an (s, r)
        # pair that validated once stays valid, and an (r, s) pair whose
        # sender identifier was taught once stays taught.  Rank-matched
        # workloads repeat the same pairs every round; these memos cut the
        # per-round knowledge work to the first occurrence of each pair.
        self._validated_global_pairs = _PairMemo()
        self._taught_pairs = _PairMemo()
        # Sharded delivery engine of the process-wide installed planner,
        # resolved lazily per planner identity (None = serial delivery).
        self._delivery_planner: Optional[Any] = None
        self._delivery_engine: Optional[Any] = None
        self._assign_identifiers()
        self._init_knowledge()

        # Batch-native round state: pending traffic pre-bucketed by receiver,
        # per-node word counters for the round being composed, and the buckets
        # delivered by the most recent ``advance_round``.
        self._pending_local: Dict[Node, List[BatchRecord]] = {}
        self._pending_global: Dict[Node, List[BatchRecord]] = {}
        self._pending_local_planes: List[_PlaneBatch] = []
        self._pending_global_planes: List[_PlaneBatch] = []
        self._global_sent_words: Dict[Node, int] = defaultdict(int)
        self._global_recv_words: Dict[Node, int] = defaultdict(int)
        # Plane-path counters for the round being composed: dense per-index
        # word arrays fed by grouped reductions (NumPy only; the fallback
        # folds into the dicts above at queue time).  ``advance_round``
        # sweeps them with whole-array comparisons.
        self._plane_sent_arr: Optional[Any] = None
        self._plane_recv_arr: Optional[Any] = None
        self._pending_local_msgs = 0
        self._pending_local_words = 0
        self._pending_global_msgs = 0
        self._pending_global_words = 0
        self._delivered_local: Dict[Node, List[BatchRecord]] = {}
        self._delivered_global: Dict[Node, List[BatchRecord]] = {}
        self._delivered_local_planes: List[_PlaneBatch] = []
        self._delivered_global_planes: List[_PlaneBatch] = []
        # Lazily merged eager + plane buckets of the delivered round.
        self._merged_local: Optional[Dict[Node, List[BatchRecord]]] = None
        self._merged_global: Optional[Dict[Node, List[BatchRecord]]] = None
        # Lazily materialised Message lists for the legacy inbox API.
        self._materialized_local: Dict[Node, List[Message]] = {}
        self._materialized_global: Dict[Node, List[Message]] = {}
        self._delivered_round = -1

    # ------------------------------------------------------------------
    # Identifiers and knowledge
    # ------------------------------------------------------------------
    def _assign_identifiers(self) -> None:
        if self.config.identifier_regime is IdentifierRegime.DENSE:
            # HYBRID: identifiers are exactly [n].  When nodes are already the
            # integers 0..n-1 we use them verbatim; otherwise we enumerate.
            if all(isinstance(v, int) for v in self._nodes) and set(self._nodes) == set(
                range(self.n)
            ):
                self._node_to_id: Dict[Node, int] = {v: v for v in self._nodes}
            else:
                self._node_to_id = {v: index for index, v in enumerate(self._nodes)}
        else:
            # HYBRID_0: identifiers from a polynomial range [n^c]; we draw
            # distinct random integers from [n^3] (capped, see
            # _identifier_universe).
            universe = _identifier_universe(self.n)
            ids = self.rng.sample(range(universe), self.n)
            self._node_to_id = {v: ids[index] for index, v in enumerate(self._nodes)}
        self._id_to_node: Dict[int, Node] = {
            identifier: node for node, identifier in self._node_to_id.items()
        }

    def _init_knowledge(self) -> None:
        self.knowledge = KnowledgeTracker(self._id_to_node.keys())
        if self.config.identifier_regime is IdentifierRegime.DENSE:
            self.knowledge.initialize_all_known()
        else:
            for node in self._nodes:
                neighbor_ids = [self._node_to_id[u] for u in self.graph.neighbors(node)]
                self.knowledge.initialize_node(self._node_to_id[node], neighbor_ids)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        """All nodes, in a deterministic order (numeric labels numerically)."""
        return list(self._nodes)

    def neighbors(self, node: Node) -> List[Node]:
        self._require_node(node)
        return sorted(self.graph.neighbors(node), key=node_sort_key)

    def node_indexer(self) -> Dict[Node, int]:
        """``node -> index`` into the deterministic :attr:`nodes` order.

        The returned dict is the simulator's own map — treat it as read-only.
        Token planes address nodes by these indices.
        """
        return self._index_of

    def node_index(self, node: Node) -> int:
        """Index of ``node`` in the deterministic :attr:`nodes` order."""
        index = self._index_of.get(node)
        if index is None:
            raise UnknownNodeError(node)
        return index

    def invalidate_index(self) -> None:
        """Drop the cached id-native arrays and resynchronise the graph stamp.

        A deliberate mid-simulation mutation of the graph must be followed by
        this call (mirroring :func:`repro.graphs.index.invalidate_index` for
        the analytics layer); until then, plane sends raise
        :class:`~repro.simulator.errors.StaleGraphError` because the cached
        adjacency keys describe a graph that no longer exists.  Node
        additions/removals are not supported — the node order, identifier
        assignment and knowledge state are fixed at construction.
        """
        self._graph_version = graph_version(self.graph)
        self._ids_by_index = None
        self._ids_np = None
        self._ids_table = None
        self._edge_keys = None
        # The pair memos cache per-(sender, receiver) validation/teaching
        # facts keyed on flat indices; although knowledge itself is monotone,
        # a mutated graph changes which pairs local sends may use and (in
        # principle) which identifiers a rebuilt workload addresses, so the
        # memos are dropped along with the arrays.  Re-validating known-good
        # pairs is merely slow, never wrong.
        self._validated_global_pairs = _PairMemo()
        self._taught_pairs = _PairMemo()

    def _check_graph_version(self) -> None:
        """Raise :class:`StaleGraphError` if the graph mutated behind us.

        One weak-dict lookup per plane shard — negligible against the shard
        work it guards.  Tuple-path sends don't need it: they validate against
        the live ``graph`` object, never against cached adjacency keys.
        """
        current = graph_version(self.graph)
        if current != self._graph_version:
            raise StaleGraphError(
                f"graph version moved from {self._graph_version} to {current} "
                "since the simulator's id-native arrays were built; call "
                "invalidate_index() after mutating the graph"
            )

    def _identifier_array(self) -> List[int]:
        """Identifier of every node, aligned with the node order (cached)."""
        ids = self._ids_by_index
        if ids is None:
            node_to_id = self._node_to_id
            ids = self._ids_by_index = [node_to_id[node] for node in self._nodes]
        return ids

    def _identifier_take(self):
        """Vectorised identifier lookup ``indices -> [id, ...]`` (cached).

        An int64 take when the accelerator is active and every identifier is a
        plain int (the sparse-regime default); otherwise a list-comprehension
        fallback over :meth:`_identifier_array`.  Either way the result is a
        list of the *original* identifier objects' values — np.int64 scalars
        hash and compare like ints, so knowledge-set membership is unaffected.
        """
        take = self._ids_np
        if take is None:
            table = self._identifier_table()
            if table is not None:

                def take(indices):
                    return table[indices].tolist()

            else:
                ids = self._identifier_array()

                def take(indices):
                    return [ids[i] for i in indices.tolist()]

            self._ids_np = take
        return take

    def _identifier_table(self):
        """The identifiers as an int64 array (cached), or ``None``.

        Available exactly when the accelerator is active and every identifier
        is a plain int (the sparse-regime default) — the array twin of
        :meth:`_identifier_take` for callers that keep identifier columns
        native (grouped validation, packed sender-id learning).
        """
        table = self._ids_table
        if table is False:
            return None
        if table is None:
            np = _accel.np
            ids = self._identifier_array()
            if np is not None and all(type(i) is int for i in ids):
                table = self._ids_table = np.asarray(ids, dtype=np.int64)
            else:
                self._ids_table = False
                return None
        return table

    def _sharded_delivery(self):
        """The installed planner's delivery engine (``None`` = serial).

        Resolved per planner identity, so ``install_planner`` (or a planner
        ``close()``/re-install) mid-simulation is picked up on the next use;
        holding the engine never extends the planner's pool lease — the
        engine leases lazily on its first pool dispatch.
        """
        from repro.simulator.engine import installed_planner

        planner = installed_planner()
        if planner is not self._delivery_planner:
            self._delivery_planner = planner
            engine = None
            if planner is not None and getattr(planner, "workers", 1) > 1:
                factory = getattr(planner, "delivery", None)
                if factory is not None:
                    engine = factory()
            self._delivery_engine = engine
        return self._delivery_engine

    def _edge_key_index(self):
        """The directed adjacency as flat ``s * n + r`` keys (cached).

        A sorted NumPy array when the accelerator is active (validated with
        one ``searchsorted`` per shard), otherwise a plain set.
        """
        keys = self._edge_keys
        if keys is None:
            n = self.n
            index_of = self._index_of
            pairs = set()
            for u, v in self.graph.edges():
                ui = index_of[u]
                vi = index_of[v]
                pairs.add(ui * n + vi)
                pairs.add(vi * n + ui)
            np = _accel.np
            if np is not None:
                keys = np.fromiter(pairs, dtype=np.int64, count=len(pairs))
                keys.sort()
            else:
                keys = pairs
            self._edge_keys = keys
        return keys

    def id_of(self, node: Node) -> int:
        self._require_node(node)
        return self._node_to_id[node]

    def node_identifiers(self) -> Dict[Node, int]:
        """``node -> identifier`` for every node (the simulator's own map).

        Treat as read-only; bulk callers use it to avoid one :meth:`id_of`
        validation per lookup.
        """
        return self._node_to_id

    def node_of_id(self, identifier: int) -> Node:
        if identifier not in self._id_to_node:
            raise UnknownNodeError(identifier)
        return self._id_to_node[identifier]

    def all_ids(self) -> List[int]:
        return sorted(self._id_to_node)

    def known_ids(self, node: Node) -> Set[int]:
        return self.knowledge.known_ids(self.id_of(node))

    def knows_id(self, node: Node, identifier: int) -> bool:
        return self.knowledge.knows(self.id_of(node), identifier)

    def declare_learned_ids(self, node: Node, identifiers: Iterable[int]) -> None:
        """Record that ``node`` learned identifiers from received payloads."""
        self.knowledge.learn(self.id_of(node), identifiers)

    def declare_learned_ids_bulk(
        self, nodes: Iterable[Node], identifiers: Iterable[int]
    ) -> None:
        """Record that every node in ``nodes`` learned the same identifiers.

        Equivalent to calling :meth:`declare_learned_ids` per node, but the
        bogus-id filtering happens once for the shared set — the broadcast
        idiom ("every cluster member learns all leader identifiers") is a
        single pass over the learners.
        """
        valid = frozenset(self.knowledge.valid_ids(identifiers))
        node_to_id = self._node_to_id

        def identifiers_of():
            for node in nodes:
                identifier = node_to_id.get(node)
                if identifier is None:
                    raise UnknownNodeError(node)
                yield identifier

        self.knowledge.learn_shared(identifiers_of(), valid)

    def global_budget_words(self) -> int:
        """Per-node, per-round global budget in words.

        Under a fault schedule the budget is degraded by the node-wide
        capacity factors active in the *current* round — callers that plan
        traffic before ``advance_round`` (the two-tier scheduler reads this at
        planning time) therefore plan with exactly the budget the capacity
        sweep will enforce, as long as planning and delivery happen in the
        same round.  Node-scoped factors do not appear here; they only tighten
        the per-node sweep in :meth:`advance_round`.
        """
        base = self.config.resolve_global_word_budget(self.n) * self.capacity_multiplier
        fault_state = self.fault_state
        if fault_state is not None:
            return fault_state.degraded_budget(base, self.round)
        return base

    def edge_weight(self, u: Node, v: Node) -> float:
        return self.graph[u][v].get("weight", 1)

    # ------------------------------------------------------------------
    # Sending — batch API (the native path)
    # ------------------------------------------------------------------
    def local_send_batch(
        self,
        triples: Iterable[Tuple],
        tag: Optional[str] = None,
    ) -> int:
        """Queue a whole round of local-mode traffic at once.

        ``triples`` yields ``(sender, receiver, payload)`` — or
        ``(sender, receiver, payload, words)`` with ``words`` the precomputed
        :func:`~repro.simulator.messages.payload_words` of the payload, which
        skips re-estimating sizes the caller already knows.  All records share
        ``tag``.  Returns the number of messages queued.
        """
        if not self.config.local_mode_enabled():
            raise LocalBandwidthExceededError(
                f"local mode disabled in model {self.config.name!r}"
            )
        tag_words = payload_words(tag) if tag is not None else 0
        max_words = self.config.resolve_local_word_limit()
        node_set = self._node_set
        has_edge = self.graph.has_edge
        buckets = self._pending_local
        charge_only = self.charge_only
        count = 0
        total_words = 0
        # The try/finally keeps the aggregate counters in sync with the
        # records already queued when a validation error aborts the batch
        # mid-iteration (the failing record itself is never queued).
        try:
            for triple in triples:
                if len(triple) == 4:
                    sender, receiver, payload, words = triple
                else:
                    sender, receiver, payload = triple
                    words = payload_words(payload)
                if sender not in node_set:
                    raise UnknownNodeError(sender)
                if receiver not in node_set:
                    raise UnknownNodeError(receiver)
                if not has_edge(sender, receiver):
                    raise NotANeighborError(f"{sender!r} and {receiver!r} are not adjacent")
                words += tag_words
                if max_words is not None and words > max_words:
                    # CONGEST-style finite bandwidth: the per-edge payload may
                    # use at most limit bits ~= limit / 64 words.
                    if self.config.strict:
                        raise LocalBandwidthExceededError(
                            f"local message of {words} words exceeds per-edge "
                            f"budget of {max_words} words"
                        )
                    self.metrics.record_violation()
                bucket = buckets.get(receiver)
                if bucket is None:
                    bucket = buckets[receiver] = []
                # Charge-only runs queue no payload reference: scheduling,
                # capacity accounting and fault filtering only touch the
                # other fields, and inbox reads raise before any record
                # escapes (see _local_buckets).
                bucket.append(
                    (sender, None, tag, words)
                    if charge_only
                    else (sender, payload, tag, words)
                )
                count += 1
                total_words += words
        finally:
            self._pending_local_msgs += count
            self._pending_local_words += total_words
        return count

    def global_send_batch(
        self,
        triples: Iterable[Tuple],
        tag: Optional[str] = None,
        *,
        by_id: bool = False,
    ) -> int:
        """Queue a whole round of global-mode traffic at once.

        ``triples`` yields ``(sender, receiver, payload)`` — or
        ``(sender, receiver, payload, words)`` with the payload size
        precomputed — where ``receiver`` is a node, or an identifier when
        ``by_id`` is set.  In HYBRID_0 each sender must know the receiver's
        identifier.  Word counts (payload plus shared ``tag``) are added to the
        aggregated per-node counters checked by :meth:`advance_round`.
        Returns the number of messages queued.
        """
        if not self.config.global_mode_enabled():
            raise CapacityExceededError(
                f"global mode disabled in model {self.config.name!r}"
            )
        tag_words = payload_words(tag) if tag is not None else 0
        check_knowledge = self.config.is_hybrid0()
        node_set = self._node_set
        node_to_id = self._node_to_id
        id_to_node = self._id_to_node
        known_view = self.knowledge.known_ids_view
        known_cache: Dict[Node, Set[int]] = {}
        buckets = self._pending_global
        sent_words = self._global_sent_words
        recv_words = self._global_recv_words
        charge_only = self.charge_only
        count = 0
        total_words = 0
        # As in local_send_batch: a validation error mid-batch must leave the
        # aggregate counters consistent with the records already queued.
        try:
            for triple in triples:
                if len(triple) == 4:
                    sender, receiver, payload, words = triple
                else:
                    sender, receiver, payload = triple
                    words = payload_words(payload)
                if sender not in node_set:
                    raise UnknownNodeError(sender)
                if by_id:
                    target_id = receiver
                    if target_id not in id_to_node:
                        raise UnknownNodeError(target_id)
                    receiver = id_to_node[target_id]
                else:
                    if receiver not in node_set:
                        raise UnknownNodeError(receiver)
                    target_id = node_to_id[receiver]
                if check_knowledge:
                    known = known_cache.get(sender)
                    if known is None:
                        known = known_cache[sender] = known_view(node_to_id[sender])
                    if target_id not in known:
                        raise UnknownIdentifierError(
                            f"node {sender!r} does not know identifier {target_id!r}"
                        )
                words += tag_words
                bucket = buckets.get(receiver)
                if bucket is None:
                    bucket = buckets[receiver] = []
                # See local_send_batch: charge-only queues no payload ref.
                bucket.append(
                    (sender, None, tag, words)
                    if charge_only
                    else (sender, payload, tag, words)
                )
                sent_words[sender] += words
                recv_words[receiver] += words
                count += 1
                total_words += words
        finally:
            self._pending_global_msgs += count
            self._pending_global_words += total_words
        return count

    # ------------------------------------------------------------------
    # Sending — id-native plane API (the round engine's hot path)
    # ------------------------------------------------------------------
    #: Shards below this size take the scalar (dict-counter) queueing paths —
    #: the grouped NumPy reductions only pay off on bulk traffic.
    _SMALL_SHARD = 32

    def _select_plane_columns(self, plane, positions):
        """The (senders, receivers, words, positions) columns of a shard.

        Small shards come back as plain lists whatever the plane's backing
        arrays, so the callers' scalar paths run without per-element NumPy
        boxing.
        """
        senders = plane.senders
        receivers = plane.receivers
        words = plane.words
        np = _accel.np
        if positions is None:
            if (
                np is not None
                and isinstance(senders, np.ndarray)
                and senders.size < self._SMALL_SHARD
            ):
                return senders.tolist(), receivers.tolist(), words.tolist(), None
            return senders, receivers, words, None
        if np is not None and isinstance(senders, np.ndarray):
            if len(positions) >= self._SMALL_SHARD:
                positions = np.asarray(positions, dtype=np.int64)
                return (
                    senders.take(positions),
                    receivers.take(positions),
                    words.take(positions),
                    positions,
                )
            positions = (
                positions.tolist() if hasattr(positions, "tolist") else list(positions)
            )
            senders = senders.tolist()
            receivers = receivers.tolist()
            words = words.tolist()
        else:
            positions = list(positions)
        return (
            [senders[p] for p in positions],
            [receivers[p] for p in positions],
            [words[p] for p in positions],
            positions,
        )

    def _validate_index_range(self, values) -> None:
        """Membership check for a node-index column: one range comparison."""
        n = self.n
        np = _accel.np
        if np is not None and isinstance(values, np.ndarray):
            if values.size and (int(values.min()) < 0 or int(values.max()) >= n):
                bad = values[(values < 0) | (values >= n)]
                raise UnknownNodeError(int(bad[0]))
            return
        for value in values:
            if not 0 <= value < n:
                raise UnknownNodeError(value)

    def _validate_plane_knowledge(self, s_sel, r_sel, pair_s=None, pair_r=None) -> None:
        """HYBRID_0 knowledge check over the shard's *unique* (s, r) pairs.

        Repeated pairs (the common case in rank-matched workloads) cost one
        set probe, not one per token; the error reported is the earliest
        offending token in submission order, like the tuple path.  When the
        caller supplies the shard's first-occurrence pair columns (``pair_s``
        / ``pair_r``, in submission order — see
        :meth:`~repro.simulator.engine.TokenPlane.pair_spine`), the check
        runs on those directly: a pair's validity is decided at its first
        token, and the earliest offending pair's first occurrence *is* the
        earliest offending token.
        """
        ids = self._identifier_array()
        known_view = self.knowledge.known_ids_view
        memo = self._validated_global_pairs
        validated = memo.known
        n = self.n
        np = _accel.np
        if np is not None and pair_s is not None:
            s_sel = pair_s
            r_sel = pair_r
        if np is not None and isinstance(s_sel, np.ndarray):
            key_column = s_sel * n + r_sel
            candidates = memo.unknown(np, key_column)
            if not candidates.size:
                return
            uniq = np.unique(candidates)
            sender_col = uniq // n
            target_col = uniq % n
            starts = np.flatnonzero(
                np.concatenate(
                    (np.ones(1, dtype=bool), sender_col[1:] != sender_col[:-1])
                )
            )
            bounds = np.append(starts, sender_col.size).tolist()
            table = self._identifier_table()
            packed_mask = self.knowledge.packed_known_mask
            offending: Set[int] = set()
            for g, sender_index in enumerate(sender_col[starts].tolist()):
                lo, hi = bounds[g], bounds[g + 1]
                targets = target_col[lo:hi]
                sender_id = ids[sender_index]
                if table is not None and targets.size >= 64:
                    # Vectorised pre-filter: pairs the packed knowledge layer
                    # already covers skip the per-target probe loop (bulk
                    # reply traffic along learned pairs is the common case).
                    target_ids = table[targets]
                    miss = ~packed_mask(np, sender_id, target_ids)
                    if not bool(miss.any()):
                        continue
                    probe_indices = targets[miss].tolist()
                    probe_ids = target_ids[miss].tolist()
                else:
                    probe_indices = targets.tolist()
                    probe_ids = [ids[t] for t in probe_indices]
                known = known_view(sender_id)
                base = sender_index * n
                for target_index, target_id in zip(probe_indices, probe_ids):
                    if target_id not in known:
                        offending.add(base + target_index)
            if offending:
                # Report the earliest offending token in submission order,
                # matching the tuple path and the pure-Python fallback.  The
                # memo is left untouched — nothing was queued, so the good
                # pairs of a failing shard simply re-validate later.
                position = int(
                    np.argmax(np.isin(key_column, np.fromiter(offending, np.int64)))
                )
                sender_index = int(s_sel[position])
                raise UnknownIdentifierError(
                    f"node {self._nodes[sender_index]!r} does not know "
                    f"identifier {ids[int(r_sel[position])]!r}"
                )
            validated.update(uniq.tolist())
            memo.absorb(np, uniq)
            return
        known_cache: Dict[int, Set[int]] = {}
        for k in range(len(s_sel)):
            sender_index = s_sel[k]
            key = sender_index * n + r_sel[k]
            if key in validated:
                continue
            known = known_cache.get(sender_index)
            if known is None:
                known = known_cache[sender_index] = known_view(ids[sender_index])
            target = ids[r_sel[k]]
            if target not in known:
                raise UnknownIdentifierError(
                    f"node {self._nodes[sender_index]!r} does not know "
                    f"identifier {target!r}"
                )
            validated.add(key)

    def global_send_plane(self, plane, positions=None, tag: Optional[str] = None) -> int:
        """Queue a shard of an id-native token plane over the global mode.

        ``plane`` carries parallel node-index arrays plus a payload side list
        (see :class:`~repro.simulator.engine.TokenPlane`); ``positions``
        selects the shard (``None`` sends the whole plane).  Membership is a
        range check, HYBRID_0 knowledge is validated per unique (sender,
        receiver) pair, the capacity counters are updated via grouped
        reductions, and no per-token record objects are built unless the
        round's inbox is read.  The workload is validated up front; on error
        nothing is queued.  Returns the number of messages queued.
        """
        if not self.config.global_mode_enabled():
            raise CapacityExceededError(
                f"global mode disabled in model {self.config.name!r}"
            )
        self._check_graph_version()
        s_sel, r_sel, w_sel, positions = self._select_plane_columns(plane, positions)
        count = len(s_sel)
        if count == 0:
            return 0
        tag_words = payload_words(tag) if tag is not None else 0
        self._validate_index_range(s_sel)
        self._validate_index_range(r_sel)
        np = _accel.np
        fresh_pairs = None
        pair_s = pair_r = None
        if np is not None and isinstance(s_sel, np.ndarray):
            # The shard's distinct pairs, via the plane's first-occurrence
            # spine: per-pair knowledge work (validation below, sender-id
            # learning at delivery) reduces to this (tiny) subset — pairs
            # whose first occurrence fell in an earlier shard were handled
            # when that shard was queued/delivered.
            spine = plane.pair_spine(np)
            if positions is None:
                sel_first = spine
            else:
                sorted_pos = (
                    positions
                    if positions.size < 2
                    or bool((positions[1:] >= positions[:-1]).all())
                    else np.sort(positions)
                )
                loc = np.searchsorted(sorted_pos, spine)
                loc[loc == sorted_pos.size] = 0
                sel_first = spine[sorted_pos[loc] == spine]
            pair_s = plane.senders[sel_first]
            pair_r = plane.receivers[sel_first]
            fresh_pairs = pair_r * self.n + pair_s
        if self.config.is_hybrid0():
            self._validate_plane_knowledge(s_sel, r_sel, pair_s, pair_r)
        nodes = self._nodes
        sent_words = self._global_sent_words
        recv_words = self._global_recv_words
        if np is not None and isinstance(s_sel, np.ndarray):
            wt = w_sel + tag_words if tag_words else w_sel
            total = int(wt.sum())
            sent_arr = self._plane_sent_arr
            if sent_arr is None:
                sent_arr = self._plane_sent_arr = np.zeros(self.n)
                self._plane_recv_arr = np.zeros(self.n)
            delivery = self._sharded_delivery()
            if delivery is not None:
                delivery.apply_counters(
                    np, s_sel, r_sel, wt, sent_arr, self._plane_recv_arr
                )
            else:
                sent_arr += np.bincount(s_sel, weights=wt, minlength=self.n)
                self._plane_recv_arr += np.bincount(
                    r_sel, weights=wt, minlength=self.n
                )
        else:
            wt = [w + tag_words for w in w_sel] if tag_words else list(w_sel)
            total = sum(wt)
            for counters, column in ((sent_words, s_sel), (recv_words, r_sel)):
                grouped: Dict[int, int] = {}
                for k, index in enumerate(column):
                    grouped[index] = grouped.get(index, 0) + wt[k]
                for index, words in grouped.items():
                    counters[nodes[index]] += words
        self._pending_global_planes.append(
            _PlaneBatch(
                s_sel, r_sel, wt,
                None if self.charge_only else plane.payloads,
                positions, tag, fresh_pairs,
            )
        )
        self._pending_global_msgs += count
        self._pending_global_words += total
        return count

    def local_send_plane(self, plane, positions=None, tag: Optional[str] = None) -> int:
        """Queue a shard of an id-native token plane over the local mode.

        The local counterpart of :meth:`global_send_plane`: adjacency is
        validated per unique (sender, receiver) pair against the cached
        directed edge keys (one ``searchsorted`` sweep when NumPy is active),
        and the CONGEST-style per-edge limit, when configured, is checked with
        one vectorised comparison.  Returns the number of messages queued.
        """
        if not self.config.local_mode_enabled():
            raise LocalBandwidthExceededError(
                f"local mode disabled in model {self.config.name!r}"
            )
        self._check_graph_version()
        s_sel, r_sel, w_sel, positions = self._select_plane_columns(plane, positions)
        count = len(s_sel)
        if count == 0:
            return 0
        tag_words = payload_words(tag) if tag is not None else 0
        self._validate_index_range(s_sel)
        self._validate_index_range(r_sel)
        n = self.n
        nodes = self._nodes
        edge_keys = self._edge_key_index()
        np = _accel.np
        vectorised = np is not None and isinstance(s_sel, np.ndarray)
        if vectorised:
            uniq, first = np.unique(s_sel * n + r_sel, return_index=True)
            slot = np.searchsorted(edge_keys, uniq)
            in_bounds = slot < edge_keys.size
            match = np.zeros(uniq.size, dtype=bool)
            match[in_bounds] = edge_keys[slot[in_bounds]] == uniq[in_bounds]
            if not match.all():
                bad = int(first[~match].min())
                raise NotANeighborError(
                    f"{nodes[int(s_sel[bad])]!r} and {nodes[int(r_sel[bad])]!r} "
                    f"are not adjacent"
                )
            wt = w_sel + tag_words if tag_words else w_sel
            total = int(wt.sum())
        else:
            checked: Set[int] = set()
            for k in range(count):
                key = s_sel[k] * n + r_sel[k]
                if key not in checked:
                    if key not in edge_keys:
                        raise NotANeighborError(
                            f"{nodes[s_sel[k]]!r} and {nodes[r_sel[k]]!r} "
                            f"are not adjacent"
                        )
                    checked.add(key)
            wt = [w + tag_words for w in w_sel] if tag_words else list(w_sel)
            total = sum(wt)
        max_words = self.config.resolve_local_word_limit()
        if max_words is not None:
            if vectorised:
                oversized = int((wt > max_words).sum())
            else:
                oversized = sum(1 for w in wt if w > max_words)
            if oversized:
                if self.config.strict:
                    raise LocalBandwidthExceededError(
                        f"local message exceeds per-edge budget of "
                        f"{max_words} words"
                    )
                for _ in range(oversized):
                    self.metrics.record_violation()
        self._pending_local_planes.append(
            _PlaneBatch(
                s_sel, r_sel, wt,
                None if self.charge_only else plane.payloads,
                positions, tag,
            )
        )
        self._pending_local_msgs += count
        self._pending_local_words += total
        return count

    def global_send_batch_ids(
        self,
        senders: Sequence[int],
        receivers: Sequence[int],
        payloads: Sequence[Any],
        words: Optional[Sequence[int]] = None,
        tag: Optional[str] = None,
    ) -> int:
        """Bulk global send addressed by node index (parallel arrays).

        Convenience wrapper that wraps the arrays in a
        :class:`~repro.simulator.engine.TokenPlane` and queues it whole via
        :meth:`global_send_plane`.  ``words[i]`` is the precomputed payload
        size; omit it to have sizes estimated here (once per token).
        """
        from repro.simulator.engine import TokenPlane

        if words is None:
            words = [payload_words(payload) for payload in payloads]
        plane = TokenPlane(senders, receivers, words, list(payloads))
        return self.global_send_plane(plane, None, tag)

    def local_send_batch_ids(
        self,
        senders: Sequence[int],
        receivers: Sequence[int],
        payloads: Sequence[Any],
        words: Optional[Sequence[int]] = None,
        tag: Optional[str] = None,
    ) -> int:
        """Bulk local send addressed by node index (parallel arrays)."""
        from repro.simulator.engine import TokenPlane

        if words is None:
            words = [payload_words(payload) for payload in payloads]
        plane = TokenPlane(senders, receivers, words, list(payloads))
        return self.local_send_plane(plane, None, tag)

    # ------------------------------------------------------------------
    # Sending — legacy per-message wrappers
    # ------------------------------------------------------------------
    def local_send(self, sender: Node, receiver: Node, payload: Any, tag: Optional[str] = None) -> None:
        """Queue a local-mode message along the edge ``{sender, receiver}``.

        Thin wrapper over :meth:`local_send_batch` for a single message.
        """
        self.local_send_batch(((sender, receiver, payload),), tag)

    def local_broadcast(self, sender: Node, payload: Any, tag: Optional[str] = None) -> None:
        """Send the same payload to every neighbor of ``sender``."""
        words = payload_words(payload)
        self.local_send_batch(
            ((sender, neighbor, payload, words) for neighbor in self.neighbors(sender)),
            tag,
        )

    def global_send(
        self,
        sender: Node,
        target_id: int,
        payload: Any,
        tag: Optional[str] = None,
    ) -> None:
        """Queue a global-mode message to the node whose identifier is ``target_id``.

        Thin wrapper over :meth:`global_send_batch` for a single message.
        """
        self.global_send_batch(((sender, target_id, payload),), tag, by_id=True)

    def global_send_to_node(
        self, sender: Node, receiver: Node, payload: Any, tag: Optional[str] = None
    ) -> None:
        """Convenience wrapper: address a global message by node rather than id."""
        self.global_send_batch(((sender, receiver, payload),), tag)

    # ------------------------------------------------------------------
    # Round lifecycle
    # ------------------------------------------------------------------
    def advance_round(self) -> None:
        """Deliver all queued messages and advance the round counter.

        Global-mode capacity is enforced here from the aggregated per-node
        counters maintained by the send path: the total number of words each
        node *sends* and *receives* in this round must not exceed the per-node
        budget (times the configured slack).  Send-side violations raise in
        strict mode because they are always under the algorithm's control;
        receive-side violations raise only when ``enforce_receive_capacity`` is
        set, and are otherwise recorded.

        Under a non-empty fault schedule the sweep additionally tightens the
        budget of node-scoped degradation targets, and queued traffic is
        filtered through :meth:`_apply_faults` *after* capacity accounting
        (attempt-based: drops never refund budget) and *before* sparse-regime
        identifier learning (receivers learn nothing from dropped messages).
        """
        fault_state = self.fault_state
        node_budget_of: Optional[Dict[int, int]] = None
        if self.config.global_mode_enabled():
            budget = self.global_budget_words()
            strict = self.config.strict
            metrics = self.metrics
            if fault_state is not None:
                factors = fault_state.node_capacity_factors(self.round)
                if factors:
                    node_budget_of = {
                        index: max(1, int(budget * factor))
                        for index, factor in factors.items()
                    }
            sent_arr = self._plane_sent_arr
            if sent_arr is not None and (
                node_budget_of is not None
                or self._global_sent_words
                or self._global_recv_words
            ):
                # Mixed round (plane and tuple sends) or per-node degraded
                # budgets: fold the arrays into the dicts and run the
                # per-node sweep below on the union.
                np = _accel.np
                nodes = self._nodes
                for counters, arr in (
                    (self._global_sent_words, sent_arr),
                    (self._global_recv_words, self._plane_recv_arr),
                ):
                    for index in np.flatnonzero(arr).tolist():
                        counters[nodes[index]] += int(arr[index])
                sent_arr = None
                self._plane_sent_arr = self._plane_recv_arr = None
            if sent_arr is not None:
                # Plane-only round: the capacity sweep is two whole-array
                # comparisons over the grouped counters — identical accounting
                # to the per-node loop (the metrics only keep the max load and
                # the violation count).  At paper scale the sweep may run
                # range-parallel on the delivery engine; its per-range
                # (max, over-count, first-over) summaries merge by
                # max / sum / min into exactly the serial numbers.
                np = _accel.np
                recv_arr = self._plane_recv_arr
                delivery = self._sharded_delivery()
                swept = (
                    delivery.sweep(np, sent_arr, recv_arr, budget)
                    if delivery is not None
                    else None
                )
                if swept is None:
                    swept = []
                    for arr in (sent_arr, recv_arr):
                        peak = int(arr.max())
                        if peak > budget:
                            over = np.flatnonzero(arr > budget)
                            swept.append((peak, int(over.size), int(over[0])))
                        else:
                            swept.append((peak, 0, -1))
                for verb, arr, (peak, over_count, first_over), enforce in (
                    ("sent", sent_arr, swept[0], strict),
                    (
                        "received",
                        recv_arr,
                        swept[1],
                        strict and self.enforce_receive_capacity,
                    ),
                ):
                    peak = int(peak)
                    if peak:
                        metrics.record_node_round_load(peak)
                    if peak > budget:
                        if enforce:
                            metrics.record_violation()
                            node = self._nodes[first_over]
                            raise CapacityExceededError(
                                f"node {node!r} {verb} {int(arr[first_over])} "
                                f"global words in round {self.round}, budget "
                                f"is {budget}"
                            )
                        for _ in range(over_count):
                            metrics.record_violation()
            else:
                index_of = self._index_of
                for node, words in self._global_sent_words.items():
                    node_budget = budget
                    if node_budget_of is not None:
                        node_budget = node_budget_of.get(index_of[node], budget)
                    metrics.record_node_round_load(words)
                    if words > node_budget:
                        metrics.record_violation()
                        if strict:
                            raise CapacityExceededError(
                                f"node {node!r} sent {words} global words in round "
                                f"{self.round}, budget is {node_budget}"
                            )
                for node, words in self._global_recv_words.items():
                    node_budget = budget
                    if node_budget_of is not None:
                        node_budget = node_budget_of.get(index_of[node], budget)
                    metrics.record_node_round_load(words)
                    if words > node_budget:
                        metrics.record_violation()
                        if strict and self.enforce_receive_capacity:
                            raise CapacityExceededError(
                                f"node {node!r} received {words} global words in round "
                                f"{self.round}, budget is {node_budget}"
                            )

        self.metrics.record_local_bulk(self._pending_local_msgs, self._pending_local_words)
        self.metrics.record_global_bulk(self._pending_global_msgs, self._pending_global_words)

        if fault_state is not None:
            self._apply_faults(fault_state)

        # Receiving a global message always teaches the receiver the sender's
        # identifier (the sender attaches it implicitly).  In the dense regime
        # everyone already knows every identifier, so the bookkeeping is
        # skipped.
        if self.config.identifier_regime is IdentifierRegime.SPARSE:
            if self._pending_global:
                node_to_id = self._node_to_id
                learn = self.knowledge.learn
                for receiver, records in self._pending_global.items():
                    learn(node_to_id[receiver], {node_to_id[record[0]] for record in records})
            if self._pending_global_planes:
                self._learn_from_planes(self._pending_global_planes)

        # Deliver: the pending buckets become the inboxes of this round.
        self._delivered_local = self._pending_local
        self._delivered_global = self._pending_global
        self._delivered_local_planes = self._pending_local_planes
        self._delivered_global_planes = self._pending_global_planes
        self._pending_local = {}
        self._pending_global = {}
        self._pending_local_planes = []
        self._pending_global_planes = []
        self._global_sent_words = defaultdict(int)
        self._global_recv_words = defaultdict(int)
        self._plane_sent_arr = None
        self._plane_recv_arr = None
        self._pending_local_msgs = 0
        self._pending_local_words = 0
        self._pending_global_msgs = 0
        self._pending_global_words = 0
        self._merged_local = None
        self._merged_global = None
        self._materialized_local = {}
        self._materialized_global = {}
        self._delivered_round = self.round
        self.round += 1
        self.metrics.record_round()
        if fault_state is not None:
            self._commit_permanent_link_failures(fault_state)

    def _commit_permanent_link_failures(self, fault_state: FaultState) -> None:
        """Turn closed permanent link-failure windows into real edge deletions.

        A ``LinkFailure(..., permanent=True)`` whose window has closed (the
        just-entered round is at or past its ``end_round``) is committed as a
        graph mutation through :class:`~repro.graphs.mutation.GraphMutator` —
        the edge is deleted for good, the graph's version stamp advances, and
        the cached analytics :class:`~repro.graphs.index.GraphIndex` is
        patched incrementally, so dissemination/APSP re-runs on the churned
        graph see the committed topology.  The simulator resynchronises its
        own id-native caches via :meth:`invalidate_index` (knowledge and
        identifiers are untouched: nodes never disappear).  Committed edges
        are appended to :attr:`committed_link_removals` in commit order.
        """
        closures = fault_state.take_permanent_closures(self.round)
        if not closures:
            return
        nodes = self._nodes
        mutator = GraphMutator(self.graph)
        removed: List[Tuple[Node, Node]] = []
        for ui, vi in closures:
            u, v = nodes[ui], nodes[vi]
            # A schedule may name a non-edge (or a pair a previous window
            # already removed) — committing it is a no-op, not an error.
            if self.graph.has_edge(u, v):
                mutator.remove_edge(u, v)
                removed.append((u, v))
        if removed:
            self.committed_link_removals.extend(removed)
            self.invalidate_index()

    def _learn_from_planes(self, planes: List["_PlaneBatch"]) -> None:
        """Sparse-regime sender-identifier learning, per unique (r, s) pair.

        Equivalent to the per-record set comprehension of the tuple path —
        each receiver learns the identifier set of its senders this round —
        but grouped: duplicated pairs (rank-matched workloads) cost one set
        insertion instead of one per token.
        """
        ids = self._identifier_array()
        learn_known = self.knowledge.learn_known
        memo = self._taught_pairs
        taught = memo.known
        n = self.n
        np = _accel.np
        delivery = self._sharded_delivery() if np is not None else None
        sender_ids_of: Dict[int, Set[int]] = {}
        fresh_chunks: List[Any] = []
        for batch in planes:
            s_sel = batch.senders
            r_sel = batch.receivers
            if np is not None and batch.fresh_pairs is not None:
                keys = batch.fresh_pairs
            elif np is not None and isinstance(s_sel, np.ndarray):
                keys = r_sel * n + s_sel
            else:
                for k in range(len(s_sel)):
                    key = r_sel[k] * n + s_sel[k]
                    if key in taught:
                        continue
                    taught.add(key)
                    sender_ids_of.setdefault(r_sel[k], set()).add(ids[s_sel[k]])
                continue
            if delivery is not None:
                candidates = delivery.fresh_keys(np, keys, memo.levels())
            else:
                candidates = memo.unknown(np, keys)
            if candidates.size:
                fresh_chunks.append(candidates)
        for receiver_index, id_set in sender_ids_of.items():
            learn_known(ids[receiver_index], id_set)
        if not fresh_chunks:
            return
        uniq = np.unique(
            fresh_chunks[0] if len(fresh_chunks) == 1 else np.concatenate(fresh_chunks)
        )
        uniq_list = uniq.tolist()
        taught.update(uniq_list)
        memo.absorb(np, uniq)
        # A taught (r, s) pair is the knowledge fact "r knows s's identifier",
        # which is exactly validation key r * n + s — seed the validation memo
        # so reply traffic along the same pairs skips the per-pair probe loop.
        validated = self._validated_global_pairs
        validated.known.update(uniq_list)
        validated.absorb(np, uniq)
        receiver_col = uniq // n
        sender_col = uniq % n
        starts = np.flatnonzero(
            np.concatenate((np.ones(1, dtype=bool), receiver_col[1:] != receiver_col[:-1]))
        )
        bounds = np.append(starts, receiver_col.size).tolist()
        receiver_ids = self._identifier_take()(receiver_col[starts])
        table = self._identifier_table()
        if table is not None:
            # Packed learning: each receiver's new sender ids as a sorted
            # int64 array folded into the knowledge tracker's packed layer —
            # C-speed merges instead of per-id set inserts (see
            # KnowledgeTracker.learn_known_array).
            sender_id_col = table[sender_col]
            learn_array = self.knowledge.learn_known_array
            for g, receiver_id in enumerate(receiver_ids):
                learn_array(
                    receiver_id, np.sort(sender_id_col[bounds[g] : bounds[g + 1]])
                )
        else:
            sender_ids = self._identifier_take()(sender_col)
            for g, receiver_id in enumerate(receiver_ids):
                learn_known(receiver_id, sender_ids[bounds[g] : bounds[g + 1]])

    # ------------------------------------------------------------------
    # Fault injection (see repro.simulator.faults)
    # ------------------------------------------------------------------
    def _apply_faults(self, fault_state: FaultState) -> None:
        """Drop pending traffic per the fault schedule.

        Runs inside :meth:`advance_round`, after capacity accounting
        (attempt-based: a dropped message keeps its budget charge) and before
        sparse-regime identifier learning (a receiver learns nothing from a
        message it did not get).  Drop draws are consumed in a fixed order —
        per mode, tuple buckets in queueing order first, then plane batches in
        submission order — so a run replays bit-for-bit from
        ``(schedule.seed, schedule)`` on either array backend.
        """
        round_index = self.round
        metrics = self.metrics
        np = _accel.np
        crashed = fault_state.crashed_indices(round_index)
        if crashed:
            metrics.record_crashed_nodes(len(crashed))
        failed_edges = fault_state.failed_edge_keys(round_index)
        dropped = 0
        for mode, buckets, planes in (
            (GLOBAL_MODE, self._pending_global, self._pending_global_planes),
            (LOCAL_MODE, self._pending_local, self._pending_local_planes),
        ):
            rate = fault_state.drop_rate(mode)
            rng = fault_state.round_rng(round_index, mode) if rate > 0.0 else None
            edges = failed_edges if (mode == LOCAL_MODE and failed_edges) else None
            if not crashed and edges is None and rng is None:
                continue
            dropped += self._filter_tuple_buckets(buckets, crashed, edges, rate, rng)
            crashed_arr = failed_arr = None
            if np is not None and planes:
                crashed_arr = fault_state.crashed_index_array(np, round_index)
                failed_arr = (
                    fault_state.failed_edge_key_array(np, round_index)
                    if edges is not None
                    else crashed_arr[:0]
                )
            dropped += self._filter_planes(
                planes, crashed, edges, rate, rng, crashed_arr, failed_arr
            )
        if dropped:
            metrics.record_dropped(dropped)

    def _filter_tuple_buckets(self, buckets, crashed, failed_edges, rate, rng) -> int:
        """Filter the eager per-receiver buckets in place; return drop count."""
        if not buckets:
            return 0
        index_of = self._index_of
        n = self.n
        dropped = 0
        for receiver in list(buckets):
            records = buckets[receiver]
            receiver_index = index_of[receiver]
            if receiver_index in crashed:
                dropped += len(records)
                del buckets[receiver]
                continue
            kept: List[BatchRecord] = []
            for record in records:
                sender_index = index_of[record[0]]
                if (
                    sender_index in crashed
                    or (
                        failed_edges is not None
                        and sender_index * n + receiver_index in failed_edges
                    )
                    or (rng is not None and rng.random() < rate)
                ):
                    dropped += 1
                    continue
                kept.append(record)
            if len(kept) != len(records):
                if kept:
                    buckets[receiver] = kept
                else:
                    del buckets[receiver]
        return dropped

    def _filter_planes(
        self,
        planes,
        crashed,
        failed_edges,
        rate,
        rng,
        crashed_arr=None,
        failed_arr=None,
    ) -> int:
        """Filter queued plane batches in place; return the drop count.

        Surviving batches keep their original column objects when nothing was
        dropped.  Array-backed batches filter vectorised: the crash/edge
        keep-mask is computed per batch (span-parallel on the delivery engine
        when installed — elementwise, so bit-identical for any worker count),
        then the RNG consumes one draw per crash/edge survivor in ascending
        token order, exactly like the scalar loop — the drop decisions and
        the draw stream match the serial path bit for bit.  A filtered batch
        loses its precomputed ``fresh_pairs``; the id-learning pass recomputes
        pairs from the surviving columns instead of trusting a stale spine.
        """
        if not planes:
            return 0
        n = self.n
        np = _accel.np
        delivery = self._sharded_delivery() if np is not None else None
        dropped = 0
        for i, batch in enumerate(planes):
            senders = batch.senders
            receivers = batch.receivers
            words = batch.words
            if (
                crashed_arr is not None
                and np is not None
                and isinstance(senders, np.ndarray)
            ):
                if delivery is not None:
                    keep_mask = delivery.keep_mask(
                        np, senders, receivers, crashed_arr, failed_arr, n
                    )
                else:
                    keep_mask = span_keep_mask(
                        np, senders, receivers, crashed_arr, failed_arr, n
                    )
                if rng is not None:
                    passing = np.flatnonzero(keep_mask)
                    if passing.size:
                        draw = rng.random
                        draws = np.fromiter(
                            (draw() for _ in range(passing.size)),
                            dtype=np.float64,
                            count=passing.size,
                        )
                        keep_mask[passing[draws < rate]] = False
                kept = np.flatnonzero(keep_mask)
                if kept.size == len(senders):
                    continue
                dropped += len(senders) - int(kept.size)
                positions = batch.positions
                if positions is None:
                    new_positions = kept
                else:
                    if not isinstance(positions, np.ndarray):
                        positions = np.asarray(positions, dtype=np.int64)
                    new_positions = positions[kept]
                planes[i] = _PlaneBatch(
                    senders[kept],
                    receivers[kept],
                    words[kept],
                    batch.payloads,
                    new_positions,
                    batch.tag,
                    None,
                )
                continue
            if hasattr(senders, "tolist"):
                senders = senders.tolist()
                receivers = receivers.tolist()
                words = words.tolist()
            keep: List[int] = []
            for k in range(len(senders)):
                sender_index = senders[k]
                receiver_index = receivers[k]
                if (
                    sender_index in crashed
                    or receiver_index in crashed
                    or (
                        failed_edges is not None
                        and sender_index * n + receiver_index in failed_edges
                    )
                    or (rng is not None and rng.random() < rate)
                ):
                    dropped += 1
                    continue
                keep.append(k)
            if len(keep) == len(senders):
                continue
            positions = batch.positions
            if positions is None:
                new_positions_list: List[int] = keep
            else:
                if hasattr(positions, "tolist"):
                    positions = positions.tolist()
                new_positions_list = [positions[k] for k in keep]
            planes[i] = _PlaneBatch(
                [senders[k] for k in keep],
                [receivers[k] for k in keep],
                [words[k] for k in keep],
                batch.payloads,
                new_positions_list,
                batch.tag,
                None,
            )
        return dropped

    def delivered_plane_positions(self, tag, mode: str = GLOBAL_MODE) -> List[int]:
        """Plane positions actually delivered for ``tag`` in the last round.

        Positions index the submitted plane's payload side list.  This is the
        self-healing exchange's ack channel: positions absent from the result
        were dropped by the fault layer and need retransmission.  Batches are
        matched by tag equality, so pass a unique
        :class:`~repro.simulator.engine.ExchangeTag` per exchange.
        """
        self._require_delivered()
        planes = (
            self._delivered_global_planes
            if mode == GLOBAL_MODE
            else self._delivered_local_planes
        )
        delivered: List[int] = []
        for batch in planes:
            if batch.tag != tag:
                continue
            positions = batch.positions
            if positions is None:
                delivered.extend(range(len(batch.senders)))
            else:
                if hasattr(positions, "tolist"):
                    positions = positions.tolist()
                delivered.extend(positions)
        return delivered

    def advance_rounds(self, count: int) -> None:
        """Advance ``count`` (possibly silent) rounds."""
        if count < 0:
            raise ValueError("count must be non-negative")
        for _ in range(count):
            self.advance_round()

    def charge_rounds(self, rounds: int, reason: str, reference: str = "") -> None:
        """Add an analytic round charge (see DESIGN.md substitution policy)."""
        self.metrics.charge(rounds, reason, reference)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def per_node_inbox(self, mode: str = GLOBAL_MODE) -> Dict[Node, List[BatchRecord]]:
        """The pre-bucketed deliveries of the last round for ``mode``.

        Returns the mapping ``receiver -> [(sender, payload, tag, words), ...]``
        — nodes that received nothing are absent, so read with
        ``inbox.get(node, ())``.  The dict and its lists are the simulator's
        own buckets; treat them as read-only.  Plane deliveries are expanded
        into record tuples here, on first read of the round (the round engine
        harvests directly from its shards and never triggers this).
        """
        self._require_delivered()
        if mode == GLOBAL_MODE:
            return self._global_buckets()
        if mode == LOCAL_MODE:
            return self._local_buckets()
        raise ValueError(f"unknown mode {mode!r}")

    def _global_buckets(self) -> Dict[Node, List[BatchRecord]]:
        self._check_charge_only_read(self._delivered_global)
        if not self._delivered_global_planes:
            return self._delivered_global
        merged = self._merged_global
        if merged is None:
            merged = self._merged_global = self._merge_buckets(
                self._delivered_global, self._delivered_global_planes
            )
        return merged

    def _local_buckets(self) -> Dict[Node, List[BatchRecord]]:
        self._check_charge_only_read(self._delivered_local)
        if not self._delivered_local_planes:
            return self._delivered_local
        merged = self._merged_local
        if merged is None:
            merged = self._merged_local = self._merge_buckets(
                self._delivered_local, self._delivered_local_planes
            )
        return merged

    def _check_charge_only_read(self, eager: Dict[Node, List[BatchRecord]]) -> None:
        """Raise on inbox reads of charge-only *tuple* traffic.

        The plane twin of this guard lives in :meth:`_PlaneBatch.records`;
        tuple records are stored with a ``None`` payload slot in charge-only
        mode, so they must never escape to a reader either.  Rounds with no
        tuple traffic pass through — an empty inbox is exact, not a content
        read.
        """
        if self.charge_only and eager:
            raise ChargeOnlyError(
                "this round's tuple traffic was queued charge-only (no "
                "payload references); its schedule and accounting are exact, "
                "but the round's inbox contents were never materialised"
            )

    def _merge_buckets(
        self,
        eager: Dict[Node, List[BatchRecord]],
        planes: List["_PlaneBatch"],
    ) -> Dict[Node, List[BatchRecord]]:
        """Materialise plane records into (a copy of) the eager buckets.

        Within one receiver, eager records come first, then plane records in
        submission order — matching the queueing order of callers that mix the
        two APIs in one round only when the eager sends happened first.
        """
        merged = {receiver: list(records) for receiver, records in eager.items()}
        nodes = self._nodes
        for batch in planes:
            for receiver, record in batch.records(nodes):
                bucket = merged.get(receiver)
                if bucket is None:
                    bucket = merged[receiver] = []
                bucket.append(record)
        return merged

    def local_inbox(self, node: Node) -> List[Message]:
        """Messages delivered to ``node`` over the local mode in the last round."""
        self._require_delivered()
        self._require_node(node)
        cached = self._materialized_local.get(node)
        if cached is None:
            cached = self._materialize(node, self._local_buckets(), LOCAL_MODE)
            self._materialized_local[node] = cached
        return list(cached)

    def global_inbox(self, node: Node) -> List[Message]:
        """Messages delivered to ``node`` over the global mode in the last round."""
        self._require_delivered()
        self._require_node(node)
        cached = self._materialized_global.get(node)
        if cached is None:
            cached = self._materialize(node, self._global_buckets(), GLOBAL_MODE)
            self._materialized_global[node] = cached
        return list(cached)

    def inbox(self, node: Node) -> List[Message]:
        """All messages (local then global) delivered to ``node`` in the last round."""
        return self.local_inbox(node) + self.global_inbox(node)

    def _materialize(
        self, node: Node, buckets: Dict[Node, List[BatchRecord]], mode: str
    ) -> List[Message]:
        round_sent = self._delivered_round
        return [
            Message(sender, node, payload, mode, tag, round_sent)
            for sender, payload, tag, _ in buckets.get(node, ())
        ]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_node(self, node: Node) -> None:
        if node not in self._node_set:
            raise UnknownNodeError(node)

    def _require_delivered(self) -> None:
        if self._delivered_round < 0:
            raise RoundLifecycleError(
                "no round has been delivered yet; call advance_round() first"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HybridSimulator(n={self.n}, model={self.config.name!r}, "
            f"round={self.round})"
        )
