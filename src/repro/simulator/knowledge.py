"""Identifier-knowledge tracking for HYBRID_0.

In HYBRID_0 (Section 1.3) a node may only address global messages to nodes whose
identifiers it *knows*; initially it knows its own identifier and those of its
graph neighbors.  Knowledge grows when a node receives a message whose payload
contains identifiers (the application must declare them) or simply by having
exchanged a message with a node (sender identifiers are always learned).

The tracker is deliberately explicit: algorithms call
``simulator.declare_learned_ids(node, ids)`` when a received payload taught the
node new identifiers (e.g. the broadcast of all identifiers used as a
preprocessing step in Theorem 1's corollary).  Sending to an unknown identifier
raises :class:`~repro.simulator.errors.UnknownIdentifierError`.

Representation: each node's knowledge is a *personal* mutable set plus a list
of **shared frozensets** appended by :meth:`KnowledgeTracker.learn_shared` —
the broadcast idiom ("every cluster member learns all leader identifiers",
"everyone knows everything" in the dense regime) stores one frozenset object
referenced by every learner instead of copying it into n per-node sets, which
keeps the bookkeeping O(n) instead of O(n * |ids|) in both time and memory.
Membership checks probe the personal set first and then the (short) shared
list; :meth:`known_ids` materialises the union on demand.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Hashable, Iterable, List, Set

from repro.simulator.errors import UnknownNodeError

__all__ = ["KnowledgeTracker"]


class _KnownView:
    """Read-only membership view over a personal set plus shared frozensets."""

    __slots__ = ("_personal", "_shared")

    def __init__(self, personal, shared) -> None:
        self._personal = personal
        self._shared = shared

    def __contains__(self, target: Hashable) -> bool:
        if target in self._personal:
            return True
        for ids in self._shared:
            if target in ids:
                return True
        return False


class KnowledgeTracker:
    """Tracks, per node, the set of identifiers the node currently knows."""

    def __init__(self, all_ids: Iterable[Hashable]) -> None:
        self._all_ids: Set[Hashable] = set(all_ids)
        self._known: Dict[Hashable, Set[Hashable]] = {}
        self._shared: Dict[Hashable, List[FrozenSet[Hashable]]] = {}

    def initialize_node(self, node_id: Hashable, neighbor_ids: Iterable[Hashable]) -> None:
        """A node starts knowing its own identifier and its neighbors' (Section 1.3)."""
        self._validate(node_id)
        known = {node_id}
        known.update(neighbor_ids)
        self._known[node_id] = known

    def initialize_all_known(self) -> None:
        """HYBRID (dense regime): every node knows every identifier from the start.

        One shared frozenset referenced by all nodes — O(n), not O(n^2).
        """
        universe = frozenset(self._all_ids)
        for node_id in self._all_ids:
            self._shared[node_id] = [universe]

    def knows(self, node_id: Hashable, target_id: Hashable) -> bool:
        self._validate(node_id)
        if target_id in self._known.get(node_id, ()):
            return True
        for ids in self._shared.get(node_id, ()):
            if target_id in ids:
                return True
        return False

    def known_ids(self, node_id: Hashable) -> Set[Hashable]:
        self._validate(node_id)
        result = set(self._known.get(node_id, ()))
        for ids in self._shared.get(node_id, ()):
            result |= ids
        return result

    def known_ids_view(self, node_id: Hashable):
        """The node's knowledge *without* a defensive copy.

        Used by the batch send paths, which probe membership once per queued
        message (or unique pair); supports only the ``in`` operator and must
        be treated as read-only.  Returns the personal set itself when the
        node has no shared knowledge.
        """
        self._validate(node_id)
        shared = self._shared.get(node_id)
        personal = self._known.get(node_id, set())
        if not shared:
            return personal
        return _KnownView(personal, shared)

    def learn(self, node_id: Hashable, new_ids: Iterable[Hashable]) -> None:
        """Record that ``node_id`` learned the identifiers in ``new_ids``.

        Identifiers that do not exist in the network are ignored (a node may be
        told about identifiers that turn out to be bogus; it simply cannot reach
        anyone with them).
        """
        self._validate(node_id)
        bucket = self._known.setdefault(node_id, {node_id})
        if not isinstance(new_ids, (set, frozenset)):
            new_ids = set(new_ids)
        bucket |= new_ids & self._all_ids

    def learn_known(self, node_id: Hashable, new_ids: Iterable[Hashable]) -> None:
        """:meth:`learn` for identifier collections already known to be valid.

        The bulk plane paths derive both arguments from the simulator's own
        identifier table, so the existence validation and the bogus-id
        intersection of :meth:`learn` would be pure overhead on the hot path.
        """
        self._known.setdefault(node_id, {node_id}).update(new_ids)

    def learn_shared(
        self, node_ids: Iterable[Hashable], ids: FrozenSet[Hashable]
    ) -> None:
        """Every node in ``node_ids`` learns the same (validated) frozenset.

        Stored by reference — one append per learner, however large ``ids``
        is.  The caller is responsible for filtering bogus identifiers (see
        :meth:`valid_ids`) and for not mutating the set afterwards.
        """
        shared = self._shared
        for node_id in node_ids:
            shared.setdefault(node_id, []).append(ids)

    def valid_ids(self, ids: Iterable[Hashable]) -> Set[Hashable]:
        """The subset of ``ids`` that exist in the network.

        Lets a bulk caller apply :meth:`learn`'s bogus-id filtering once per
        shared identifier set instead of once per learning node (pair with
        :meth:`learn_known` / :meth:`learn_shared`).
        """
        if not isinstance(ids, (set, frozenset)):
            ids = set(ids)
        return ids & self._all_ids

    def knowledge_count(self, node_id: Hashable) -> int:
        return len(self.known_ids(node_id))

    def _validate(self, node_id: Hashable) -> None:
        if node_id not in self._all_ids:
            raise UnknownNodeError(node_id)
