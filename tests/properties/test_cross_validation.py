"""Cross-validation of the batch-migrated algorithms against centralized truth.

Every algorithm migrated onto the batch messaging engine (KDissemination,
KAggregation, KLRouting, ApproxSSSP) is checked against
:mod:`repro.baselines.centralized` reference solvers on a corpus of six graph
families (path, cycle, grid, barbell, broom, Erdos-Renyi) x three seeds each.
"""

import math
import random

import pytest

from repro.baselines.centralized import exact_sssp
from repro.core.aggregation import KAggregation
from repro.core.dissemination import KDissemination
from repro.core.routing import KLRouting
from repro.core.sssp import ApproxSSSP
from repro.graphs.generators import (
    barbell_graph,
    broom_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
)
from repro.graphs.weighted import assign_random_weights
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator

SEEDS = [0, 1, 2]

GRAPH_FAMILIES = {
    "path": lambda seed: path_graph(30),
    "cycle": lambda seed: cycle_graph(30),
    "grid": lambda seed: grid_graph(6, 2),
    "barbell": lambda seed: barbell_graph(8, 12),
    "broom": lambda seed: broom_graph(18, 10),
    "erdos_renyi": lambda seed: erdos_renyi_graph(30, 0.12, seed=seed),
}

CASES = [
    (family, seed) for family in sorted(GRAPH_FAMILIES) for seed in SEEDS
]


def _ids(case):
    family, seed = case
    return f"{family}-s{seed}"


@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_dissemination_matches_token_union(case):
    family, seed = case
    graph = GRAPH_FAMILIES[family](seed)
    rng = random.Random(100 + seed)
    nodes = sorted(graph.nodes)
    tokens = {}
    for index in range(12):
        tokens.setdefault(rng.choice(nodes), []).append(("tok", index))
    expected = {token for held in tokens.values() for token in held}

    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    result = KDissemination(sim, tokens).run()

    assert result.tokens == expected
    assert result.all_nodes_know_all_tokens()
    assert result.metrics.capacity_violations == 0


@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_aggregation_matches_centralized_reduction(case):
    family, seed = case
    graph = GRAPH_FAMILIES[family](seed)
    rng = random.Random(200 + seed)
    k = 6
    values = {node: [rng.randint(-500, 500) for _ in range(k)] for node in graph.nodes}
    expected_min = [min(values[v][i] for v in graph.nodes) for i in range(k)]
    expected_sum = [sum(values[v][i] for v in graph.nodes) for i in range(k)]

    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    assert KAggregation(sim, values, min).run().aggregates == expected_min
    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    result = KAggregation(sim, values, lambda a, b: a + b).run()
    assert result.aggregates == expected_sum
    assert result.all_nodes_know_all_aggregates()


@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_routing_delivers_every_message(case):
    family, seed = case
    graph = GRAPH_FAMILIES[family](seed)
    rng = random.Random(300 + seed)
    nodes = sorted(graph.nodes)
    sources = rng.sample(nodes, 4)
    targets = rng.sample(nodes, 3)
    messages = {
        (s, t): ("payload", s, t) for s in sources for t in targets
    }

    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)
    result = KLRouting(sim, messages, seed=seed).run()

    assert result.all_delivered(messages)
    for (source, target), payload in messages.items():
        assert result.delivered[target][source] == payload


@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_sssp_matches_centralized_dijkstra(case):
    family, seed = case
    graph = assign_random_weights(GRAPH_FAMILIES[family](seed), max_weight=9, seed=seed)
    source = sorted(graph.nodes)[0]
    epsilon = 0.25
    truth = exact_sssp(graph, source)

    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    result = ApproxSSSP(sim, source, epsilon=epsilon).run()

    for node, true_distance in truth.items():
        estimate = result.distance_to(node)
        assert estimate < math.inf
        # Never underestimates, overestimates by at most (1 + eps).
        assert estimate >= true_distance - 1e-9
        assert estimate <= (1.0 + epsilon) * true_distance + 1e-9
