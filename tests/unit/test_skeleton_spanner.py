"""Unit tests for skeleton graphs (Definition 6.2 / Lemma 6.3) and spanners
(Lemma 6.1)."""

import math

import networkx as nx
import pytest

from repro.core.skeleton import build_skeleton, distributed_skeleton
from repro.core.spanner import (
    baswana_sen_spanner,
    distributed_spanner,
    greedy_spanner,
    spanner_stretch,
)
from repro.graphs.generators import cycle_graph, erdos_renyi_graph, grid_graph, path_graph
from repro.graphs.weighted import assign_random_weights
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator


class TestSkeleton:
    def test_skeleton_nodes_subset_of_graph(self):
        g = grid_graph(6, 2)
        skeleton = build_skeleton(g, 0.3, seed=0)
        assert set(skeleton.skeleton_nodes) <= set(g.nodes)
        assert skeleton.node_count >= 1

    def test_forced_nodes_included(self):
        g = path_graph(40)
        skeleton = build_skeleton(g, 0.2, seed=1, forced_nodes=[0, 39])
        assert skeleton.contains(0)
        assert skeleton.contains(39)

    def test_h_scales_inversely_with_probability(self):
        g = path_graph(50)
        dense = build_skeleton(g, 0.5, seed=0)
        sparse = build_skeleton(g, 0.1, seed=0)
        assert sparse.h > dense.h

    def test_skeleton_distances_equal_graph_distances(self):
        # Lemma 6.3 (2): for skeleton nodes, d_S = d_G (w.h.p.).
        g = assign_random_weights(grid_graph(6, 2), max_weight=5, seed=2)
        skeleton = build_skeleton(g, 0.35, seed=2)
        for source in skeleton.skeleton_nodes[:5]:
            true_dist = nx.single_source_dijkstra_path_length(g, source, weight="weight")
            skel_dist = nx.single_source_dijkstra_path_length(
                skeleton.graph, source, weight="weight"
            )
            for target in skeleton.skeleton_nodes:
                if target in skel_dist:
                    assert skel_dist[target] == pytest.approx(true_dist[target])

    def test_every_long_path_hits_skeleton(self):
        # Lemma 6.3 (1): any node has a skeleton node within h hops (w.h.p.) on
        # a connected graph whose diameter exceeds h.
        g = path_graph(80)
        skeleton = build_skeleton(g, 0.25, seed=3)
        skeleton_set = set(skeleton.skeleton_nodes)
        for node in g.nodes:
            window = range(max(0, node - skeleton.h), min(79, node + skeleton.h) + 1)
            assert any(w in skeleton_set for w in window)

    def test_probability_one_includes_every_node(self):
        g = cycle_graph(12)
        skeleton = build_skeleton(g, 1.0, seed=0)
        assert sorted(skeleton.skeleton_nodes) == sorted(g.nodes)

    def test_invalid_probability(self):
        with pytest.raises(ValueError):
            build_skeleton(path_graph(5), 0.0)
        with pytest.raises(ValueError):
            build_skeleton(path_graph(5), 1.5)

    def test_distributed_wrapper_charges_h_rounds(self):
        g = path_graph(40)
        sim = HybridSimulator(g, ModelConfig.hybrid(), seed=0)
        skeleton = distributed_skeleton(sim, 0.25, seed=0)
        assert sim.metrics.charged_rounds == skeleton.h


class TestGreedySpanner:
    @pytest.mark.parametrize("t", [1, 2, 3])
    def test_stretch_guarantee(self, t):
        g = assign_random_weights(erdos_renyi_graph(30, 0.25, seed=1), max_weight=9, seed=1)
        spanner = greedy_spanner(g, t)
        assert spanner_stretch(g, spanner) <= 2 * t - 1 + 1e-9

    def test_t_one_keeps_all_distances_exact(self):
        g = assign_random_weights(grid_graph(4, 2), max_weight=7, seed=0)
        spanner = greedy_spanner(g, 1)
        assert spanner_stretch(g, spanner) == pytest.approx(1.0)

    def test_spanner_is_subgraph(self):
        g = erdos_renyi_graph(25, 0.3, seed=2)
        spanner = greedy_spanner(g, 2)
        for u, v in spanner.edges:
            assert g.has_edge(u, v)

    def test_spanner_spans_all_nodes_and_is_connected(self):
        g = erdos_renyi_graph(25, 0.3, seed=3)
        spanner = greedy_spanner(g, 3)
        assert set(spanner.nodes) == set(g.nodes)
        assert nx.is_connected(spanner)

    def test_spanner_sparsifies_dense_graph(self):
        g = erdos_renyi_graph(40, 0.5, seed=4)
        spanner = greedy_spanner(g, 3)
        n = g.number_of_nodes()
        # Girth bound: O(n^{1+1/3}); allow a generous constant.
        assert spanner.number_of_edges() <= 4 * n ** (1 + 1.0 / 3.0)
        assert spanner.number_of_edges() < g.number_of_edges()

    def test_invalid_t(self):
        with pytest.raises(ValueError):
            greedy_spanner(path_graph(4), 0)


class TestBaswanaSenSpanner:
    @pytest.mark.parametrize("t", [2, 3])
    def test_stretch_guarantee(self, t):
        g = assign_random_weights(erdos_renyi_graph(30, 0.3, seed=5), max_weight=9, seed=5)
        spanner = baswana_sen_spanner(g, t, seed=5)
        assert spanner_stretch(g, spanner) <= 2 * t - 1 + 1e-9

    def test_subgraph_and_connectivity(self):
        g = erdos_renyi_graph(30, 0.3, seed=6)
        spanner = baswana_sen_spanner(g, 2, seed=6)
        for u, v in spanner.edges:
            assert g.has_edge(u, v)
        assert nx.is_connected(spanner)

    def test_invalid_t(self):
        with pytest.raises(ValueError):
            baswana_sen_spanner(path_graph(4), 0)


class TestDistributedSpanner:
    def test_charges_congest_rounds(self):
        g = erdos_renyi_graph(25, 0.3, seed=7)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=7)
        spanner = distributed_spanner(sim, 2)
        assert spanner_stretch(g, spanner) <= 3 + 1e-9
        assert sim.metrics.charged_rounds > 0

    def test_randomized_variant(self):
        g = erdos_renyi_graph(25, 0.3, seed=8)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=8)
        spanner = distributed_spanner(sim, 2, randomized=True, seed=8)
        assert spanner_stretch(g, spanner) <= 3 + 1e-9
