"""The synchronous HYBRID(lambda, gamma) network simulator.

The simulator owns the local communication graph ``G`` and advances in
synchronous rounds (Section 1.3):

* **Local mode** — in each round a node may send an arbitrarily large message
  over each incident edge of ``G`` (unless ``lambda`` is finite, as in CONGEST,
  in which case the per-edge payload is capped).
* **Global mode** — in each round a node may send and receive at most
  ``gamma`` bits (equivalently, O(log n) messages of O(log n) bits) addressed to
  *any* node, provided the sender knows the receiver's identifier.  In HYBRID
  all identifiers are globally known; in HYBRID_0 a node initially only knows
  its own identifier and those of its graph neighbors, and knowledge spreads
  only through received messages.

Batch messaging engine
----------------------

The simulator is *batch-native*: queued traffic is stored as lightweight
``(sender, payload, tag, words)`` records pre-bucketed by receiver, and
capacity accounting is done with aggregated per-node word counters that are
updated at enqueue time — ``advance_round`` never iterates over individual
messages to enforce the budget.  Whole rounds of traffic are submitted with

* :meth:`HybridSimulator.local_send_batch` — an iterable of
  ``(sender, receiver, payload)`` (or ``(sender, receiver, payload, words)``
  with the payload size precomputed) triples over local edges,
* :meth:`HybridSimulator.global_send_batch` — the same shape for the global
  mode, addressed by node (or by identifier with ``by_id=True``), and
* :meth:`HybridSimulator.per_node_inbox` — the pre-bucketed delivery dict
  ``receiver -> [(sender, payload, tag, words), ...]`` of the last round,
  returned without materialising per-message objects.

Capacity-accounting semantics: every queued global record adds its word count
(payload words plus tag words) to the sender's and the receiver's running
totals for the round; at ``advance_round`` each total is compared against
:meth:`HybridSimulator.global_budget_words` exactly once per node.  Send-side
overruns raise in strict mode (they are always under the algorithm's control);
receive-side overruns raise only when ``enforce_receive_capacity`` is set and
are otherwise recorded in
:class:`~repro.simulator.metrics.RoundMetrics.capacity_violations`.  The
accounting is therefore identical to charging each message individually — only
the bookkeeping is O(#nodes) instead of O(#messages) per round.

Legacy per-message API
----------------------

``local_send`` / ``global_send`` / ``local_inbox`` / ``global_inbox`` are kept
as thin wrappers over the batch engine: the send wrappers enqueue a single
record, and the inbox wrappers lazily materialise
:class:`~repro.simulator.messages.Message` objects from the delivered records
(cached per round).  They are not deprecated for correctness work — unit tests
and small experiments read better with them — but hot paths should migrate to
the batch API (see :mod:`repro.simulator.engine`); new per-message conveniences
will not be added.

Algorithms drive the simulator directly::

    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=0)
    sim.global_send_batch([(u, v, payload) for v, payload in assignments])
    sim.advance_round()
    for sender, payload, tag, words in sim.per_node_inbox().get(v, ()):
        ...

Every send is size-accounted; capacity violations raise (strict mode) or are
recorded in :class:`~repro.simulator.metrics.RoundMetrics`.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.simulator.config import IdentifierRegime, ModelConfig
from repro.simulator.errors import (
    CapacityExceededError,
    LocalBandwidthExceededError,
    NotANeighborError,
    RoundLifecycleError,
    UnknownIdentifierError,
    UnknownNodeError,
)
from repro.simulator.knowledge import KnowledgeTracker
from repro.simulator.messages import GLOBAL_MODE, LOCAL_MODE, Message, payload_words
from repro.simulator.metrics import RoundMetrics

Node = Hashable

__all__ = ["HybridSimulator", "BatchRecord", "node_sort_key"]

#: One delivered (or pending) message as stored by the batch engine:
#: ``(sender, payload, tag, words)``.  The receiver is the bucket key and the
#: round is the simulator's ``_delivered_round``.
BatchRecord = Tuple[Node, Any, Optional[str], int]


def node_sort_key(node: Node) -> Tuple[int, Any]:
    """Deterministic total order over nodes: numbers numerically, then strings.

    Integer-labelled graphs (the common case) order as ``0, 1, 2, ..., 10, 11``
    rather than the lexicographic ``0, 1, 10, 11, ..., 2`` a plain ``key=str``
    produces; non-numeric labels fall back to their string form in a separate
    group so mixed-type node sets still compare without a ``TypeError``.
    """
    if isinstance(node, bool) or not isinstance(node, (int, float)):
        return (1, str(node))
    return (0, node)


class HybridSimulator:
    """Round-based simulator of a HYBRID(lambda, gamma) network.

    Parameters
    ----------
    graph:
        The local communication graph.  Nodes may be any hashable objects; for
        the HYBRID (dense) identifier regime with integer nodes ``0..n-1`` the
        identifier of node ``v`` is ``v`` itself, matching the paper's "[n]"
        convention up to a shift.
    config:
        The :class:`~repro.simulator.config.ModelConfig` describing lambda,
        gamma, and the identifier regime.
    seed:
        Seed for the simulator's own randomness (sparse identifier assignment).
    capacity_multiplier:
        Slack factor applied to the per-node global budget.  The paper's
        guarantees are "O(log n) messages w.h.p."; on the small instances used
        in tests the hidden constants matter, so callers may allow a small
        constant slack.  The default of 1 enforces the budget exactly.
    enforce_receive_capacity:
        If True, a node receiving more than its budget in one round raises in
        strict mode.  By default receive-side overload is only *recorded*
        (mirroring the paper's remark that an adversary may drop the excess;
        our algorithms are expected to keep the bound and the tests assert
        ``capacity_violations == 0`` where the paper claims it).
    """

    def __init__(
        self,
        graph: nx.Graph,
        config: Optional[ModelConfig] = None,
        *,
        seed: Optional[int] = None,
        capacity_multiplier: int = 1,
        enforce_receive_capacity: bool = False,
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("cannot simulate an empty network")
        if capacity_multiplier < 1:
            raise ValueError("capacity_multiplier must be at least 1")
        self.graph = graph
        self.config = config if config is not None else ModelConfig.hybrid()
        self.n = graph.number_of_nodes()
        self.rng = random.Random(seed)
        self.capacity_multiplier = capacity_multiplier
        self.enforce_receive_capacity = enforce_receive_capacity
        self.metrics = RoundMetrics()
        self.round = 0

        self._nodes: List[Node] = sorted(graph.nodes, key=node_sort_key)
        self._node_set: Set[Node] = set(self._nodes)
        self._assign_identifiers()
        self._init_knowledge()

        # Batch-native round state: pending traffic pre-bucketed by receiver,
        # per-node word counters for the round being composed, and the buckets
        # delivered by the most recent ``advance_round``.
        self._pending_local: Dict[Node, List[BatchRecord]] = {}
        self._pending_global: Dict[Node, List[BatchRecord]] = {}
        self._global_sent_words: Dict[Node, int] = defaultdict(int)
        self._global_recv_words: Dict[Node, int] = defaultdict(int)
        self._pending_local_msgs = 0
        self._pending_local_words = 0
        self._pending_global_msgs = 0
        self._pending_global_words = 0
        self._delivered_local: Dict[Node, List[BatchRecord]] = {}
        self._delivered_global: Dict[Node, List[BatchRecord]] = {}
        # Lazily materialised Message lists for the legacy inbox API.
        self._materialized_local: Dict[Node, List[Message]] = {}
        self._materialized_global: Dict[Node, List[Message]] = {}
        self._delivered_round = -1

    # ------------------------------------------------------------------
    # Identifiers and knowledge
    # ------------------------------------------------------------------
    def _assign_identifiers(self) -> None:
        if self.config.identifier_regime is IdentifierRegime.DENSE:
            # HYBRID: identifiers are exactly [n].  When nodes are already the
            # integers 0..n-1 we use them verbatim; otherwise we enumerate.
            if all(isinstance(v, int) for v in self._nodes) and set(self._nodes) == set(
                range(self.n)
            ):
                self._node_to_id: Dict[Node, int] = {v: v for v in self._nodes}
            else:
                self._node_to_id = {v: index for index, v in enumerate(self._nodes)}
        else:
            # HYBRID_0: identifiers from a polynomial range [n^c]; we draw
            # distinct random integers from [n^3].
            universe = max(self.n**3, 8)
            ids = self.rng.sample(range(universe), self.n)
            self._node_to_id = {v: ids[index] for index, v in enumerate(self._nodes)}
        self._id_to_node: Dict[int, Node] = {
            identifier: node for node, identifier in self._node_to_id.items()
        }

    def _init_knowledge(self) -> None:
        self.knowledge = KnowledgeTracker(self._id_to_node.keys())
        if self.config.identifier_regime is IdentifierRegime.DENSE:
            self.knowledge.initialize_all_known()
        else:
            for node in self._nodes:
                neighbor_ids = [self._node_to_id[u] for u in self.graph.neighbors(node)]
                self.knowledge.initialize_node(self._node_to_id[node], neighbor_ids)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        """All nodes, in a deterministic order (numeric labels numerically)."""
        return list(self._nodes)

    def neighbors(self, node: Node) -> List[Node]:
        self._require_node(node)
        return sorted(self.graph.neighbors(node), key=node_sort_key)

    def id_of(self, node: Node) -> int:
        self._require_node(node)
        return self._node_to_id[node]

    def node_of_id(self, identifier: int) -> Node:
        if identifier not in self._id_to_node:
            raise UnknownNodeError(identifier)
        return self._id_to_node[identifier]

    def all_ids(self) -> List[int]:
        return sorted(self._id_to_node)

    def known_ids(self, node: Node) -> Set[int]:
        return self.knowledge.known_ids(self.id_of(node))

    def knows_id(self, node: Node, identifier: int) -> bool:
        return self.knowledge.knows(self.id_of(node), identifier)

    def declare_learned_ids(self, node: Node, identifiers: Iterable[int]) -> None:
        """Record that ``node`` learned identifiers from received payloads."""
        self.knowledge.learn(self.id_of(node), identifiers)

    def global_budget_words(self) -> int:
        """Per-node, per-round global budget in words."""
        return self.config.resolve_global_word_budget(self.n) * self.capacity_multiplier

    def edge_weight(self, u: Node, v: Node) -> float:
        return self.graph[u][v].get("weight", 1)

    # ------------------------------------------------------------------
    # Sending — batch API (the native path)
    # ------------------------------------------------------------------
    def local_send_batch(
        self,
        triples: Iterable[Tuple],
        tag: Optional[str] = None,
    ) -> int:
        """Queue a whole round of local-mode traffic at once.

        ``triples`` yields ``(sender, receiver, payload)`` — or
        ``(sender, receiver, payload, words)`` with ``words`` the precomputed
        :func:`~repro.simulator.messages.payload_words` of the payload, which
        skips re-estimating sizes the caller already knows.  All records share
        ``tag``.  Returns the number of messages queued.
        """
        if not self.config.local_mode_enabled():
            raise LocalBandwidthExceededError(
                f"local mode disabled in model {self.config.name!r}"
            )
        tag_words = payload_words(tag) if tag is not None else 0
        limit = self.config.local_bits_per_edge
        max_words = max(1, limit // 64) if limit is not None and limit > 0 else None
        node_set = self._node_set
        has_edge = self.graph.has_edge
        buckets = self._pending_local
        count = 0
        total_words = 0
        # The try/finally keeps the aggregate counters in sync with the
        # records already queued when a validation error aborts the batch
        # mid-iteration (the failing record itself is never queued).
        try:
            for triple in triples:
                if len(triple) == 4:
                    sender, receiver, payload, words = triple
                else:
                    sender, receiver, payload = triple
                    words = payload_words(payload)
                if sender not in node_set:
                    raise UnknownNodeError(sender)
                if receiver not in node_set:
                    raise UnknownNodeError(receiver)
                if not has_edge(sender, receiver):
                    raise NotANeighborError(f"{sender!r} and {receiver!r} are not adjacent")
                words += tag_words
                if max_words is not None and words > max_words:
                    # CONGEST-style finite bandwidth: the per-edge payload may
                    # use at most limit bits ~= limit / 64 words.
                    if self.config.strict:
                        raise LocalBandwidthExceededError(
                            f"local message of {words} words exceeds per-edge "
                            f"budget of {max_words} words"
                        )
                    self.metrics.record_violation()
                bucket = buckets.get(receiver)
                if bucket is None:
                    bucket = buckets[receiver] = []
                bucket.append((sender, payload, tag, words))
                count += 1
                total_words += words
        finally:
            self._pending_local_msgs += count
            self._pending_local_words += total_words
        return count

    def global_send_batch(
        self,
        triples: Iterable[Tuple],
        tag: Optional[str] = None,
        *,
        by_id: bool = False,
    ) -> int:
        """Queue a whole round of global-mode traffic at once.

        ``triples`` yields ``(sender, receiver, payload)`` — or
        ``(sender, receiver, payload, words)`` with the payload size
        precomputed — where ``receiver`` is a node, or an identifier when
        ``by_id`` is set.  In HYBRID_0 each sender must know the receiver's
        identifier.  Word counts (payload plus shared ``tag``) are added to the
        aggregated per-node counters checked by :meth:`advance_round`.
        Returns the number of messages queued.
        """
        if not self.config.global_mode_enabled():
            raise CapacityExceededError(
                f"global mode disabled in model {self.config.name!r}"
            )
        tag_words = payload_words(tag) if tag is not None else 0
        check_knowledge = self.config.is_hybrid0()
        node_set = self._node_set
        node_to_id = self._node_to_id
        id_to_node = self._id_to_node
        known_view = self.knowledge.known_ids_view
        known_cache: Dict[Node, Set[int]] = {}
        buckets = self._pending_global
        sent_words = self._global_sent_words
        recv_words = self._global_recv_words
        count = 0
        total_words = 0
        # As in local_send_batch: a validation error mid-batch must leave the
        # aggregate counters consistent with the records already queued.
        try:
            for triple in triples:
                if len(triple) == 4:
                    sender, receiver, payload, words = triple
                else:
                    sender, receiver, payload = triple
                    words = payload_words(payload)
                if sender not in node_set:
                    raise UnknownNodeError(sender)
                if by_id:
                    target_id = receiver
                    if target_id not in id_to_node:
                        raise UnknownNodeError(target_id)
                    receiver = id_to_node[target_id]
                else:
                    if receiver not in node_set:
                        raise UnknownNodeError(receiver)
                    target_id = node_to_id[receiver]
                if check_knowledge:
                    known = known_cache.get(sender)
                    if known is None:
                        known = known_cache[sender] = known_view(node_to_id[sender])
                    if target_id not in known:
                        raise UnknownIdentifierError(
                            f"node {sender!r} does not know identifier {target_id!r}"
                        )
                words += tag_words
                bucket = buckets.get(receiver)
                if bucket is None:
                    bucket = buckets[receiver] = []
                bucket.append((sender, payload, tag, words))
                sent_words[sender] += words
                recv_words[receiver] += words
                count += 1
                total_words += words
        finally:
            self._pending_global_msgs += count
            self._pending_global_words += total_words
        return count

    # ------------------------------------------------------------------
    # Sending — legacy per-message wrappers
    # ------------------------------------------------------------------
    def local_send(self, sender: Node, receiver: Node, payload: Any, tag: Optional[str] = None) -> None:
        """Queue a local-mode message along the edge ``{sender, receiver}``.

        Thin wrapper over :meth:`local_send_batch` for a single message.
        """
        self.local_send_batch(((sender, receiver, payload),), tag)

    def local_broadcast(self, sender: Node, payload: Any, tag: Optional[str] = None) -> None:
        """Send the same payload to every neighbor of ``sender``."""
        words = payload_words(payload)
        self.local_send_batch(
            ((sender, neighbor, payload, words) for neighbor in self.neighbors(sender)),
            tag,
        )

    def global_send(
        self,
        sender: Node,
        target_id: int,
        payload: Any,
        tag: Optional[str] = None,
    ) -> None:
        """Queue a global-mode message to the node whose identifier is ``target_id``.

        Thin wrapper over :meth:`global_send_batch` for a single message.
        """
        self.global_send_batch(((sender, target_id, payload),), tag, by_id=True)

    def global_send_to_node(
        self, sender: Node, receiver: Node, payload: Any, tag: Optional[str] = None
    ) -> None:
        """Convenience wrapper: address a global message by node rather than id."""
        self.global_send_batch(((sender, receiver, payload),), tag)

    # ------------------------------------------------------------------
    # Round lifecycle
    # ------------------------------------------------------------------
    def advance_round(self) -> None:
        """Deliver all queued messages and advance the round counter.

        Global-mode capacity is enforced here from the aggregated per-node
        counters maintained by the send path: the total number of words each
        node *sends* and *receives* in this round must not exceed the per-node
        budget (times the configured slack).  Send-side violations raise in
        strict mode because they are always under the algorithm's control;
        receive-side violations raise only when ``enforce_receive_capacity`` is
        set, and are otherwise recorded.
        """
        if self.config.global_mode_enabled():
            budget = self.global_budget_words()
            strict = self.config.strict
            metrics = self.metrics
            for node, words in self._global_sent_words.items():
                metrics.record_node_round_load(words)
                if words > budget:
                    metrics.record_violation()
                    if strict:
                        raise CapacityExceededError(
                            f"node {node!r} sent {words} global words in round "
                            f"{self.round}, budget is {budget}"
                        )
            for node, words in self._global_recv_words.items():
                metrics.record_node_round_load(words)
                if words > budget:
                    metrics.record_violation()
                    if strict and self.enforce_receive_capacity:
                        raise CapacityExceededError(
                            f"node {node!r} received {words} global words in round "
                            f"{self.round}, budget is {budget}"
                        )

        self.metrics.record_local_bulk(self._pending_local_msgs, self._pending_local_words)
        self.metrics.record_global_bulk(self._pending_global_msgs, self._pending_global_words)

        # Receiving a global message always teaches the receiver the sender's
        # identifier (the sender attaches it implicitly).  In the dense regime
        # everyone already knows every identifier, so the bookkeeping is
        # skipped.
        if self._pending_global and self.config.identifier_regime is IdentifierRegime.SPARSE:
            node_to_id = self._node_to_id
            learn = self.knowledge.learn
            for receiver, records in self._pending_global.items():
                learn(node_to_id[receiver], {node_to_id[record[0]] for record in records})

        # Deliver: the pending buckets become the inboxes of this round.
        self._delivered_local = self._pending_local
        self._delivered_global = self._pending_global
        self._pending_local = {}
        self._pending_global = {}
        self._global_sent_words = defaultdict(int)
        self._global_recv_words = defaultdict(int)
        self._pending_local_msgs = 0
        self._pending_local_words = 0
        self._pending_global_msgs = 0
        self._pending_global_words = 0
        self._materialized_local = {}
        self._materialized_global = {}
        self._delivered_round = self.round
        self.round += 1
        self.metrics.record_round()

    def advance_rounds(self, count: int) -> None:
        """Advance ``count`` (possibly silent) rounds."""
        if count < 0:
            raise ValueError("count must be non-negative")
        for _ in range(count):
            self.advance_round()

    def charge_rounds(self, rounds: int, reason: str, reference: str = "") -> None:
        """Add an analytic round charge (see DESIGN.md substitution policy)."""
        self.metrics.charge(rounds, reason, reference)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def per_node_inbox(self, mode: str = GLOBAL_MODE) -> Dict[Node, List[BatchRecord]]:
        """The pre-bucketed deliveries of the last round for ``mode``.

        Returns the internal mapping ``receiver -> [(sender, payload, tag,
        words), ...]`` — nodes that received nothing are absent, so read with
        ``inbox.get(node, ())``.  The dict and its lists are the simulator's
        own buckets; treat them as read-only.
        """
        self._require_delivered()
        if mode == GLOBAL_MODE:
            return self._delivered_global
        if mode == LOCAL_MODE:
            return self._delivered_local
        raise ValueError(f"unknown mode {mode!r}")

    def local_inbox(self, node: Node) -> List[Message]:
        """Messages delivered to ``node`` over the local mode in the last round."""
        self._require_delivered()
        self._require_node(node)
        cached = self._materialized_local.get(node)
        if cached is None:
            cached = self._materialize(node, self._delivered_local, LOCAL_MODE)
            self._materialized_local[node] = cached
        return list(cached)

    def global_inbox(self, node: Node) -> List[Message]:
        """Messages delivered to ``node`` over the global mode in the last round."""
        self._require_delivered()
        self._require_node(node)
        cached = self._materialized_global.get(node)
        if cached is None:
            cached = self._materialize(node, self._delivered_global, GLOBAL_MODE)
            self._materialized_global[node] = cached
        return list(cached)

    def inbox(self, node: Node) -> List[Message]:
        """All messages (local then global) delivered to ``node`` in the last round."""
        return self.local_inbox(node) + self.global_inbox(node)

    def _materialize(
        self, node: Node, buckets: Dict[Node, List[BatchRecord]], mode: str
    ) -> List[Message]:
        round_sent = self._delivered_round
        return [
            Message(sender, node, payload, mode, tag, round_sent)
            for sender, payload, tag, _ in buckets.get(node, ())
        ]

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_node(self, node: Node) -> None:
        if node not in self._node_set:
            raise UnknownNodeError(node)

    def _require_delivered(self) -> None:
        if self._delivered_round < 0:
            raise RoundLifecycleError(
                "no round has been delivered yet; call advance_round() first"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HybridSimulator(n={self.n}, model={self.config.name!r}, "
            f"round={self.round})"
        )
