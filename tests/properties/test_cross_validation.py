"""Cross-validation of the batch-migrated algorithms against centralized truth.

Every algorithm migrated onto the batch messaging engine (KDissemination,
KAggregation, KLRouting, ApproxSSSP, and — since PR 3 — the shortest-paths
stack: UnweightedApproxAPSP, KSourceShortestPaths, KLShortestPaths and the
BCC bridge) is checked against :mod:`repro.baselines.centralized` reference
solvers on a corpus of six graph families (path, cycle, grid, barbell, broom,
Erdos-Renyi) x three seeds each.
"""

import math
import random

import pytest

from repro.baselines.centralized import exact_hop_apsp, exact_sssp, max_stretch_of_table
from repro.core.aggregation import KAggregation
from repro.core.bcc import BCCSimulator
from repro.core.dissemination import KDissemination
from repro.core.ksp import KSourceShortestPaths
from repro.core.routing import KLRouting
from repro.core.shortest_paths import KLShortestPaths, UnweightedApproxAPSP
from repro.core.sssp import ApproxSSSP
from repro.graphs.generators import (
    barbell_graph,
    broom_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
)
from repro.graphs.weighted import assign_random_weights, unit_weights
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator

SEEDS = [0, 1, 2]

GRAPH_FAMILIES = {
    "path": lambda seed: path_graph(30),
    "cycle": lambda seed: cycle_graph(30),
    "grid": lambda seed: grid_graph(6, 2),
    "barbell": lambda seed: barbell_graph(8, 12),
    "broom": lambda seed: broom_graph(18, 10),
    "erdos_renyi": lambda seed: erdos_renyi_graph(30, 0.12, seed=seed),
}

CASES = [
    (family, seed) for family in sorted(GRAPH_FAMILIES) for seed in SEEDS
]


def _ids(case):
    family, seed = case
    return f"{family}-s{seed}"


@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_dissemination_matches_token_union(case):
    family, seed = case
    graph = GRAPH_FAMILIES[family](seed)
    rng = random.Random(100 + seed)
    nodes = sorted(graph.nodes)
    tokens = {}
    for index in range(12):
        tokens.setdefault(rng.choice(nodes), []).append(("tok", index))
    expected = {token for held in tokens.values() for token in held}

    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    result = KDissemination(sim, tokens).run()

    assert result.tokens == expected
    assert result.all_nodes_know_all_tokens()
    assert result.metrics.capacity_violations == 0


@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_aggregation_matches_centralized_reduction(case):
    family, seed = case
    graph = GRAPH_FAMILIES[family](seed)
    rng = random.Random(200 + seed)
    k = 6
    values = {node: [rng.randint(-500, 500) for _ in range(k)] for node in graph.nodes}
    expected_min = [min(values[v][i] for v in graph.nodes) for i in range(k)]
    expected_sum = [sum(values[v][i] for v in graph.nodes) for i in range(k)]

    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    assert KAggregation(sim, values, min).run().aggregates == expected_min
    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    result = KAggregation(sim, values, lambda a, b: a + b).run()
    assert result.aggregates == expected_sum
    assert result.all_nodes_know_all_aggregates()


@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_routing_delivers_every_message(case):
    family, seed = case
    graph = GRAPH_FAMILIES[family](seed)
    rng = random.Random(300 + seed)
    nodes = sorted(graph.nodes)
    sources = rng.sample(nodes, 4)
    targets = rng.sample(nodes, 3)
    messages = {
        (s, t): ("payload", s, t) for s in sources for t in targets
    }

    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)
    result = KLRouting(sim, messages, seed=seed).run()

    assert result.all_delivered(messages)
    for (source, target), payload in messages.items():
        assert result.delivered[target][source] == payload


@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_sssp_matches_centralized_dijkstra(case):
    family, seed = case
    graph = assign_random_weights(GRAPH_FAMILIES[family](seed), max_weight=9, seed=seed)
    source = sorted(graph.nodes)[0]
    epsilon = 0.25
    truth = exact_sssp(graph, source)

    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    result = ApproxSSSP(sim, source, epsilon=epsilon).run()

    for node, true_distance in truth.items():
        estimate = result.distance_to(node)
        assert estimate < math.inf
        # Never underestimates, overestimates by at most (1 + eps).
        assert estimate >= true_distance - 1e-9
        assert estimate <= (1.0 + epsilon) * true_distance + 1e-9


@pytest.mark.parametrize("engine", ["batch", "legacy"])
@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_apsp_matches_centralized_hop_truth(case, engine):
    family, seed = case
    graph = unit_weights(GRAPH_FAMILIES[family](seed))
    truth = {
        v: {w: float(d) for w, d in row.items()}
        for v, row in exact_hop_apsp(graph).items()
    }

    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    table = UnweightedApproxAPSP(sim, epsilon=0.5, engine=engine).run()

    stretch = max_stretch_of_table(truth, table.estimates)
    assert stretch <= table.stretch_bound + 1e-6
    assert sim.metrics.capacity_violations == 0


@pytest.mark.parametrize("engine", ["batch", "legacy"])
@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_ksp_matches_centralized_dijkstra(case, engine):
    family, seed = case
    graph = assign_random_weights(GRAPH_FAMILIES[family](seed), max_weight=9, seed=seed)
    rng = random.Random(400 + seed)
    sources = rng.sample(sorted(graph.nodes), 4)
    truth = {s: exact_sssp(graph, s) for s in sources}

    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)
    result = KSourceShortestPaths(
        sim, sources, epsilon=0.25, sources_in_skeleton=True, seed=seed, engine=engine
    ).run()

    for node in graph.nodes:
        for s in sources:
            true_distance = truth[s].get(node, math.inf)
            estimate = result.estimate(node, s)
            assert estimate >= true_distance - 1e-6
            if true_distance > 0:
                assert estimate <= result.stretch_bound * true_distance + 1e-6


@pytest.mark.parametrize("engine", ["batch", "legacy"])
@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_klsp_matches_centralized_dijkstra(case, engine):
    family, seed = case
    graph = assign_random_weights(GRAPH_FAMILIES[family](seed), max_weight=9, seed=seed)
    rng = random.Random(500 + seed)
    nodes = sorted(graph.nodes)
    sources = rng.sample(nodes, 4)
    targets = rng.sample(nodes, 3)
    truth = {t: exact_sssp(graph, t) for t in targets}

    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)
    table = KLShortestPaths(
        sim, sources, targets, epsilon=0.25, seed=seed, engine=engine
    ).run()

    pairs = [(t, s) for t in targets for s in sources]
    stretch = max_stretch_of_table(truth, table.estimates, pairs=pairs)
    assert stretch <= table.stretch_bound + 1e-6


@pytest.mark.parametrize("engine", ["batch", "legacy"])
@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_bcc_round_delivers_every_broadcast(case, engine):
    family, seed = case
    graph = GRAPH_FAMILIES[family](seed)
    broadcasts = {v: ("bcast", v, seed) for v in graph.nodes}

    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    result = BCCSimulator(sim, engine=engine).simulate_round(broadcasts)

    assert result.all_nodes_received_everything()
    assert result.rounds_used > 0
    assert sim.metrics.capacity_violations == 0
