"""Exception hierarchy for the HYBRID simulator.

Every violation of the model's communication constraints (Section 1.3) raises a
dedicated exception so algorithms that accidentally overstep the model are
caught during testing rather than silently producing results the model could
not achieve.
"""

from __future__ import annotations

__all__ = [
    "SimulatorError",
    "NotANeighborError",
    "UnknownIdentifierError",
    "CapacityExceededError",
    "LocalBandwidthExceededError",
    "RoundLifecycleError",
    "StaleGraphError",
    "UnknownNodeError",
    "ChargeOnlyError",
]


class SimulatorError(Exception):
    """Base class for all simulator errors."""


class UnknownNodeError(SimulatorError, KeyError):
    """A node or identifier that does not exist in the network was referenced."""


class NotANeighborError(SimulatorError):
    """A local-mode message was addressed to a node that is not a graph neighbor."""


class UnknownIdentifierError(SimulatorError):
    """In HYBRID_0, a global-mode message was addressed to an identifier the
    sender does not (yet) know."""


class CapacityExceededError(SimulatorError):
    """A node exceeded its per-round global-communication capacity (gamma bits),
    either as a sender or as a receiver."""


class LocalBandwidthExceededError(SimulatorError):
    """A local-mode message exceeded the per-edge bandwidth lambda (only possible
    in CONGEST-like configurations where lambda is finite)."""


class RoundLifecycleError(SimulatorError):
    """The simulator API was used out of order (e.g. reading an inbox for a round
    that has not been delivered yet)."""


class ChargeOnlyError(SimulatorError):
    """Payload content was requested from charge-only traffic.

    Charge-only simulation (``HybridSimulator(charge_only=True)``, or a
    payload-free :class:`~repro.simulator.engine.TokenPlane`) carries only the
    (sender, receiver, words) columns — schedules, capacity accounting and
    round counts are exact, but payloads were never materialised, so reading
    an inbox, collecting an exchange, or lowering the plane to tuples cannot
    be answered.  Re-run with payloads for content-level queries."""


class StaleGraphError(SimulatorError):
    """The simulator's graph was mutated after the id-native arrays were built.

    Plane sends compare the graph's version stamp (see
    :func:`repro.graphs.index.graph_version`) against the one recorded when
    the simulator's node maps and adjacency keys were (re)built; a mismatch
    means those arrays describe a graph that no longer exists.  Call
    ``HybridSimulator.invalidate_index()`` after mutating the graph to
    resynchronise."""
