"""Integration tests: full pipelines on every graph family, cross-checked
against centralized references, plus the model marginal cases and the paper's
headline qualitative claims."""

import math
import random

import networkx as nx
import pytest

from repro.analysis.experiments import (
    run_fig2_broadcast_structure,
    run_nq_family_point,
    run_table1_dissemination,
    run_table2_apsp,
    run_table3_klsp,
)
from repro.analysis.theory import TheoryPredictions
from repro.baselines.centralized import exact_apsp, max_stretch_of_table
from repro.baselines.existential import ExistentialBounds
from repro.baselines.naive import LocalFloodingBroadcast
from repro.core.aggregation import KAggregation
from repro.core.dissemination import KDissemination
from repro.core.neighborhood_quality import neighborhood_quality
from repro.core.routing import KLRouting
from repro.core.shortest_paths import SpannerAPSP, UnweightedApproxAPSP
from repro.core.sssp import ApproxSSSP
from repro.graphs.generators import GraphSpec, generate_graph
from repro.graphs.weighted import assign_random_weights
from repro.lowerbounds.universal import dissemination_lower_bound
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator


FAMILY_SPECS = [
    GraphSpec.of("path", n=48),
    GraphSpec.of("cycle", n=48),
    GraphSpec.of("grid", side=7, dim=2),
    GraphSpec.of("tree", branching=2, height=5),
    GraphSpec.of("star", n=40),
    GraphSpec.of("erdos_renyi", n=48, p=0.1, seed=11),
    GraphSpec.of("barbell", clique_size=10, path_length=20),
    GraphSpec.of("caterpillar", spine_length=16, legs_per_node=2),
]


class TestDisseminationAcrossFamilies:
    @pytest.mark.parametrize("spec", FAMILY_SPECS, ids=lambda s: s.label())
    def test_dissemination_pipeline(self, spec):
        graph = generate_graph(spec)
        rng = random.Random(5)
        k = 16
        tokens = {}
        nodes = sorted(graph.nodes, key=str)
        for index in range(k):
            tokens.setdefault(rng.choice(nodes), []).append(("tok", index))
        sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=5)
        result = KDissemination(sim, tokens).run()
        assert result.all_nodes_know_all_tokens()
        assert sim.metrics.capacity_violations == 0
        # Consistency with the universal lower bound of Theorem 4.
        lower = dissemination_lower_bound(graph, k)
        assert lower.is_consistent_with_upper_bound(sim.metrics.total_rounds)


class TestShortestPathPipelines:
    @pytest.mark.parametrize(
        "spec",
        [
            GraphSpec.of("path", n=36),
            GraphSpec.of("grid", side=6, dim=2),
            GraphSpec.of("erdos_renyi", n=36, p=0.12, seed=3),
        ],
        ids=lambda s: s.label(),
    )
    def test_weighted_apsp_via_spanner_matches_bound(self, spec):
        graph = assign_random_weights(generate_graph(spec), max_weight=11, seed=3)
        sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=3)
        table = SpannerAPSP(sim, epsilon=0.5).run()
        stretch = max_stretch_of_table(exact_apsp(graph), table.estimates)
        assert stretch <= table.stretch_bound + 1e-6

    def test_sssp_then_apsp_consistency(self):
        # The SSSP estimates used inside the APSP pipeline must themselves be
        # consistent with the final APSP table (no pipeline stage may
        # underestimate).
        graph = assign_random_weights(generate_graph(GraphSpec.of("grid", side=5, dim=2)),
                                      max_weight=7, seed=4)
        sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=4)
        sssp = ApproxSSSP(sim, 0, epsilon=0.25).run()
        truth = nx.single_source_dijkstra_path_length(graph, 0, weight="weight")
        for node, d in truth.items():
            assert sssp.distances[node] >= d - 1e-9


class TestMarginalModels:
    def test_local_model_flooding_matches_diameter(self):
        graph = generate_graph(GraphSpec.of("grid", side=6, dim=2))
        sim = HybridSimulator(graph, ModelConfig.local(), seed=0)
        outcome = LocalFloodingBroadcast(sim, {0: ["x"]}).run()
        assert outcome.all_nodes_know_all_tokens()
        from repro.graphs.properties import eccentricity

        assert sim.metrics.measured_rounds == eccentricity(graph, 0)

    def test_congested_clique_can_do_all_to_all_in_one_round(self):
        graph = generate_graph(GraphSpec.of("complete", n=12))
        sim = HybridSimulator(graph, ModelConfig.congested_clique(12), seed=0)
        for u in sim.nodes:
            for v in sim.nodes:
                if u != v:
                    sim.global_send_to_node(u, v, 1)
        sim.advance_round()
        assert sim.metrics.capacity_violations == 0

    def test_hybrid0_preprocessing_enables_arbitrary_global_sends(self):
        # Corollary of Theorem 1: after broadcasting all identifiers, HYBRID_0
        # behaves like HYBRID.  We emulate the preprocessing by disseminating
        # every identifier as a token and declaring them learned.
        graph = generate_graph(GraphSpec.of("path", n=24))
        sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=0)
        ids = sim.all_ids()
        tokens = {sim.nodes[0]: [("id", identifier) for identifier in ids]}
        result = KDissemination(sim, tokens).run()
        assert result.all_nodes_know_all_tokens()
        for node in sim.nodes:
            sim.declare_learned_ids(node, ids)
        # Now any node can message any other directly.
        sim.global_send(sim.nodes[0], sim.id_of(sim.nodes[-1]), "post-preprocessing")
        sim.advance_round()
        assert sim.global_inbox(sim.nodes[-1])[0].payload == "post-preprocessing"


class TestPaperQualitativeClaims:
    """The 'shape' claims of the paper's tables, checked end to end."""

    def test_universal_beats_existential_on_low_nq_graphs(self):
        # On a star-like graph NQ_k is O(1); the universal algorithm's rounds
        # should therefore beat the sqrt(k)-scaled existential bound as k grows,
        # once both include their polylog factors.
        spec = GraphSpec.of("star", n=80)
        graph = generate_graph(spec)
        k = 64
        row = run_table1_dissemination(spec, k, seed=0)
        assert row["NQ_k"] <= 2
        assert row["rounds (Thm 1, total)"] <= 4 * row["prior incl. polylog"]

    def test_nq_ordering_star_grid_path(self):
        # NQ_k(star) <= NQ_k(grid) <= NQ_k(path) for the same k: the parameter
        # orders the families by how much locality helps (Section 3.3).
        k = 36
        nq_star = neighborhood_quality(generate_graph(GraphSpec.of("star", n=64)), k)
        nq_grid = neighborhood_quality(generate_graph(GraphSpec.of("grid", side=8, dim=2)), k)
        nq_path = neighborhood_quality(generate_graph(GraphSpec.of("path", n=64)), k)
        assert nq_star <= nq_grid <= nq_path

    def test_rounds_track_nq_across_families(self):
        # Theorem 1's round count should follow the NQ_k ordering, not the size
        # of the graph: path >= grid >= star for equal n and k.
        k = 24
        rows = {
            family: run_table1_dissemination(spec, k, seed=2)
            for family, spec in {
                "star": GraphSpec.of("star", n=64),
                "grid": GraphSpec.of("grid", side=8, dim=2),
                "path": GraphSpec.of("path", n=64),
            }.items()
        }
        assert rows["star"]["rounds (Thm 1, total)"] <= rows["grid"]["rounds (Thm 1, total)"]
        assert rows["grid"]["rounds (Thm 1, total)"] <= rows["path"]["rounds (Thm 1, total)"]

    def test_theorem15_and_16_shapes(self):
        path_row = run_nq_family_point(GraphSpec.of("path", n=100), 64)
        grid_row = run_nq_family_point(GraphSpec.of("grid", side=10, dim=2), 64)
        assert TheoryPredictions.ratio_is_within_polylog(
            path_row["NQ_k measured"], path_row["NQ_k predicted"], 100, slack=4.0, polylog_power=1
        )
        assert TheoryPredictions.ratio_is_within_polylog(
            grid_row["NQ_k measured"], grid_row["NQ_k predicted"], 100, slack=4.0, polylog_power=1
        )
        # The grid's NQ is smaller than the path's for the same k (k^{1/3} vs sqrt k).
        assert grid_row["NQ_k measured"] <= path_row["NQ_k measured"]

    def test_fig2_cluster_structure_bounds(self):
        row = run_fig2_broadcast_structure(GraphSpec.of("grid", side=8, dim=2), 64)
        assert row["max weak diameter"] <= row["weak diameter bound"]
        assert row["min size"] >= math.floor(row["k"] / row["NQ_k"])
        assert row["max size"] <= math.ceil(2 * row["k"] / row["NQ_k"])

    def test_apsp_stretch_bounds_across_theorems(self):
        rows = run_table2_apsp(GraphSpec.of("grid", side=5, dim=2), seed=1)
        assert len(rows) == 3
        for row in rows:
            assert row["stretch measured"] <= row["stretch bound"] + 1e-6

    def test_klsp_consistent_with_lower_bound(self):
        row = run_table3_klsp(GraphSpec.of("grid", side=6, dim=2), 6, 3, seed=1)
        assert row["rounds (Thm 5, total)"] >= row["universal LB (Thm 11)"]
