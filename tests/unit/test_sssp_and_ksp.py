"""Unit tests for the existentially optimal SSSP (Theorem 13) and k-SSP
(Theorem 14) algorithms."""

import math

import networkx as nx
import pytest

from repro.core.ksp import KSourceShortestPaths, ksp_round_cost
from repro.core.sssp import (
    ApproxSSSP,
    approx_sssp_distances,
    exact_sssp_distances,
    round_weight_up,
    sssp_round_cost,
)
from repro.graphs.generators import (
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
)
from repro.graphs.weighted import assign_random_weights
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator


class TestWeightRounding:
    def test_rounds_up(self):
        assert round_weight_up(5.0, 0.25) >= 5.0

    def test_within_factor(self):
        for weight in (1, 2, 3, 7, 100, 12345):
            rounded = round_weight_up(weight, 0.25)
            assert weight <= rounded <= weight * 1.25 + 1e-9

    def test_epsilon_zero_identity(self):
        assert round_weight_up(7.0, 0.0) == 7.0

    def test_rejects_nonpositive_weight(self):
        with pytest.raises(ValueError):
            round_weight_up(0, 0.1)


class TestApproxSSSPDistances:
    def _check_stretch(self, graph, source, epsilon):
        truth = exact_sssp_distances(graph, source)
        approx = approx_sssp_distances(graph, source, epsilon)
        for node, true_distance in truth.items():
            estimate = approx[node]
            assert estimate >= true_distance - 1e-9
            assert estimate <= (1 + epsilon) * true_distance + 1e-9

    @pytest.mark.parametrize("epsilon", [0.1, 0.25, 0.5])
    def test_stretch_on_weighted_grid(self, epsilon):
        g = assign_random_weights(grid_graph(6, 2), max_weight=17, seed=1)
        self._check_stretch(g, 0, epsilon)

    @pytest.mark.parametrize("epsilon", [0.1, 0.5])
    def test_stretch_on_random_graph(self, epsilon):
        g = assign_random_weights(erdos_renyi_graph(40, 0.15, seed=2), max_weight=9, seed=2)
        self._check_stretch(g, 0, epsilon)

    def test_unweighted_graph_estimates_at_least_hops(self):
        g = path_graph(20)
        approx = approx_sssp_distances(g, 0, 0.25)
        assert approx[19] >= 19

    def test_epsilon_zero_is_exact(self):
        g = assign_random_weights(cycle_graph(12), max_weight=5, seed=3)
        assert approx_sssp_distances(g, 0, 0.0) == exact_sssp_distances(g, 0)

    def test_source_distance_zero(self):
        g = path_graph(5)
        assert approx_sssp_distances(g, 2, 0.3)[2] == 0.0

    def test_unknown_source(self):
        with pytest.raises(KeyError):
            approx_sssp_distances(path_graph(4), 77, 0.2)

    def test_negative_epsilon_rejected(self):
        with pytest.raises(ValueError):
            approx_sssp_distances(path_graph(4), 0, -0.1)


class TestApproxSSSPAlgorithm:
    def test_result_covers_all_nodes(self):
        g = assign_random_weights(grid_graph(5, 2), max_weight=7, seed=4)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=4)
        result = ApproxSSSP(sim, 0, epsilon=0.25).run()
        assert set(result.distances) == set(g.nodes)

    def test_round_cost_charged_per_theorem_13(self):
        g = path_graph(50)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        ApproxSSSP(sim, 0, epsilon=0.5).run()
        assert sim.metrics.charged_rounds == sssp_round_cost(50, 0.5)
        # Crucially the cost is polylogarithmic in n: growing n by a factor of
        # 10^4 changes the charge only by the (log n)^2 ratio, far below the
        # n^{1/2} growth of the prior existential algorithms.
        growth = sssp_round_cost(10**6, 0.5) / sssp_round_cost(100, 0.5)
        assert growth < 10
        assert sssp_round_cost(10**8, 0.5) < math.sqrt(10**8)

    def test_smaller_epsilon_costs_more_rounds(self):
        assert sssp_round_cost(100, 0.1) > sssp_round_cost(100, 0.5)

    def test_invalid_inputs(self):
        g = path_graph(5)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        with pytest.raises(KeyError):
            ApproxSSSP(sim, 99, epsilon=0.2)
        with pytest.raises(ValueError):
            ApproxSSSP(sim, 0, epsilon=0.0)

    def test_distance_to_accessor(self):
        g = path_graph(6)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        result = ApproxSSSP(sim, 0, epsilon=0.3).run()
        assert result.distance_to(5) >= 5
        assert result.distance_to("missing") == math.inf


class TestKSP:
    def _ground_truth(self, graph, sources):
        return {
            s: nx.single_source_dijkstra_path_length(graph, s, weight="weight")
            for s in sources
        }

    def _max_stretch(self, graph, sources, result):
        truth = self._ground_truth(graph, sources)
        worst = 1.0
        for node in graph.nodes:
            for s in sources:
                true_distance = truth[s].get(node, math.inf)
                estimate = result.estimate(node, s)
                if true_distance == 0:
                    assert estimate == pytest.approx(0.0, abs=1e-9)
                    continue
                assert estimate >= true_distance - 1e-6
                worst = max(worst, estimate / true_distance)
        return worst

    def test_sources_in_skeleton_stretch(self):
        g = assign_random_weights(grid_graph(6, 2), max_weight=6, seed=5)
        sources = [0, 7, 21, 35]
        sim = HybridSimulator(g, ModelConfig.hybrid(), seed=5)
        result = KSourceShortestPaths(
            sim, sources, epsilon=0.25, sources_in_skeleton=True, seed=5
        ).run()
        assert self._max_stretch(g, sources, result) <= 1.25 + 1e-6

    def test_arbitrary_sources_stretch(self):
        g = assign_random_weights(grid_graph(6, 2), max_weight=6, seed=6)
        sources = [0, 1, 2]  # deliberately concentrated (arbitrary sources case)
        sim = HybridSimulator(g, ModelConfig.hybrid(), seed=6)
        result = KSourceShortestPaths(
            sim, sources, epsilon=0.25, sources_in_skeleton=False, seed=6
        ).run()
        assert self._max_stretch(g, sources, result) <= result.stretch_bound + 1e-6

    def test_unweighted_path(self):
        g = path_graph(40)
        sources = [0, 20, 39]
        sim = HybridSimulator(g, ModelConfig.hybrid(), seed=7)
        result = KSourceShortestPaths(sim, sources, epsilon=0.25, seed=7).run()
        assert self._max_stretch(g, sources, result) <= 1.25 + 1e-6

    def test_every_node_gets_estimates_for_every_source(self):
        g = grid_graph(5, 2)
        sources = [0, 24]
        sim = HybridSimulator(g, ModelConfig.hybrid(), seed=8)
        result = KSourceShortestPaths(sim, sources, epsilon=0.5, seed=8).run()
        for node in g.nodes:
            assert set(result.distances[node]) == set(sources)

    def test_round_cost_scaling(self):
        # Theorem 14: cost ~ sqrt(k / gamma); quadrupling k should roughly double
        # the charge, and k <= gamma costs the gamma-free polylog.
        n = 400
        assert ksp_round_cost(n, 16, 4, 0.25) <= ksp_round_cost(n, 64, 4, 0.25)
        assert ksp_round_cost(n, 2, 16, 0.25) == ksp_round_cost(n, 16, 16, 0.25)

    def test_gamma_knob_reduces_rounds(self):
        g = path_graph(60)
        sources = list(range(0, 60, 6))
        low = HybridSimulator(g, ModelConfig.hybrid(), seed=9)
        high = HybridSimulator(g, ModelConfig.hybrid(), seed=9)
        low_result = KSourceShortestPaths(sim := low, sources, epsilon=0.25, gamma_words=4, seed=9).run()
        high_result = KSourceShortestPaths(high, sources, epsilon=0.25, gamma_words=64, seed=9).run()
        assert high.metrics.total_rounds <= low.metrics.total_rounds

    def test_invalid_inputs(self):
        g = path_graph(10)
        sim = HybridSimulator(g, ModelConfig.hybrid(), seed=0)
        with pytest.raises(ValueError):
            KSourceShortestPaths(sim, [], epsilon=0.2)
        with pytest.raises(ValueError):
            KSourceShortestPaths(sim, [0], epsilon=0.0)
        with pytest.raises(KeyError):
            KSourceShortestPaths(sim, [0, 99], epsilon=0.2)
