"""Unit tests for the BCC-round simulation (Corollary 2.1)."""

import pytest

from repro.core.bcc import BCCSimulator
from repro.core.neighborhood_quality import neighborhood_quality
from repro.graphs.generators import grid_graph, path_graph, star_graph
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator


class TestBCCSimulator:
    def _make(self, graph, seed=0):
        sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
        return BCCSimulator(sim), sim

    def test_single_round_delivers_every_broadcast(self):
        graph = grid_graph(5, 2)
        bcc, sim = self._make(graph)
        broadcasts = {v: ("value", v) for v in graph.nodes}
        result = bcc.simulate_round(broadcasts)
        assert result.all_nodes_received_everything()
        assert result.rounds_used > 0
        assert sim.metrics.capacity_violations == 0

    def test_received_view_maps_back_to_origin_nodes(self):
        graph = path_graph(16)
        bcc, _ = self._make(graph)
        broadcasts = {v: v * 10 for v in graph.nodes}
        result = bcc.simulate_round(broadcasts)
        for view in result.received.values():
            assert view == broadcasts

    def test_multiple_rounds_accumulate_cost(self):
        graph = star_graph(20)
        bcc, sim = self._make(graph)
        first = bcc.simulate_round({v: 1 for v in graph.nodes})
        total_after_first = sim.metrics.total_rounds
        second = bcc.simulate_round({v: 2 for v in graph.nodes})
        assert bcc.rounds_simulated == 2
        assert sim.metrics.total_rounds > total_after_first
        assert second.all_nodes_received_everything()

    def test_requires_one_value_per_node(self):
        graph = path_graph(6)
        bcc, _ = self._make(graph)
        with pytest.raises(ValueError):
            bcc.simulate_round({0: "only one"})

    def test_uses_nq_n(self):
        graph = path_graph(30)
        bcc, _ = self._make(graph)
        assert bcc.nq == neighborhood_quality(graph, 30)

    def test_lower_bound_consistent_with_cost(self):
        graph = path_graph(60)
        bcc, sim = self._make(graph)
        result = bcc.simulate_round({v: v for v in graph.nodes})
        lower = bcc.lower_bound()
        assert lower.k == 60
        assert result.rounds_used >= lower.rounds
