"""Equivalence harness for the weighted analytics engine (PR 4).

Three layers of cross-validation over six graph families x three seeds:

* **Dijkstra equivalence** — the :class:`~repro.graphs.index.GraphIndex`
  flat-array Dijkstra (``sssp_row`` / ``sssp_dict`` and the thin wrappers
  ``exact_sssp_distances`` / ``weighted_distances_from`` / ``exact_sssp``)
  equals ``networkx.single_source_dijkstra_path_length`` *and* the historical
  dict+heapq ``_reference_*`` implementation exactly, on original weights and
  on the cached power-of-``(1 + eps)`` rounded weights;
* **clustering equivalence** — :func:`~repro.core.clustering.nq_clustering`'s
  single closest-ruler sweep produces byte-identical output (cluster order,
  leaders, member BFS order, ``cluster_of``) to the per-ruler
  ``_reference_nq_clustering`` formulation, and the flat ruling-set growth
  equals its set-based reference;
* **sweep semantics** — ``closest_sources`` tie-breaking matches the
  brute-force "closest source, ties by minimum rank" definition, and the
  rounded-weight CSR is built once per ``(graph, epsilon)``.
"""

import math
import random

import networkx as nx
import pytest

from repro.baselines.centralized import exact_sssp
from repro.core.clustering import _reference_nq_clustering, nq_clustering
from repro.core.ruling_sets import (
    _reference_greedy_ruling_set,
    greedy_ruling_set,
    verify_ruling_set,
)
from repro.core.sssp import (
    _reference_approx_sssp_distances,
    _reference_exact_sssp_distances,
    approx_sssp_distances,
    exact_sssp_distances,
)
from repro.graphs.generators import (
    barbell_graph,
    broom_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
)
from repro.graphs.index import get_index
from repro.graphs.properties import (
    _reference_weighted_distances_from,
    weighted_distances_from,
)
from repro.graphs.weighted import assign_random_weights

SEEDS = [0, 1, 2]

GRAPH_FAMILIES = {
    "path": lambda seed: path_graph(30),
    "cycle": lambda seed: cycle_graph(30),
    "grid": lambda seed: grid_graph(6, 2),
    "barbell": lambda seed: barbell_graph(8, 12),
    "broom": lambda seed: broom_graph(18, 10),
    "erdos_renyi": lambda seed: erdos_renyi_graph(30, 0.12, seed=seed),
}

CASES = [(family, seed) for family in sorted(GRAPH_FAMILIES) for seed in SEEDS]


def _ids(case):
    family, seed = case
    return f"{family}-s{seed}"


def _weighted(case):
    family, seed = case
    return assign_random_weights(GRAPH_FAMILIES[family](seed), max_weight=9, seed=seed)


# ----------------------------------------------------------------------
# Index Dijkstra == networkx == the dict+heapq reference, exactly
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_exact_dijkstra_equals_networkx_and_reference(case):
    graph = _weighted(case)
    rng = random.Random(100 + case[1])
    sources = rng.sample(sorted(graph.nodes), 5)
    for source in sources:
        fast = exact_sssp_distances(graph, source)
        assert fast == _reference_exact_sssp_distances(graph, source)
        assert fast == dict(
            nx.single_source_dijkstra_path_length(graph, source, weight="weight")
        )
        assert fast == weighted_distances_from(graph, source)
        assert fast == _reference_weighted_distances_from(graph, source)
        assert fast == exact_sssp(graph, source)


@pytest.mark.parametrize("epsilon", [0.1, 0.25, 0.5])
@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_rounded_dijkstra_equals_reference(case, epsilon):
    graph = _weighted(case)
    rng = random.Random(200 + case[1])
    sources = rng.sample(sorted(graph.nodes), 3)
    for source in sources:
        assert approx_sssp_distances(
            graph, source, epsilon
        ) == _reference_approx_sssp_distances(graph, source, epsilon)


@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_dense_rows_match_sparse_dicts(case):
    graph = _weighted(case)
    index = get_index(graph)
    rng = random.Random(300 + case[1])
    sources = rng.sample(sorted(graph.nodes), 4)
    for epsilon in (0.0, 0.25):
        rows = index.sssp_rows(sources, epsilon)
        for source in sources:
            row = rows[source]
            assert len(row) == index.n
            sparse = index.sssp_dict(source, epsilon)
            for i, node in enumerate(index.nodes):
                if node in sparse:
                    assert row[i] == sparse[node]
                else:
                    assert math.isinf(row[i])
            assert row[index.index_of[source]] == 0.0


def test_rounded_csr_is_cached_per_epsilon():
    graph = assign_random_weights(grid_graph(5, 2), max_weight=7, seed=1)
    index = get_index(graph)
    index.sssp_row(0, 0.25)
    first = index._rounded_weights[0.25]
    index.sssp_row(5, 0.25)
    assert index._rounded_weights[0.25] is first  # rounded once per epsilon
    index.sssp_row(0, 0.5)
    assert set(index._rounded_weights) == {0.25, 0.5}
    # epsilon = 0 must not populate the rounded cache (it is the exact path).
    index.sssp_row(0, 0.0)
    assert set(index._rounded_weights) == {0.25, 0.5}


def test_sssp_missing_source_raises_keyerror():
    graph = path_graph(6)
    index = get_index(graph)
    with pytest.raises(KeyError):
        index.sssp_row("missing")
    with pytest.raises(KeyError):
        weighted_distances_from(graph, "missing")
    with pytest.raises(KeyError):
        index.closest_sources([0, "missing"])


def test_nonpositive_weight_rejected_on_rounded_path():
    graph = path_graph(4)
    graph[1][2]["weight"] = 0
    from repro.graphs.index import invalidate_index

    invalidate_index(graph)
    with pytest.raises(ValueError):
        approx_sssp_distances(graph, 0, 0.25)


# ----------------------------------------------------------------------
# Closest-source sweep: exact min-rank tie-breaking
# ----------------------------------------------------------------------
@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_closest_sources_matches_bruteforce(case):
    family, seed = case
    graph = GRAPH_FAMILIES[family](seed)
    index = get_index(graph)
    rng = random.Random(400 + seed)
    nodes = sorted(graph.nodes)
    for count in (1, 3, max(4, len(nodes) // 5)):
        sources = rng.sample(nodes, count)
        dist, owner = index.closest_sources(sources)
        tables = [
            nx.single_source_shortest_path_length(graph, source)
            for source in sources
        ]
        for i, node in enumerate(index.nodes):
            best = min(
                (
                    (table.get(node, math.inf), rank)
                    for rank, table in enumerate(tables)
                ),
            )
            if math.isinf(best[0]):
                assert dist[i] == -1 and owner[i] == -1
            else:
                assert dist[i] == best[0], (node, sources)
                assert owner[i] == best[1], (node, sources)


def test_closest_sources_duplicate_sources_keep_first_rank():
    graph = path_graph(5)
    index = get_index(graph)
    dist, owner = index.closest_sources([4, 0, 4])
    assert owner[index.index_of[4]] == 0
    assert dist[index.index_of[4]] == 0


# ----------------------------------------------------------------------
# Ruling sets and the Lemma 3.5 clustering: byte-identical pre/post
# ----------------------------------------------------------------------
@pytest.mark.parametrize("alpha", [1, 2, 3, 5, 9])
@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_flat_ruling_set_equals_reference(case, alpha):
    family, seed = case
    graph = GRAPH_FAMILIES[family](seed)
    fast = greedy_ruling_set(graph, alpha)
    assert fast == _reference_greedy_ruling_set(graph, alpha)
    assert verify_ruling_set(graph, fast, alpha, max(0, alpha - 1))


def test_flat_ruling_set_respects_custom_order():
    graph = path_graph(12)
    order = sorted(graph.nodes, reverse=True)
    assert greedy_ruling_set(graph, 3, order=order) == _reference_greedy_ruling_set(
        graph, 3, order=order
    )


@pytest.mark.parametrize("k", [5, 16, 64, 10_000])
@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_nq_clustering_byte_identical_to_reference(case, k):
    family, seed = case
    graph = GRAPH_FAMILIES[family](seed)
    fast = nq_clustering(graph, k)
    reference = _reference_nq_clustering(graph, k)
    assert fast.nq == reference.nq
    assert fast.k == reference.k
    assert len(fast.clusters) == len(reference.clusters)
    for fast_cluster, reference_cluster in zip(fast.clusters, reference.clusters):
        assert fast_cluster.leader == reference_cluster.leader
        assert fast_cluster.members == reference_cluster.members  # order included
        assert fast_cluster.index == reference_cluster.index
    assert fast.cluster_of == reference.cluster_of


def test_nq_clustering_identical_under_custom_identifiers():
    graph = grid_graph(5, 2)
    # A non-trivial identifier map flips every tie-break decision.
    id_of = lambda node: -node  # noqa: E731
    fast = nq_clustering(graph, 12, id_of=id_of)
    reference = _reference_nq_clustering(graph, 12, id_of=id_of)
    assert [c.members for c in fast.clusters] == [
        c.members for c in reference.clusters
    ]
    assert fast.cluster_of == reference.cluster_of
