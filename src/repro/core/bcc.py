"""Simulating the Broadcast Congested Clique in HYBRID (Corollary 2.1).

The Broadcast Congested Clique (BCC) is the distributed model in which, every
round, each node broadcasts one O(log n)-bit message to the entire network.
Corollary 2.1 of the paper: one BCC round can be simulated in eO(NQ_n) rounds
of HYBRID_0 (run Theorem 1 with the n per-node broadcast values as the tokens),
and this is universally optimal — eOmega(NQ_n) HYBRID rounds are necessary by
the Theorem 4 lower bound with k = n.

:class:`BCCSimulator` exposes exactly that: callers provide per-node O(log n)-
bit values round by round, each ``simulate_round`` call runs a k-dissemination
instance (physically simulated + charged, like Theorem 1 itself) and returns
the full message vector every node now knows.  This is the building block that
lets the many known BCC algorithms (Section 2.1 "Application") run unchanged on
a HYBRID network.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, Hashable, List, Optional

from repro.core.dissemination import KDissemination
from repro.core.neighborhood_quality import neighborhood_quality
from repro.lowerbounds.universal import UniversalLowerBound, bcc_simulation_lower_bound
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = ["BCCRoundResult", "BCCSimulator"]


@dataclasses.dataclass
class BCCRoundResult:
    """Outcome of one simulated BCC round."""

    broadcasts: Dict[Node, Any]
    received: Dict[Node, Dict[Node, Any]]
    rounds_used: int

    def all_nodes_received_everything(self) -> bool:
        expected = dict(self.broadcasts)
        return all(view == expected for view in self.received.values())


class BCCSimulator:
    """Simulate Broadcast Congested Clique rounds on a HYBRID network.

    Parameters
    ----------
    simulator: the underlying HYBRID / HYBRID_0 network.
    nq_hint: ``NQ_n`` if already known (avoids recomputation per round).
    """

    def __init__(self, simulator: HybridSimulator, *, nq_hint: Optional[int] = None) -> None:
        self.simulator = simulator
        self.nq = nq_hint if nq_hint is not None else neighborhood_quality(
            simulator.graph, simulator.n
        )
        self.rounds_simulated = 0

    def lower_bound(self) -> UniversalLowerBound:
        """Corollary 2.1's eOmega(NQ_n) lower bound, evaluated on this graph."""
        return bcc_simulation_lower_bound(self.simulator.graph)

    def simulate_round(self, broadcasts: Dict[Node, Any]) -> BCCRoundResult:
        """Simulate one BCC round in which each node broadcasts one value.

        ``broadcasts`` must contain exactly one value per node.  Returns every
        node's received message vector; the cost appears on the underlying
        simulator's metrics (one Theorem 1 instance with ``k = n`` tokens).
        """
        node_set = set(self.simulator.nodes)
        if set(broadcasts) != node_set:
            raise ValueError("broadcasts must contain exactly one value per node")
        rounds_before = self.simulator.metrics.total_rounds
        tokens = {
            node: [("bcc", self.simulator.id_of(node), value)]
            for node, value in broadcasts.items()
        }
        result = KDissemination(self.simulator, tokens, nq=self.nq).run()
        received: Dict[Node, Dict[Node, Any]] = {}
        for node, known in result.known_tokens.items():
            view: Dict[Node, Any] = {}
            for token in known:
                if isinstance(token, tuple) and len(token) == 3 and token[0] == "bcc":
                    view[self.simulator.node_of_id(token[1])] = token[2]
            received[node] = view
        self.rounds_simulated += 1
        return BCCRoundResult(
            broadcasts=dict(broadcasts),
            received=received,
            rounds_used=self.simulator.metrics.total_rounds - rounds_before,
        )

    @property
    def metrics(self) -> RoundMetrics:
        return self.simulator.metrics
