"""The Minor-Aggregation model (Section 8, Lemma 8.2).

One round of the Minor-Aggregation model on ``G = (V, E)`` consists of three
steps (both nodes and edges are computational units):

* **Contraction** — every edge picks ``c_e in {True, False}``; contracting the
  ``True`` edges partitions ``V`` into supernodes (connected components of the
  contracted subgraph).
* **Consensus** — every node picks an eO(1)-bit value ``x_v``; every supernode
  computes ``y_s = op(x_v : v in s)`` and all its members learn ``y_s``.
* **Aggregation** — every non-contracted edge (connecting two supernodes) sees
  the consensus values of both endpoints and proposes values ``z_{e,a}``,
  ``z_{e,b}``; every supernode learns the aggregate of the values proposed to
  it by its incident edges, and all members of the supernode learn it.

Lemma 8.2 shows that one such round can be simulated in eO(1) rounds of
HYBRID_0 (using the overlay trees of Lemma 4.3 per supernode).  We implement
the round semantics exactly and charge the eO(1) simulation cost; this is the
component consumed by the SSSP framework of [RGH+22] (Lemma 8.1), see
:mod:`repro.core.sssp` and DESIGN.md substitution note 2.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, FrozenSet, Hashable, List, Optional, Tuple

import networkx as nx

from repro.simulator.config import log2_ceil
from repro.simulator.network import HybridSimulator

Node = Hashable
Edge = Tuple[Node, Node]

__all__ = ["MinorAggregationRound", "MinorAggregation"]


def _normalize_edge(u: Node, v: Node) -> Edge:
    return (u, v) if str(u) <= str(v) else (v, u)


@dataclasses.dataclass
class MinorAggregationRound:
    """The result of one Minor-Aggregation round."""

    supernode_of: Dict[Node, int]
    supernodes: List[FrozenSet[Node]]
    consensus: Dict[int, Any]
    aggregates: Dict[int, Any]

    def consensus_at(self, node: Node) -> Any:
        return self.consensus[self.supernode_of[node]]

    def aggregate_at(self, node: Node) -> Any:
        return self.aggregates.get(self.supernode_of[node])


class MinorAggregation:
    """Executes Minor-Aggregation rounds on top of a HYBRID simulator.

    Every executed round charges the eO(1) HYBRID_0 simulation cost of
    Lemma 8.2 on the underlying simulator.
    """

    def __init__(self, simulator: HybridSimulator) -> None:
        self.simulator = simulator
        self.graph = simulator.graph
        self.rounds_executed = 0

    # ------------------------------------------------------------------
    def run_round(
        self,
        contract: Callable[[Node, Node], bool],
        node_values: Dict[Node, Any],
        consensus_op: Callable[[Any, Any], Any],
        edge_proposal: Callable[[Edge, Any, Any], Tuple[Any, Any]],
        aggregate_op: Callable[[Any, Any], Any],
    ) -> MinorAggregationRound:
        """Execute one round.

        Parameters
        ----------
        contract: predicate on edges (u, v): True means the edge is contracted.
        node_values: the value ``x_v`` chosen by each node.
        consensus_op: associative/commutative operator combining node values
            into the supernode consensus ``y_s``.
        edge_proposal: for a non-contracted edge ``e = (u, v)`` with endpoint
            consensus values ``y_a`` (u's supernode) and ``y_b`` (v's), returns
            the pair ``(z_{e,a}, z_{e,b})`` intended for the two supernodes.
        aggregate_op: associative/commutative operator combining the proposals
            a supernode receives.
        """
        graph = self.graph

        # Contraction: connected components of the contracted subgraph.
        contracted = nx.Graph()
        contracted.add_nodes_from(graph.nodes)
        for u, v in graph.edges:
            if contract(u, v):
                contracted.add_edge(u, v)
        supernodes: List[FrozenSet[Node]] = [
            frozenset(component) for component in nx.connected_components(contracted)
        ]
        supernodes.sort(key=lambda component: str(min(component, key=str)))
        supernode_of: Dict[Node, int] = {}
        for index, component in enumerate(supernodes):
            for node in component:
                supernode_of[node] = index

        # Consensus.
        consensus: Dict[int, Any] = {}
        for index, component in enumerate(supernodes):
            value: Any = None
            for node in sorted(component, key=str):
                x = node_values.get(node)
                if x is None:
                    continue
                value = x if value is None else consensus_op(value, x)
            consensus[index] = value

        # Aggregation over non-contracted edges (parallel edges are kept,
        # self-loops within a supernode are dropped).
        aggregates: Dict[int, Any] = {}
        for u, v in graph.edges:
            a = supernode_of[u]
            b = supernode_of[v]
            if a == b:
                continue
            edge = _normalize_edge(u, v)
            z_a, z_b = edge_proposal(edge, consensus[a], consensus[b])
            for supernode, proposal in ((a, z_a), (b, z_b)):
                if proposal is None:
                    continue
                if supernode not in aggregates or aggregates[supernode] is None:
                    aggregates[supernode] = proposal
                else:
                    aggregates[supernode] = aggregate_op(aggregates[supernode], proposal)

        log_n = log2_ceil(max(self.simulator.n, 2))
        self.simulator.charge_rounds(
            3 * log_n,
            "simulation of one Minor-Aggregation round",
            "Lemma 8.2",
        )
        self.rounds_executed += 1
        return MinorAggregationRound(
            supernode_of=supernode_of,
            supernodes=supernodes,
            consensus=consensus,
            aggregates=aggregates,
        )
