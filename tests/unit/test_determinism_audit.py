"""Determinism audit: every stochastic path is a seeded ``random.Random``.

Replayability is a hard requirement of the fault-injection layer (a fault run
must be reproducible from ``(seed, schedule)`` alone), and of the benchmark
suite more broadly.  This audit pins it structurally and behaviourally:

* a source scan over ``src/repro`` asserts no module calls functions of the
  global ``random`` module (``random.random()``, ``random.shuffle()``, ...)
  or reseeds it — the only sanctioned use is constructing a *local*
  ``random.Random(seed)``;
* running simulations, fault schedules and graph generators must not consume
  or perturb the interpreter's global random state;
* stochastic components (drop RNG, random graphs, crash picks) replay
  identically from their seeds and diverge across seeds.
"""

from __future__ import annotations

import ast
import random
from pathlib import Path

import pytest

import repro
from repro.graphs.generators import erdos_renyi_graph, random_regular_graph
from repro.simulator.config import ModelConfig
from repro.simulator.faults import FaultSchedule, crash_fraction_schedule
from repro.simulator.messages import GLOBAL_MODE
from repro.simulator.network import HybridSimulator

SRC_ROOT = Path(repro.__file__).resolve().parent

#: The only attribute of the global ``random`` module code may touch.
_ALLOWED_RANDOM_ATTRS = {"Random"}


def _module_random_uses(tree: ast.AST):
    """Yield (lineno, attr) for every use of ``random.<attr>`` not allowed."""
    for node in ast.walk(tree):
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "random"
            and node.attr not in _ALLOWED_RANDOM_ATTRS
        ):
            yield node.lineno, node.attr
        # `from random import shuffle` style imports defeat the attribute
        # check, so ban them outright.
        if isinstance(node, ast.ImportFrom) and node.module == "random":
            for alias in node.names:
                if alias.name not in _ALLOWED_RANDOM_ATTRS:
                    yield node.lineno, alias.name


def test_no_module_level_random_state_in_src():
    offenders = []
    for path in sorted(SRC_ROOT.rglob("*.py")):
        tree = ast.parse(path.read_text(), filename=str(path))
        for lineno, attr in _module_random_uses(tree):
            offenders.append(f"{path.relative_to(SRC_ROOT)}:{lineno}: random.{attr}")
    assert not offenders, (
        "global random-module state used in src/repro (seed a local "
        "random.Random instead):\n" + "\n".join(offenders)
    )


def test_runs_do_not_touch_global_random_state():
    random.seed(424242)
    before = random.getstate()
    graph = erdos_renyi_graph(24, 0.2, seed=7)
    random_regular_graph(12, 3, seed=9)
    schedule = crash_fraction_schedule(24, 0.2, seed=5, drop_rate=0.3)
    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=3, fault_schedule=schedule)
    for r in range(4):
        sim.global_send_batch_ids(
            [i % 24 for i in range(40)],
            [(i * 7 + r) % 24 for i in range(40)],
            [("p", r, i) for i in range(40)],
        )
        sim.advance_round()
    assert sim.metrics.dropped_messages > 0
    assert random.getstate() == before, (
        "simulating under faults consumed the interpreter's global RNG state"
    )


def _drop_run(schedule_seed):
    graph = erdos_renyi_graph(20, 0.25, seed=11)
    schedule = FaultSchedule(seed=schedule_seed, global_drop_rate=0.4)
    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=1, fault_schedule=schedule)
    for r in range(5):
        sim.global_send_batch_ids(
            [i % 20 for i in range(60)],
            [(i * 3 + r) % 20 for i in range(60)],
            [("q", r, i) for i in range(60)],
        )
        sim.advance_round()
    return sim.per_node_inbox(GLOBAL_MODE), sim.metrics.summary()


def test_fault_runs_replay_from_seed_and_schedule():
    assert _drop_run(5) == _drop_run(5)
    inbox_a, summary_a = _drop_run(5)
    inbox_b, summary_b = _drop_run(6)
    assert summary_a["global_messages"] == summary_b["global_messages"]  # same attempts
    assert inbox_a != inbox_b  # different drop trajectories


@pytest.mark.parametrize(
    "generate",
    [
        lambda seed: erdos_renyi_graph(30, 0.15, seed=seed),
        lambda seed: random_regular_graph(20, 3, seed=seed),
    ],
)
def test_random_graphs_replay_from_their_seed(generate):
    first, second, other = generate(4), generate(4), generate(5)
    assert sorted(first.edges) == sorted(second.edges)
    assert sorted(first.edges) != sorted(other.edges)


def test_crash_picks_replay_from_their_seed():
    picks = lambda seed: [c.node for c in crash_fraction_schedule(50, 0.3, seed=seed).crashes]
    assert picks(2) == picks(2)
    assert picks(2) != picks(3)
