"""Round and message accounting.

Every algorithm in this repository returns (or exposes) a :class:`RoundMetrics`
instance.  The central quantity the paper reasons about is the number of
synchronous *rounds*; we additionally track messages and words per mode, and —
per the substitution policy in DESIGN.md — distinguish

* ``measured_rounds``: rounds that were physically simulated (``advance_round``
  was called and messages flowed through the capacity checks), and
* ``charged_rounds``: rounds added analytically for subroutines whose cited
  construction we did not replicate round-by-round (e.g. the O(mu log n)-round
  ruling-set computation of [KMW18]); each charge carries a human-readable
  reason so benchmark output can show exactly what was charged.

``total_rounds`` (= measured + charged) is what the benchmark tables report.
"""

from __future__ import annotations

import dataclasses
from typing import Dict, List, Optional, Tuple

__all__ = ["ChargeRecord", "RoundMetrics"]


@dataclasses.dataclass(frozen=True)
class ChargeRecord:
    """A single analytic round charge (see module docstring)."""

    rounds: int
    reason: str
    reference: str = ""


@dataclasses.dataclass
class RoundMetrics:
    """Mutable accumulator for one algorithm execution."""

    measured_rounds: int = 0
    local_messages: int = 0
    local_words: int = 0
    global_messages: int = 0
    global_words: int = 0
    max_global_words_per_node_round: int = 0
    capacity_violations: int = 0
    # Fault-injection accounting (all zero on fault-free runs; see
    # repro.simulator.faults): messages lost to crashes/drops/link failures,
    # tokens re-sent by the self-healing exchange, and the summed number of
    # rounds each node spent crashed.
    dropped_messages: int = 0
    retransmissions: int = 0
    crashed_node_rounds: int = 0
    charges: List[ChargeRecord] = dataclasses.field(default_factory=list)

    # ------------------------------------------------------------------
    @property
    def charged_rounds(self) -> int:
        return sum(charge.rounds for charge in self.charges)

    @property
    def total_rounds(self) -> int:
        return self.measured_rounds + self.charged_rounds

    # ------------------------------------------------------------------
    def charge(self, rounds: int, reason: str, reference: str = "") -> None:
        """Add an analytic round charge (non-negative)."""
        if rounds < 0:
            raise ValueError("charged rounds must be non-negative")
        if rounds == 0:
            return
        self.charges.append(ChargeRecord(rounds=rounds, reason=reason, reference=reference))

    def record_round(self) -> None:
        self.measured_rounds += 1

    def record_local_bulk(self, messages: int, words: int) -> None:
        """Account a whole round of local traffic at once (batch engine)."""
        self.local_messages += messages
        self.local_words += words

    def record_global_bulk(self, messages: int, words: int) -> None:
        """Account a whole round of global traffic at once (batch engine)."""
        self.global_messages += messages
        self.global_words += words

    def record_node_round_load(self, words: int) -> None:
        if words > self.max_global_words_per_node_round:
            self.max_global_words_per_node_round = words

    def record_violation(self) -> None:
        self.capacity_violations += 1

    def record_dropped(self, messages: int) -> None:
        """Account messages lost to crashes, link failures, or drop draws."""
        self.dropped_messages += messages

    def record_retransmissions(self, messages: int) -> None:
        """Account tokens re-sent by the self-healing exchange wrapper."""
        self.retransmissions += messages

    def record_crashed_nodes(self, count: int) -> None:
        """Account one round's worth of crashed nodes (count nodes down)."""
        self.crashed_node_rounds += count

    # ------------------------------------------------------------------
    def merge(self, other: "RoundMetrics") -> "RoundMetrics":
        """Combine metrics of two sequentially composed executions."""
        merged = RoundMetrics(
            measured_rounds=self.measured_rounds + other.measured_rounds,
            local_messages=self.local_messages + other.local_messages,
            local_words=self.local_words + other.local_words,
            global_messages=self.global_messages + other.global_messages,
            global_words=self.global_words + other.global_words,
            max_global_words_per_node_round=max(
                self.max_global_words_per_node_round,
                other.max_global_words_per_node_round,
            ),
            capacity_violations=self.capacity_violations + other.capacity_violations,
            dropped_messages=self.dropped_messages + other.dropped_messages,
            retransmissions=self.retransmissions + other.retransmissions,
            crashed_node_rounds=self.crashed_node_rounds + other.crashed_node_rounds,
            charges=list(self.charges) + list(other.charges),
        )
        return merged

    def diff(self, other: "RoundMetrics") -> Dict[str, Tuple[object, object]]:
        """Summary keys whose values differ between two runs: ``{} == identical``.

        The identity-assertion helper for the charge-only and sharded-engine
        suites: instead of dumping two full summaries on mismatch, tests and
        benchmarks report exactly the diverging counters as
        ``key -> (self value, other value)``.
        """
        mine = self.summary()
        theirs = other.summary()
        return {
            key: (mine[key], theirs[key])
            for key in mine
            if mine[key] != theirs[key]
        }

    def summary(self) -> Dict[str, object]:
        """Plain-dict summary used by the benchmark harness."""
        return {
            "measured_rounds": self.measured_rounds,
            "charged_rounds": self.charged_rounds,
            "total_rounds": self.total_rounds,
            "local_messages": self.local_messages,
            "local_words": self.local_words,
            "global_messages": self.global_messages,
            "global_words": self.global_words,
            "max_global_words_per_node_round": self.max_global_words_per_node_round,
            "capacity_violations": self.capacity_violations,
            "dropped_messages": self.dropped_messages,
            "retransmissions": self.retransmissions,
            "crashed_node_rounds": self.crashed_node_rounds,
            "charge_reasons": [charge.reason for charge in self.charges],
        }

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"RoundMetrics(total={self.total_rounds}, measured={self.measured_rounds}, "
            f"charged={self.charged_rounds}, local_msgs={self.local_messages}, "
            f"global_msgs={self.global_messages})"
        )
