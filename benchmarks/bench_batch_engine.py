"""Batch messaging engine benchmark: batch vs. legacy per-message path.

Acceptance check for the batch engine: ``KDissemination`` on a 2000-node path
must run at least 5x faster wall-clock through the batch API than through the
legacy per-message transport, with identical round counts, identical results
and zero capacity violations.  NQ_k and the clustering are precomputed once
and shared by both runs (they are graph analytics, not message traffic, and
would otherwise dominate the timing of both paths equally).

Run directly (``python benchmarks/bench_batch_engine.py``) or through pytest
(``pytest benchmarks/bench_batch_engine.py``).
"""

from __future__ import annotations

import os
import random
import time
from typing import Any, Dict, List, Tuple

from _artifacts import update_trajectory, write_bench_artifact
from repro.core.clustering import nq_clustering
from repro.core.dissemination import KDissemination
from repro.core.neighborhood_quality import neighborhood_quality
from repro.graphs.generators import path_graph
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator

N = 2000
K = 1024
SEED = 7
REPEATS = 3
#: The acceptance bar on a quiet machine.  Shared CI runners have wall-clock
#: variance that can unfairly fail a ratio assertion, so CI may relax the
#: floor via BATCH_ENGINE_MIN_SPEEDUP (the correctness checks — identical
#: rounds, results, zero violations — are never relaxed).
REQUIRED_SPEEDUP = float(os.environ.get("BATCH_ENGINE_MIN_SPEEDUP", "5.0"))


def _workload() -> Dict[int, List[Tuple[str, int]]]:
    rng = random.Random(SEED)
    tokens: Dict[int, List[Tuple[str, int]]] = {}
    for index in range(K):
        tokens.setdefault(rng.randrange(N), []).append(("tok", index))
    return tokens


def _timed_run(graph, tokens, nq, engine: str):
    simulator = HybridSimulator(graph, ModelConfig.hybrid0(), seed=3)
    clustering = nq_clustering(graph, K, nq=nq, id_of=simulator.id_of)
    algorithm = KDissemination(
        simulator, tokens, nq=nq, clustering=clustering, engine=engine
    )
    start = time.perf_counter()
    result = algorithm.run()
    elapsed = time.perf_counter() - start
    return elapsed, result


def run_speedup_comparison() -> Dict[str, Any]:
    graph = path_graph(N)
    tokens = _workload()
    nq = max(1, neighborhood_quality(graph, K))

    batch_times, legacy_times = [], []
    batch_result = legacy_result = None
    for _ in range(REPEATS):
        elapsed, batch_result = _timed_run(graph, tokens, nq, "batch")
        batch_times.append(elapsed)
        elapsed, legacy_result = _timed_run(graph, tokens, nq, "legacy")
        legacy_times.append(elapsed)

    batch_best = min(batch_times)
    legacy_best = min(legacy_times)
    return {
        "n": N,
        "k": K,
        "NQ_k": nq,
        "batch seconds (best of 3)": round(batch_best, 4),
        "legacy seconds (best of 3)": round(legacy_best, 4),
        "speedup": round(legacy_best / batch_best, 2),
        "measured rounds (batch)": batch_result.metrics.measured_rounds,
        "measured rounds (legacy)": legacy_result.metrics.measured_rounds,
        "total rounds (batch)": batch_result.metrics.total_rounds,
        "total rounds (legacy)": legacy_result.metrics.total_rounds,
        "capacity violations (batch)": batch_result.metrics.capacity_violations,
        "identical metrics": batch_result.metrics.summary()
        == legacy_result.metrics.summary(),
        "identical results": batch_result.known_tokens == legacy_result.known_tokens,
        "complete": batch_result.all_nodes_know_all_tokens(),
    }


def _check(row: Dict[str, Any]) -> None:
    assert row["complete"], "batch dissemination failed to deliver all tokens"
    assert row["identical metrics"], "batch and legacy metrics diverge"
    assert row["identical results"], "batch and legacy results diverge"
    assert row["measured rounds (batch)"] == row["measured rounds (legacy)"]
    assert row["capacity violations (batch)"] == 0
    assert row["speedup"] >= REQUIRED_SPEEDUP, (
        f"batch engine speedup {row['speedup']}x below the required "
        f"{REQUIRED_SPEEDUP}x"
    )


def _write_artifact(row: Dict[str, Any]) -> None:
    write_bench_artifact(
        "batch_engine",
        [row],
        n=N,
        k=K,
        seed=SEED,
        repeats=REPEATS,
        required_speedup=REQUIRED_SPEEDUP,
    )
    update_trajectory(
        "batch_engine",
        f"KDissemination batch engine {row['speedup']}x faster than the legacy "
        f"per-message path (floor {REQUIRED_SPEEDUP}x) at n={N}, k={K}",
    )


def test_batch_engine_speedup(save_table):
    row = run_speedup_comparison()
    save_table(
        "batch_engine_speedup",
        [row],
        "Batch messaging engine - KDissemination n=2000 path, batch vs legacy",
    )
    _write_artifact(row)
    _check(row)


def main() -> None:
    row = run_speedup_comparison()
    width = max(len(key) for key in row)
    for key, value in row.items():
        print(f"{key:<{width}}  {value}")
    _write_artifact(row)
    _check(row)
    print(f"\nOK: batch engine meets the >= {REQUIRED_SPEEDUP}x bar.")


if __name__ == "__main__":
    main()
