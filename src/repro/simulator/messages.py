"""Message objects and size accounting.

The HYBRID model's global mode moves ``O(log n)``-bit messages, so the simulator
needs a notion of message *size in words* to enforce the per-node capacity
``gamma``.  Payloads are arbitrary Python objects; :func:`payload_words`
estimates how many O(log n)-bit words a payload occupies using the convention
that an integer, a float, a short string, a node identifier, or ``None`` each
cost one word, and containers cost the sum of their elements (plus one word of
framing).  The estimate is deliberately simple and deterministic — what matters
for the reproduction is that algorithms which the paper says move Theta(k)
words are charged Theta(k) words.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Hashable, Optional, Tuple

__all__ = ["Message", "payload_words", "LOCAL_MODE", "GLOBAL_MODE"]

LOCAL_MODE = "local"
GLOBAL_MODE = "global"

#: Strings cost one word per this many characters (log n bits ~ a few characters).
_CHARS_PER_WORD = 8


def payload_words(payload: Any) -> int:
    """Estimate the size of ``payload`` in O(log n)-bit words (at least 1).

    Objects may pin their charged size via a ``payload_words_override``
    attribute (may be 0).  The only in-tree user is the round engine's
    :class:`~repro.simulator.engine.ExchangeTag`, whose unique demux serial is
    engine bookkeeping rather than protocol payload: the tag is charged as its
    user-visible prefix so word accounting is identical across engines.
    """
    override = getattr(payload, "payload_words_override", None)
    if override is not None:
        return override
    return max(1, _payload_words(payload))


def _payload_words(payload: Any) -> int:
    if payload is None:
        return 1
    if isinstance(payload, bool):
        return 1
    if isinstance(payload, int):
        # Large integers (e.g. packed bit strings) cost proportionally more.
        bits = payload.bit_length()
        return max(1, (bits + 63) // 64)
    if isinstance(payload, float):
        return 1
    if isinstance(payload, str):
        return max(1, (len(payload) + _CHARS_PER_WORD - 1) // _CHARS_PER_WORD)
    if isinstance(payload, bytes):
        return max(1, (len(payload) + 7) // 8)
    if isinstance(payload, (tuple, list, set, frozenset)):
        return 1 + sum(_payload_words(item) for item in payload)
    if isinstance(payload, dict):
        return 1 + sum(
            _payload_words(key) + _payload_words(value) for key, value in payload.items()
        )
    if dataclasses.is_dataclass(payload) and not isinstance(payload, type):
        return 1 + sum(
            _payload_words(getattr(payload, field.name))
            for field in dataclasses.fields(payload)
        )
    # Unknown object: charge a single word.  Algorithms in this repository only
    # ever send primitives and containers, so this branch is a safety net.
    return 1


@dataclasses.dataclass(frozen=True)
class Message:
    """A single message in flight.

    Attributes
    ----------
    sender:
        The graph node that sent the message.
    receiver:
        The graph node the message is addressed to (already resolved from an
        identifier for global messages).
    payload:
        Arbitrary application data.
    mode:
        ``"local"`` or ``"global"``.
    tag:
        Optional short routing tag; many algorithms multiplex several logical
        sub-protocols over the same rounds and use the tag to demultiplex.
    round_sent:
        The round during which the message was submitted.
    """

    sender: Hashable
    receiver: Hashable
    payload: Any
    mode: str
    tag: Optional[str] = None
    round_sent: int = 0

    @property
    def words(self) -> int:
        """Size of the message in O(log n)-bit words (tag included)."""
        size = payload_words(self.payload)
        if self.tag is not None:
            size += payload_words(self.tag)
        return size

    def with_round(self, round_index: int) -> "Message":
        return dataclasses.replace(self, round_sent=round_index)
