"""Model configuration: HYBRID(lambda, gamma) and its marginal cases.

Section 1.3 of the paper parameterises the model by

* ``lambda`` -- the maximum number of bits per local edge per round
  (``None`` means unlimited, as in LOCAL / the standard HYBRID model), and
* ``gamma`` -- the maximum number of bits each node may send *and* receive via
  the global mode per round (``0`` disables the global mode entirely).

and distinguishes HYBRID (identifier space exactly ``[n]``, known to all) from
HYBRID_0 (identifiers drawn from a polynomial range ``[n^c]``; initially a node
only knows its own identifier and those of its graph neighbors).

The classical models arise as marginal cases (Section 1.3):

====================  ==========================================
Congested Clique      HYBRID(0, O(n log n))
NCC                   HYBRID(0, O(log^2 n))
NCC_0                 HYBRID_0(0, O(log^2 n))
LOCAL                 HYBRID_0(inf, 0)
CONGEST               HYBRID_0(O(log n), 0)
====================  ==========================================
"""

from __future__ import annotations

import dataclasses
import enum
import math
import os
from typing import Optional

__all__ = [
    "IdentifierRegime",
    "ModelConfig",
    "WORD_BITS",
    "log2_ceil",
    "resolve_shard_workers",
    "word_bits",
]


def resolve_shard_workers() -> int:
    """Worker count for the sharded round scheduler (``REPRO_SHARD_WORKERS``).

    ``1`` (the default when unset, empty, or unparsable) means single-process
    planning — the sharded planner is never consulted.  Any higher value makes
    :func:`repro.simulator.sharding.planner_from_env` install a
    :class:`~repro.simulator.sharding.ShardedPlanner` with that many workers
    for every exchange.  Read at call time so tests can flip the environment.
    """
    raw = os.environ.get("REPRO_SHARD_WORKERS", "").strip()
    if not raw:
        return 1
    try:
        value = int(raw)
    except ValueError:
        return 1
    return max(1, value)

#: Number of bits in one "O(log n) bit" message word for an n-node network.
#: The simulator charges message sizes in words of this many bits.
WORD_BITS = 64


def log2_ceil(n: int) -> int:
    """``ceil(log2(n))`` with the convention that values below 2 give 1."""
    if n < 2:
        return 1
    return int(math.ceil(math.log2(n)))


def word_bits(n: int) -> int:
    """Bits of one O(log n)-bit message word in an ``n``-node network."""
    return max(1, log2_ceil(max(n, 2)))


class IdentifierRegime(enum.Enum):
    """Whether identifiers form the dense range ``[n]`` (HYBRID) or an arbitrary
    polynomial-range set initially known only locally (HYBRID_0)."""

    DENSE = "dense"  # HYBRID: IDs are exactly [n], globally known.
    SPARSE = "sparse"  # HYBRID_0: IDs from [n^c], known only for neighbors.


@dataclasses.dataclass(frozen=True)
class ModelConfig:
    """Configuration of a HYBRID(lambda, gamma) network.

    Attributes
    ----------
    name:
        Human-readable model name (used in metrics and benchmark tables).
    local_bits_per_edge:
        ``lambda``; ``None`` means unlimited local bandwidth.  ``0`` disables the
        local mode (pure global models such as NCC or the Congested Clique).
    global_messages_per_node:
        Number of O(log n)-bit global messages each node may send and receive
        per round.  The paper's HYBRID model uses ``O(log n)`` messages of
        ``O(log n)`` bits, i.e. ``gamma = O(log^2 n)`` bits; we expose the
        message count directly because that is what algorithms reason about.
        ``None`` means the count scales as ``ceil(log2 n)`` with the instance,
        ``0`` disables the global mode.
    identifier_regime:
        DENSE for HYBRID (IDs are exactly ``[n]``), SPARSE for HYBRID_0.
    strict:
        When True (default) capacity violations raise; when False they are
        recorded in the metrics but messages are still delivered.  Non-strict
        mode exists only for exploratory debugging and is never used in tests.
    words_per_message:
        How many identifier-sized words one O(log n)-bit global message can
        carry.  The paper's messages routinely carry a constant number of
        fields (two endpoint identifiers plus a value, a distance label plus a
        source identifier, ...), so the per-node global budget in *words* is
        ``messages * words_per_message``.
    """

    name: str = "hybrid"
    local_bits_per_edge: Optional[int] = None
    global_messages_per_node: Optional[int] = None
    identifier_regime: IdentifierRegime = IdentifierRegime.DENSE
    strict: bool = True
    words_per_message: int = 4

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def resolve_global_message_budget(self, n: int) -> int:
        """Global messages a node may send/receive per round in an n-node network."""
        if self.global_messages_per_node is None:
            return max(1, log2_ceil(max(n, 2)))
        return self.global_messages_per_node

    def resolve_global_bit_budget(self, n: int) -> int:
        """``gamma`` in bits for an ``n``-node network."""
        return self.resolve_global_message_budget(n) * word_bits(n)

    def resolve_global_word_budget(self, n: int) -> int:
        """Per-node, per-round global budget in words (messages x words/message)."""
        return self.resolve_global_message_budget(n) * max(1, self.words_per_message)

    def resolve_local_word_limit(self) -> Optional[int]:
        """Per-edge, per-round local payload cap in words (``None`` = unlimited).

        CONGEST-style finite bandwidth: ``lambda`` bits per edge buy
        ``lambda / WORD_BITS`` words, at least one.  Shared by the tuple and
        plane local send paths so both enforce the identical cap.
        """
        limit = self.local_bits_per_edge
        if limit is None or limit <= 0:
            return None
        return max(1, limit // WORD_BITS)

    def local_mode_enabled(self) -> bool:
        return self.local_bits_per_edge is None or self.local_bits_per_edge > 0

    def global_mode_enabled(self) -> bool:
        return self.global_messages_per_node is None or self.global_messages_per_node > 0

    def is_hybrid0(self) -> bool:
        return self.identifier_regime is IdentifierRegime.SPARSE

    # ------------------------------------------------------------------
    # Named configurations (Section 1.3)
    # ------------------------------------------------------------------
    @staticmethod
    def hybrid(*, strict: bool = True) -> "ModelConfig":
        """The standard HYBRID model: unlimited local, O(log n) global messages,
        dense identifier space ``[n]``."""
        return ModelConfig(
            name="hybrid",
            local_bits_per_edge=None,
            global_messages_per_node=None,
            identifier_regime=IdentifierRegime.DENSE,
            strict=strict,
        )

    @staticmethod
    def hybrid0(*, strict: bool = True) -> "ModelConfig":
        """HYBRID_0: like HYBRID but identifiers come from a polynomial range and
        global messages may only be sent to identifiers the sender knows."""
        return ModelConfig(
            name="hybrid0",
            local_bits_per_edge=None,
            global_messages_per_node=None,
            identifier_regime=IdentifierRegime.SPARSE,
            strict=strict,
        )

    @staticmethod
    def hybrid_parameterized(
        local_bits_per_edge: Optional[int],
        global_messages_per_node: Optional[int],
        *,
        sparse_ids: bool = False,
        strict: bool = True,
    ) -> "ModelConfig":
        """General HYBRID(lambda, gamma) with explicit parameters."""
        regime = IdentifierRegime.SPARSE if sparse_ids else IdentifierRegime.DENSE
        return ModelConfig(
            name="hybrid(lambda,gamma)",
            local_bits_per_edge=local_bits_per_edge,
            global_messages_per_node=global_messages_per_node,
            identifier_regime=regime,
            strict=strict,
        )

    @staticmethod
    def local(*, strict: bool = True) -> "ModelConfig":
        """LOCAL = HYBRID_0(inf, 0): unlimited local, no global mode."""
        return ModelConfig(
            name="local",
            local_bits_per_edge=None,
            global_messages_per_node=0,
            identifier_regime=IdentifierRegime.SPARSE,
            strict=strict,
        )

    @staticmethod
    def congest(*, strict: bool = True) -> "ModelConfig":
        """CONGEST = HYBRID_0(O(log n), 0)."""
        return ModelConfig(
            name="congest",
            local_bits_per_edge=WORD_BITS,
            global_messages_per_node=0,
            identifier_regime=IdentifierRegime.SPARSE,
            strict=strict,
        )

    @staticmethod
    def ncc(*, strict: bool = True) -> "ModelConfig":
        """NCC ~ HYBRID(0, O(log^2 n)): no local mode, dense identifiers."""
        return ModelConfig(
            name="ncc",
            local_bits_per_edge=0,
            global_messages_per_node=None,
            identifier_regime=IdentifierRegime.DENSE,
            strict=strict,
        )

    @staticmethod
    def ncc0(*, strict: bool = True) -> "ModelConfig":
        """NCC_0 ~ HYBRID_0(0, O(log^2 n))."""
        return ModelConfig(
            name="ncc0",
            local_bits_per_edge=0,
            global_messages_per_node=None,
            identifier_regime=IdentifierRegime.SPARSE,
            strict=strict,
        )

    @staticmethod
    def congested_clique(n: int, *, strict: bool = True) -> "ModelConfig":
        """Congested Clique ~ HYBRID(0, O(n log n)): each node may exchange one
        O(log n)-bit message with every other node per round."""
        return ModelConfig(
            name="congested_clique",
            local_bits_per_edge=0,
            global_messages_per_node=max(1, n - 1),
            identifier_regime=IdentifierRegime.DENSE,
            strict=strict,
        )
