"""Existentially optimal k-source shortest paths (Section 9, Theorem 14).

Theorem 14: in HYBRID(infinity, gamma), k-SSP can be approximated w.h.p.

* with stretch 1+eps in ``eO(sqrt(k) / eps^2)`` rounds when the sources are
  sampled with probability ``k/n`` (standard HYBRID),
* with stretch 3+eps in ``eO(sqrt(k / gamma) / eps^2)`` rounds for arbitrary
  sources,
* with stretch 1+eps in ``eO(1/eps^2)`` rounds for ``k <= gamma`` arbitrary
  sources.

The algorithm (Lemmas 9.3, 9.4):

1. build a skeleton graph with sampling probability ``sqrt(gamma / k)``
   (Definition 6.2); for the random-sources case the sources are added to the
   skeleton,
2. compute classic helper sets (Definition 9.1) and schedule one Theorem 13
   SSSP instance per source on the skeleton, all in parallel, with each helper
   simulating ``eO(sqrt(k * gamma))`` instances — total
   ``eO(sqrt(k / gamma) * T_SSSP)`` rounds (Lemma 9.3, charged),
3. every node learns its ``h``-hop limited distances to nearby skeleton nodes
   over the local mode (``h`` rounds, charged) and combines them with the
   skeleton estimates (Lemma 9.4); for arbitrary sources the sources first tag
   *proxy sources* on the skeleton and broadcast the proxy offsets
   (k-dissemination, Theorem 1, charged).

The skeleton construction, the per-source skeleton SSSP estimates, the h-hop
limited local distances, and the combination formulas are all computed for
real (they produce genuinely approximate distances whose stretch the tests
check against Dijkstra ground truth); the parallel-scheduling round cost is
charged per Lemma 9.3.

The implementation is a :class:`~repro.simulator.engine.BatchAlgorithm`: the
proxy-offset broadcast of the arbitrary-sources case is a physically
simulated k-dissemination instance riding the batch messaging engine
(``engine="batch"``, the default) or the legacy per-message transport
(``engine="legacy"``), both schedule-identical; the h-hop limited tables run
on the :class:`~repro.graphs.index.GraphIndex` flat-array Bellman-Ford.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

from repro.core.dissemination import KDissemination
from repro.core.helper_sets import compute_classic_helper_sets
from repro.core.skeleton import SkeletonGraph, build_skeleton
from repro.core.sssp import sssp_round_cost
from repro.graphs.index import SSSPRowCache, get_index
from repro.graphs.properties import h_hop_limited_distances, weighted_distances_from
from repro.simulator.config import log2_ceil
from repro.simulator.engine import BatchAlgorithm
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = ["KSPResult", "KSourceShortestPaths", "ksp_round_cost"]


def ksp_round_cost(n: int, k: int, gamma_words: int, epsilon: float) -> int:
    """The Lemma 9.3 / Theorem 14 scheduling cost ``eO(sqrt(k/gamma)/eps^2)``."""
    log_n = log2_ceil(max(n, 2))
    eps = max(epsilon, 1e-9)
    if k <= gamma_words:
        parallel_factor = 1.0
    else:
        parallel_factor = math.sqrt(k / max(1, gamma_words))
    return int(math.ceil(parallel_factor / (eps * eps))) * log_n * log_n


@dataclasses.dataclass
class KSPResult:
    """Outcome of a k-SSP computation."""

    sources: List[Node]
    distances: Dict[Node, Dict[Node, float]]
    stretch_bound: float
    epsilon: float
    skeleton: SkeletonGraph
    proxy_of: Dict[Node, Node]
    metrics: RoundMetrics

    def estimate(self, node: Node, source: Node) -> float:
        return self.distances.get(node, {}).get(source, math.inf)


class KSourceShortestPaths(BatchAlgorithm):
    """Theorem 14: approximate k-SSP via parallel SSSP scheduling on a skeleton.

    Parameters
    ----------
    simulator: the network.
    sources: the k source nodes.
    epsilon: approximation parameter of the underlying SSSP instances.
    sources_in_skeleton: set True for the "random sources" case (the sources are
        forced into the skeleton, giving stretch 1+eps); False for arbitrary
        sources routed through proxy sources (stretch 3+eps).
    gamma_words: the per-node global capacity in words (defaults to the
        simulator's budget), which controls the skeleton density and the
        scheduling cost — this is the ``HYBRID(infinity, gamma)`` knob of
        Theorem 14.
    seed: randomness for the skeleton sampling and helper sets.
    engine: ``"batch"`` (default) or ``"legacy"`` transport for the physically
        simulated proxy-offset broadcast (arbitrary-sources case).
    """

    def __init__(
        self,
        simulator: HybridSimulator,
        sources: Sequence[Node],
        *,
        epsilon: float = 0.25,
        sources_in_skeleton: bool = True,
        gamma_words: Optional[int] = None,
        seed: Optional[int] = None,
        engine: str = "batch",
    ) -> None:
        super().__init__(simulator, engine=engine)
        if not sources:
            raise ValueError("sources must be non-empty")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        node_set = set(simulator.nodes)
        for source in sources:
            if source not in node_set:
                raise KeyError(f"source {source!r} is not a node of the network")
        self.sources = sorted(set(sources), key=simulator.id_of)
        self.epsilon = epsilon
        self.sources_in_skeleton = sources_in_skeleton
        self.gamma_words = (
            gamma_words if gamma_words is not None else simulator.global_budget_words()
        )
        self.seed = seed
        # Phase state.
        self._log_n = log2_ceil(max(simulator.n, 2))
        self._probability = 1.0
        self.skeleton: Optional[SkeletonGraph] = None
        self._skeleton_set: set = set()
        self._proxy_of: Dict[Node, Node] = {}
        self._proxy_offset: Dict[Node, float] = {}
        self._skeleton_rows: Optional[SSSPRowCache] = None
        self._distances: Dict[Node, Dict[Node, float]] = {}

    # ------------------------------------------------------------------
    def phases(self):
        return (
            ("skeleton", self._phase_skeleton),
            ("helper-sets", self._phase_helper_sets),
            ("proxy-sources", self._phase_proxy_sources),
            ("skeleton-sssp", self._phase_skeleton_sssp),
            ("combine", self._phase_combine),
        )

    def _phase_skeleton(self) -> None:
        """Step 1: skeleton with sampling probability sqrt(gamma / k)."""
        sim = self.simulator
        k = len(self.sources)
        probability = min(1.0, math.sqrt(self.gamma_words / max(k, 1)))
        self._probability = probability
        forced = self.sources if self.sources_in_skeleton else None
        self.skeleton = build_skeleton(
            sim.graph, probability, seed=self.seed, forced_nodes=forced
        )
        self._skeleton_set = set(self.skeleton.skeleton_nodes)
        sim.charge_rounds(
            self.skeleton.h,
            "skeleton construction (h-hop local exploration)",
            "Definition 6.2 / Lemma 6.3",
        )

    def _phase_helper_sets(self) -> None:
        """Step 2a: classic helper sets for the skeleton nodes (charged)."""
        sim = self.simulator
        x = max(1, int(round(1.0 / self._probability)))
        compute_classic_helper_sets(
            sim.graph, self.skeleton.skeleton_nodes, x, seed=self.seed
        )
        sim.charge_rounds(
            2 * x * self._log_n,
            "classic helper-set computation for skeleton nodes",
            "Definition 9.1 / Lemma 9.2",
        )

    def _phase_proxy_sources(self) -> None:
        """Proxy sources: for arbitrary sources, each source tags the closest
        skeleton node within h hops (Lemma 6.3 guarantees one exists w.h.p.)
        and the proxy offsets are made public with Theorem 1 — a physically
        simulated k-dissemination instance."""
        sim = self.simulator
        graph = sim.graph
        h = self.skeleton.h
        skeleton_set = self._skeleton_set
        for source in self.sources:
            if source in skeleton_set:
                self._proxy_of[source] = source
                self._proxy_offset[source] = 0.0
                continue
            limited = h_hop_limited_distances(graph, source, h)
            candidates = {
                node: dist for node, dist in limited.items() if node in skeleton_set
            }
            if not candidates:
                # Fall back to the globally closest skeleton node (can only
                # happen on tiny or pathological instances).
                full = weighted_distances_from(graph, source)
                candidates = {
                    node: dist for node, dist in full.items() if node in skeleton_set
                }
            proxy, offset = min(candidates.items(), key=lambda kv: (kv[1], str(kv[0])))
            self._proxy_of[source] = proxy
            self._proxy_offset[source] = offset
        if not self.sources_in_skeleton:
            tokens = {
                source: [
                    (
                        "ksp-proxy",
                        sim.id_of(source),
                        sim.id_of(self._proxy_of[source]),
                        self._proxy_offset[source],
                    )
                ]
                for source in self.sources
            }
            KDissemination(sim, tokens, engine=self.engine).run()

    def _phase_skeleton_sssp(self) -> None:
        """One SSSP per (proxy) source on the skeleton, scheduled in parallel
        (Lemma 9.3); the estimates are computed for real, the scheduling
        rounds are charged."""
        sim = self.simulator
        proxies = sorted({self._proxy_of[source] for source in self.sources}, key=str)
        # One shared rounded-weight CSR over the skeleton, one flat Dijkstra
        # per distinct proxy; the dense ``array('d')`` rows replace the
        # per-proxy estimate dicts (identical values — same index Dijkstra).
        self._skeleton_rows = SSSPRowCache(get_index(self.skeleton.graph), self.epsilon)
        for proxy in proxies:
            self._skeleton_rows.row(proxy)
        sim.charge_rounds(
            ksp_round_cost(sim.n, len(self.sources), self.gamma_words, self.epsilon),
            f"parallel scheduling of {len(proxies)} SSSP instances on the skeleton",
            "Lemma 9.3 / Theorem 14",
        )

    def _phase_combine(self) -> None:
        """Step 3: every node combines its h-hop limited distances to nearby
        skeleton nodes with the skeleton estimates (Lemma 9.4 / Theorem 14)."""
        sim = self.simulator
        graph = sim.graph
        h = self.skeleton.h
        skeleton_set = self._skeleton_set
        skeleton_rows = self._skeleton_rows
        sim.charge_rounds(
            h,
            "h-hop limited distance computation over the local mode",
            "Lemma 9.4",
        )
        limited_from_node: Dict[Node, Dict[Node, float]] = {}
        for node in sim.nodes:
            limited_from_node[node] = h_hop_limited_distances(graph, node, h)
        # Flat-array assembly.  The historical loop evaluated
        # ``(limited[u] + d_skel(proxy, u)) + offset`` per (source, u) pair;
        # the node-to-proxy leg does not depend on the source, and adding the
        # per-source offset afterwards is value-exact (``x -> fl(x + c)`` is
        # monotone, so the factored minimum equals the pairwise one).  Each
        # node therefore scans its nearby skeleton entry points once per
        # *distinct proxy* against that proxy's dense row — |proxies| * |U| +
        # k work instead of k * |U|.
        for node in sim.nodes:
            limited = limited_from_node[node]
            nearby = [
                (skeleton_rows.position_of(u), limited[u])
                for u in limited
                if u in skeleton_set
            ]
            via_to_proxy: Dict[Node, float] = {}
            per_source: Dict[Node, float] = {}
            for source in self.sources:
                proxy = self._proxy_of[source]
                to_proxy = via_to_proxy.get(proxy)
                if to_proxy is None:
                    row = skeleton_rows.row(proxy)
                    to_proxy = math.inf
                    for position, d_node_u in nearby:
                        candidate = d_node_u + row[position]
                        if candidate < to_proxy:
                            to_proxy = candidate
                    via_to_proxy[proxy] = to_proxy
                best = limited.get(source, math.inf)
                via = to_proxy + self._proxy_offset[source]
                if via < best:
                    best = via
                per_source[source] = best
            self._distances[node] = per_source

    def finish(self) -> KSPResult:
        stretch_bound = (
            (1.0 + self.epsilon)
            if self.sources_in_skeleton
            else (3.0 + 3 * self.epsilon)
        )
        return KSPResult(
            sources=list(self.sources),
            distances=self._distances,
            stretch_bound=stretch_bound,
            epsilon=self.epsilon,
            skeleton=self.skeleton,
            proxy_of=self._proxy_of,
            metrics=self.simulator.metrics,
        )
