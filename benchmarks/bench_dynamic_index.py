"""Dynamic-index benchmark: incremental CSR patching vs invalidate+rebuild.

Acceptance check for the versioned mutation layer (PR: frozen-graph
staleness fix): an edit/re-query loop — delete an edge, run a local
re-query, re-insert the edge with a fresh weight, re-query — over six
graph families at ``n ~ 2000``, driven two ways on identically seeded
graphs and edit scripts:

* **incremental** — :class:`~repro.graphs.mutation.GraphMutator` patches
  the cached :class:`~repro.graphs.index.GraphIndex` in place (CSR
  adjacency, weight arrays, memoised rounded/pair derivatives; only the
  caches the edit class can change are dropped);
* **rebuild** — the historical path: mutate the graph directly, retire the
  index via :func:`~repro.graphs.index.invalidate_index`, and let
  ``get_index`` rebuild from scratch before the re-query.

Both variants must produce bit-identical query results at every step (and
the final incremental index must agree with a from-scratch oracle), and
the incremental path must be at least ``DYNAMIC_INDEX_MIN_SPEEDUP`` times
faster per family (default 5x; CI may relax on noisy runners — the
identity checks are the hard gate, the floor guards the optimisation).

Each run writes a ``BENCH_dynamic_index.json`` trajectory artifact and
refreshes the committed ``results/TRAJECTORY.md`` summary row.

Run directly (``python benchmarks/bench_dynamic_index.py``) or through
pytest (``pytest benchmarks/bench_dynamic_index.py``).
"""

from __future__ import annotations

import math
import os
import random
import time
from typing import Any, Callable, Dict, List, Tuple

from _artifacts import update_trajectory, write_bench_artifact
from repro.graphs.generators import (
    barbell_graph,
    broom_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
)
from repro.graphs.index import GraphIndex, get_index, invalidate_index
from repro.graphs.mutation import GraphMutator
from repro.graphs.weighted import assign_random_weights

#: Every family is built at roughly this size (the acceptance point).
N_TARGET = 2000
#: Edit/re-query iterations per family; each iteration performs one edge
#: deletion and one re-insertion, with a 2-hop local re-query after each.
EDITS = int(os.environ.get("DYNAMIC_INDEX_EDITS", "12"))
SEED = 7
#: Perf floor for the incremental path.  Machine-shared CI runners add
#: timing variance, so CI may relax it via DYNAMIC_INDEX_MIN_SPEEDUP (the
#: value-identity checks stay unconditional).
REQUIRED_SPEEDUP = float(os.environ.get("DYNAMIC_INDEX_MIN_SPEEDUP", "5.0"))

FAMILIES: Dict[str, Callable[[], Any]] = {
    "path": lambda: path_graph(N_TARGET),
    "cycle": lambda: cycle_graph(N_TARGET),
    "grid": lambda: grid_graph(45, 2),  # 2025 nodes
    "barbell": lambda: barbell_graph(30, N_TARGET - 60),
    "broom": lambda: broom_graph(N_TARGET // 2, N_TARGET // 2),
    "erdos_renyi": lambda: erdos_renyi_graph(N_TARGET, 0.002, seed=SEED),
}


def _build(family: str):
    return assign_random_weights(FAMILIES[family](), max_weight=9, seed=SEED)


def _edit_script(graph, family: str) -> List[Tuple[Any, Any, int]]:
    """A deterministic list of (u, v, reinsert_weight) edit targets."""
    rng = random.Random(f"dynamic-index-{family}-{SEED}")
    edges = sorted(graph.edges())
    return [
        (*rng.choice(edges), rng.randint(1, 9))
        for _ in range(EDITS)
    ]


def _checksum(limited: Dict[Any, float]) -> Tuple[int, float]:
    return len(limited), sum(d for d in limited.values() if d != math.inf)


def _run_incremental(graph, script) -> Tuple[float, List[Any]]:
    index = get_index(graph)
    index.h_hop_limited_distances(script[0][0], 2)  # warm the scratch arrays
    mutator = GraphMutator(graph)
    checks: List[Any] = []
    start = time.perf_counter()
    for u, v, weight in script:
        mutator.remove_edge(u, v)
        checks.append(_checksum(get_index(graph).h_hop_limited_distances(u, 2)))
        mutator.add_edge(u, v, weight=weight)
        checks.append(_checksum(get_index(graph).h_hop_limited_distances(u, 2)))
    elapsed = time.perf_counter() - start
    assert get_index(graph) is index, "incremental run silently rebuilt the index"
    return elapsed, checks


def _run_rebuild(graph, script) -> Tuple[float, List[Any]]:
    get_index(graph).h_hop_limited_distances(script[0][0], 2)
    checks: List[Any] = []
    start = time.perf_counter()
    for u, v, weight in script:
        graph.remove_edge(u, v)
        invalidate_index(graph)
        checks.append(_checksum(get_index(graph).h_hop_limited_distances(u, 2)))
        graph.add_edge(u, v, weight=weight)
        invalidate_index(graph)
        checks.append(_checksum(get_index(graph).h_hop_limited_distances(u, 2)))
    elapsed = time.perf_counter() - start
    return elapsed, checks


def _oracle_agrees(graph) -> bool:
    """The patched index equals a from-scratch rebuild on spot queries."""
    patched = get_index(graph)
    oracle = GraphIndex(graph)
    if (patched.n, patched.m) != (oracle.n, oracle.m):
        return False
    probes = [patched.nodes[0], patched.nodes[patched.n // 2], patched.nodes[-1]]
    return all(
        patched.hop_distance_row(node) == oracle.hop_distance_row(node)
        and patched.sssp_row(node) == oracle.sssp_row(node)
        for node in probes
    )


def run_dynamic_index_comparison() -> List[Dict[str, Any]]:
    rows: List[Dict[str, Any]] = []
    for family in sorted(FAMILIES):
        incremental_graph = _build(family)
        rebuild_graph = _build(family)
        script = _edit_script(incremental_graph, family)
        incremental_seconds, incremental_checks = _run_incremental(
            incremental_graph, script
        )
        rebuild_seconds, rebuild_checks = _run_rebuild(rebuild_graph, script)
        rows.append(
            {
                "family": family,
                "n": incremental_graph.number_of_nodes(),
                "m": incremental_graph.number_of_edges(),
                "edits": 2 * EDITS,
                "incremental seconds": round(incremental_seconds, 4),
                "rebuild seconds": round(rebuild_seconds, 4),
                "speedup": round(rebuild_seconds / incremental_seconds, 2),
                "identical queries": incremental_checks == rebuild_checks,
                "oracle agrees": _oracle_agrees(incremental_graph),
            }
        )
    return rows


def _check(rows: List[Dict[str, Any]]) -> None:
    for row in rows:
        label = row["family"]
        assert row["identical queries"], (
            f"{label}: incremental and rebuild re-queries diverged"
        )
        assert row["oracle agrees"], (
            f"{label}: patched index disagrees with a from-scratch rebuild"
        )
        assert row["speedup"] >= REQUIRED_SPEEDUP, (
            f"{label}: incremental edit+re-query speedup {row['speedup']}x "
            f"below the required {REQUIRED_SPEEDUP}x"
        )


def _write_artifact(rows: List[Dict[str, Any]]) -> None:
    write_bench_artifact(
        "dynamic_index",
        rows,
        n_target=N_TARGET,
        edits=EDITS,
        seed=SEED,
        required_speedup=REQUIRED_SPEEDUP,
    )
    speedups = sorted(row["speedup"] for row in rows)
    update_trajectory(
        "dynamic_index",
        f"incremental edit+re-query {speedups[0]}x-{speedups[-1]}x faster than "
        f"invalidate+rebuild (floor {REQUIRED_SPEEDUP}x) over "
        f"{len(rows)} families at n~{N_TARGET}",
    )


def test_dynamic_index_speedup(save_table):
    rows = run_dynamic_index_comparison()
    save_table(
        "dynamic_index_speedup",
        rows,
        f"Dynamic index - single-edge edits + 2-hop re-queries at n~{N_TARGET}, "
        "GraphMutator patching vs invalidate+rebuild",
    )
    _write_artifact(rows)
    _check(rows)


def main() -> None:
    rows = run_dynamic_index_comparison()
    for row in rows:
        width = max(len(key) for key in row)
        for key, value in row.items():
            print(f"{key:<{width}}  {value}")
        print()
    _write_artifact(rows)
    _check(rows)
    print(f"OK: dynamic index meets the >= {REQUIRED_SPEEDUP}x bar on all families.")


if __name__ == "__main__":
    main()
