"""The experiment harness behind the benchmarks.

Each ``run_*`` function reproduces one of the paper's tables or figures on a
single graph instance and returns plain dictionaries (one per table row) so the
pytest-benchmark targets under ``benchmarks/`` stay thin: they pick the graph
grid, call these functions, assert the paper's qualitative claims ("who wins,
by roughly what factor"), and print the rendered tables into
``bench_output.txt``.  The examples under ``examples/`` reuse the same
functions, so the numbers a user sees in the quickstart are produced by exactly
the same code path as the benchmark results recorded in EXPERIMENTS.md.
"""

from __future__ import annotations

import math
import random
import time
from typing import Any, Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.analysis.comparison import fit_power_law_exponent
from repro.analysis.tables import ExperimentRow
from repro.analysis.theory import TheoryPredictions
from repro.baselines.centralized import exact_apsp, exact_hop_apsp, max_stretch_of_table
from repro.baselines.existential import ExistentialBounds
from repro.baselines.naive import LocalFloodingBroadcast, NaiveGlobalBroadcast
from repro.core.aggregation import KAggregation
from repro.core.clustering import nq_clustering
from repro.core.dissemination import KDissemination
from repro.core.ksp import KSourceShortestPaths
from repro.core.neighborhood_quality import neighborhood_quality, nq_profile
from repro.core.routing import KLRouting, RoutingScenario
from repro.core.shortest_paths import (
    KLShortestPaths,
    SkeletonAPSP,
    SpannerAPSP,
    UnweightedApproxAPSP,
)
from repro.core.sssp import ApproxSSSP, sssp_round_cost
from repro.graphs.generators import GraphSpec, generate_graph
from repro.graphs.properties import diameter, weak_diameter, weighted_distances_from
from repro.graphs.weighted import assign_random_weights, unit_weights
from repro.lowerbounds.universal import (
    dissemination_lower_bound,
    shortest_paths_lower_bound,
)
from repro.simulator.config import ModelConfig, log2_ceil
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = [
    "default_benchmark_specs",
    "scatter_tokens",
    "run_table1_dissemination",
    "run_table1_aggregation",
    "run_table1_unicast",
    "run_table2_apsp",
    "run_table3_klsp",
    "run_table4_sssp",
    "run_fig1_ksp_point",
    "fit_fig1_exponent",
    "run_fig2_broadcast_structure",
    "run_nq_family_point",
    "run_nq_scale_point",
    "run_clustering_scale_point",
]


# ----------------------------------------------------------------------
# Shared setup helpers
# ----------------------------------------------------------------------
def default_benchmark_specs(scale: str = "small") -> List[GraphSpec]:
    """The graph grid the benchmark tables sweep over.

    ``scale`` picks between a fast grid ("small", used by default so the
    benchmark suite stays minutes-long), a larger one ("medium"), and a
    production-scale one ("large", n >= 2000, feasible only through the batch
    messaging engine).
    """
    if scale == "small":
        return [
            GraphSpec.of("path", n=96),
            GraphSpec.of("cycle", n=96),
            GraphSpec.of("grid", side=10, dim=2),
            GraphSpec.of("erdos_renyi", n=96, p=0.08, seed=7),
            GraphSpec.of("barbell", clique_size=24, path_length=48),
        ]
    if scale == "medium":
        return [
            GraphSpec.of("path", n=256),
            GraphSpec.of("cycle", n=256),
            GraphSpec.of("grid", side=16, dim=2),
            GraphSpec.of("torus", side=6, dim=3),
            GraphSpec.of("erdos_renyi", n=256, p=0.04, seed=7),
            GraphSpec.of("random_regular", n=256, degree=4, seed=7),
            GraphSpec.of("barbell", clique_size=64, path_length=128),
        ]
    if scale == "large":
        return [
            GraphSpec.of("path", n=2000),
            GraphSpec.of("cycle", n=2000),
            GraphSpec.of("grid", side=45, dim=2),
            GraphSpec.of("erdos_renyi", n=2000, p=0.005, seed=7),
            GraphSpec.of("random_regular", n=2048, degree=4, seed=7),
            GraphSpec.of("barbell", clique_size=500, path_length=1000),
        ]
    raise ValueError(f"unknown scale {scale!r}")


def scatter_tokens(
    graph: nx.Graph, k: int, *, seed: Optional[int] = None, concentrated: bool = False
) -> Dict[Node, List[Any]]:
    """Place ``k`` distinct tokens on the graph.

    With ``concentrated=True`` all tokens start at a single node (the paper's
    point that the complexity of k-dissemination does not depend on the initial
    distribution); otherwise holders are sampled uniformly.
    """
    rng = random.Random(seed)
    nodes = sorted(graph.nodes, key=str)
    tokens_by_node: Dict[Node, List[Any]] = {}
    if concentrated:
        holder = nodes[0]
        tokens_by_node[holder] = [("token", index) for index in range(k)]
        return tokens_by_node
    for index in range(k):
        holder = rng.choice(nodes)
        tokens_by_node.setdefault(holder, []).append(("token", index))
    return tokens_by_node


def _fresh_simulator(
    graph: nx.Graph, *, hybrid0: bool = False, seed: Optional[int] = 0
) -> HybridSimulator:
    config = ModelConfig.hybrid0() if hybrid0 else ModelConfig.hybrid()
    return HybridSimulator(graph, config, seed=seed)


# ----------------------------------------------------------------------
# Table 1: information dissemination
# ----------------------------------------------------------------------
def run_table1_dissemination(
    spec: GraphSpec,
    k: int,
    *,
    seed: int = 0,
    concentrated: bool = False,
    engine: str = "batch",
) -> Dict[str, Any]:
    """One Table 1 row: k-dissemination, measured vs. prior bound vs. lower bound."""
    graph = generate_graph(spec)
    n = graph.number_of_nodes()
    d = diameter(graph)
    tokens = scatter_tokens(graph, k, seed=seed, concentrated=concentrated)

    sim = _fresh_simulator(graph, hybrid0=True, seed=seed)
    result = KDissemination(sim, tokens, engine=engine).run()
    if not result.all_nodes_know_all_tokens():
        raise AssertionError("k-dissemination failed to deliver all tokens")

    lower = dissemination_lower_bound(graph, k)
    log_n = log2_ceil(max(n, 2))
    return {
        "graph": spec.label(),
        "n": n,
        "D": d,
        "k": k,
        "NQ_k": result.nq,
        "rounds (Thm 1, total)": result.metrics.total_rounds,
        "rounds (Thm 1, measured)": result.metrics.measured_rounds,
        "prior sqrt(k) [AHK+20]": round(ExistentialBounds.broadcast_ahk20(n, k), 1),
        "prior incl. polylog": round(
            ExistentialBounds.broadcast_ahk20(n, k) * log_n * log_n, 1
        ),
        "universal LB (Thm 4)": round(lower.rounds, 2),
        "capacity violations": result.metrics.capacity_violations,
    }


def run_table1_aggregation(spec: GraphSpec, k: int, *, seed: int = 0) -> Dict[str, Any]:
    """One Table 1 row: k-aggregation (component-wise minimum)."""
    graph = generate_graph(spec)
    n = graph.number_of_nodes()
    rng = random.Random(seed)
    values_by_node = {
        node: [rng.randint(0, 10_000) for _ in range(k)] for node in graph.nodes
    }
    sim = _fresh_simulator(graph, hybrid0=True, seed=seed)
    result = KAggregation(sim, values_by_node, min).run()
    expected = [
        min(values_by_node[node][index] for node in graph.nodes) for index in range(k)
    ]
    if result.aggregates != expected:
        raise AssertionError("k-aggregation computed incorrect aggregates")
    lower = dissemination_lower_bound(graph, k)
    log_n = log2_ceil(max(n, 2))
    return {
        "graph": spec.label(),
        "n": n,
        "k": k,
        "NQ_k": result.nq,
        "rounds (Thm 2, total)": result.metrics.total_rounds,
        "prior sqrt(k) [AHK+20]": round(ExistentialBounds.broadcast_ahk20(n, k), 1),
        "prior incl. polylog": round(
            ExistentialBounds.broadcast_ahk20(n, k) * log_n * log_n, 1
        ),
        "universal LB (Thm 4)": round(lower.rounds, 2),
    }


def run_table1_unicast(
    spec: GraphSpec, k: int, l: int, *, seed: int = 0
) -> Dict[str, Any]:
    """One Table 1 row: (k, l)-routing (arbitrary sources, random targets)."""
    graph = generate_graph(spec)
    n = graph.number_of_nodes()
    rng = random.Random(seed)
    nodes = sorted(graph.nodes, key=str)
    sources = rng.sample(nodes, min(k, n))
    targets = rng.sample(nodes, min(l, n))
    messages = {
        (s, t): index for index, (s, t) in enumerate((s, t) for s in sources for t in targets)
    }
    sim = _fresh_simulator(graph, hybrid0=False, seed=seed)
    routing = KLRouting(
        sim,
        messages,
        scenario=RoutingScenario.ARBITRARY_SOURCES_RANDOM_TARGETS,
        seed=seed,
    )
    result = routing.run()
    if not result.all_delivered(messages):
        raise AssertionError("(k,l)-routing failed to deliver all messages")
    lower = dissemination_lower_bound(graph, len(sources))
    log_n = log2_ceil(max(n, 2))
    return {
        "graph": spec.label(),
        "n": n,
        "k": len(sources),
        "l": len(targets),
        "NQ_k": result.nq,
        "rounds (Thm 3, total)": result.metrics.total_rounds,
        "prior sqrt(k)+kl/n [KS20]": round(
            ExistentialBounds.unicast_ks20(n, len(sources), len(targets)), 1
        ),
        "prior incl. polylog": round(
            ExistentialBounds.unicast_ks20(n, len(sources), len(targets)) * log_n * log_n, 1
        ),
        "universal LB (Thm 4)": round(lower.rounds, 2),
    }


# ----------------------------------------------------------------------
# Table 2: APSP
# ----------------------------------------------------------------------
def run_table2_apsp(
    spec: GraphSpec, *, epsilon: float = 0.5, alpha: int = 1, seed: int = 0
) -> List[Dict[str, Any]]:
    """Table 2 rows for one graph: Theorems 6, 7, 8 vs. the sqrt(n) baseline."""
    rows: List[Dict[str, Any]] = []
    base_graph = generate_graph(spec)
    n = base_graph.number_of_nodes()
    nq_n = neighborhood_quality(base_graph, n)
    lower = shortest_paths_lower_bound(base_graph, n)
    sqrt_n_bound = ExistentialBounds.apsp_sqrt_n(n)

    # Theorem 6: unweighted APSP.
    unweighted = unit_weights(generate_graph(spec))
    hop_truth = exact_hop_apsp(unweighted)
    sim = _fresh_simulator(unweighted, hybrid0=True, seed=seed)
    table6 = UnweightedApproxAPSP(sim, epsilon=epsilon).run()
    stretch6 = max_stretch_of_table(
        {v: {w: float(d) for w, d in row.items()} for v, row in hop_truth.items()},
        table6.estimates,
    )
    rows.append(
        {
            "graph": spec.label(),
            "algorithm": "Thm 6: (1+eps) unweighted APSP",
            "n": n,
            "NQ_n": nq_n,
            "rounds (total)": table6.metrics.total_rounds,
            "stretch bound": round(table6.stretch_bound, 3),
            "stretch measured": round(stretch6, 3),
            "prior eO(sqrt n)": round(sqrt_n_bound, 1),
            "universal LB": round(lower.rounds, 2),
        }
    )

    # Theorem 7: weighted APSP via spanner broadcast.
    weighted = assign_random_weights(generate_graph(spec), max_weight=16, seed=seed)
    weighted_truth = exact_apsp(weighted)
    sim = _fresh_simulator(weighted, hybrid0=True, seed=seed)
    table7 = SpannerAPSP(sim, epsilon=epsilon).run()
    stretch7 = max_stretch_of_table(weighted_truth, table7.estimates)
    rows.append(
        {
            "graph": spec.label(),
            "algorithm": "Thm 7: (1+eps log n) weighted APSP",
            "n": n,
            "NQ_n": nq_n,
            "rounds (total)": table7.metrics.total_rounds,
            "stretch bound": round(table7.stretch_bound, 3),
            "stretch measured": round(stretch7, 3),
            "prior eO(sqrt n)": round(sqrt_n_bound, 1),
            "universal LB": round(lower.rounds, 2),
        }
    )

    # Theorem 8: weighted APSP via skeleton + spanner.
    sim = _fresh_simulator(weighted, hybrid0=True, seed=seed)
    table8 = SkeletonAPSP(sim, alpha=alpha, seed=seed).run()
    stretch8 = max_stretch_of_table(weighted_truth, table8.estimates)
    rows.append(
        {
            "graph": spec.label(),
            "algorithm": f"Thm 8: ({4 * alpha - 1})-approx weighted APSP",
            "n": n,
            "NQ_n": nq_n,
            "rounds (total)": table8.metrics.total_rounds,
            "stretch bound": round(table8.stretch_bound, 3),
            "stretch measured": round(stretch8, 3),
            "prior eO(sqrt n)": round(sqrt_n_bound, 1),
            "universal LB": round(lower.rounds, 2),
        }
    )
    return rows


# ----------------------------------------------------------------------
# Table 3: (k, l)-SP
# ----------------------------------------------------------------------
def run_table3_klsp(
    spec: GraphSpec, k: int, l: int, *, epsilon: float = 0.25, seed: int = 0
) -> Dict[str, Any]:
    """One Table 3 row: (1+eps)-approximate (k, l)-SP."""
    graph = assign_random_weights(generate_graph(spec), max_weight=8, seed=seed)
    n = graph.number_of_nodes()
    rng = random.Random(seed)
    nodes = sorted(graph.nodes, key=str)
    sources = rng.sample(nodes, min(k, n))
    targets = rng.sample(nodes, min(l, n))

    sim = _fresh_simulator(graph, hybrid0=False, seed=seed)
    table = KLShortestPaths(sim, sources, targets, epsilon=epsilon, seed=seed).run()

    truth = {t: weighted_distances_from(graph, t) for t in targets}
    pairs = [(t, s) for t in targets for s in sources]
    stretch = max_stretch_of_table(truth, table.estimates, pairs=pairs)

    lower = shortest_paths_lower_bound(graph, len(sources))
    return {
        "graph": spec.label(),
        "n": n,
        "k": len(sources),
        "l": len(targets),
        "NQ_k": table.nq,
        "rounds (Thm 5, total)": table.metrics.total_rounds,
        "stretch bound": round(1.0 + epsilon, 3),
        "stretch measured": round(stretch, 3),
        "existential eOmega(sqrt k)": round(
            ExistentialBounds.ksp_lower_bound(len(sources)), 1
        ),
        "universal LB (Thm 11)": round(lower.rounds, 2),
    }


# ----------------------------------------------------------------------
# Table 4: SSSP
# ----------------------------------------------------------------------
def run_table4_sssp(
    spec: GraphSpec, *, epsilon: float = 0.25, seed: int = 0
) -> Dict[str, Any]:
    """One Table 4 row: Theorem 13 SSSP vs. the prior-work bounds."""
    graph = assign_random_weights(generate_graph(spec), max_weight=16, seed=seed)
    n = graph.number_of_nodes()
    source = sorted(graph.nodes, key=str)[0]
    sim = _fresh_simulator(graph, hybrid0=True, seed=seed)
    result = ApproxSSSP(sim, source, epsilon=epsilon).run()
    truth = weighted_distances_from(graph, source)
    worst = 1.0
    for node, true_distance in truth.items():
        if true_distance == 0:
            continue
        worst = max(worst, result.distances[node] / true_distance)
    return {
        "graph": spec.label(),
        "n": n,
        "rounds (Thm 13, total)": result.metrics.total_rounds,
        "stretch bound": round(1.0 + epsilon, 3),
        "stretch measured": round(worst, 3),
        "prior eO(n^{1/2}) [AG21a]": round(ExistentialBounds.sssp_ag21(n), 1),
        "prior eO(n^{5/17}) [CHLP21b]": round(ExistentialBounds.sssp_chlp21(n), 1),
        "prior eO(n^{1/3}) [AHK+20]": round(ExistentialBounds.sssp_ahk20(n), 1),
    }


# ----------------------------------------------------------------------
# Figure 1: k-SSP complexity landscape
# ----------------------------------------------------------------------
def run_fig1_ksp_point(
    spec: GraphSpec, beta: float, *, epsilon: float = 0.25, seed: int = 0
) -> Dict[str, Any]:
    """One Figure 1 point: k = ceil(n^beta) sources, constant-stretch k-SSP."""
    graph = assign_random_weights(generate_graph(spec), max_weight=8, seed=seed)
    n = graph.number_of_nodes()
    k = max(1, min(n, int(math.ceil(n**beta))))
    rng = random.Random(seed)
    sources = rng.sample(sorted(graph.nodes, key=str), k)

    sim = _fresh_simulator(graph, hybrid0=False, seed=seed)
    result = KSourceShortestPaths(
        sim, sources, epsilon=epsilon, sources_in_skeleton=True, seed=seed
    ).run()

    truth = {s: weighted_distances_from(graph, s) for s in sources}
    worst = 1.0
    for node in graph.nodes:
        for s in sources:
            true_distance = truth[s].get(node, math.inf)
            if true_distance in (0, math.inf):
                continue
            worst = max(worst, result.estimate(node, s) / true_distance)
    return {
        "graph": spec.label(),
        "n": n,
        "beta": round(beta, 3),
        "k": k,
        "rounds (Thm 14, total)": result.metrics.total_rounds,
        "stretch measured": round(worst, 3),
        "predicted exponent (beta/2)": round(
            TheoryPredictions.fig1_expected_exponent_const_approx(beta), 3
        ),
        "prior exact [CHLP21a]": round(ExistentialBounds.ksp_chlp21(n, k), 1),
        "lower bound sqrt(k)": round(ExistentialBounds.ksp_lower_bound(k), 1),
    }


def fit_fig1_exponent(points: Sequence[Dict[str, Any]]) -> float:
    """Fit the rounds-vs-k exponent across a sweep of Figure 1 points."""
    ks = [float(point["k"]) for point in points]
    rounds = [float(point["rounds (Thm 14, total)"]) for point in points]
    exponent, _ = fit_power_law_exponent(ks, rounds)
    return exponent


# ----------------------------------------------------------------------
# Figure 2: broadcast structure
# ----------------------------------------------------------------------
def run_fig2_broadcast_structure(spec: GraphSpec, k: int, *, seed: int = 0) -> Dict[str, Any]:
    """Figure 2 / Lemma 3.5 structural check: cluster sizes and weak diameters."""
    graph = generate_graph(spec)
    n = graph.number_of_nodes()
    log_n = log2_ceil(max(n, 2))
    nq = max(1, neighborhood_quality(graph, k))
    clustering = nq_clustering(graph, k, nq=nq)
    sizes = [len(cluster) for cluster in clustering.clusters]
    weak_diameters = [
        weak_diameter(graph, cluster.members) for cluster in clustering.clusters
    ]
    return {
        "graph": spec.label(),
        "n": n,
        "k": k,
        "NQ_k": nq,
        "clusters": len(clustering.clusters),
        "min size": min(sizes),
        "max size": max(sizes),
        "size bound [k/NQ, 2k/NQ]": f"[{k / nq:.1f}, {2 * k / nq:.1f}]",
        "max weak diameter": max(weak_diameters),
        "weak diameter bound": 4 * nq * log_n,
    }


# ----------------------------------------------------------------------
# NQ_k on special graph families (Theorems 15 - 17)
# ----------------------------------------------------------------------
def run_nq_family_point(spec: GraphSpec, k: int) -> Dict[str, Any]:
    """One NQ-vs-theory point for Theorems 15/16."""
    graph = generate_graph(spec)
    n = graph.number_of_nodes()
    d = diameter(graph)
    measured = neighborhood_quality(graph, k)
    if spec.family in ("path", "cycle"):
        predicted = TheoryPredictions.nq_path_or_cycle(k, d)
        reference = "Thm 15: min(sqrt k, D)"
    elif spec.family in ("grid", "torus"):
        dim = spec.kwargs.get("dim", 2)
        predicted = TheoryPredictions.nq_grid(k, int(dim), d)
        reference = f"Thm 16: min(k^(1/{int(dim) + 1}), D)"
    else:
        predicted = TheoryPredictions.nq_upper_bound(k, d)
        reference = "Lemma 3.6: min(sqrt k, D)"
    return {
        "graph": spec.label(),
        "n": n,
        "D": d,
        "k": k,
        "NQ_k measured": measured,
        "NQ_k predicted": round(predicted, 2),
        "reference": reference,
        "upper bound min(D, sqrt k)": round(TheoryPredictions.nq_upper_bound(k, d), 2),
        "lower bound sqrt(Dk/3n)": round(TheoryPredictions.nq_lower_bound(k, d, n), 2),
    }


def run_clustering_scale_point(
    spec: GraphSpec, k: float, *, check_bounds: bool = True
) -> Dict[str, Any]:
    """One large-scale Lemma 3.5 clustering row: construction timed end to end.

    Exercises the weighted analytics engine at production scale: the NQ_k
    evaluation, the flat ruling-set growth, and the single closest-ruler
    sweep of :func:`~repro.core.clustering.nq_clustering` all run on one
    shared :class:`~repro.graphs.index.GraphIndex`.  With ``check_bounds``
    the row also verifies the Lemma 3.5 size bounds and reports the maximum
    weak cluster diameter (one shared-index BFS per cluster member).
    """
    graph = generate_graph(spec)
    n = graph.number_of_nodes()
    nq = max(1, neighborhood_quality(graph, k))
    start = time.perf_counter()
    clustering = nq_clustering(graph, k, nq=nq)
    elapsed = time.perf_counter() - start
    sizes = [len(cluster) for cluster in clustering.clusters]
    row: Dict[str, Any] = {
        "graph": spec.label(),
        "n": n,
        "k": k,
        "NQ_k": nq,
        "clusters": len(clustering.clusters),
        "min size": min(sizes),
        "max size": max(sizes),
        "clustering seconds": round(elapsed, 3),
    }
    if check_bounds:
        log_n = log2_ceil(max(n, 2))
        row["max weak diameter"] = clustering.max_weak_diameter(graph)
        row["weak diameter bound"] = 4 * nq * log_n
        row["size bound [k/NQ, 2k/NQ]"] = f"[{k / nq:.1f}, {2 * k / nq:.1f}]"
    return row


def run_nq_scale_point(
    spec: GraphSpec, ks: Sequence[float], *, with_diameter: bool = False
) -> Dict[str, Any]:
    """One large-scale NQ row: the full ``NQ_k`` profile of one graph, timed.

    Exercises the frontier-based analytics engine (:mod:`repro.graphs.index`)
    at production scale: one shared early-terminating exploration per node
    answers every workload in ``ks``.  ``with_diameter`` additionally reports
    the exact hop diameter (cheap through the index's iFUB search on path- and
    tree-like families; leave it off for cycles, whose antipodal symmetry
    defeats eccentricity pruning).
    """
    graph = generate_graph(spec)
    n = graph.number_of_nodes()
    start = time.perf_counter()
    profile = nq_profile(graph, list(ks))
    elapsed = time.perf_counter() - start
    row: Dict[str, Any] = {
        "graph": spec.label(),
        "n": n,
        "NQ profile seconds": round(elapsed, 2),
    }
    if with_diameter:
        start = time.perf_counter()
        row["D"] = diameter(graph)
        row["D seconds"] = round(time.perf_counter() - start, 2)
    for k in ks:
        row[f"NQ_{k}"] = profile[k]
    return row
