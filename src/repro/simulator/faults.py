"""Declarative fault injection for the round engine.

The paper's HYBRID-model algorithms assume a fault-free synchronous network;
this module opens the crash/recovery and lossy-network scenario space on top
of the same engine.  Faults are described *declaratively* by a seeded
:class:`FaultSchedule` — crash/recovery windows per node, per-mode message
drop probabilities, global- and per-node capacity degradation windows, and
link-failure windows — and enacted by a :class:`FaultState` that
:meth:`~repro.simulator.network.HybridSimulator.advance_round` consults:

* **Crashes** — a crashed node neither sends nor receives: every record whose
  sender or receiver is crashed in the delivery round is dropped (and counted
  in :attr:`~repro.simulator.metrics.RoundMetrics.dropped_messages`).  The
  round engine additionally masks crashed endpoints out of the send/receive
  columns *before* the scheduler runs (see
  :func:`repro.simulator.engine.resilient_batched_global_exchange`), so
  retransmittable traffic never wastes budget on dead endpoints.
* **Message drops** — each record surviving the crash filter is dropped
  independently with the per-mode probability, decided by a :class:`random.
  Random` derived deterministically from ``(schedule.seed, round, mode)``.
  Fault runs are therefore replayable bit-for-bit from ``(seed, schedule)``
  alone, on either array backend.
* **Capacity degradation** — active windows multiply the per-node global
  budget.  The *global* factor flows through
  :meth:`~repro.simulator.network.HybridSimulator.global_budget_words` and
  hence feeds the two-tier scheduler directly (degraded rounds are planned
  with the degraded budget); *per-node* factors tighten the capacity sweep of
  ``advance_round`` for the affected nodes only.
* **Link failures** — local-mode records crossing a failed edge during the
  window are dropped like lossy messages.

The hard invariant of the whole layer: an **empty** schedule installs no
:class:`FaultState` at all (``HybridSimulator.fault_state is None``), so every
engine remains token-for-token schedule-identical to
``_reference_shard_transfers`` — the identity property suites pin this.

Capacity accounting under faults is *attempt-based*: a dropped message still
charged its sender's (and the addressed receiver's) budget in the round it was
submitted — losing a message does not refund the bandwidth spent sending it.
Analytic round charges (the DESIGN.md substitution policy) are likewise not
scaled by fault windows; faults only act on physically simulated traffic.
"""

from __future__ import annotations

import dataclasses
import random
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

__all__ = [
    "CrashEvent",
    "LinkFailure",
    "CapacityDegradation",
    "FaultSchedule",
    "FaultState",
]

#: Sentinel for "until the end of the simulation" in window end fields.
_FOREVER: Optional[int] = None


def _check_window(start: int, end: Optional[int], what: str) -> None:
    if start < 0:
        raise ValueError(f"{what}: start round must be non-negative, got {start}")
    if end is not None and end <= start:
        raise ValueError(
            f"{what}: end round {end} must be after start round {start} "
            f"(use None for an open-ended window)"
        )


@dataclasses.dataclass(frozen=True)
class CrashEvent:
    """Node ``node`` is crashed during rounds ``[crash_round, recover_round)``.

    ``recover_round=None`` means the node never recovers.  ``node`` is
    addressed as a simulator **node index** (a position in the deterministic
    :attr:`~repro.simulator.network.HybridSimulator.nodes` order), matching
    the id-native plane representation the engine schedules in.
    """

    node: int
    crash_round: int
    recover_round: Optional[int] = _FOREVER

    def __post_init__(self) -> None:
        if self.node < 0:
            raise ValueError(f"crash event: node index must be non-negative, got {self.node}")
        _check_window(self.crash_round, self.recover_round, "crash event")

    def crashed_at(self, round_index: int) -> bool:
        if round_index < self.crash_round:
            return False
        return self.recover_round is None or round_index < self.recover_round


@dataclasses.dataclass(frozen=True)
class LinkFailure:
    """The local edge ``{u, v}`` is down during ``[start_round, end_round)``.

    Endpoints are node indices; the failure is symmetric (both directions of
    the edge drop their records while the window is active).

    ``permanent=True`` upgrades the window-scoped outage to a real topology
    edit: when the window closes, the simulator *commits* the failure as an
    edge deletion through :class:`repro.graphs.mutation.GraphMutator` — the
    edge is gone from the graph itself (version stamp bumped, analytics index
    patched incrementally, simulator adjacency caches resynchronised), and
    later dissemination/APSP runs see the churned topology.  A permanent
    failure therefore requires a *finite* ``end_round`` (an open-ended window
    already drops everything forever and has no close to commit at); see
    ``HybridSimulator.advance_round`` / ``committed_link_removals``.
    """

    u: int
    v: int
    start_round: int = 0
    end_round: Optional[int] = _FOREVER
    permanent: bool = False

    def __post_init__(self) -> None:
        if self.u < 0 or self.v < 0:
            raise ValueError("link failure: node indices must be non-negative")
        if self.u == self.v:
            raise ValueError("link failure: endpoints must differ")
        _check_window(self.start_round, self.end_round, "link failure")
        if self.permanent and self.end_round is None:
            raise ValueError(
                "link failure: permanent=True requires a finite end_round "
                "(the deletion is committed when the window closes; an "
                "open-ended window already drops the edge forever)"
            )

    def active_at(self, round_index: int) -> bool:
        if round_index < self.start_round:
            return False
        return self.end_round is None or round_index < self.end_round


@dataclasses.dataclass(frozen=True)
class CapacityDegradation:
    """The global budget is multiplied by ``factor`` during the window.

    ``node=None`` degrades every node (the factor reaches the scheduler
    through :meth:`HybridSimulator.global_budget_words`); a specific node
    index degrades only that node's capacity sweep.  Factors multiply when
    windows overlap; the effective per-round budget never drops below one
    word.
    """

    factor: float
    start_round: int = 0
    end_round: Optional[int] = _FOREVER
    node: Optional[int] = None

    def __post_init__(self) -> None:
        if not 0.0 < self.factor <= 1.0:
            raise ValueError(
                f"capacity degradation: factor must lie in (0, 1], got {self.factor}"
            )
        if self.node is not None and self.node < 0:
            raise ValueError("capacity degradation: node index must be non-negative")
        _check_window(self.start_round, self.end_round, "capacity degradation")

    def active_at(self, round_index: int) -> bool:
        if round_index < self.start_round:
            return False
        return self.end_round is None or round_index < self.end_round


@dataclasses.dataclass(frozen=True)
class FaultSchedule:
    """A declarative, seeded description of every fault a run should suffer.

    The default-constructed schedule is **empty** (:meth:`is_empty` is true):
    installing it on a simulator is exactly equivalent to installing no
    schedule at all — no fault state is created and every schedule stays
    bit-identical to the fault-free reference.  ``seed`` drives only the
    message-drop randomness; two runs with the same ``(seed, schedule)``
    replay identically.
    """

    seed: int = 0
    crashes: Tuple[CrashEvent, ...] = ()
    link_failures: Tuple[LinkFailure, ...] = ()
    degradations: Tuple[CapacityDegradation, ...] = ()
    global_drop_rate: float = 0.0
    local_drop_rate: float = 0.0

    def __post_init__(self) -> None:
        for rate, what in (
            (self.global_drop_rate, "global_drop_rate"),
            (self.local_drop_rate, "local_drop_rate"),
        ):
            if not 0.0 <= rate < 1.0:
                raise ValueError(f"{what} must lie in [0, 1), got {rate}")
        # Accept (and normalise) lists for ergonomic construction.
        for field, cls in (
            ("crashes", CrashEvent),
            ("link_failures", LinkFailure),
            ("degradations", CapacityDegradation),
        ):
            value = getattr(self, field)
            if not isinstance(value, tuple):
                object.__setattr__(self, field, tuple(value))
            for event in getattr(self, field):
                if not isinstance(event, cls):
                    raise TypeError(
                        f"{field} entries must be {cls.__name__}, got {type(event).__name__}"
                    )

    def is_empty(self) -> bool:
        """Whether this schedule injects no faults at all."""
        return (
            not self.crashes
            and not self.link_failures
            and not self.degradations
            and self.global_drop_rate == 0.0
            and self.local_drop_rate == 0.0
        )

    def horizon(self) -> int:
        """First round from which the fault pattern is stable.

        The maximum finite window boundary over all events: from this round
        on, no node crashes or recovers, no link changes state and no
        degradation window opens or closes (persistent drop *rates* have no
        horizon — they act identically in every round).  Open-ended windows
        contribute their start round: the state they establish is already
        stable once entered.
        """
        horizon = 0
        for crash in self.crashes:
            horizon = max(
                horizon,
                crash.recover_round if crash.recover_round is not None else crash.crash_round,
            )
        for failure in self.link_failures:
            horizon = max(
                horizon,
                failure.end_round if failure.end_round is not None else failure.start_round,
            )
        for degradation in self.degradations:
            horizon = max(
                horizon,
                degradation.end_round
                if degradation.end_round is not None
                else degradation.start_round,
            )
        return horizon

    def forever_crashed(self) -> FrozenSet[int]:
        """Node indices with an open-ended crash and no later recovery."""
        # Crash windows union over events, so a single open-ended window makes
        # the node crashed in every later round whatever other windows exist.
        return frozenset(
            crash.node for crash in self.crashes if crash.recover_round is None
        )


class FaultState:
    """Runtime fault oracle consulted by the simulator each round.

    Built by the simulator from a non-empty :class:`FaultSchedule`; all
    queries are by simulator node index and round number.  Per-round crash
    sets and degradation factors are cached (schedules are tiny; rounds are
    many).
    """

    __slots__ = (
        "schedule",
        "n",
        "_crash_cache",
        "_crash_arr_cache",
        "_factor_cache",
        "_node_factor_cache",
        "_link_cache",
        "_link_arr_cache",
        "_has_node_degradations",
        "_pending_permanent",
    )

    def __init__(self, schedule: FaultSchedule, n: int) -> None:
        if schedule.is_empty():
            raise ValueError(
                "FaultState is only built for non-empty schedules; an empty "
                "schedule must install no fault state at all"
            )
        for crash in schedule.crashes:
            if crash.node >= n:
                raise ValueError(
                    f"crash event addresses node index {crash.node} but the "
                    f"network has only {n} nodes"
                )
        for failure in schedule.link_failures:
            if failure.u >= n or failure.v >= n:
                raise ValueError("link failure addresses a node index out of range")
        for degradation in schedule.degradations:
            if degradation.node is not None and degradation.node >= n:
                raise ValueError("capacity degradation addresses a node index out of range")
        self.schedule = schedule
        self.n = n
        self._crash_cache: Dict[int, FrozenSet[int]] = {}
        self._crash_arr_cache: Dict[int, object] = {}
        self._factor_cache: Dict[int, float] = {}
        self._node_factor_cache: Dict[int, Dict[int, float]] = {}
        self._link_cache: Dict[int, FrozenSet[int]] = {}
        self._link_arr_cache: Dict[int, object] = {}
        self._has_node_degradations = any(
            degradation.node is not None for degradation in schedule.degradations
        )
        # Permanent link failures awaiting their window close, ordered by
        # closing round (ties by endpoints for determinism).  The simulator
        # drains this via take_permanent_closures after each advanced round;
        # the state is per-FaultState, so one frozen schedule shared by many
        # simulators commits independently in each.
        self._pending_permanent: List[LinkFailure] = sorted(
            (f for f in schedule.link_failures if f.permanent),
            key=lambda f: (f.end_round, f.u, f.v),
        )

    # ------------------------------------------------------------------
    # Crashes
    # ------------------------------------------------------------------
    def crashed_indices(self, round_index: int) -> FrozenSet[int]:
        """Node indices crashed during ``round_index`` (cached per round)."""
        cached = self._crash_cache.get(round_index)
        if cached is None:
            cached = frozenset(
                crash.node
                for crash in self.schedule.crashes
                if crash.crashed_at(round_index)
            )
            self._crash_cache[round_index] = cached
        return cached

    def is_crashed(self, node_index: int, round_index: int) -> bool:
        return node_index in self.crashed_indices(round_index)

    def crashed_index_array(self, np, round_index: int):
        """:meth:`crashed_indices` as a **sorted** int64 array (cached).

        The vectorised plane fault filter probes crash membership with one
        ``searchsorted`` sweep per token column; building (and sorting) the
        array once per round keeps that probe allocation-free across the
        round's batches.
        """
        cached = self._crash_arr_cache.get(round_index)
        if cached is None:
            crashed = self.crashed_indices(round_index)
            cached = np.fromiter(crashed, dtype=np.int64, count=len(crashed))
            cached.sort()
            self._crash_arr_cache[round_index] = cached
        return cached

    # ------------------------------------------------------------------
    # Capacity degradation
    # ------------------------------------------------------------------
    def global_capacity_factor(self, round_index: int) -> float:
        """Product of all node-wide degradation factors active this round."""
        cached = self._factor_cache.get(round_index)
        if cached is None:
            cached = 1.0
            for degradation in self.schedule.degradations:
                if degradation.node is None and degradation.active_at(round_index):
                    cached *= degradation.factor
            self._factor_cache[round_index] = cached
        return cached

    def degraded_budget(self, base_budget: int, round_index: int) -> int:
        """The node-wide budget after degradation (never below one word)."""
        factor = self.global_capacity_factor(round_index)
        if factor >= 1.0:
            return base_budget
        return max(1, int(base_budget * factor))

    def node_capacity_factors(self, round_index: int) -> Dict[int, float]:
        """Per-node degradation factors active this round (may be empty).

        Only *node-scoped* windows appear here; the node-wide factor is
        already folded into :meth:`degraded_budget`.
        """
        if not self._has_node_degradations:
            return {}
        cached = self._node_factor_cache.get(round_index)
        if cached is None:
            cached = {}
            for degradation in self.schedule.degradations:
                if degradation.node is not None and degradation.active_at(round_index):
                    cached[degradation.node] = (
                        cached.get(degradation.node, 1.0) * degradation.factor
                    )
            self._node_factor_cache[round_index] = cached
        return cached

    # ------------------------------------------------------------------
    # Link failures
    # ------------------------------------------------------------------
    def failed_edge_keys(self, round_index: int) -> FrozenSet[int]:
        """Directed flat ``u * n + v`` keys of edges down this round (cached)."""
        cached = self._link_cache.get(round_index)
        if cached is None:
            n = self.n
            keys = set()
            for failure in self.schedule.link_failures:
                if failure.active_at(round_index):
                    keys.add(failure.u * n + failure.v)
                    keys.add(failure.v * n + failure.u)
            cached = frozenset(keys)
            self._link_cache[round_index] = cached
        return cached

    def failed_edge_key_array(self, np, round_index: int):
        """:meth:`failed_edge_keys` as a **sorted** int64 array (cached).

        The directed ``u * n + v`` twin of :meth:`crashed_index_array`, for
        the vectorised plane fault filter's edge probe.
        """
        cached = self._link_arr_cache.get(round_index)
        if cached is None:
            keys = self.failed_edge_keys(round_index)
            cached = np.fromiter(keys, dtype=np.int64, count=len(keys))
            cached.sort()
            self._link_arr_cache[round_index] = cached
        return cached

    def take_permanent_closures(self, round_index: int) -> List[Tuple[int, int]]:
        """Drain permanent failures whose window has closed by ``round_index``.

        Returns the ``(u, v)`` index pairs of every ``permanent=True`` failure
        with ``end_round <= round_index`` that has not been returned before,
        in deterministic ``(end_round, u, v)`` order — each closure is handed
        out exactly once, so the simulator commits each deletion exactly once
        however many rounds it advances past the window.
        """
        pending = self._pending_permanent
        if not pending or pending[0].end_round > round_index:
            return []
        cut = 0
        while cut < len(pending) and pending[cut].end_round <= round_index:
            cut += 1
        closed = pending[:cut]
        del pending[:cut]
        return [(failure.u, failure.v) for failure in closed]

    # ------------------------------------------------------------------
    # Message drops
    # ------------------------------------------------------------------
    def drop_rate(self, mode: str) -> float:
        if mode == "global":
            return self.schedule.global_drop_rate
        if mode == "local":
            return self.schedule.local_drop_rate
        raise ValueError(f"unknown mode {mode!r}")

    def round_rng(self, round_index: int, mode: str) -> random.Random:
        """The drop-decision RNG for ``(round, mode)``.

        Derived deterministically from the schedule seed alone, so fault runs
        replay bit-for-bit from ``(seed, schedule)`` — independent of the
        array backend, wall clock, or anything else in the process.  One
        fresh generator per (round, mode) keeps the draw sequence aligned
        with delivery order even when a round carries traffic in both modes.
        """
        mode_salt = 0 if mode == "global" else 1
        return random.Random(
            (self.schedule.seed * 2_654_435_761 + round_index * 40_503 + mode_salt)
            & 0xFFFFFFFFFFFF
        )


def crash_fraction_schedule(
    n: int,
    fraction: float,
    *,
    seed: int = 0,
    crash_round: int = 0,
    recover_round: Optional[int] = None,
    drop_rate: float = 0.0,
    exclude: Sequence[int] = (),
) -> FaultSchedule:
    """Convenience builder: crash a seeded random ``fraction`` of the nodes.

    ``exclude`` protects specific node indices (e.g. the holders of unique
    tokens) from being picked.  The picked set is a deterministic function of
    ``(n, fraction, seed, exclude)``; the same seed also drives the message
    drops, so one ``(seed, schedule)`` pair pins the entire fault trajectory.
    """
    if not 0.0 <= fraction < 1.0:
        raise ValueError(f"fraction must lie in [0, 1), got {fraction}")
    eligible = [index for index in range(n) if index not in set(exclude)]
    count = min(len(eligible), int(round(n * fraction)))
    rng = random.Random(seed * 1_000_003 + n)
    picked = sorted(rng.sample(eligible, count)) if count else []
    crashes: List[CrashEvent] = [
        CrashEvent(node=node, crash_round=crash_round, recover_round=recover_round)
        for node in picked
    ]
    return FaultSchedule(
        seed=seed,
        crashes=tuple(crashes),
        global_drop_rate=drop_rate,
    )


__all__.append("crash_fraction_schedule")
