"""Round-based simulator of the HYBRID(lambda, gamma) distributed model.

See :class:`repro.simulator.network.HybridSimulator` for the main entry point
and :class:`repro.simulator.config.ModelConfig` for the model zoo (HYBRID,
HYBRID_0, LOCAL, CONGEST, NCC, NCC_0, Congested Clique).
"""

from repro.simulator.config import IdentifierRegime, ModelConfig, WORD_BITS, log2_ceil, word_bits
from repro.simulator.errors import (
    CapacityExceededError,
    LocalBandwidthExceededError,
    NotANeighborError,
    RoundLifecycleError,
    SimulatorError,
    UnknownIdentifierError,
    UnknownNodeError,
)
from repro.simulator.messages import GLOBAL_MODE, LOCAL_MODE, Message, payload_words
from repro.simulator.knowledge import KnowledgeTracker
from repro.simulator.metrics import ChargeRecord, RoundMetrics
from repro.simulator.faults import (
    CapacityDegradation,
    CrashEvent,
    FaultSchedule,
    FaultState,
    LinkFailure,
    crash_fraction_schedule,
)
from repro.simulator.network import BatchRecord, HybridSimulator, node_sort_key
from repro.simulator.engine import (
    BatchAlgorithm,
    ExchangeTag,
    GlobalTriple,
    PhaseRecord,
    ResilientExchangeResult,
    TokenPlane,
    batched_global_exchange,
    plan_token_rounds,
    resilient_batched_global_exchange,
    shard_transfers,
)

__all__ = [
    "IdentifierRegime",
    "ModelConfig",
    "WORD_BITS",
    "log2_ceil",
    "word_bits",
    "SimulatorError",
    "NotANeighborError",
    "UnknownIdentifierError",
    "CapacityExceededError",
    "LocalBandwidthExceededError",
    "RoundLifecycleError",
    "UnknownNodeError",
    "Message",
    "payload_words",
    "LOCAL_MODE",
    "GLOBAL_MODE",
    "KnowledgeTracker",
    "ChargeRecord",
    "RoundMetrics",
    "CapacityDegradation",
    "CrashEvent",
    "FaultSchedule",
    "FaultState",
    "LinkFailure",
    "crash_fraction_schedule",
    "HybridSimulator",
    "BatchRecord",
    "node_sort_key",
    "BatchAlgorithm",
    "ExchangeTag",
    "GlobalTriple",
    "PhaseRecord",
    "ResilientExchangeResult",
    "TokenPlane",
    "batched_global_exchange",
    "plan_token_rounds",
    "resilient_batched_global_exchange",
    "shard_transfers",
]
