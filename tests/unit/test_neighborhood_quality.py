"""Unit tests for the neighborhood-quality parameter NQ_k (Section 3)."""

import math

import pytest

from repro.core.neighborhood_quality import (
    DistributedNQComputation,
    neighborhood_quality,
    neighborhood_quality_of_node,
    neighborhood_quality_per_node,
    nq_profile,
)
from repro.graphs.generators import (
    complete_graph,
    cycle_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.graphs.properties import diameter
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator


class TestDefinition:
    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            neighborhood_quality(path_graph(5), 0)

    def test_single_node_graph(self):
        assert neighborhood_quality(path_graph(1), 5) == 0

    def test_complete_graph_is_one(self):
        # |B_1(v)| = n >= k / 1 for any k <= n.
        assert neighborhood_quality(complete_graph(10), 10) == 1

    def test_star_graph_small_and_large_k(self):
        # A leaf's 1-ball has only 2 nodes, so k = 2 is satisfied at t = 1 but
        # k = 20 needs t = 2 (the whole star).
        assert neighborhood_quality(star_graph(20), 2) == 1
        assert neighborhood_quality(star_graph(20), 20) == 2

    def test_k_one_is_always_one_or_less(self):
        for graph in (path_graph(10), grid_graph(4, 2), cycle_graph(9)):
            assert neighborhood_quality(graph, 1) <= 1

    def test_path_middle_vs_end_node(self):
        # End nodes of a path have the smallest balls, so they maximize NQ_k(v).
        g = path_graph(50)
        per_node = neighborhood_quality_per_node(g, 40)
        assert per_node[0] == max(per_node.values())
        assert per_node[25] <= per_node[0]

    def test_definition_threshold_exact(self):
        # On a path, |B_t(v)| for an interior node is 2t + 1, so NQ_k(v) is the
        # smallest t with 2t + 1 >= k / t, i.e. 2t^2 + t >= k.
        g = path_graph(201)
        v = 100
        for k in (10, 50, 100):
            expected = next(t for t in range(1, 201) if 2 * t * t + t >= k)
            assert neighborhood_quality_of_node(g, k, v) == expected

    def test_capped_by_diameter(self):
        # Tiny diameter, huge k: NQ_k = D.
        g = star_graph(10)
        assert neighborhood_quality(g, 10**6) == diameter(g) == 2

    def test_nq_is_max_over_nodes(self):
        g = path_graph(30)
        per_node = neighborhood_quality_per_node(g, 20)
        assert neighborhood_quality(g, 20) == max(per_node.values())

    def test_profile_matches_individual_calls(self):
        g = grid_graph(5, 2)
        ks = [1, 5, 25, 100]
        profile = nq_profile(g, ks)
        for k in ks:
            assert profile[k] == neighborhood_quality(g, k)

    def test_monotone_in_k(self):
        g = path_graph(64)
        values = [neighborhood_quality(g, k) for k in (2, 8, 32, 64, 128)]
        assert values == sorted(values)


class TestKnownFamilies:
    """Spot checks of Theorems 15/16 magnitudes (full scaling in property tests)."""

    def test_path_sqrt_scaling(self):
        g = path_graph(200)
        nq = neighborhood_quality(g, 100)
        assert 0.3 * math.sqrt(100) <= nq <= 1.5 * math.sqrt(100)

    def test_cycle_sqrt_scaling(self):
        g = cycle_graph(200)
        nq = neighborhood_quality(g, 100)
        assert 0.3 * math.sqrt(100) <= nq <= 1.5 * math.sqrt(100)

    def test_grid_cube_root_scaling(self):
        g = grid_graph(14, 2)  # 196 nodes
        k = 125
        nq = neighborhood_quality(g, k)
        prediction = k ** (1.0 / 3.0)
        assert 0.3 * prediction <= nq <= 3 * prediction

    def test_grid_beats_path_for_same_k(self):
        k = 80
        path_nq = neighborhood_quality(path_graph(100), k)
        grid_nq = neighborhood_quality(grid_graph(10, 2), k)
        assert grid_nq < path_nq


class TestLemma36Bounds:
    def test_upper_bound_min_d_sqrt_k(self):
        for graph in (path_graph(60), grid_graph(7, 2), cycle_graph(40)):
            d = diameter(graph)
            for k in (4, 16, 64):
                nq = neighborhood_quality(graph, k)
                assert nq <= min(d, math.ceil(math.sqrt(k))) + 1

    def test_lower_bound_sqrt_dk_over_3n(self):
        for graph in (path_graph(60), grid_graph(7, 2)):
            n = graph.number_of_nodes()
            d = diameter(graph)
            for k in (4, 16, 64):
                nq = neighborhood_quality(graph, k)
                assert nq > math.sqrt(d * k / (3.0 * n)) - 1


class TestDistributedComputation:
    def test_matches_centralized_on_grid(self):
        g = grid_graph(5, 2)
        k = 20
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        result = DistributedNQComputation(sim, k).run()
        assert result.nq == neighborhood_quality(g, k)

    def test_matches_centralized_on_path(self):
        g = path_graph(30)
        k = 15
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        result = DistributedNQComputation(sim, k).run()
        assert result.nq == neighborhood_quality(g, k)

    def test_per_node_values_at_most_global(self):
        g = grid_graph(4, 2)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        result = DistributedNQComputation(sim, 10).run()
        assert all(value <= result.nq for value in result.per_node.values())

    def test_round_cost_scales_with_nq(self):
        g = path_graph(60)
        k = 40
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        result = DistributedNQComputation(sim, k).run()
        # Lemma 3.3: measured exploration depth equals NQ_k (one local round per
        # depth step).
        assert result.metrics.measured_rounds == result.nq
        assert result.metrics.charged_rounds > 0

    def test_rejects_bad_k(self):
        sim = HybridSimulator(path_graph(4), ModelConfig.hybrid0(), seed=0)
        with pytest.raises(ValueError):
            DistributedNQComputation(sim, 0)
