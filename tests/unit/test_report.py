"""Unit tests for the benchmark report assembler."""

import pathlib

from repro.analysis.report import RESULT_SECTIONS, build_report, write_report


def test_build_report_with_partial_results(tmp_path):
    (tmp_path / "table1_dissemination.md").write_text("### Table 1\n\n| a |\n|---|\n| 1 |\n")
    report = build_report(tmp_path)
    assert "# Measured benchmark results" in report
    assert "| a |" in report
    assert "_not yet generated" in report  # the other sections are marked missing
    # Every configured section appears as a heading.
    for _, heading in RESULT_SECTIONS:
        assert heading in report


def test_write_report_creates_file(tmp_path):
    (tmp_path / "table4_sssp.md").write_text("### Table 4\n\n| n |\n|---|\n| 25 |\n")
    path = write_report(results_dir=tmp_path)
    assert path.exists()
    assert path.parent == tmp_path
    assert "| 25 |" in path.read_text()


def test_write_report_custom_target(tmp_path):
    target = tmp_path / "out" / "report.md"
    path = write_report(output_path=target, results_dir=tmp_path)
    assert path == target
    assert target.exists()


def test_build_report_against_repository_results_dir():
    # Whatever state the real results directory is in, assembling the report
    # must not fail (sections may simply be marked as missing).
    report = build_report()
    assert report.startswith("# Measured benchmark results")
