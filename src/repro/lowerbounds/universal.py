"""Universal lower bounds for dissemination and shortest paths (Section 7).

Lemma 7.2 (the workhorse): on *any* graph ``G`` and for *any* placement of
``k`` tokens, there is a node ``v`` that needs ``eOmega(NQ_k)`` rounds to learn
all tokens, even knowing ``G``.  The proof picks ``v`` with a small ball
(Lemma 3.8: ``|B_r(v)| <= k/r`` for ``r = NQ_k - 1``), walks ``2h + 1`` steps
along a shortest path to find a companion ``w`` with a disjoint ``h``-ball
(``h = floor(r/3) - 1``), argues that one of the two misses at least ``k/2``
tokens, and reduces to the node-communication problem with
``A = V \\ B_h(v)``, ``B = {v}``, ``H(X) = k/2``.

This module constructs that instance explicitly for a given graph and returns
the numeric bound, plus wrappers matching the statements of Theorem 4
(dissemination / aggregation / routing), Theorems 10-12 (shortest paths) and
Corollary 2.1 (BCC simulation).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Hashable, Optional

import networkx as nx

from repro.core.neighborhood_quality import (
    neighborhood_quality,
    neighborhood_quality_per_node,
)
from repro.graphs.properties import ball, hop_distances_from
from repro.lowerbounds.node_communication import NodeCommunicationInstance
from repro.simulator.config import log2_ceil, word_bits

Node = Hashable

__all__ = [
    "UniversalLowerBound",
    "dissemination_lower_bound",
    "routing_lower_bound",
    "shortest_paths_lower_bound",
    "bcc_simulation_lower_bound",
]


@dataclasses.dataclass(frozen=True)
class UniversalLowerBound:
    """A concrete lower-bound evaluation on one graph.

    ``rounds`` is the Lemma 7.1 value of the constructed node-communication
    instance; ``nq`` is the NQ_k value the bound is a surrogate for (the paper's
    statement is eOmega(NQ_k), i.e. ``rounds >= nq / polylog``).
    """

    problem: str
    k: int
    nq: int
    rounds: float
    bottleneck_node: Node
    companion_node: Optional[Node]
    instance: Optional[NodeCommunicationInstance]

    def is_consistent_with_upper_bound(self, measured_rounds: float) -> bool:
        """A sanity relation used by benchmarks: upper bounds must not beat the
        lower bound (lower <= measured), which is trivially monotone but worth
        asserting mechanically across the whole experiment grid."""
        return measured_rounds >= self.rounds - 1e-9


def _argmax_nq(per_node: Dict[Node, int]) -> Node:
    """The Lemma 3.8 witness: the NQ-maximizing node (its balls are small),
    ties broken by smallest string order."""
    return max(sorted(per_node, key=str), key=lambda v: per_node[v])


def _build_lemma_7_2_instance(
    graph: nx.Graph, k: int, gamma_bits: float, success_probability: float
) -> UniversalLowerBound:
    """Construct the Lemma 7.2 node-communication instance and evaluate it."""
    n = graph.number_of_nodes()
    # One early-terminating per-node sweep yields both the Lemma 3.8 witness
    # node and NQ_k(G) (the witness's value, by definition of the argmax).
    per_node = neighborhood_quality_per_node(graph, k)
    v = _argmax_nq(per_node)
    nq = per_node[v]

    r = nq - 1
    if nq < 6 or r < 3:
        # The paper treats NQ_k < 6 as the trivial regime; the bound is then a
        # small constant.
        return UniversalLowerBound(
            problem="lemma-7.2",
            k=k,
            nq=nq,
            rounds=0.0,
            bottleneck_node=v,
            companion_node=None,
            instance=None,
        )

    h = r // 3 - 1
    h = max(1, h)
    # Companion node w at hop distance exactly 2h + 1 from v along a shortest path.
    dist = hop_distances_from(graph, v)
    target_distance = 2 * h + 1
    candidates = [u for u, d in dist.items() if d == target_distance]
    companion = min(candidates, key=str) if candidates else None

    set_b = {v}
    set_a = set(graph.nodes) - ball(graph, v, h)
    if not set_a:
        return UniversalLowerBound(
            problem="lemma-7.2",
            k=k,
            nq=nq,
            rounds=0.0,
            bottleneck_node=v,
            companion_node=companion,
            instance=None,
        )
    entropy = k / 2.0
    instance = NodeCommunicationInstance.build(graph, set_a, set_b, entropy)
    rounds = instance.lower_bound_rounds(gamma_bits, success_probability)
    return UniversalLowerBound(
        problem="lemma-7.2",
        k=k,
        nq=nq,
        rounds=rounds,
        bottleneck_node=v,
        companion_node=companion,
        instance=instance,
    )


def _default_gamma_bits(n: int) -> float:
    """gamma = Theta(log^2 n) bits in the standard HYBRID model."""
    log_n = log2_ceil(max(n, 2))
    return float(log_n * word_bits(n))


def dissemination_lower_bound(
    graph: nx.Graph,
    k: int,
    *,
    gamma_bits: Optional[float] = None,
    success_probability: float = 0.9,
) -> UniversalLowerBound:
    """Theorem 4: k-dissemination / k-aggregation need eOmega(NQ_k) rounds."""
    if k < 1:
        raise ValueError("k must be positive")
    n = graph.number_of_nodes()
    gamma = gamma_bits if gamma_bits is not None else _default_gamma_bits(n)
    bound = _build_lemma_7_2_instance(graph, k, gamma, success_probability)
    return dataclasses.replace(bound, problem="k-dissemination")


def routing_lower_bound(
    graph: nx.Graph,
    k: int,
    l: int,
    *,
    gamma_bits: Optional[float] = None,
    success_probability: float = 0.9,
) -> UniversalLowerBound:
    """Theorem 4 for (k, l)-routing with arbitrary targets (same NQ_k bound)."""
    if l < 1:
        raise ValueError("l must be positive")
    bound = dissemination_lower_bound(
        graph, k, gamma_bits=gamma_bits, success_probability=success_probability
    )
    return dataclasses.replace(bound, problem=f"({k},{l})-routing")


def shortest_paths_lower_bound(
    graph: nx.Graph,
    k: int,
    *,
    weighted: bool = True,
    gamma_bits: Optional[float] = None,
    success_probability: float = 0.9,
) -> UniversalLowerBound:
    """Theorems 10, 11, 12: (k, l)-SP / k-SSP need eOmega(NQ_k) rounds.

    The unweighted HYBRID_0 bound (Theorem 10) and the weighted HYBRID bounds
    (Theorems 11, 12) all reduce to the same Lemma 7.2 instance; only the
    entropy bookkeeping differs (k identifier tokens vs. a k-bit random string),
    so the numeric value returned is identical and tagged with the problem name.
    """
    bound = dissemination_lower_bound(
        graph, k, gamma_bits=gamma_bits, success_probability=success_probability
    )
    name = "weighted (k,l)-SP" if weighted else "unweighted k-SSP"
    return dataclasses.replace(bound, problem=name)


def bcc_simulation_lower_bound(
    graph: nx.Graph,
    *,
    gamma_bits: Optional[float] = None,
    success_probability: float = 0.9,
) -> UniversalLowerBound:
    """Corollary 2.1: simulating one BCC round needs eOmega(NQ_n) rounds."""
    n = graph.number_of_nodes()
    bound = dissemination_lower_bound(
        graph, n, gamma_bits=gamma_bits, success_probability=success_probability
    )
    return dataclasses.replace(bound, problem="BCC-round simulation")
