"""Table 2 reproduction: all-pairs shortest paths.

Paper claim (Table 2): APSP is approximable in eO(NQ_n) rounds — (1+eps) on
unweighted graphs (Theorem 6), O(log n / log log n) deterministically on
weighted graphs (Theorem 7 / Corollary 2.3) — and with constant stretch in
eO(n^{1/4} NQ_n^{1/2}) rounds (Theorem 8), versus the existential eTheta(sqrt n)
of [AHK+20, KS20, AG21a]; the universal lower bound is eOmega(NQ_n).

The benchmark runs all three of our APSP algorithms plus the [KS20]-style
sqrt(n)-skeleton baseline on the graph grid, records rounds and *measured*
stretch (against Dijkstra/BFS ground truth), and asserts (a) every stretch
bound holds, (b) the universal lower bound never exceeds the measured rounds,
and (c) on low-NQ graphs NQ_n is polynomially below sqrt(n) (the gap the
universal algorithms exploit).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.experiments import run_table2_apsp
from repro.baselines.centralized import exact_apsp, max_stretch_of_table
from repro.baselines.naive import SqrtNSkeletonAPSP
from repro.graphs.generators import GraphSpec, generate_graph
from repro.graphs.weighted import assign_random_weights
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator

SPECS = [
    GraphSpec.of("grid", side=7, dim=2),
    GraphSpec.of("erdos_renyi", n=64, p=0.1, seed=5),
    GraphSpec.of("path", n=64),
    GraphSpec.of("star", n=64),
]


def _apsp_rows():
    rows = []
    for spec in SPECS:
        rows.extend(run_table2_apsp(spec, epsilon=0.5, alpha=1, seed=3))
    return rows


def test_table2_apsp_universal_algorithms(benchmark, save_table):
    rows = benchmark.pedantic(_apsp_rows, rounds=1, iterations=1)
    save_table("table2_apsp", rows, "Table 2 - APSP (Theorems 6, 7, 8)")
    for row in rows:
        assert row["stretch measured"] <= row["stretch bound"] + 1e-6
        assert row["rounds (total)"] >= row["universal LB"]
    # The NQ_n << sqrt(n) gap exists on the star / random-graph rows.
    low_nq_rows = [row for row in rows if row["graph"].startswith("star")]
    assert all(row["NQ_n"] <= math.sqrt(row["n"]) / 2 for row in low_nq_rows)


def _baseline_row():
    spec = GraphSpec.of("grid", side=5, dim=2)
    graph = assign_random_weights(generate_graph(spec), max_weight=9, seed=4)
    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=4)
    estimates = SqrtNSkeletonAPSP(sim, seed=4).run()
    stretch = max_stretch_of_table(exact_apsp(graph), estimates)
    return {
        "graph": spec.label(),
        "algorithm": "[KS20]-style sqrt(n)-skeleton (baseline)",
        "n": graph.number_of_nodes(),
        "rounds (total)": sim.metrics.total_rounds,
        "stretch measured": round(stretch, 3),
    }


def test_table2_existential_baseline(benchmark, save_table):
    row = benchmark.pedantic(_baseline_row, rounds=1, iterations=1)
    save_table("table2_baseline", [row], "Table 2 - existential baseline")
    assert row["stretch measured"] == pytest.approx(1.0, abs=1e-6)
    assert row["rounds (total)"] >= math.sqrt(row["n"])
