"""Universally optimal shortest-paths algorithms (Section 6).

This module implements the four universally optimal distance-computation
results that sit on top of the information-dissemination toolbox:

* :class:`KLShortestPaths` — Theorem 5: (1+eps)-approximate (k, l)-SP in
  ``eO(NQ_k)`` rounds, by solving one SSSP/k-SSP instance per target and then
  reversing the direction of the obtained labels with a (k, l)-routing instance
  (Theorem 3).
* :class:`UnweightedApproxAPSP` — Theorem 6 / Algorithm 3: deterministic
  (1+eps)-approximate APSP on unweighted graphs in ``eO(NQ_n / eps^2)`` rounds,
  via NQ_n-clustering, SSSP from every cluster leader, an ``x``-hop local
  exploration with ``x = 4 NQ_n ceil(log n) / eps``, and a broadcast of every
  node's closest-leader distance.
* :class:`SpannerAPSP` — Theorem 7: deterministic (1 + eps log n)-approximate
  weighted APSP in ``eO(2^{1/eps} NQ_n)`` rounds, by broadcasting a
  ``(2t-1)``-spanner with ``t = ceil(eps log n / 2)``.
* :class:`SkeletonAPSP` — Theorem 8 / Algorithm 4: randomized (4 alpha - 1)-
  approximate weighted APSP in ``eO(n^{1/(3 alpha + 1)} NQ_n^{2/(3 + 1/alpha)}
  + NQ_n)`` rounds, via a skeleton graph, a spanner of the skeleton, and the
  Algorithm 4 combination formula.

Every algorithm returns per-node distance estimate tables plus the metrics of
the simulator run; the distance *values* are computed exactly as the paper's
formulas prescribe (so the stretch observed in the tests is the real output of
the approximation pipeline, not an artefact).

Since the batch-native migration, the whole stack is driven by
:class:`~repro.simulator.engine.BatchAlgorithm`: every Theorem 1 broadcast
(node identifiers, spanner edges, closest-leader / closest-skeleton labels,
and the (k, l)-SP reversal traffic) is *physically simulated* as a
:class:`~repro.core.dissemination.KDissemination` / routing instance riding
the batch messaging engine, with ``engine="batch"`` (default) or
``engine="legacy"`` selecting the transport — both schedule-identical, pinned
by ``tests/unit/test_round_regression.py``.  The centralized all-pairs table
assemblies run as :class:`~repro.graphs.index.GraphIndex` flat-array sweeps:
:class:`UnweightedApproxAPSP` returns a :class:`DenseDistanceTable` whose
``n``-wide rows are materialised on demand from dense BFS rows instead of one
Python-dict BFS per node.
"""

from __future__ import annotations

import math
from array import array
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.core.clustering import Clustering, distributed_nq_clustering
from repro.core.dissemination import KDissemination
from repro.core.neighborhood_quality import neighborhood_quality
from repro.core.routing import KLRouting, RoutingScenario
from repro.core.skeleton import build_skeleton
from repro.core.spanner import distributed_spanner, greedy_spanner
from repro.core.sssp import approx_sssp_distances, sssp_round_cost
from repro.core.ksp import KSourceShortestPaths
from repro.graphs.index import GraphIndex, SSSPRowCache, get_index
from repro.graphs.properties import h_hop_limited_distances, weighted_distances_from
from repro.simulator.config import log2_ceil
from repro.simulator.engine import BatchAlgorithm
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = [
    "DistanceTable",
    "DenseDistanceTable",
    "KLShortestPaths",
    "UnweightedApproxAPSP",
    "SpannerAPSP",
    "SkeletonAPSP",
]


class DistanceTable:
    """Distance estimates produced by an approximate shortest-paths algorithm.

    ``estimates[target][source]`` is the estimate the target node holds for its
    distance to the source node.  ``stretch_bound`` is the guarantee the
    producing theorem promises (used by the tests).

    :meth:`estimate` follows the ``weak_diameter`` contract: querying a target
    the algorithm never computed a row for raises ``KeyError`` (it is a caller
    bug, not a distance), while a source the target's row simply has no finite
    entry for is *unreachable* and yields ``math.inf``.
    """

    def __init__(
        self,
        estimates: Dict[Node, Dict[Node, float]],
        stretch_bound: float,
        metrics: RoundMetrics,
        nq: Optional[int] = None,
    ) -> None:
        self.estimates = estimates
        self.stretch_bound = stretch_bound
        self.metrics = metrics
        self.nq = nq

    def estimate(self, target: Node, source: Node) -> float:
        try:
            row = self.estimates[target]
        except KeyError:
            raise KeyError(f"target {target!r} has no estimate row") from None
        return row.get(source, math.inf)

    def targets(self) -> List[Node]:
        return list(self.estimates)


class DenseDistanceTable(DistanceTable):
    """A :class:`DistanceTable` backed by dense per-target rows.

    Each target's estimates are one flat ``|columns|``-wide sequence of floats
    aligned with a fixed column order, produced lazily by ``row_factory`` from
    the :class:`~repro.graphs.index.GraphIndex` sweeps and cached.  The
    dict-of-dicts :attr:`estimates` view of the base class is materialised on
    first attribute access, so existing consumers (stretch measurement,
    equivalence tests) see exactly the classic representation while all-pairs
    producers avoid building ``n^2`` dict entries they may never read.

    ``row_store`` selects the cached-row container: ``"list"`` keeps plain
    Python lists; ``"array"`` packs each cached row into an
    ``array('d', ...)`` of C doubles — 8 bytes per entry instead of a pointer
    to a boxed float, which shrinks a fully-cached ``n x n`` weighted table
    several-fold.  Values are exactly preserved (Python floats are C
    doubles); indexing and iteration behave identically.

    Query contract (shared with :class:`DistanceTable` and ``weak_diameter``):

    * :meth:`row` / :meth:`estimate` with a target outside :meth:`targets`
      raise ``KeyError`` — a wrong-node query is a caller bug, not a distance.
    * :meth:`estimate` with a source outside :meth:`columns` raises
      ``KeyError`` for the same reason (the dense column universe is known, so
      the query can be rejected instead of silently answered).
    * ``math.inf`` is returned *only* for a genuinely unreachable
      (target, source) pair — a row the algorithm computed whose entry is
      infinite.

    ``index`` (optional) ties the table to the
    :class:`~repro.graphs.index.GraphIndex` its rows derive from: the table
    records the index version at construction and *every* read — including
    reads of rows cached or materialised before a mutation — raises
    :class:`~repro.graphs.index.StaleIndexError` once that index is retired
    or patched past the recorded version.  Without it a consumer holding the
    table across an ``invalidate_index`` / ``GraphMutator`` edit would keep
    reading distances for a graph that no longer exists.
    """

    def __init__(
        self,
        row_nodes: Sequence[Node],
        columns: Sequence[Node],
        row_factory,
        stretch_bound: float,
        metrics: RoundMetrics,
        nq: Optional[int] = None,
        row_store: str = "list",
        index: Optional[GraphIndex] = None,
    ) -> None:
        if row_store not in ("list", "array"):
            raise ValueError("row_store must be 'list' or 'array'")
        self._row_nodes = list(row_nodes)
        self._row_set = set(self._row_nodes)
        self._columns = list(columns)
        self._column_position = {node: i for i, node in enumerate(self._columns)}
        self._row_factory = row_factory
        self._rows: Dict[Node, Sequence[float]] = {}
        self._pack = (lambda row: array("d", row)) if row_store == "array" else None
        self._estimates: Optional[Dict[Node, Dict[Node, float]]] = None
        self.stretch_bound = stretch_bound
        self.metrics = metrics
        self.nq = nq
        self._guard_index = index
        self._guard_version = index.version if index is not None else None

    def _check_guard(self) -> None:
        index = self._guard_index
        if index is not None:
            index.ensure_current(self._guard_version)

    def columns(self) -> List[Node]:
        return list(self._columns)

    def row(self, target: Node) -> Sequence[float]:
        """The dense estimate row of ``target``, aligned with :meth:`columns`."""
        self._check_guard()
        if target not in self._row_set:
            raise KeyError(f"target {target!r} has no estimate row")
        cached = self._rows.get(target)
        if cached is None:
            if self._estimates is not None:
                # The dict view is materialised; read it back instead of
                # re-running the row factory, but keep the row_store packing
                # and the cache — repeated row() reads after materialisation
                # must not rebuild a boxed list per call.
                row_dict = self._estimates[target]
                cached = [row_dict[column] for column in self._columns]
            else:
                cached = self._row_factory(target)
            if self._pack is not None:
                cached = self._pack(cached)
            self._rows[target] = cached
        return cached

    def estimate(self, target: Node, source: Node) -> float:
        self._check_guard()
        position = self._column_position.get(source)
        if position is None:
            raise KeyError(f"source {source!r} is not a column of this table")
        if target not in self._row_set:
            raise KeyError(f"target {target!r} has no estimate row")
        if self._estimates is not None:
            return self._estimates[target][source]
        return self.row(target)[position]

    def targets(self) -> List[Node]:
        return list(self._row_nodes)

    @property
    def estimates(self) -> Dict[Node, Dict[Node, float]]:
        self._check_guard()
        if self._estimates is None:
            columns = self._columns
            rows = self._rows
            # Build uncached rows without retaining them: the dict-of-dicts
            # view supersedes the dense cache, and keeping both would hold two
            # full n^2 copies alive.  From here on ``row()`` / ``estimate()``
            # read the materialised view, so the factory (and the index
            # sweeps its closure pins) can be dropped too.
            self._estimates = {
                target: dict(
                    zip(
                        columns,
                        rows[target] if target in rows else self._row_factory(target),
                    )
                )
                for target in self._row_nodes
            }
            rows.clear()
            self._row_factory = None
        return self._estimates


def _graph_is_unit_weighted(graph: nx.Graph) -> bool:
    """Whether every edge weight is exactly 1 (the unweighted convention)."""
    return all(data.get("weight", 1) == 1 for _, _, data in graph.edges(data=True))


def _identifier_tokens(simulator: HybridSimulator) -> Dict[Node, List[Tuple]]:
    """One Theorem 1 token per node carrying its identifier (k = n)."""
    return {v: [("apsp-id", simulator.id_of(v))] for v in simulator.nodes}


def _edge_tokens(
    simulator: HybridSimulator, edges_graph: nx.Graph, tag: str
) -> Dict[Node, List[Tuple]]:
    """One Theorem 1 token per edge of ``edges_graph`` (k = m*).

    Each edge is held by its smaller-id endpoint; the token carries both
    endpoint identifiers and the edge weight.
    """
    tokens: Dict[Node, List[Tuple]] = {}
    for u, v, data in edges_graph.edges(data=True):
        holder = min(u, v, key=simulator.id_of)
        tokens.setdefault(holder, []).append(
            (tag, simulator.id_of(u), simulator.id_of(v), data.get("weight", 1))
        )
    return tokens


def _label_tokens(
    simulator: HybridSimulator, labels: Dict[Node, Tuple[Node, float]], tag: str
) -> Dict[Node, List[Tuple]]:
    """One Theorem 1 token per node carrying its (label node, distance) pair."""
    return {
        v: [(tag, simulator.id_of(v), simulator.id_of(label), distance)]
        for v, (label, distance) in labels.items()
    }


# ----------------------------------------------------------------------
# Theorem 5: (k, l)-SP
# ----------------------------------------------------------------------
class KLShortestPaths(BatchAlgorithm):
    """Theorem 5: (1+eps)-approximate (k, l)-SP in ``eO(NQ_k)`` rounds.

    Every target in ``targets`` must learn its (approximate) distance to every
    source in ``sources``.  The algorithm solves the shortest-paths problem "in
    reverse" — one (1+eps)-SSSP per target (Theorem 13), or the k-SSP algorithm
    of Theorem 14 when there are many targets — after which each *source* knows
    its distance to each target; a (k, l)-routing instance (Theorem 3) then
    ships each label to the target that needs it.

    The reversal traffic rides :class:`~repro.core.routing.KLRouting` on the
    batch messaging engine; ``engine`` selects the batch or the legacy
    per-message transport for every physically simulated hop.
    """

    def __init__(
        self,
        simulator: HybridSimulator,
        sources: Sequence[Node],
        targets: Sequence[Node],
        *,
        epsilon: float = 0.25,
        seed: Optional[int] = None,
        engine: str = "batch",
    ) -> None:
        super().__init__(simulator, engine=engine)
        if not sources or not targets:
            raise ValueError("sources and targets must be non-empty")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.sources = sorted(set(sources), key=simulator.id_of)
        self.targets = sorted(set(targets), key=simulator.id_of)
        self.epsilon = epsilon
        self.seed = seed
        # Phase state.
        self.nq = 0
        self._reversed_estimates: Dict[Node, Dict[Node, float]] = {}
        self._estimates: Dict[Node, Dict[Node, float]] = {}

    def phases(self):
        return (
            ("parameters", self._phase_parameters),
            ("reverse-sssp", self._phase_reverse_sssp),
            ("reverse-routing", self._phase_reverse_routing),
        )

    def _phase_parameters(self) -> None:
        sim = self.simulator
        k = len(self.sources)
        # Memoised per (graph, k) by the analytics engine; the KLRouting
        # instance below receives it as a hint, so the whole Theorem 5
        # pipeline evaluates NQ_k exactly once.
        self.nq = max(1, neighborhood_quality(sim.graph, max(k, 1)))
        sim.charge_rounds(self.nq, "distributed computation of NQ_k", "Lemma 3.3")

    def _phase_reverse_sssp(self) -> None:
        """Solve l-SSP for the targets acting as SSSP sources ("in reverse")."""
        sim = self.simulator
        l = len(self.targets)
        if l <= max(2, self.nq):
            # First claim of Theorem 5: l sequential SSSP instances.
            for target in self.targets:
                self._reversed_estimates[target] = approx_sssp_distances(
                    sim.graph, target, self.epsilon
                )
                sim.charge_rounds(
                    sssp_round_cost(sim.n, self.epsilon),
                    f"(1+eps)-SSSP from target {target!r}",
                    "Theorem 13 via Theorem 5",
                )
        else:
            # Second claim: one k-SSP instance with the targets as sources.
            ksp = KSourceShortestPaths(
                sim,
                self.targets,
                epsilon=self.epsilon,
                sources_in_skeleton=True,
                seed=self.seed,
                engine=self.engine,
            )
            ksp_result = ksp.run()
            self._reversed_estimates = {
                target: {
                    node: ksp_result.estimate(node, target) for node in sim.nodes
                }
                for target in self.targets
            }

    def _phase_reverse_routing(self) -> None:
        """Each source now knows d~(s, t) for every target; reverse with
        (k, l)-routing (Theorem 3)."""
        sim = self.simulator
        l = len(self.targets)
        messages: Dict[Tuple[Node, Node], float] = {}
        for source in self.sources:
            for target in self.targets:
                messages[(source, target)] = self._reversed_estimates[target].get(
                    source, math.inf
                )
        routing = KLRouting(
            sim,
            messages,
            scenario=RoutingScenario.ARBITRARY_SOURCES_RANDOM_TARGETS
            if l <= self.nq
            else RoutingScenario.RANDOM_SOURCES_RANDOM_TARGETS,
            seed=self.seed,
            nq=self.nq,
            engine=self.engine,
        )
        routing_result = routing.run()
        self._estimates = {
            target: dict(routing_result.delivered.get(target, {}))
            for target in self.targets
        }

    def finish(self) -> DistanceTable:
        return DistanceTable(
            estimates=self._estimates,
            stretch_bound=1.0 + self.epsilon,
            metrics=self.simulator.metrics,
            nq=self.nq,
        )


# ----------------------------------------------------------------------
# Theorem 6: unweighted APSP
# ----------------------------------------------------------------------
class UnweightedApproxAPSP(BatchAlgorithm):
    """Theorem 6 / Algorithm 3: (1+eps)-approximate unweighted APSP in
    ``eO(NQ_n / eps^2)`` rounds, deterministically, in HYBRID_0.

    Both Theorem 1 broadcasts — all node identifiers, and every node's
    (closest leader, distance) pair — are physically simulated
    :class:`~repro.core.dissemination.KDissemination` instances sharing the
    NQ_n evaluation and the Lemma 3.5 clustering of the surrounding
    algorithm; ``engine`` flips them between the batch and the legacy
    per-message transport with identical schedules.  The centralized table
    assembly is dense: cluster-leader SSSP rows and the per-node hop rows are
    flat :class:`~repro.graphs.index.GraphIndex` sweeps, and the resulting
    :class:`DenseDistanceTable` materialises Algorithm 3's estimate rows on
    demand.
    """

    def __init__(
        self,
        simulator: HybridSimulator,
        *,
        epsilon: float = 0.5,
        engine: str = "batch",
        nq: Optional[int] = None,
        clustering: Optional[Clustering] = None,
    ) -> None:
        super().__init__(simulator, engine=engine)
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must lie in (0, 1)")
        self.epsilon = epsilon
        # ``nq`` / ``clustering`` are precomputation hints with the same
        # contract as KDissemination's: graph analytics a caller already has
        # (e.g. a benchmark comparing engines on one instance) are not
        # recomputed, and a hinted clustering skips the Lemma 3.5 construction
        # charges exactly like KDissemination's hint does.
        self._nq_hint = nq
        self._clustering_hint = clustering
        # Phase state.
        self._log_n = log2_ceil(max(simulator.n, 2))
        self.nq = 0
        self.x = 0
        self.clustering: Optional[Clustering] = None
        self.leaders: List[Node] = []
        self._index: Optional[GraphIndex] = None
        self._unit_weighted = True
        self._leader_rows: Dict[Node, List[int]] = {}
        self._leader_estimates: Dict[Node, Dict[Node, float]] = {}
        self._closest_leader: Dict[Node, Tuple[Node, float]] = {}

    def phases(self):
        return (
            ("parameters", self._phase_parameters),
            ("identifier-broadcast", self._phase_identifier_broadcast),
            ("leader-sssp", self._phase_leader_sssp),
            ("local-exploration", self._phase_local_exploration),
            ("closest-leader-broadcast", self._phase_closest_leader_broadcast),
        )

    # ------------------------------------------------------------------
    def _phase_parameters(self) -> None:
        """NQ_n (Lemma 3.3, charged) and the Lemma 3.5 clustering, shared with
        every broadcast instance below."""
        sim = self.simulator
        nq = self._nq_hint
        if nq is None:
            nq = neighborhood_quality(sim.graph, sim.n)
        self.nq = max(1, nq)
        sim.charge_rounds(self.nq, "distributed computation of NQ_n", "Lemma 3.3")
        if self._clustering_hint is not None:
            self.clustering = self._clustering_hint
        else:
            self.clustering = distributed_nq_clustering(sim, sim.n, nq=self.nq)
        self.leaders = self.clustering.leaders()
        self._index = get_index(sim.graph)
        self._unit_weighted = _graph_is_unit_weighted(sim.graph)

    def _phase_identifier_broadcast(self) -> None:
        """Theorem 1 with k = n: every node's identifier becomes global
        knowledge (physically simulated)."""
        sim = self.simulator
        KDissemination(
            sim,
            _identifier_tokens(sim),
            nq=self.nq,
            clustering=self.clustering,
            engine=self.engine,
        ).run()

    def _phase_leader_sssp(self) -> None:
        """(1+eps)-approximate SSSP from every cluster leader (Theorem 13),
        |R| <= NQ_n instances; dense GraphIndex sweeps on unit weights."""
        sim = self.simulator
        self._leader_rows = self._index.hop_distance_rows(self.leaders)
        if not self._unit_weighted:
            # Theorem 6 assumes unit weights; on a weighted graph fall back to
            # the weight-rounded Dijkstra so estimates keep the SSSP stretch.
            for leader in self.leaders:
                self._leader_estimates[leader] = approx_sssp_distances(
                    sim.graph, leader, self.epsilon
                )
        sim.charge_rounds(
            len(self.leaders) * sssp_round_cost(sim.n, self.epsilon),
            f"(1+eps)-SSSP from {len(self.leaders)} cluster leaders",
            "Theorem 13 via Theorem 6",
        )

    def _phase_local_exploration(self) -> None:
        """Every node learns its x-hop neighborhood, x = 4 NQ_n ceil(log n)/eps
        (charged); each node's closest leader falls out of the leader rows by
        symmetry of hop distances."""
        sim = self.simulator
        self.x = int(math.ceil(4 * self.nq * self._log_n / self.epsilon))
        sim.charge_rounds(self.x, "x-hop local neighborhood exploration", "Theorem 6")
        index = self._index
        leader_rows = self._leader_rows
        for v in sim.nodes:
            iv = index.index_of[v]

            def hop_to(leader: Node, iv=iv) -> float:
                d = leader_rows[leader][iv]
                return math.inf if d < 0 else d

            best = min(self.leaders, key=lambda r: (hop_to(r), str(r)))
            self._closest_leader[v] = (best, hop_to(best))

    def _phase_closest_leader_broadcast(self) -> None:
        """Every node broadcasts (closest leader, distance) — n messages,
        Theorem 1, physically simulated."""
        sim = self.simulator
        KDissemination(
            sim,
            _label_tokens(sim, self._closest_leader, "apsp-cl"),
            nq=self.nq,
            clustering=self.clustering,
            engine=self.engine,
        ).run()

    # ------------------------------------------------------------------
    def finish(self) -> DenseDistanceTable:
        sim = self.simulator
        index = self._index
        columns = list(sim.nodes)
        column_indices = [index.index_of[w] for w in columns]
        closest_leader = self._closest_leader
        leader_rows = self._leader_rows
        leader_estimates = self._leader_estimates
        unit = self._unit_weighted
        x = self.x

        def make_row(v: Node) -> List[float]:
            """The Algorithm 3 estimate row of ``v`` from one dense sweep."""
            iv = index.index_of[v]
            dist = index.hop_distance_row(v)
            row: List[float] = []
            append = row.append
            for w, iw in zip(columns, column_indices):
                direct = dist[iw]
                if 0 <= direct <= x:
                    append(float(direct))
                    continue
                c_w, d_w_cw = closest_leader[w]
                if unit:
                    to_leader = leader_rows[c_w][iv]
                    estimate = math.inf if to_leader < 0 else float(to_leader)
                else:
                    estimate = leader_estimates[c_w].get(v, math.inf)
                append(estimate + d_w_cw)
            return row

        # eps' = 3 eps + eps^2 per the Theorem 6 analysis.
        stretch = 1.0 + 3 * self.epsilon + self.epsilon * self.epsilon
        return DenseDistanceTable(
            row_nodes=columns,
            columns=columns,
            row_factory=make_row,
            stretch_bound=stretch,
            metrics=sim.metrics,
            nq=self.nq,
            index=index,
        )


# ----------------------------------------------------------------------
# Theorem 7: deterministic weighted APSP via a spanner
# ----------------------------------------------------------------------
class SpannerAPSP(BatchAlgorithm):
    """Theorem 7: (1 + eps log n)-approximate weighted APSP in
    ``eO(2^{1/eps} NQ_n)`` rounds by broadcasting a ``(2t-1)``-spanner.

    The m*-edge spanner broadcast (Theorem 1 with k = m*) is a physically
    simulated :class:`~repro.core.dissemination.KDissemination` instance:
    every spanner edge is one token held by its smaller-id endpoint, and the
    per-node Dijkstra table assembly runs only once every node knows the full
    edge list.  ``engine`` selects the transport for the broadcast.

    The table assembly runs on the spanner's own
    :class:`~repro.graphs.index.GraphIndex`: one flat-array Dijkstra row per
    node over a CSR built once for the whole sweep, returned as an
    array-backed :class:`DenseDistanceTable` (rows materialise lazily, cached
    as C-double arrays) instead of ``n`` eager ``networkx`` Dijkstra dicts.
    """

    def __init__(
        self, simulator: HybridSimulator, *, epsilon: float = 0.5, engine: str = "batch"
    ) -> None:
        super().__init__(simulator, engine=engine)
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.epsilon = epsilon
        # Phase state.
        self._spanner: Optional[nx.Graph] = None
        self._spanner_index: Optional[GraphIndex] = None
        self._t = 1

    def phases(self):
        return (
            ("spanner", self._phase_spanner),
            ("spanner-broadcast", self._phase_spanner_broadcast),
            ("local-apsp", self._phase_local_apsp),
        )

    def _phase_spanner(self) -> None:
        sim = self.simulator
        log_n = log2_ceil(max(sim.n, 2))
        self._t = max(1, int(math.ceil(self.epsilon * log_n / 2)))
        self._spanner = distributed_spanner(sim, self._t)

    def _phase_spanner_broadcast(self) -> None:
        """Broadcast the m* spanner edges (Theorem 1 with k = m*, physically
        simulated).  The NQ evaluation hits the per-(graph, k) memo on repeat
        runs over the same instance (the Table 2 sweep does exactly that)."""
        sim = self.simulator
        spanner_edges = self._spanner.number_of_edges()
        nq_mstar = max(1, neighborhood_quality(sim.graph, max(spanner_edges, 1)))
        tokens = _edge_tokens(sim, self._spanner, "spanner-edge")
        if tokens:
            KDissemination(sim, tokens, nq=nq_mstar, engine=self.engine).run()

    def _phase_local_apsp(self) -> None:
        """Every node locally computes APSP on the (now globally known)
        spanner.

        Builds the spanner's :class:`~repro.graphs.index.GraphIndex` once;
        the per-node Dijkstra rows are pulled lazily by the returned dense
        table, so a consumer that reads only a few rows never pays for the
        full n x n sweep.
        """
        self._spanner_index = get_index(self._spanner)

    def finish(self) -> DenseDistanceTable:
        sim = self.simulator
        index = self._spanner_index
        columns = list(sim.nodes)
        positions = [index.index_of[node] for node in columns]

        def make_row(source: Node) -> List[float]:
            row = index.sssp_row(source)
            return [row[i] for i in positions]

        return DenseDistanceTable(
            row_nodes=columns,
            columns=columns,
            row_factory=make_row,
            stretch_bound=float(2 * self._t - 1),
            metrics=sim.metrics,
            nq=neighborhood_quality(sim.graph, sim.n),
            row_store="array",
            index=index,
        )


# ----------------------------------------------------------------------
# Theorem 8: randomized weighted APSP via skeleton + spanner
# ----------------------------------------------------------------------
class SkeletonAPSP(BatchAlgorithm):
    """Theorem 8 / Algorithm 4: (4 alpha - 1)-approximate weighted APSP.

    The three Theorem 1 broadcasts (node identifiers, the skeleton spanner,
    every node's closest skeleton node) are physically simulated
    :class:`~repro.core.dissemination.KDissemination` instances; the h-hop
    limited tables run on the :class:`~repro.graphs.index.GraphIndex`
    flat-array Bellman-Ford.  ``engine`` selects the broadcast transport.
    """

    def __init__(
        self,
        simulator: HybridSimulator,
        *,
        alpha: int = 1,
        seed: Optional[int] = None,
        engine: str = "batch",
    ) -> None:
        super().__init__(simulator, engine=engine)
        if alpha < 1:
            raise ValueError("alpha must be a positive integer")
        self.alpha = alpha
        self.seed = seed
        # Phase state.
        self._log_n = log2_ceil(max(simulator.n, 2))
        self.nq = 0
        self.clustering: Optional[Clustering] = None
        self._skeleton = None
        self._spanner: Optional[nx.Graph] = None
        self._skeleton_rows: Optional[SSSPRowCache] = None
        self._limited: Dict[Node, Dict[Node, float]] = {}
        self._closest_skeleton: Dict[Node, Tuple[Node, float]] = {}

    def phases(self):
        return (
            ("parameters", self._phase_parameters),
            ("skeleton", self._phase_skeleton),
            ("skeleton-spanner", self._phase_skeleton_spanner),
            ("local-exploration", self._phase_local_exploration),
        )

    def _phase_parameters(self) -> None:
        """NQ_n, one shared Lemma 3.5 clustering for both k = n broadcasts,
        plus the Theorem 1 broadcast of all node identifiers (physically
        simulated)."""
        sim = self.simulator
        self.nq = max(1, neighborhood_quality(sim.graph, sim.n))
        self.clustering = distributed_nq_clustering(sim, sim.n, nq=self.nq)
        KDissemination(
            sim,
            _identifier_tokens(sim),
            nq=self.nq,
            clustering=self.clustering,
            engine=self.engine,
        ).run()
        sim.charge_rounds(self.nq, "distributed computation of NQ_n", "Lemma 3.3")

    def _phase_skeleton(self) -> None:
        """t = n^{1/(3a+1)} * NQ_n^{2/(3+1/a)} and the Definition 6.2 skeleton."""
        sim = self.simulator
        alpha = self.alpha
        t = max(
            1,
            int(
                round(
                    sim.n ** (1.0 / (3 * alpha + 1))
                    * self.nq ** (2.0 / (3 + 1.0 / alpha))
                )
            ),
        )
        sampling_probability = min(1.0, 1.0 / t)
        self._skeleton = build_skeleton(sim.graph, sampling_probability, seed=self.seed)
        sim.charge_rounds(
            self._skeleton.h, "skeleton construction", "Lemma 6.3 via Theorem 8"
        )

    def _phase_skeleton_spanner(self) -> None:
        """(2 alpha - 1)-spanner of the skeleton, broadcast to everyone
        (Theorem 1, physically simulated)."""
        sim = self.simulator
        skeleton = self._skeleton
        self._spanner = greedy_spanner(skeleton.graph, self.alpha)
        sim.charge_rounds(
            self.alpha * self._log_n * max(1, skeleton.h),
            "spanner construction on the skeleton (simulated over local paths)",
            "Lemma 6.1 via Theorem 8",
        )
        spanner_edges = max(1, self._spanner.number_of_edges())
        nq_x = max(1, neighborhood_quality(sim.graph, max(spanner_edges, sim.n)))
        tokens = _edge_tokens(sim, self._spanner, "skeleton-spanner-edge")
        if tokens:
            KDissemination(sim, tokens, nq=nq_x, engine=self.engine).run()
        # One index over the skeleton spanner serves every skeleton-node
        # Dijkstra row (flat CSR shared across the whole batch); the rows are
        # pulled lazily by the table :meth:`finish` returns, one Dijkstra per
        # *queried* closest-skeleton node instead of an eager dict-of-dicts
        # over every skeleton node.
        self._skeleton_rows = SSSPRowCache(get_index(self._spanner))

    def _phase_local_exploration(self) -> None:
        """Every node learns its h-hop neighborhood (GraphIndex Bellman-Ford)
        and broadcasts its closest skeleton node (Theorem 1, physical)."""
        sim = self.simulator
        skeleton = self._skeleton
        h = skeleton.h
        sim.charge_rounds(h, "h-hop local neighborhood exploration", "Theorem 8")
        self._limited = {
            v: h_hop_limited_distances(sim.graph, v, h) for v in sim.nodes
        }
        skeleton_set = set(skeleton.skeleton_nodes)
        for v in sim.nodes:
            candidates = {
                u: d for u, d in self._limited[v].items() if u in skeleton_set
            }
            if not candidates:
                full = weighted_distances_from(sim.graph, v)
                candidates = {u: d for u, d in full.items() if u in skeleton_set}
            best, dist = min(candidates.items(), key=lambda kv: (kv[1], str(kv[0])))
            self._closest_skeleton[v] = (best, dist)
        KDissemination(
            sim,
            _label_tokens(sim, self._closest_skeleton, "apsp-cs"),
            nq=self.nq,
            clustering=self.clustering,
            engine=self.engine,
        ).run()

    def finish(self) -> DenseDistanceTable:
        sim = self.simulator
        limited = self._limited
        closest_skeleton = self._closest_skeleton
        skeleton_rows = self._skeleton_rows
        columns = list(sim.nodes)
        inf = math.inf

        # Per-column closest-skeleton data, resolved once: ``cs_pos[j]`` is
        # the spanner-index position of column j's closest skeleton node and
        # ``cs_dist[j]`` the distance to it.
        cs_pos = array(
            "q", (skeleton_rows.position_of(closest_skeleton[w][0]) for w in columns)
        )
        cs_dist = array("d", (closest_skeleton[w][1] for w in columns))

        # Algorithm 4 estimate, one lazy row per target: the skeleton-spanner
        # Dijkstra row of v's closest skeleton node is pulled (and cached) on
        # first use, so a consumer reading only a few targets never pays for
        # an all-skeleton sweep.  ``(d_v_vs + row[cs_pos]) + cs_dist`` keeps
        # the reference formula's left-to-right association, so the values
        # are bit-identical to the eager dict-of-dicts construction.
        def make_row(v: Node) -> List[float]:
            v_s, d_v_vs = closest_skeleton[v]
            skeleton_row = skeleton_rows.row(v_s)
            lim = limited[v]
            return [
                min(lim.get(w, inf), (d_v_vs + skeleton_row[cs_pos[j]]) + cs_dist[j])
                for j, w in enumerate(columns)
            ]

        return DenseDistanceTable(
            row_nodes=columns,
            columns=columns,
            row_factory=make_row,
            stretch_bound=float(4 * self.alpha - 1),
            metrics=sim.metrics,
            nq=self.nq,
            row_store="array",
            index=skeleton_rows.index,
        )
