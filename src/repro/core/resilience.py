"""Fault-tolerant dissemination on top of the self-healing exchange.

:class:`~repro.core.dissemination.KDissemination` implements the paper's
Theorem 1 under its fault-free synchronous assumptions; this module provides
the robustness counterpart for the fault-injection layer
(:mod:`repro.simulator.faults`): :class:`ResilientDissemination` completes
token dissemination under any fault schedule that leaves the surviving nodes
connected (the global mode connects every live pair) and eventually stable
(no crash/recovery or degradation window opens after the schedule's
:meth:`~repro.simulator.faults.FaultSchedule.horizon`; persistent drop
*rates* are fine — retransmission outlasts them).

The protocol is a deliberately simple epoch loop — a robustness baseline, not
a round-optimal algorithm (faults void the NQ_k analysis Theorem 1 rests on):

1. **Collect** — every live holder sends its tokens to a coordinator (the
   lowest live node index) through the ack-tracked
   :meth:`~repro.simulator.engine.BatchAlgorithm.resilient_exchange`.
2. **Broadcast** — the coordinator sends every collected token each live node
   is still missing, again resiliently.
3. **Converge check** — once past the schedule horizon, the run is complete
   when every live node knows every token any live node knows *and* every
   live holder's tokens (a fixpoint: knowledge has equalised across the live
   set).  Before the horizon the loop keeps cycling — a node that crashes
   mid-epoch simply gets its missing tokens again in a later epoch, possibly
   from a different coordinator if the previous one died.

Tokens whose every holder is crashed for good before ever reaching a live
node are unreachable by any protocol; the fixpoint deliberately excludes dead
holders, so such runs still converge (``complete=True`` over the reachable
set) while :meth:`ResilientDisseminationResult.all_live_nodes_know_all_tokens`
reports the shortfall against the full workload.  Runs that cannot even
equalise — e.g. a drop rate too high for the attempt budget — exhaust
``max_epochs`` and come back ``complete=False``.  Everything is a
deterministic function of ``(simulator seed, fault schedule)`` — reruns are
byte-identical, which the fault property suite pins.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, FrozenSet, Hashable, List, Sequence, Set, Tuple

from repro.simulator.engine import BatchAlgorithm
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = ["ResilientDisseminationResult", "ResilientDissemination"]


@dataclasses.dataclass
class ResilientDisseminationResult:
    """Outcome of a resilient dissemination run.

    ``known_tokens`` maps every node to the tokens it actually received
    (crashed nodes keep whatever they got before crashing); ``live_nodes``
    are the nodes not crashed in the final round.  ``complete`` reports the
    converged fixpoint described in the module docstring.  ``removed_edges``
    lists the edges that permanent link failures committed as real deletions
    during the run (in commit order; empty without ``permanent=True``
    failures) — the graph the caller passed in has genuinely churned, and
    follow-up dissemination/APSP runs on it see the committed topology.
    """

    tokens: Set[Any]
    known_tokens: Dict[Node, FrozenSet[Any]]
    live_nodes: List[Node]
    epochs: int
    complete: bool
    metrics: RoundMetrics
    removed_edges: List[Tuple[Node, Node]] = dataclasses.field(default_factory=list)

    def all_live_nodes_know_all_tokens(self) -> bool:
        """Whether every live node knows every token of the whole workload."""
        target = frozenset(self.tokens)
        return all(
            target <= self.known_tokens[node] for node in self.live_nodes
        )


class ResilientDissemination(BatchAlgorithm):
    """Epoch-looped collect/broadcast dissemination surviving a fault schedule.

    Runs on the plane engine only (the self-healing exchange needs the plane
    ack channel).  Designed for the dense identifier regime
    (``ModelConfig.hybrid()``), where any live pair can exchange global
    messages — under HYBRID_0 the coordinator would additionally need to
    learn identifiers, which the fault model does not currently replicate.
    """

    def __init__(
        self,
        simulator: HybridSimulator,
        tokens_by_node: Dict[Node, Sequence[Any]],
        *,
        max_epochs: int = 32,
        max_attempts: int = 16,
        engine: str = "batch",
    ) -> None:
        super().__init__(simulator, engine=engine)
        if not self.use_plane:
            raise ValueError(
                f"ResilientDissemination requires engine='batch', not {engine!r}"
            )
        if max_epochs < 1:
            raise ValueError("max_epochs must be at least 1")
        node_set = set(simulator.nodes)
        self.tokens_by_node: Dict[Node, List[Any]] = {
            node: list(tokens) for node, tokens in tokens_by_node.items() if tokens
        }
        for node in self.tokens_by_node:
            if node not in node_set:
                raise KeyError(f"token holder {node!r} is not a node of the network")
        self.max_epochs = max_epochs
        self.max_attempts = max_attempts
        self.all_tokens: Set[Any] = set()
        for tokens in self.tokens_by_node.values():
            self.all_tokens.update(tokens)
        self.epochs = 0
        self.complete = False
        self._known: List[Set[Any]] = []
        self._live: List[int] = []

    # ------------------------------------------------------------------
    def phases(self) -> Sequence[Tuple[str, Any]]:
        return (("resilient-dissemination", self._phase_disseminate),)

    # ------------------------------------------------------------------
    def _live_indices(self) -> List[int]:
        fault_state = self.simulator.fault_state
        if fault_state is None:
            return list(range(self.simulator.n))
        crashed = fault_state.crashed_indices(self.simulator.round)
        return [index for index in range(self.simulator.n) if index not in crashed]

    def _converged(self, live: List[int], holder_index: Dict[int, List[Any]]) -> bool:
        """The live-set knowledge fixpoint (see the module docstring)."""
        known = self._known
        needed: Set[Any] = set()
        for index in live:
            needed |= known[index]
            tokens = holder_index.get(index)
            if tokens:
                needed.update(tokens)
        return all(needed <= known[index] for index in live)

    def _phase_disseminate(self) -> None:
        sim = self.simulator
        nodes = sim.nodes
        indexer = sim.node_indexer()
        fault_state = sim.fault_state
        horizon = (
            sim.fault_schedule.horizon() if fault_state is not None else 0
        )
        known: List[Set[Any]] = [set() for _ in range(sim.n)]
        holder_index: Dict[int, List[Any]] = {}
        for node, tokens in self.tokens_by_node.items():
            index = indexer[node]
            holder_index[index] = tokens
            known[index].update(tokens)
        self._known = known
        if not self.all_tokens:
            self.complete = True
            self._live = self._live_indices()
            return
        while self.epochs < self.max_epochs:
            self.epochs += 1
            live = self._live_indices()
            if not live:
                # Everybody is down; wait a round for somebody to recover.
                sim.advance_round()
                continue
            coordinator = live[0]
            live_set = set(live)
            sent_anything = False
            # Collect: live holders push what the coordinator is missing.
            collect: List[Tuple[Node, Node, Any]] = []
            for index in live:
                if index == coordinator:
                    continue
                tokens = holder_index.get(index)
                if not tokens:
                    continue
                for token in tokens:
                    if token not in known[coordinator]:
                        collect.append((nodes[index], nodes[coordinator], token))
            if collect:
                sent_anything = True
                result = self.resilient_exchange(
                    collect, "rdis-collect", max_attempts=self.max_attempts
                )
                for payloads in result.delivered.values():
                    known[coordinator].update(payloads)
            # Broadcast: the coordinator fills every live node's gaps.
            broadcast: List[Tuple[Node, Node, Any]] = []
            coordinator_node = nodes[coordinator]
            for index in live:
                if index == coordinator:
                    continue
                missing = known[coordinator] - known[index]
                for token in sorted(missing, key=str):
                    broadcast.append((coordinator_node, nodes[index], token))
            if broadcast:
                sent_anything = True
                result = self.resilient_exchange(
                    broadcast, "rdis-bcast", max_attempts=self.max_attempts
                )
                for receiver, payloads in result.delivered.items():
                    known[indexer[receiver]].update(payloads)
            stable = fault_state is None or sim.round > horizon
            if stable:
                live = self._live_indices()
                if set(live) == live_set or not sent_anything:
                    if self._converged(live, holder_index):
                        self.complete = True
                        self._live = live
                        return
            if not sent_anything:
                # Nothing to move but not converged/stable yet: let the
                # schedule's remaining windows play out.
                sim.advance_round()
        self._live = self._live_indices()
        self.complete = self._converged(self._live, holder_index)

    # ------------------------------------------------------------------
    def finish(self) -> ResilientDisseminationResult:
        sim = self.simulator
        nodes = sim.nodes
        return ResilientDisseminationResult(
            tokens=set(self.all_tokens),
            known_tokens={
                nodes[index]: frozenset(self._known[index])
                for index in range(sim.n)
            }
            if self._known
            else {node: frozenset() for node in nodes},
            live_nodes=[nodes[index] for index in self._live],
            epochs=self.epochs,
            complete=self.complete,
            metrics=sim.metrics,
            removed_edges=list(sim.committed_link_removals),
        )
