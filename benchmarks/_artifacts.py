"""Machine-readable benchmark artifacts.

The ASCII tables in ``benchmarks/results/`` are for humans; tracking the
performance trajectory across commits needs stable JSON.
:func:`write_bench_artifact` serialises a benchmark's raw result rows — plus
the parameters and environment needed to interpret them — as
``BENCH_<name>.json`` under ``$BENCH_ARTIFACTS_DIR`` (default:
``benchmarks/results/``).  The PR smoke workflow uploads these files as build
artifacts, one trajectory point per commit.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
from typing import Any, Dict, Optional, Sequence

_DEFAULT_DIR = pathlib.Path(__file__).parent / "results"


def _environment() -> Dict[str, Any]:
    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except Exception:
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": sys.platform,
        "commit": os.environ.get("GITHUB_SHA"),
    }


#: Committed (unlike the gitignored ``BENCH_*.json``): one compact summary
#: row per smoke-tier benchmark, refreshed in place on every run.
_TRAJECTORY_NAME = "TRAJECTORY.md"
_TRAJECTORY_PREAMBLE = [
    "# Benchmark trajectory",
    "",
    "One compact summary row per smoke-tier benchmark, upserted (keyed by",
    "benchmark name) by `_artifacts.update_trajectory` each time a benchmark",
    "runs.  Unlike the gitignored `BENCH_*.json` build artifacts this file is",
    "committed, so the repo history carries a human-readable performance",
    "trajectory — one snapshot per commit that re-ran the suite.",
    "",
    "| benchmark | headline |",
    "| --- | --- |",
]


def update_trajectory(name: str, headline: str) -> pathlib.Path:
    """Upsert one benchmark's summary row in ``results/TRAJECTORY.md``.

    ``headline`` is a single compact sentence (the benchmark's key numbers
    against its acceptance floor).  Rows are keyed by ``name`` — re-running a
    benchmark replaces its row in place — and kept sorted for diff stability.
    """
    directory = pathlib.Path(os.environ.get("BENCH_ARTIFACTS_DIR") or _DEFAULT_DIR)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / _TRAJECTORY_NAME
    rows: Dict[str, str] = {}
    if path.exists():
        for line in path.read_text().splitlines():
            if line.startswith("| ") and not line.startswith("| ---"):
                cells = [cell.strip() for cell in line.strip("|").split("|")]
                if len(cells) == 2 and cells[0] != "benchmark":
                    rows[cells[0]] = cells[1]
    rows[name] = " ".join(headline.split())  # keep the row on one line
    lines = list(_TRAJECTORY_PREAMBLE)
    for key in sorted(rows):
        lines.append(f"| {key} | {rows[key]} |")
    path.write_text("\n".join(lines) + "\n")
    return path


def write_bench_artifact(
    name: str, rows: Sequence[Dict[str, Any]], **context: Any
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``rows`` are the benchmark's raw result rows (JSON-serialisable dicts);
    ``context`` carries the benchmark parameters worth keeping next to the
    numbers (instance sizes, repeat counts, required speedup floors, ...).
    """
    directory = pathlib.Path(os.environ.get("BENCH_ARTIFACTS_DIR") or _DEFAULT_DIR)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "benchmark": name,
        "context": dict(context),
        "environment": _environment(),
        "rows": [dict(row) for row in rows],
    }
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
