"""Universally optimal multi-message broadcast: ``k-dissemination`` (Theorem 1).

Problem (Definition 1.1): ``k`` tokens of O(log n) bits are initially spread
arbitrarily over the nodes (a node may hold anywhere between 0 and k of them);
at the end every node must know all ``k`` tokens.

Theorem 1: the problem is solvable deterministically in ``eO(NQ_k)`` rounds in
HYBRID_0.  The algorithm (Section 4.2, Figure 2) has five phases:

1. **Parameter computation** — compute ``k`` (basic aggregation, Lemma 4.4) and
   ``NQ_k`` (Lemma 3.3).
2. **Clustering** — partition ``V`` into clusters of weak diameter
   ``<= 4 NQ_k ceil(log n)`` and size ``[k/NQ_k, 2k/NQ_k]`` (Lemma 3.5).
3. **Cluster chaining** — build a logical cluster tree of depth/degree
   ``O(log n)`` (Lemma 4.6) and match the nodes of adjacent clusters rank-by-
   rank so matched nodes can talk over the global mode.
4. **Load balancing** — within each cluster, spread the held tokens so every
   node holds at most ``NQ_k`` of them (Lemma 4.1).
5. **Dissemination** — converge-cast all tokens up the cluster tree to the root
   cluster (load balancing before each level), then cast them back down; a
   final intra-cluster flood of ``4 NQ_k ceil(log n)`` local rounds makes every
   node know every token.

The global-mode token movements of phase 5 are physically simulated (throttled
to the per-node budget); the local-mode coordination of phases 2-4 and the
final flood are charged per the paper's analysis (DESIGN.md substitution
note 1).

The implementation is a :class:`~repro.simulator.engine.BatchAlgorithm`: each
phase submits whole rounds of traffic through the batch messaging engine
(``engine="batch"``, the default) or through the legacy per-message transport
(``engine="legacy"``); both engines produce identical round counts, inboxes
and metrics.
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Any, Dict, FrozenSet, Hashable, List, Optional, Sequence, Set, Tuple

from repro.core.clustering import Cluster, Clustering, distributed_nq_clustering
from repro.core.load_balancing import balance_items, cluster_load_balance
from repro.core.neighborhood_quality import neighborhood_quality
from repro.core.overlay import VirtualTree, basic_aggregation, build_virtual_tree
from repro.core.transport import GlobalTransfer
from repro.simulator import _accel
from repro.simulator.config import log2_ceil
from repro.simulator.engine import BatchAlgorithm, TokenPlane
from repro.simulator.messages import payload_words
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = ["DisseminationResult", "KDissemination", "ClusterTree"]


@dataclasses.dataclass
class ClusterTree:
    """A rooted logical tree whose vertices are clusters (phase 3)."""

    root: int
    parent: Dict[int, Optional[int]]
    children: Dict[int, List[int]]
    order: List[int]

    def levels(self) -> List[List[int]]:
        result: List[List[int]] = []
        current = [self.root]
        while current:
            result.append(current)
            nxt: List[int] = []
            for index in current:
                nxt.extend(self.children[index])
            current = nxt
        return result

    @property
    def depth(self) -> int:
        return len(self.levels()) - 1


def build_cluster_tree(clustering: Clustering) -> ClusterTree:
    """Binary cluster tree over cluster indices (constant degree, O(log) depth)."""
    order = [cluster.index for cluster in clustering.clusters]
    parent: Dict[int, Optional[int]] = {}
    children: Dict[int, List[int]] = {index: [] for index in order}
    if not order:
        raise ValueError("clustering has no clusters")
    parent[order[0]] = None
    for position, index in enumerate(order):
        if position == 0:
            continue
        parent_index = order[(position - 1) // 2]
        parent[index] = parent_index
        children[parent_index].append(index)
    return ClusterTree(root=order[0], parent=parent, children=children, order=order)


def match_cluster_tree_ids(
    simulator: HybridSimulator, clustering: Clustering, cluster_tree: ClusterTree
) -> None:
    """Phase 3 subphase 2 of Theorem 1: rank-match adjacent clusters.

    For every edge of the cluster tree, member ``i`` of one cluster is paired
    with member ``i mod |other|`` of the other; both learn each other's
    identifier so they can exchange global messages.  The round cost of the
    matching (O(log n), one tree level at a time) is charged by the caller.
    """
    identifier_of = simulator.node_identifiers()
    learned: Dict[Node, Set[int]] = defaultdict(set)
    for child_index, parent_index in cluster_tree.parent.items():
        if parent_index is None:
            continue
        child = clustering.clusters[child_index]
        parent = clustering.clusters[parent_index]
        child_members = sorted(child.members, key=identifier_of.__getitem__)
        parent_members = sorted(parent.members, key=identifier_of.__getitem__)
        span = max(len(child_members), len(parent_members))
        for position in range(span):
            a = child_members[position % len(child_members)]
            b = parent_members[position % len(parent_members)]
            learned[a].add(identifier_of[b])
            learned[b].add(identifier_of[a])
    learn_known = simulator.knowledge.learn_known
    for node, identifiers in learned.items():
        learn_known(identifier_of[node], identifiers)


def rank_matched_indices(
    source_indices: Sequence[int],
    target_indices: Sequence[int],
    count: int,
) -> Tuple[List[int], List[int]]:
    """Id-native :func:`rank_matched_triples`: ``(senders, receivers)`` columns.

    ``source_indices`` / ``target_indices`` are the id-sorted member lists of
    the two clusters as simulator node indices.  The rank-matching is cyclic
    with period ``len(source_indices)``, so the columns for ``count`` payloads
    are whole-pattern repetitions — built with list arithmetic, no per-token
    index math.
    """
    n_source = len(source_indices)
    n_target = len(target_indices)
    receiver_pattern = [
        target_indices[rank % n_target] for rank in range(n_source)
    ]
    source_pattern = list(source_indices)
    full, remainder = divmod(count, n_source)
    senders = source_pattern * full + source_pattern[:remainder]
    receivers = receiver_pattern * full + receiver_pattern[:remainder]
    return senders, receivers


def rank_matched_triples(
    source_members: Sequence[Node],
    target_members: Sequence[Node],
    payloads: Sequence[Any],
    words_map: Optional[Dict[Any, int]] = None,
) -> List[Tuple]:
    """(sender, receiver, payload) triples between rank-matched cluster members.

    ``source_members`` / ``target_members`` are the id-sorted member lists of
    the two clusters.  Payloads are spread round-robin over the source members
    (mirroring the load-balanced state) and each source member sends only to
    its fixed rank-matched counterpart in the target cluster, exactly the pairs
    taught by :func:`match_cluster_tree_ids`.  When ``words_map`` (payload ->
    precomputed word count) is given, 4-tuples ``(sender, receiver, payload,
    words)`` are produced so the exchange skips re-estimating payload sizes.
    """
    if not payloads:
        return []
    n_source = len(source_members)
    n_target = len(target_members)
    triples: List[Tuple] = []
    for position, payload in enumerate(payloads):
        sender_rank = position % n_source
        sender = source_members[sender_rank]
        receiver = target_members[sender_rank % n_target]
        if words_map is None:
            triples.append((sender, receiver, payload))
        else:
            triples.append((sender, receiver, payload, words_map[payload]))
    return triples


def rank_matched_transfers(
    simulator: HybridSimulator,
    source: Cluster,
    target: Cluster,
    payloads: Sequence[Any],
    tag: str,
) -> List[GlobalTransfer]:
    """Legacy wrapper around :func:`rank_matched_triples` producing transfers."""
    triples = rank_matched_triples(
        sorted(source.members, key=simulator.id_of),
        sorted(target.members, key=simulator.id_of),
        payloads,
    )
    return [
        GlobalTransfer(sender=sender, receiver=receiver, payload=payload, tag=tag)
        for sender, receiver, payload in triples
    ]


@dataclasses.dataclass
class DisseminationResult:
    """Outcome of a k-dissemination run.

    ``known_tokens`` maps each node to the tokens it knows, as frozensets;
    members of the same cluster share one frozenset (they learn the same
    tokens in the final intra-cluster flood).
    """

    tokens: Set[Any]
    known_tokens: Dict[Node, FrozenSet[Any]]
    k: int
    nq: int
    clustering: Clustering
    cluster_tree: ClusterTree
    metrics: RoundMetrics

    def all_nodes_know_all_tokens(self) -> bool:
        return all(known == self.tokens for known in self.known_tokens.values())


class KDissemination(BatchAlgorithm):
    """Theorem 1: deterministic ``eO(NQ_k)``-round k-dissemination in HYBRID_0."""

    def __init__(
        self,
        simulator: HybridSimulator,
        tokens_by_node: Dict[Node, Sequence[Any]],
        *,
        nq: Optional[int] = None,
        clustering: Optional[Clustering] = None,
        engine: str = "batch",
    ) -> None:
        super().__init__(simulator, engine=engine)
        node_set = set(simulator.nodes)
        self.tokens_by_node = {
            node: list(tokens) for node, tokens in tokens_by_node.items() if tokens
        }
        for node in self.tokens_by_node:
            if node not in node_set:
                raise KeyError(f"token holder {node!r} is not a node of the network")
        self._nq_hint = nq
        self._clustering_hint = clustering
        # Phase state.
        self._log_n = log2_ceil(max(simulator.n, 2))
        self.all_tokens: Set[Any] = set()
        self.k = 0
        self.nq = 0
        self.clustering: Optional[Clustering] = None
        self.cluster_tree: Optional[ClusterTree] = None
        self._sorted_members: Dict[int, List[Node]] = {}
        self._member_indices: Dict[int, List[int]] = {}
        self._member_arrays: Dict[int, Any] = {}
        self._held: Dict[Node, List[Any]] = {}
        self._cluster_tokens: Dict[int, Set[Any]] = {}
        self._uniform_token_words: Optional[int] = None
        self._known_tokens: Dict[Node, FrozenSet[Any]] = {}
        # Each token crosses many cluster-tree edges; its word size is
        # computed once (tokens are hashable — they live in sets throughout
        # the algorithm) and reused by every exchange.
        self._token_words: Dict[Any, int] = {}

    # ------------------------------------------------------------------
    def phases(self):
        return (
            ("parameters", self._phase_parameters),
            ("clustering", self._phase_clustering),
            ("load-balance", self._phase_load_balance),
            ("converge-cast", self._phase_converge_cast),
            ("down-cast", self._phase_down_cast),
        )

    @property
    def _trivial(self) -> bool:
        return self.k == 0

    # ------------------------------------------------------------------
    def _phase_parameters(self) -> None:
        """Phase 1: compute k (Lemma 4.4 aggregation, physically simulated) and
        NQ_k (Lemma 3.3, charged)."""
        sim = self.simulator
        for tokens in self.tokens_by_node.values():
            self.all_tokens.update(tokens)
        self.k = len(self.all_tokens)
        if self._trivial:
            return
        counts = {node: len(tokens) for node, tokens in self.tokens_by_node.items()}
        tree = build_virtual_tree(sim)
        basic_aggregation(
            sim,
            counts,
            lambda a, b: (a or 0) + (b or 0),
            tree=tree,
            engine=self.engine,
        )
        nq = self._nq_hint
        if nq is None:
            nq = neighborhood_quality(sim.graph, self.k)
        self.nq = max(1, nq)
        sim.charge_rounds(self.nq, "distributed computation of NQ_k", "Lemma 3.3")

    def _phase_clustering(self) -> None:
        """Phases 2 + 3: clustering (Lemma 3.5) and cluster chaining (Lemma 4.6
        plus rank matching), both charged."""
        if self._trivial:
            return
        sim = self.simulator
        log_n = self._log_n
        clustering = self._clustering_hint
        if clustering is None:
            clustering = distributed_nq_clustering(sim, self.k, nq=self.nq)
        self.clustering = clustering
        self.cluster_tree = build_cluster_tree(clustering)
        identifier_of = sim.node_identifiers()
        self._sorted_members = {
            cluster.index: sorted(cluster.members, key=identifier_of.__getitem__)
            for cluster in clustering.clusters
        }
        # Id-native member columns for the plane engine: the rank-matched
        # workloads of phase 5 are built straight from these index lists
        # (NumPy arrays when the accelerator is active — level planes are
        # then tiled and concatenated without touching individual tokens).
        indexer = sim.node_indexer()
        self._member_indices = {
            index: [indexer[member] for member in members]
            for index, members in self._sorted_members.items()
        }
        np = _accel.np
        if np is not None:
            self._member_arrays = {
                index: np.asarray(indices, dtype=np.int64)
                for index, indices in self._member_indices.items()
            }
        sim.charge_rounds(
            log_n * log_n,
            "cluster-tree construction over cluster leaders",
            "Lemma 4.6",
        )
        sim.charge_rounds(
            log_n,
            "matching parent/child cluster nodes rank-by-rank",
            "Theorem 1, cluster chaining subphase 2",
        )
        leader_ids = frozenset(sim.id_of(c.leader) for c in clustering.clusters)
        sim.declare_learned_ids_bulk(
            (member for cluster in clustering.clusters for member in cluster.members),
            leader_ids,
        )
        match_cluster_tree_ids(sim, clustering, self.cluster_tree)

    def _phase_load_balance(self) -> None:
        """Phase 4: initial load balancing inside each cluster (Lemma 4.1,
        charged)."""
        if self._trivial:
            return
        held: Dict[Node, List[Any]] = defaultdict(list)
        for node, tokens in self.tokens_by_node.items():
            held[node].extend(tokens)
        self._held = self._load_balance_all_clusters(
            self.clustering, held, self.nq, self._log_n, "initial"
        )

    def _phase_converge_cast(self) -> None:
        """Phase 5a: converge-cast all tokens up the cluster tree (measured)."""
        if self._trivial:
            return
        sim = self.simulator
        clustering = self.clustering
        cluster_tree = self.cluster_tree
        cluster_tokens: Dict[int, Set[Any]] = {
            cluster.index: set() for cluster in clustering.clusters
        }
        for node, tokens in self._held.items():
            cluster_tokens[clustering.cluster_of[node]].update(tokens)
        self._cluster_tokens = cluster_tokens
        self._token_words = {token: payload_words(token) for token in self.all_tokens}
        distinct_words = set(self._token_words.values())
        # Homogeneous tokens (the normal case) let the plane builder emit the
        # words column as one list repetition instead of a per-token lookup.
        self._uniform_token_words = (
            distinct_words.pop() if len(distinct_words) == 1 else None
        )

        levels = cluster_tree.levels()
        for level in reversed(levels[1:]):
            edges: List[Tuple[int, int, List[Any]]] = []
            for cluster_index in level:
                parent_index = cluster_tree.parent[cluster_index]
                new_tokens = cluster_tokens[cluster_index] - cluster_tokens[parent_index]
                edges.append((cluster_index, parent_index, sorted(new_tokens, key=str)))
                cluster_tokens[parent_index].update(new_tokens)
            self._exchange_level(edges)
            # Load balancing at the receiving clusters before the next level.
            sim.charge_rounds(
                8 * self.nq * self._log_n,
                "intra-cluster load balancing between converge-cast levels",
                "Lemma 4.1",
            )

    def _phase_down_cast(self) -> None:
        """Phase 5b: cast every token back down the cluster tree (measured),
        then charge the final intra-cluster flood."""
        if self._trivial:
            return
        sim = self.simulator
        clustering = self.clustering
        cluster_tree = self.cluster_tree
        cluster_tokens = self._cluster_tokens
        cluster_tokens[cluster_tree.root] = set(self.all_tokens)
        # The down-cast proceeds top-down, so every sender cluster already
        # holds the full token set when its level is processed; the per-child
        # "missing" set is therefore a filter of one pre-sorted token list.
        sorted_all = sorted(self.all_tokens, key=str)
        all_tokens = self.all_tokens
        for level in cluster_tree.levels():
            edges: List[Tuple[int, int, List[Any]]] = []
            for cluster_index in level:
                for child_index in cluster_tree.children[cluster_index]:
                    have = cluster_tokens[child_index]
                    missing = (
                        sorted_all
                        if not have
                        else [token for token in sorted_all if token not in have]
                    )
                    edges.append((cluster_index, child_index, missing))
                    cluster_tokens[child_index] = set(all_tokens)
            self._exchange_level(edges)
            sim.charge_rounds(
                8 * self.nq * self._log_n,
                "intra-cluster load balancing between down-cast levels",
                "Lemma 4.1",
            )

        # Final intra-cluster flood: every node learns its cluster's tokens.
        sim.charge_rounds(
            4 * self.nq * self._log_n,
            "final intra-cluster flooding of all tokens",
            "Theorem 1, dissemination phase",
        )
        # Members of one cluster share a single frozenset (copying per member
        # is an O(n * k) cost that dwarfs the simulation at scale); frozenset
        # makes the sharing safe — accidental mutation raises instead of
        # silently editing every clustermate's entry.
        known_tokens: Dict[Node, FrozenSet[Any]] = {}
        for cluster in clustering.clusters:
            tokens_here = frozenset(cluster_tokens[cluster.index])
            for member in cluster.members:
                known_tokens[member] = tokens_here
        self._known_tokens = known_tokens

    def finish(self) -> DisseminationResult:
        sim = self.simulator
        if self._trivial:
            return DisseminationResult(
                tokens=set(),
                known_tokens={v: frozenset() for v in sim.nodes},
                k=0,
                nq=0,
                clustering=Clustering(clusters=[], nq=0, k=0, cluster_of={}),
                cluster_tree=ClusterTree(root=0, parent={0: None}, children={0: []}, order=[0]),
                metrics=sim.metrics,
            )
        return DisseminationResult(
            tokens=self.all_tokens,
            known_tokens=self._known_tokens,
            k=self.k,
            nq=self.nq,
            clustering=self.clustering,
            cluster_tree=self.cluster_tree,
            metrics=sim.metrics,
        )

    # ------------------------------------------------------------------
    def _exchange_level(self, edges: Sequence[Tuple[int, int, List[Any]]]) -> None:
        """Move one cluster-tree level of tokens: ``(source, target, tokens)``.

        On the plane engine the whole level is assembled as one id-native
        :class:`~repro.simulator.engine.TokenPlane` from the precomputed
        member-index columns (rank-matching is cyclic pattern repetition, word
        counts come from the shared ``_token_words`` map); the comparison
        engines build the historical tuple workload.  The token order —
        level-edge by level-edge, payloads in sorted order, senders cycling by
        rank — is identical either way, so so are the shard boundaries.
        """
        if self.use_plane:
            plane = self._build_level_plane(edges)
            if plane is not None:
                self.exchange(plane, "kdiss", collect=False)
            return
        triples: List[Tuple] = []
        for source_index, target_index, tokens in edges:
            triples.extend(
                rank_matched_triples(
                    self._sorted_members[source_index],
                    self._sorted_members[target_index],
                    tokens,
                    self._token_words,
                )
            )
        if triples:
            self.exchange(triples, "kdiss", collect=False)

    def _build_level_plane(
        self, edges: Sequence[Tuple[int, int, List[Any]]]
    ) -> Optional[TokenPlane]:
        """Assemble one level's id-native workload.

        With NumPy active the sender/receiver columns are whole-chunk tile
        operations over the cached per-cluster member arrays (the cyclic
        rank-matching is exactly ``np.resize``); homogeneous token sizes
        become one ``np.full`` per edge.  The fallback builds the same columns
        with list-pattern arithmetic.  Token order is identical to the tuple
        engines' workload, so the shard boundaries coincide.
        """
        np = _accel.np
        token_words = self._token_words
        uniform = self._uniform_token_words
        payloads: List[Any] = []
        if np is not None:
            member_arrays = self._member_arrays
            sender_chunks = []
            receiver_chunks = []
            word_chunks = []
            for source_index, target_index, tokens in edges:
                count = len(tokens)
                if not count:
                    continue
                source = member_arrays[source_index]
                target = member_arrays[target_index]
                pattern = target[np.arange(source.size) % target.size]
                sender_chunks.append(np.resize(source, count))
                receiver_chunks.append(np.resize(pattern, count))
                if uniform is not None:
                    word_chunks.append(np.full(count, uniform, dtype=np.int64))
                else:
                    word_chunks.append(
                        np.fromiter(
                            (token_words[token] for token in tokens),
                            dtype=np.int64,
                            count=count,
                        )
                    )
                payloads.extend(tokens)
            if not payloads:
                return None
            return TokenPlane(
                np.concatenate(sender_chunks),
                np.concatenate(receiver_chunks),
                np.concatenate(word_chunks),
                payloads,
            )
        senders: List[int] = []
        receivers: List[int] = []
        words: List[int] = []
        member_indices = self._member_indices
        for source_index, target_index, tokens in edges:
            if not tokens:
                continue
            sender_column, receiver_column = rank_matched_indices(
                member_indices[source_index],
                member_indices[target_index],
                len(tokens),
            )
            senders.extend(sender_column)
            receivers.extend(receiver_column)
            if uniform is not None:
                words.extend([uniform] * len(tokens))
            else:
                words.extend([token_words[token] for token in tokens])
            payloads.extend(tokens)
        if not payloads:
            return None
        return TokenPlane(senders, receivers, words, payloads)

    def _load_balance_all_clusters(
        self,
        clustering: Clustering,
        held: Dict[Node, List[Any]],
        nq: int,
        log_n: int,
        label: str,
    ) -> Dict[Node, List[Any]]:
        balanced: Dict[Node, List[Any]] = {}
        weak_diam = 4 * nq * log_n
        for cluster in clustering.clusters:
            allocation = balance_items(cluster.members, held)
            balanced.update(allocation)
        self.simulator.charge_rounds(
            2 * weak_diam,
            f"{label} intra-cluster load balancing",
            "Lemma 4.1",
        )
        return balanced
