"""Vectorised round engine benchmark: token planes vs the retained tuple engine.

Acceptance check for the id-native round engine at production scale
(n >= 10^4): two end-to-end workloads run through ``engine="batch"`` (token
planes: two-tier scheduler, bulk id-native sends, direct shard harvest) and
``engine="batch-reference"`` (the previous engine's hot path, retained
verbatim: tuple workloads, greedy tuple scanning, per-token sends, full inbox
harvest every shard):

* ``KDissemination`` — Theorem 1 on an n=10^4 path with k=4096 tokens
  (HYBRID_0, so the run includes the full knowledge bookkeeping).  NQ_k and
  the Lemma 3.5 clustering are precomputed once and shared by both engines
  (they are centralized analytics, not message traffic).
* ``ApproxSSSP`` + label dissemination — the Theorem 13 SSSP deployment
  pipeline: compute the (1+eps)-approximate distances (ApproxSSSP itself
  moves no global traffic — its round cost is charged per the substitution
  policy), then physically disseminate k=2048 ``(node, distance)`` labels
  with Theorem 1 so every node holds the SSSP results.

Both engines must produce identical round counts, identical metric summaries
(hence identical delivered words/messages — the inbox contents), zero
capacity violations, and complete dissemination; the plane engine must be at
least ``ROUND_ENGINE_MIN_SPEEDUP`` times faster end-to-end.  Engines are
interleaved across repeats so cpu-frequency drift on shared runners biases
neither side.

Measured on a quiet machine: ~4x end-to-end on both workloads since the
array-native phase state migration (pair-spine shard validation, grouped
id learning, permutation-array clusters); before it the shared per-phase
Python capped the pipeline at ~2.3-2.5x.  The schedule/send/harvest layers in
isolation run >10x faster than the tuple engine, and the whole pipeline ~15x
faster than the per-message legacy transport.  The default floor is set below
the quiet-machine measurement to keep the check meaningful without being
flaky.

Each run also writes a machine-readable ``BENCH_round_engine.json``
trajectory artifact next to the ASCII tables (see ``_artifacts.py``).

Run directly (``python benchmarks/bench_round_engine.py``) or through pytest
(``pytest benchmarks/bench_round_engine.py``).
"""

from __future__ import annotations

import os
import random
import time
from typing import Any, Dict, List, Tuple

from _artifacts import update_trajectory, write_bench_artifact
from repro.core.clustering import nq_clustering
from repro.core.dissemination import KDissemination
from repro.core.neighborhood_quality import neighborhood_quality
from repro.core.sssp import ApproxSSSP
from repro.graphs.generators import path_graph
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator

N = 10_000
K_DISSEMINATION = 4096
K_LABELS = 2048
EPSILON = 0.25
SEED = 7
REPEATS = 3
#: The acceptance bar on a quiet machine.  Shared CI runners have wall-clock
#: variance that can unfairly fail a ratio assertion, so CI may relax the
#: floor via ROUND_ENGINE_MIN_SPEEDUP (the correctness checks — identical
#: rounds, identical metrics, zero violations, completeness — are never
#: relaxed).
REQUIRED_SPEEDUP = float(os.environ.get("ROUND_ENGINE_MIN_SPEEDUP", "3.0"))


def _token_workload() -> Dict[int, List[Tuple[str, int]]]:
    rng = random.Random(SEED)
    tokens: Dict[int, List[Tuple[str, int]]] = {}
    for index in range(K_DISSEMINATION):
        tokens.setdefault(rng.randrange(N), []).append(("tok", index))
    return tokens


def _run_dissemination(graph, tokens, nq, engine: str):
    simulator = HybridSimulator(graph, ModelConfig.hybrid0(), seed=3)
    clustering = nq_clustering(graph, K_DISSEMINATION, nq=nq, id_of=simulator.id_of)
    algorithm = KDissemination(
        simulator, tokens, nq=nq, clustering=clustering, engine=engine
    )
    start = time.perf_counter()
    result = algorithm.run()
    return time.perf_counter() - start, result, simulator


def _run_sssp_pipeline(graph, nq, engine: str):
    """ApproxSSSP from node 0, then Theorem 1 broadcast of k distance labels."""
    simulator = HybridSimulator(graph, ModelConfig.hybrid0(), seed=3)
    start = time.perf_counter()
    sssp = ApproxSSSP(simulator, 0, epsilon=EPSILON, engine=engine).run()
    labels = [
        ("sssp-label", node, sssp.distances[node]) for node in range(K_LABELS)
    ]
    tokens = {0: labels}
    result = KDissemination(simulator, tokens, nq=nq, engine=engine).run()
    return time.perf_counter() - start, result, simulator


def _compare(label: str, runner, engines=("batch", "batch-reference")) -> Dict[str, Any]:
    times: Dict[str, float] = {engine: float("inf") for engine in engines}
    outcomes: Dict[str, Tuple[Any, Any]] = {}
    for _ in range(REPEATS):
        for engine in engines:  # interleave to average out machine drift
            elapsed, result, simulator = runner(engine)
            times[engine] = min(times[engine], elapsed)
            outcomes[engine] = (result, simulator)
    plane_result, plane_sim = outcomes["batch"]
    reference_result, reference_sim = outcomes["batch-reference"]
    return {
        "workload": label,
        "n": N,
        "plane seconds (best)": round(times["batch"], 4),
        "reference seconds (best)": round(times["batch-reference"], 4),
        "speedup": round(times["batch-reference"] / times["batch"], 2),
        "measured rounds": plane_sim.metrics.measured_rounds,
        "total rounds": plane_sim.metrics.total_rounds,
        "identical rounds": plane_sim.metrics.measured_rounds
        == reference_sim.metrics.measured_rounds
        and plane_sim.metrics.total_rounds == reference_sim.metrics.total_rounds,
        "identical metrics": plane_sim.metrics.summary()
        == reference_sim.metrics.summary(),
        "identical results": plane_result.known_tokens == reference_result.known_tokens,
        "capacity violations": plane_sim.metrics.capacity_violations,
        "complete": plane_result.all_nodes_know_all_tokens(),
    }


def run_round_engine_comparison() -> List[Dict[str, Any]]:
    graph = path_graph(N)
    tokens = _token_workload()
    nq_dissemination = max(1, neighborhood_quality(graph, K_DISSEMINATION))
    nq_labels = max(1, neighborhood_quality(graph, K_LABELS))
    rows = [
        _compare(
            f"KDissemination k={K_DISSEMINATION}",
            lambda engine: _run_dissemination(graph, tokens, nq_dissemination, engine),
        ),
        _compare(
            f"ApproxSSSP(eps={EPSILON}) + label broadcast k={K_LABELS}",
            lambda engine: _run_sssp_pipeline(graph, nq_labels, engine),
        ),
    ]
    return rows


def _check(rows: List[Dict[str, Any]]) -> None:
    for row in rows:
        label = row["workload"]
        assert row["complete"], f"{label}: dissemination failed to deliver all tokens"
        assert row["identical rounds"], f"{label}: round counts diverge between engines"
        assert row["identical metrics"], f"{label}: metric summaries diverge"
        assert row["identical results"], f"{label}: delivered contents diverge"
        assert row["capacity violations"] == 0, f"{label}: capacity violated"
        assert row["speedup"] >= REQUIRED_SPEEDUP, (
            f"{label}: round engine speedup {row['speedup']}x below the "
            f"required {REQUIRED_SPEEDUP}x"
        )


def _write_artifact(rows: List[Dict[str, Any]]) -> None:
    write_bench_artifact(
        "round_engine",
        rows,
        n=N,
        k_dissemination=K_DISSEMINATION,
        k_labels=K_LABELS,
        epsilon=EPSILON,
        repeats=REPEATS,
        required_speedup=REQUIRED_SPEEDUP,
    )
    speedups = sorted(row["speedup"] for row in rows)
    update_trajectory(
        "round_engine",
        f"token planes {speedups[0]}x-{speedups[-1]}x faster than the tuple "
        f"reference (floor {REQUIRED_SPEEDUP}x) on {len(rows)} workloads at n={N}",
    )


def test_round_engine_speedup(save_table):
    rows = run_round_engine_comparison()
    save_table(
        "round_engine_speedup",
        rows,
        f"Vectorised round engine - n={N} path, token planes vs tuple reference",
    )
    _write_artifact(rows)
    _check(rows)


def main() -> None:
    rows = run_round_engine_comparison()
    for row in rows:
        width = max(len(key) for key in row)
        for key, value in row.items():
            print(f"{key:<{width}}  {value}")
        print()
    _write_artifact(rows)
    _check(rows)
    print(f"OK: round engine meets the >= {REQUIRED_SPEEDUP}x bar on both workloads.")


if __name__ == "__main__":
    main()
