"""Fault recovery benchmark: round/word overhead of self-healing dissemination.

Robustness acceptance check for the fault-injection layer
(:mod:`repro.simulator.faults`): ``ResilientDissemination`` runs one
fault-free baseline and a grid of seeded fault scenarios — crash fraction on
one axis, global message-drop rate on the other — and must

* **complete** every scenario (every live node ends up knowing every token;
  token holders are excluded from the crash pick, so the full workload is
  always reachable),
* **replay** bit-identically when rerun with the same ``(seed, schedule)``
  (checked on the heaviest scenario), and
* keep the **overhead** — measured rounds and global words relative to the
  fault-free baseline — under ``FAULT_RECOVERY_MAX_OVERHEAD``.

The overhead bound is deliberately *relaxed* (faults are supposed to cost
something; the bound catches runaway retransmission loops, not perf
regressions): a 30% drop rate costs roughly ``1/(1-p)`` in delivered volume
plus whole extra attempt epochs, and crashing a quarter of the nodes *shrinks*
the broadcast, so the defaults sit far above the quiet-machine measurements
(~1.1-1.6x rounds) while still failing if retransmission ever goes quadratic.
CI may relax further via the environment variable on noisy runners.

Each run writes a machine-readable ``BENCH_fault_recovery.json`` trajectory
artifact (see ``_artifacts.py``) with per-scenario rounds, words, drops and
retransmissions.

Run directly (``python benchmarks/bench_fault_recovery.py``) or through pytest
(``pytest benchmarks/bench_fault_recovery.py``).
"""

from __future__ import annotations

import os
from typing import Any, Dict, List

from _artifacts import update_trajectory, write_bench_artifact
from repro.core.resilience import ResilientDissemination
from repro.graphs.generators import cycle_graph
from repro.simulator.config import ModelConfig
from repro.simulator.faults import crash_fraction_schedule
from repro.simulator.network import HybridSimulator

N = 64
K = 24
SEED = 11
HOLDERS = (0, 13, 37)
CRASH_FRACTIONS = (0.1, 0.25)
DROP_RATES = (0.0, 0.1, 0.3)
#: Relaxed robustness bound (see module docstring): rounds and words under
#: faults may cost at most this multiple of the fault-free baseline.
MAX_OVERHEAD = float(os.environ.get("FAULT_RECOVERY_MAX_OVERHEAD", "4.0"))


def _token_workload() -> Dict[int, List[Any]]:
    tokens: Dict[int, List[Any]] = {holder: [] for holder in HOLDERS}
    for index in range(K):
        tokens[HOLDERS[index % len(HOLDERS)]].append(("tok", index))
    return tokens


def _run_scenario(graph, tokens, schedule):
    simulator = HybridSimulator(
        graph, ModelConfig.hybrid(), seed=3, fault_schedule=schedule
    )
    result = ResilientDissemination(simulator, tokens).run()
    return result, simulator


def _fingerprint(result, simulator) -> Any:
    """Everything a rerun must reproduce byte-for-byte."""
    return (
        result.epochs,
        sorted(
            (str(node), tuple(sorted(map(str, known))))
            for node, known in result.known_tokens.items()
        ),
        simulator.metrics.summary(),
    )


def run_fault_recovery_comparison() -> List[Dict[str, Any]]:
    graph = cycle_graph(N)
    tokens = _token_workload()
    baseline_result, baseline_sim = _run_scenario(graph, tokens, None)
    base_rounds = baseline_sim.metrics.measured_rounds
    base_words = baseline_sim.metrics.global_words
    rows: List[Dict[str, Any]] = [
        {
            "scenario": "fault-free baseline",
            "crash fraction": 0.0,
            "drop rate": 0.0,
            "rounds": base_rounds,
            "global words": base_words,
            "round overhead": 1.0,
            "word overhead": 1.0,
            "dropped": 0,
            "retransmissions": 0,
            "epochs": baseline_result.epochs,
            "complete": baseline_result.all_live_nodes_know_all_tokens(),
            "replay identical": True,
        }
    ]
    assert baseline_sim.metrics.dropped_messages == 0
    heaviest = (max(CRASH_FRACTIONS), max(DROP_RATES))
    for crash_fraction in CRASH_FRACTIONS:
        for drop_rate in DROP_RATES:
            schedule = crash_fraction_schedule(
                N,
                crash_fraction,
                seed=SEED,
                crash_round=1,
                drop_rate=drop_rate,
                exclude=HOLDERS,
            )
            result, simulator = _run_scenario(graph, tokens, schedule)
            replay_identical = True
            if (crash_fraction, drop_rate) == heaviest:
                rerun_result, rerun_sim = _run_scenario(graph, tokens, schedule)
                replay_identical = _fingerprint(result, simulator) == _fingerprint(
                    rerun_result, rerun_sim
                )
            rows.append(
                {
                    "scenario": f"crash {crash_fraction:.0%}, drop {drop_rate:.0%}",
                    "crash fraction": crash_fraction,
                    "drop rate": drop_rate,
                    "rounds": simulator.metrics.measured_rounds,
                    "global words": simulator.metrics.global_words,
                    "round overhead": round(
                        simulator.metrics.measured_rounds / base_rounds, 3
                    ),
                    "word overhead": round(
                        simulator.metrics.global_words / base_words, 3
                    ),
                    "dropped": simulator.metrics.dropped_messages,
                    "retransmissions": simulator.metrics.retransmissions,
                    "epochs": result.epochs,
                    "complete": result.all_live_nodes_know_all_tokens(),
                    "replay identical": replay_identical,
                }
            )
    return rows


def _check(rows: List[Dict[str, Any]]) -> None:
    for row in rows:
        label = row["scenario"]
        assert row["complete"], f"{label}: some live node is missing tokens"
        assert row["replay identical"], f"{label}: rerun diverged from (seed, schedule)"
        assert row["round overhead"] <= MAX_OVERHEAD, (
            f"{label}: round overhead {row['round overhead']}x exceeds the "
            f"allowed {MAX_OVERHEAD}x"
        )
        assert row["word overhead"] <= MAX_OVERHEAD, (
            f"{label}: word overhead {row['word overhead']}x exceeds the "
            f"allowed {MAX_OVERHEAD}x"
        )
        if row["drop rate"] > 0.0:
            assert row["dropped"] > 0, f"{label}: drop rate set but nothing dropped"
            assert row["retransmissions"] > 0, (
                f"{label}: drops occurred but nothing was retransmitted"
            )


def _write_artifact(rows: List[Dict[str, Any]]) -> None:
    write_bench_artifact(
        "fault_recovery",
        rows,
        n=N,
        k=K,
        seed=SEED,
        holders=list(HOLDERS),
        crash_fractions=list(CRASH_FRACTIONS),
        drop_rates=list(DROP_RATES),
        max_overhead=MAX_OVERHEAD,
    )
    worst_rounds = max(row["round overhead"] for row in rows)
    worst_words = max(row["word overhead"] for row in rows)
    update_trajectory(
        "fault_recovery",
        f"self-healing dissemination peaks at {worst_rounds}x rounds / "
        f"{worst_words}x words vs fault-free (bound {MAX_OVERHEAD}x) over "
        f"{len(rows) - 1} fault scenarios at n={N}",
    )


def test_fault_recovery_overhead(save_table):
    rows = run_fault_recovery_comparison()
    save_table(
        "fault_recovery",
        rows,
        f"Fault recovery - n={N} cycle, k={K}, crash x drop sweep vs fault-free",
    )
    _write_artifact(rows)
    _check(rows)


def main() -> None:
    rows = run_fault_recovery_comparison()
    for row in rows:
        width = max(len(key) for key in row)
        for key, value in row.items():
            print(f"{key:<{width}}  {value}")
        print()
    _write_artifact(rows)
    _check(rows)
    print(f"OK: fault recovery stays under the {MAX_OVERHEAD}x overhead bound.")


if __name__ == "__main__":
    main()
