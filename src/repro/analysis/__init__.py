"""Theory predictions, measurement comparison, and the experiment harness."""

from repro.analysis.theory import TheoryPredictions
from repro.analysis.comparison import fit_power_law_exponent, ratio_series
from repro.analysis.tables import ExperimentRow, render_table, rows_to_markdown

__all__ = [
    "TheoryPredictions",
    "fit_power_law_exponent",
    "ratio_series",
    "ExperimentRow",
    "render_table",
    "rows_to_markdown",
]
