"""Cut-size approximation via sparsifier broadcast (Theorem 9, Section 6.4).

Theorem 9: in ``eO(NQ_n / eps + 1/eps^2)`` rounds of HYBRID_0, every node can
locally compute a (1+eps)-approximation of *every* cut size of the weighted
input graph, which immediately yields (1+eps)-approximations of minimum cut,
minimum s-t cut, sparsest cut and maximum cut.  The recipe: run a CONGEST cut
sparsifier construction (the paper cites [KX16], eO(1/eps^2) rounds) to obtain
a reweighted subgraph with ``eO(n / eps^2)`` edges that preserves all cuts up to
(1 +- eps), then broadcast those edges with Theorem 1.

We implement a Benczur-Karger style sparsifier: every edge is sampled with
probability inversely proportional to an *edge-strength* lower bound obtained
from a Nagamochi-Ibaraki forest decomposition (edges in the i-th forest have
strength at least i) and re-weighted by the inverse probability, which keeps
every cut's expected weight exact and concentrates it within (1 +- eps) w.h.p.
for the oversampling constant used.  Tests validate the approximation
empirically on random cuts and on the exact minimum cut.
"""

from __future__ import annotations

import dataclasses
import math
import random
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.core.neighborhood_quality import neighborhood_quality
from repro.simulator.config import log2_ceil
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = [
    "nagamochi_ibaraki_forest_index",
    "build_cut_sparsifier",
    "cut_weight",
    "CutApproximation",
    "CutSparsifierAPSP",
]


def nagamochi_ibaraki_forest_index(graph: nx.Graph) -> Dict[Tuple[Node, Node], int]:
    """Forest index of every edge (Nagamochi-Ibaraki scan).

    Repeatedly extract maximal spanning forests; the index of an edge is the
    number of the forest that picked it (1-based).  An edge with index ``i``
    has connectivity (strength) at least ``i`` between its endpoints, which is
    the lower bound the sparsifier sampling uses.
    """
    remaining = nx.Graph()
    remaining.add_nodes_from(graph.nodes)
    remaining.add_edges_from(graph.edges)
    index: Dict[Tuple[Node, Node], int] = {}
    forest_number = 0
    while remaining.number_of_edges() > 0:
        forest_number += 1
        forest = nx.Graph()
        forest.add_nodes_from(remaining.nodes)
        # Maximal spanning forest: scan edges, keep those joining distinct
        # components (union-find).
        parent: Dict[Node, Node] = {v: v for v in remaining.nodes}

        def find(v: Node) -> Node:
            while parent[v] != v:
                parent[v] = parent[parent[v]]
                v = parent[v]
            return v

        picked: List[Tuple[Node, Node]] = []
        for u, v in sorted(remaining.edges, key=lambda e: (str(e[0]), str(e[1]))):
            ru, rv = find(u), find(v)
            if ru != rv:
                parent[ru] = rv
                picked.append((u, v))
        for u, v in picked:
            key = (u, v) if str(u) <= str(v) else (v, u)
            index[key] = forest_number
            remaining.remove_edge(u, v)
    return index


def build_cut_sparsifier(
    graph: nx.Graph,
    epsilon: float,
    *,
    seed: Optional[int] = None,
    oversampling: float = 6.0,
) -> nx.Graph:
    """Benczur-Karger style (1+eps) cut sparsifier with ``eO(n / eps^2)`` edges."""
    if not 0 < epsilon < 1:
        raise ValueError("epsilon must lie in (0, 1)")
    rng = random.Random(seed)
    n = graph.number_of_nodes()
    rho = oversampling * math.log(max(n, 2)) / (epsilon * epsilon)
    strength = nagamochi_ibaraki_forest_index(graph)
    sparsifier = nx.Graph()
    sparsifier.add_nodes_from(graph.nodes)
    for u, v, data in graph.edges(data=True):
        key = (u, v) if str(u) <= str(v) else (v, u)
        weight = data.get("weight", 1)
        k_e = max(1, strength.get(key, 1))
        probability = min(1.0, rho / k_e)
        if rng.random() < probability:
            sparsifier.add_edge(u, v, weight=weight / probability)
    # Keep the sparsifier connected whenever the input was connected: add a
    # spanning forest of the original graph with its original weights if
    # sampling dropped a bridge (keeps cut estimates finite and conservative).
    if nx.is_connected(graph) and not nx.is_connected(sparsifier):
        for u, v in nx.minimum_spanning_edges(graph, weight="weight", data=False):
            if not sparsifier.has_edge(u, v):
                sparsifier.add_edge(u, v, weight=graph[u][v].get("weight", 1))
    return sparsifier


def cut_weight(graph: nx.Graph, side: Iterable[Node]) -> float:
    """Total weight of edges crossing the cut (side, V \\ side)."""
    side_set = set(side)
    total = 0.0
    for u, v, data in graph.edges(data=True):
        if (u in side_set) != (v in side_set):
            total += data.get("weight", 1)
    return total


@dataclasses.dataclass
class CutApproximation:
    """The sparsifier every node ends up knowing, plus accounting."""

    sparsifier: nx.Graph
    epsilon: float
    nq: int
    metrics: RoundMetrics

    def approximate_cut(self, side: Iterable[Node]) -> float:
        return cut_weight(self.sparsifier, side)

    def approximate_min_cut(self) -> float:
        return nx.stoer_wagner(self.sparsifier, weight="weight")[0]


class CutSparsifierAPSP:
    """Theorem 9: every node learns a (1+eps) cut sparsifier of the whole graph.

    Name note: despite living next to the APSP algorithms this class solves the
    *cut approximation* problem of Theorem 9; the common structure (construct a
    sparse certificate, broadcast it with Theorem 1, finish locally) is why it
    shares their shape.
    """

    def __init__(
        self, simulator: HybridSimulator, *, epsilon: float = 0.5, seed: Optional[int] = None
    ) -> None:
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must lie in (0, 1)")
        self.simulator = simulator
        self.epsilon = epsilon
        self.seed = seed

    def run(self) -> CutApproximation:
        sim = self.simulator
        n = sim.n
        log_n = log2_ceil(max(n, 2))
        eps = self.epsilon

        # CONGEST sparsifier construction, eO(1/eps^2) rounds (charged).
        sparsifier = build_cut_sparsifier(sim.graph, eps, seed=self.seed)
        sim.charge_rounds(
            int(math.ceil(1.0 / (eps * eps))) * log_n,
            "CONGEST cut-sparsifier construction",
            "Lemma 6.4 [KX16]",
        )

        # Broadcast the sparsifier's edges with Theorem 1.
        k = max(1, sparsifier.number_of_edges())
        nq_k = max(1, neighborhood_quality(sim.graph, k))
        sim.charge_rounds(
            nq_k * log_n,
            f"broadcast of the {k}-edge cut sparsifier",
            "Theorem 1 via Theorem 9",
        )
        nq_n = max(1, neighborhood_quality(sim.graph, n))
        return CutApproximation(
            sparsifier=sparsifier, epsilon=eps, nq=nq_n, metrics=sim.metrics
        )
