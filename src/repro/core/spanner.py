"""Multiplicative spanners (Lemma 6.1).

A subgraph ``H`` of a weighted graph ``G`` is a ``t``-spanner if
``d_H(u, v) <= t * d_G(u, v)`` for all node pairs.  Theorem 7's weighted APSP
algorithm computes a ``(2t - 1)``-spanner with ``O(t n^{1 + 1/t} log n)`` edges
(the deterministic CONGEST construction of [RG20, Corollary 3.16]) and then
broadcasts it.

We implement two constructions:

* :func:`greedy_spanner` — the classic greedy algorithm (Althoefer et al.):
  scan edges by non-decreasing weight and keep an edge iff the current spanner
  distance between its endpoints exceeds ``(2t - 1)`` times its weight.  This
  gives the girth-based size bound ``O(n^{1 + 1/t})`` deterministically and is
  the variant used by default (its output is deterministic, matching the
  deterministic flavour of Theorem 7).
* :func:`baswana_sen_spanner` — the randomized clustering-based construction of
  Baswana and Sen, closer in spirit to the distributed algorithms cited by the
  paper and faster on dense graphs.

The distributed wrapper charges the eO(1) CONGEST rounds of [RG20].
"""

from __future__ import annotations

import math
import random
from typing import Dict, Hashable, List, Optional, Set, Tuple

import networkx as nx

from repro.graphs.index import get_index
from repro.graphs.properties import edge_weight
from repro.simulator.config import log2_ceil
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = ["greedy_spanner", "baswana_sen_spanner", "distributed_spanner", "spanner_stretch"]


def greedy_spanner(graph: nx.Graph, t: int) -> nx.Graph:
    """Greedy ``(2t - 1)``-spanner with ``O(n^{1 + 1/t})`` edges."""
    if t < 1:
        raise ValueError("t must be at least 1")
    stretch = 2 * t - 1
    spanner = nx.Graph()
    spanner.add_nodes_from(graph.nodes)
    edges = sorted(
        graph.edges(data=True),
        key=lambda item: (item[2].get("weight", 1), str(item[0]), str(item[1])),
    )
    for u, v, data in edges:
        weight = data.get("weight", 1)
        try:
            current = nx.dijkstra_path_length(spanner, u, v, weight="weight")
        except (nx.NetworkXNoPath, nx.NodeNotFound):
            current = math.inf
        if current > stretch * weight:
            spanner.add_edge(u, v, weight=weight)
    return spanner


def baswana_sen_spanner(graph: nx.Graph, t: int, seed: Optional[int] = None) -> nx.Graph:
    """Randomized Baswana-Sen ``(2t - 1)``-spanner with expected ``O(t n^{1+1/t})`` edges."""
    if t < 1:
        raise ValueError("t must be at least 1")
    n = graph.number_of_nodes()
    rng = random.Random(seed)
    spanner = nx.Graph()
    spanner.add_nodes_from(graph.nodes)

    # cluster[v] = centre of v's cluster (None once v drops out).
    cluster: Dict[Node, Optional[Node]] = {v: v for v in graph.nodes}
    # Remaining edges, as an adjacency structure we prune as we go.
    remaining = {v: dict() for v in graph.nodes}
    for u, v, data in graph.edges(data=True):
        w = data.get("weight", 1)
        remaining[u][v] = w
        remaining[v][u] = w

    sample_probability = n ** (-1.0 / t) if n > 1 else 1.0

    for _ in range(max(0, t - 1)):
        centres = {c for c in cluster.values() if c is not None}
        sampled: Set[Node] = {c for c in centres if rng.random() < sample_probability}
        new_cluster: Dict[Node, Optional[Node]] = {}
        for v in graph.nodes:
            centre = cluster[v]
            if centre is not None and centre in sampled:
                new_cluster[v] = centre
                continue
            # v's cluster was not sampled: connect to the nearest sampled
            # neighbouring cluster (by lightest edge) or keep one edge per
            # neighbouring cluster.
            incident: Dict[Node, Tuple[float, Node]] = {}
            for u, w in remaining[v].items():
                c_u = cluster[u]
                if c_u is None:
                    continue
                if c_u not in incident or w < incident[c_u][0]:
                    incident[c_u] = (w, u)
            sampled_neighbours = {
                c: info for c, info in incident.items() if c in sampled
            }
            if sampled_neighbours:
                best_centre, (best_weight, best_node) = min(
                    sampled_neighbours.items(), key=lambda kv: (kv[1][0], str(kv[0]))
                )
                spanner.add_edge(v, best_node, weight=best_weight)
                new_cluster[v] = best_centre
                # Baswana-Sen rule: additionally add the lightest edge to every
                # neighbouring cluster whose connecting edge is lighter than the
                # chosen one, then discard all edges into those clusters and
                # into the chosen cluster (edges to heavier clusters survive to
                # the next phase).
                for c, (w, u) in sorted(incident.items(), key=lambda kv: str(kv[0])):
                    if c != best_centre and w >= best_weight:
                        continue
                    if c != best_centre:
                        spanner.add_edge(v, u, weight=w)
                    for neighbor in list(remaining[v]):
                        if cluster[neighbor] == c:
                            remaining[v].pop(neighbor, None)
                            remaining[neighbor].pop(v, None)
            else:
                # No sampled neighbouring cluster: add one lightest edge per
                # neighbouring cluster and drop out.
                for c, (w, u) in sorted(incident.items(), key=lambda kv: str(kv[0])):
                    spanner.add_edge(v, u, weight=w)
                for u in list(remaining[v]):
                    remaining[v].pop(u, None)
                    remaining[u].pop(v, None)
                new_cluster[v] = None
        cluster = new_cluster

    # Final phase: every surviving node adds one lightest edge to each
    # neighbouring cluster.
    for v in graph.nodes:
        incident: Dict[Node, Tuple[float, Node]] = {}
        for u, w in remaining[v].items():
            c_u = cluster[u]
            if c_u is None:
                continue
            if c_u not in incident or w < incident[c_u][0]:
                incident[c_u] = (w, u)
        for c, (w, u) in sorted(incident.items(), key=lambda kv: str(kv[0])):
            spanner.add_edge(v, u, weight=w)

    return spanner


def distributed_spanner(
    simulator: HybridSimulator, t: int, *, randomized: bool = False, seed: Optional[int] = None
) -> nx.Graph:
    """Spanner construction with the eO(1)-round CONGEST cost charged (Lemma 6.1)."""
    if randomized:
        spanner = baswana_sen_spanner(simulator.graph, t, seed=seed)
    else:
        spanner = greedy_spanner(simulator.graph, t)
    log_n = log2_ceil(max(simulator.n, 2))
    simulator.charge_rounds(
        t * log_n,
        f"(2*{t}-1)-spanner construction in CONGEST",
        "Lemma 6.1 [RG20, Corollary 3.16]",
    )
    return spanner


def spanner_stretch(graph: nx.Graph, spanner: nx.Graph, sample: Optional[int] = None,
                    seed: Optional[int] = None) -> float:
    """Maximum observed stretch ``d_spanner / d_graph`` over (sampled) node pairs."""
    rng = random.Random(seed)
    nodes = sorted(graph.nodes, key=str)
    if sample is not None and sample < len(nodes):
        sources = rng.sample(nodes, sample)
    else:
        sources = nodes
    worst = 1.0
    graph_index = get_index(graph)
    spanner_index = get_index(spanner)
    for source in sources:
        original = graph_index.sssp_dict(source)
        in_spanner = spanner_index.sssp_dict(source)
        for target, dist in original.items():
            if target == source or dist == 0:
                continue
            spanner_dist = in_spanner.get(target, math.inf)
            worst = max(worst, spanner_dist / dist)
    return worst
