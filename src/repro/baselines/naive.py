"""Simulatable baseline algorithms.

These are the "obvious" ways to solve the paper's problems using only one of
the two communication modes, or using the existential sqrt(n)-skeleton recipe
of prior work.  They are run through the same simulator and metrics pipeline as
the paper's algorithms so the benchmark tables can show measured-vs-measured
comparisons in addition to the analytic prior-work bounds of
:mod:`repro.baselines.existential`.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Dict, Hashable, List, Optional, Sequence, Set

from array import array

from repro.core.shortest_paths import DenseDistanceTable
from repro.core.skeleton import build_skeleton
from repro.graphs.index import SSSPRowCache, get_index
from repro.graphs.properties import h_hop_limited_distances
from repro.simulator.engine import BatchAlgorithm, GlobalTriple
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = ["LocalFloodingBroadcast", "NaiveGlobalBroadcast", "SqrtNSkeletonAPSP"]


@dataclasses.dataclass
class BroadcastOutcome:
    """Result of a baseline broadcast."""

    known_tokens: Dict[Node, Set[Any]]
    tokens: Set[Any]
    metrics: RoundMetrics

    def all_nodes_know_all_tokens(self) -> bool:
        return all(known == self.tokens for known in self.known_tokens.values())


class LocalFloodingBroadcast:
    """Broadcast every token by flooding the local network only (LOCAL model).

    Takes exactly ``max_v ecc(v over token holders)`` rounds, i.e. up to the
    diameter ``D`` — the trivial algorithm against which the paper's global
    problems are measured ("any problem is solvable in D rounds in LOCAL").
    """

    def __init__(self, simulator: HybridSimulator, tokens_by_node: Dict[Node, Sequence[Any]]):
        self.simulator = simulator
        self.tokens_by_node = {node: list(tokens) for node, tokens in tokens_by_node.items()}

    def run(self) -> BroadcastOutcome:
        sim = self.simulator
        all_tokens: Set[Any] = set()
        known: Dict[Node, Set[Any]] = {v: set() for v in sim.nodes}
        for node, tokens in self.tokens_by_node.items():
            known[node].update(tokens)
            all_tokens.update(tokens)
        if not all_tokens:
            return BroadcastOutcome(known_tokens=known, tokens=set(), metrics=sim.metrics)

        while not all(tokens == all_tokens for tokens in known.values()):
            for v in sim.nodes:
                if known[v]:
                    sim.local_broadcast(v, frozenset(known[v]), tag="flood")
            sim.advance_round()
            for v in sim.nodes:
                for message in sim.local_inbox(v):
                    if message.tag == "flood":
                        known[v].update(message.payload)
        return BroadcastOutcome(known_tokens=known, tokens=all_tokens, metrics=sim.metrics)


class NaiveGlobalBroadcast(BatchAlgorithm):
    """Broadcast every token to every node individually over the global mode.

    This is the pure-NCC strategy: the token holders unicast each token to each
    of the ``n`` nodes, throttled to the per-node budget.  It needs
    ``~ k * n / (n * gamma) = k / gamma`` rounds on the receive side and
    ``~ k * n / gamma`` rounds per holder on the send side — the benchmarks show
    how badly it loses to Theorem 1 once ``k`` is large, illustrating the
    eOmega(n) bound for NCC-only information dissemination quoted in Section 1.5.

    The unicast workload moves through :meth:`~repro.simulator.engine.BatchAlgorithm.exchange`;
    ``engine="batch"`` (default) token-shards it through the batch messaging
    engine, ``engine="legacy"`` replays the original per-message
    ``throttled_global_exchange`` path with identical shards and round counts.
    """

    def __init__(
        self,
        simulator: HybridSimulator,
        tokens_by_node: Dict[Node, Sequence[Any]],
        *,
        engine: str = "batch",
    ):
        super().__init__(simulator, engine=engine)
        self.tokens_by_node = {node: list(tokens) for node, tokens in tokens_by_node.items()}
        self._known: Dict[Node, Set[Any]] = {v: set() for v in simulator.nodes}
        self._all_tokens: Set[Any] = set()

    def phases(self):
        return (("unicast", self._phase_unicast),)

    def _phase_unicast(self) -> None:
        sim = self.simulator
        triples: List[GlobalTriple] = []
        for node, tokens in sorted(self.tokens_by_node.items(), key=lambda kv: str(kv[0])):
            self._known[node].update(tokens)
            self._all_tokens.update(tokens)
            for token in tokens:
                for receiver in sim.nodes:
                    if receiver == node:
                        continue
                    triples.append((node, receiver, token))
        delivered = self.exchange(triples, "naive")
        for receiver, payloads in delivered.items():
            self._known[receiver].update(payloads)

    def finish(self) -> BroadcastOutcome:
        return BroadcastOutcome(
            known_tokens=self._known,
            tokens=self._all_tokens,
            metrics=self.simulator.metrics,
        )


class SqrtNSkeletonAPSP:
    """The [KS20]-style existential APSP recipe: a sqrt(n)-skeleton.

    Build a skeleton with sampling probability ``1/sqrt(n)`` (so ``h ~ sqrt(n)``
    local rounds), make the skeleton globally known, and let every node combine
    its ``h``-hop local distances with the skeleton distances.  The output is an
    exact APSP w.h.p.; the round cost is eTheta(sqrt n) regardless of the graph
    — which is exactly the existential behaviour the universally optimal
    algorithms of Theorems 6-8 improve on when ``NQ_n << sqrt(n)``.

    The per-node ``h``-hop limited tables run on the
    :class:`~repro.graphs.index.GraphIndex` flat-array Bellman-Ford (via
    :func:`~repro.graphs.properties.h_hop_limited_distances`), not one
    Python-dict relaxation per node, and :meth:`run` returns a lazy
    :class:`~repro.core.shortest_paths.DenseDistanceTable`
    (``row_store="array"``) whose skeleton Dijkstra rows are computed on
    first use — values identical to the historical eager dict-of-dicts.
    """

    def __init__(self, simulator: HybridSimulator, *, seed: Optional[int] = None):
        self.simulator = simulator
        self.seed = seed

    def run(self) -> DenseDistanceTable:
        sim = self.simulator
        n = sim.n
        probability = min(1.0, 1.0 / math.sqrt(max(n, 1)))
        skeleton = build_skeleton(sim.graph, probability, seed=self.seed)
        sim.charge_rounds(skeleton.h, "sqrt(n)-skeleton construction", "[KS20]")
        sim.charge_rounds(
            int(math.ceil(math.sqrt(n))),
            "making the skeleton graph globally known",
            "[KS20] / [AHK+20]",
        )
        # One GraphIndex over the skeleton serves every skeleton-node Dijkstra;
        # the per-source rows are pulled lazily by the returned dense table,
        # one Dijkstra per skeleton node a row actually touches, instead of an
        # eager all-skeleton dict-of-dicts.
        skeleton_rows = SSSPRowCache(get_index(skeleton.graph))
        h = skeleton.h
        sim.charge_rounds(h, "h-hop local distance computation", "[KS20]")
        skeleton_set = set(skeleton.skeleton_nodes)
        limited = {v: h_hop_limited_distances(sim.graph, v, h) for v in sim.nodes}
        columns = list(sim.nodes)
        inf = math.inf
        n_sk = skeleton_rows.index.n

        # Per-column nearby-skeleton entry points, resolved once: column j can
        # be reached from the skeleton only through ``col_pos[j]`` (skeleton
        # index positions) at costs ``col_dist[j]``.
        col_pos: List[array] = []
        col_dist: List[array] = []
        for w in columns:
            lim_w = limited[w]
            col_pos.append(
                array(
                    "q",
                    (skeleton_rows.position_of(z) for z in lim_w if z in skeleton_set),
                )
            )
            col_dist.append(
                array("d", (lim_w[z] for z in lim_w if z in skeleton_set))
            )

        # The historical quadruple loop evaluated
        # ``(limited[v][u] + d_skel(u, z)) + limited[w][z]`` per (u, z) pair
        # per column.  Factoring the u-minimum out per skeleton node first is
        # value-exact — ``x -> fl(x + c)`` is monotone, so the minimum over z
        # of the factored sums equals the minimum over all (u, z) candidates —
        # and turns the per-row cost from |U| * |Z| products into |U| + |Z|
        # sums against one |skeleton|-wide scratch row.
        def make_row(v: Node) -> List[float]:
            lim_v = limited[v]
            via = [inf] * n_sk
            for u in lim_v:
                if u not in skeleton_set:
                    continue
                row_u = skeleton_rows.row(u)
                d_v_u = lim_v[u]
                for p in range(n_sk):
                    candidate = d_v_u + row_u[p]
                    if candidate < via[p]:
                        via[p] = candidate
            out: List[float] = []
            for j, w in enumerate(columns):
                best = lim_v.get(w, inf)
                positions = col_pos[j]
                distances = col_dist[j]
                for i in range(len(positions)):
                    candidate = via[positions[i]] + distances[i]
                    if candidate < best:
                        best = candidate
                out.append(best)
            return out

        return DenseDistanceTable(
            row_nodes=columns,
            columns=columns,
            row_factory=make_row,
            stretch_bound=1.0,
            metrics=sim.metrics,
            row_store="array",
            index=skeleton_rows.index,
        )
