"""Edge-weight assignment schemes.

The paper's weighted problems assume positive integer weights polynomial in
``n`` (Section 1.2).  The helpers below mutate a graph in place and return it,
so they compose with the generators:

    >>> from repro.graphs import grid_graph, assign_random_weights
    >>> g = assign_random_weights(grid_graph(4), max_weight=10, seed=0)

Each helper rewrites *every* edge weight, so patching the cached
:class:`~repro.graphs.index.GraphIndex` incrementally (the
:class:`~repro.graphs.mutation.GraphMutator` path for single-edge edits)
would be pointless work — they take the full-drop path instead:
:func:`~repro.graphs.index.invalidate_index` retires the cached index and
bumps the graph's version stamp, so every versioned consumer (``get_index``,
simulator plane sends, row caches) resynchronises on next use.  For
single-edge re-weighting prefer ``GraphMutator.update_weight``.
"""

from __future__ import annotations

import random
from typing import Optional

import networkx as nx

from repro.graphs.index import invalidate_index

__all__ = [
    "unit_weights",
    "assign_uniform_weights",
    "assign_random_weights",
    "assign_polynomial_weights",
]


def unit_weights(graph: nx.Graph) -> nx.Graph:
    """Set every edge weight to 1 (the unweighted convention ``w == 1``)."""
    for u, v in graph.edges:
        graph[u][v]["weight"] = 1
    invalidate_index(graph)
    return graph


def assign_uniform_weights(graph: nx.Graph, weight: int) -> nx.Graph:
    """Set every edge weight to the given positive integer."""
    if weight <= 0:
        raise ValueError("weight must be positive")
    for u, v in graph.edges:
        graph[u][v]["weight"] = int(weight)
    invalidate_index(graph)
    return graph


def assign_random_weights(
    graph: nx.Graph, max_weight: int, seed: Optional[int] = None
) -> nx.Graph:
    """Assign independent uniform integer weights from ``[1, max_weight]``."""
    if max_weight < 1:
        raise ValueError("max_weight must be at least 1")
    rng = random.Random(seed)
    for u, v in sorted(graph.edges, key=lambda e: (str(e[0]), str(e[1]))):
        graph[u][v]["weight"] = rng.randint(1, max_weight)
    invalidate_index(graph)
    return graph


def assign_polynomial_weights(
    graph: nx.Graph, exponent: float = 2.0, seed: Optional[int] = None
) -> nx.Graph:
    """Assign random weights up to ``n**exponent`` (capped at the paper's bound).

    Useful for stress-testing the weighted shortest-paths algorithms with large
    weight ranges while staying within the "polynomial in n" assumption.
    """
    n = max(graph.number_of_nodes(), 2)
    if exponent <= 0:
        raise ValueError("exponent must be positive")
    if exponent > 4:
        raise ValueError("exponent above 4 violates the polynomial-weight assumption")
    max_weight = max(1, int(n**exponent))
    return assign_random_weights(graph, max_weight=max_weight, seed=seed)
