"""Uniform load balancing within a cluster (Lemma 4.1).

Given a node set ``C`` of weak diameter ``d`` and a multiset of messages ``M``
held by the nodes of ``C``, Lemma 4.1 redistributes the messages so that every
node of ``C`` holds at most ``ceil(|M| / |C|)`` of them, in ``2d`` rounds: the
messages (and identifiers) are flooded to everyone, the minimum-identifier node
computes an allocation and floods it back.

The redistribution itself happens over the unlimited-bandwidth local mode, so
the simulator-level content of the operation is simply "2d rounds of local
flooding within C"; we compute the resulting allocation directly and charge the
2d rounds, keeping the allocation rule (round-robin over identifier-sorted
members, preserving a deterministic message order) explicit and testable.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Sequence

from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = ["balance_items", "cluster_load_balance"]


def balance_items(
    members: Sequence[Node], items_by_node: Dict[Node, List[Any]]
) -> Dict[Node, List[Any]]:
    """Round-robin reallocation so each member holds at most ``ceil(total/|C|)``.

    ``members`` fixes the allocation order; items are gathered in member order
    (then original order within a member) so the result is deterministic.
    """
    members = list(members)
    if not members:
        raise ValueError("members must be non-empty")
    pool: List[Any] = []
    for member in members:
        pool.extend(items_by_node.get(member, []))
    allocation: Dict[Node, List[Any]] = {member: [] for member in members}
    if not pool:
        return allocation
    quota = -(-len(pool) // len(members))  # ceil division
    cursor = 0
    for item in pool:
        # Find the next member with spare quota (round-robin).
        for _ in range(len(members)):
            member = members[cursor % len(members)]
            cursor += 1
            if len(allocation[member]) < quota:
                allocation[member].append(item)
                break
    return allocation


def cluster_load_balance(
    simulator: HybridSimulator,
    members: Sequence[Node],
    items_by_node: Dict[Node, List[Any]],
    weak_diameter: int,
    reason: str = "cluster load balancing",
) -> Dict[Node, List[Any]]:
    """Lemma 4.1 with the paper's round accounting (``2 * weak_diameter`` local rounds)."""
    allocation = balance_items(members, items_by_node)
    simulator.charge_rounds(max(0, 2 * weak_diameter), reason, "Lemma 4.1")
    return allocation
