"""Unit tests for ruling sets (Definition 3.4) and the NQ_k-clustering (Lemma 3.5)."""

import math

import pytest

from repro.core.clustering import (
    Cluster,
    _split_cluster,
    distributed_nq_clustering,
    nq_clustering,
)
from repro.core.neighborhood_quality import neighborhood_quality
from repro.core.ruling_sets import (
    distributed_ruling_set,
    greedy_ruling_set,
    verify_ruling_set,
)
from repro.graphs.generators import cycle_graph, grid_graph, path_graph, star_graph
from repro.graphs.properties import hop_distances_from, weak_diameter
from repro.simulator.config import ModelConfig, log2_ceil
from repro.simulator.network import HybridSimulator


class TestRulingSets:
    @pytest.mark.parametrize("alpha", [1, 2, 3, 5])
    def test_greedy_separation(self, alpha):
        g = grid_graph(6, 2)
        ruling = greedy_ruling_set(g, alpha)
        for w in ruling:
            dist = hop_distances_from(g, w)
            for other in ruling:
                if other != w:
                    assert dist[other] >= alpha

    @pytest.mark.parametrize("alpha", [1, 2, 3, 5])
    def test_greedy_domination(self, alpha):
        g = grid_graph(6, 2)
        ruling = greedy_ruling_set(g, alpha)
        assert verify_ruling_set(g, ruling, alpha, max(0, alpha - 1))

    def test_alpha_one_is_all_nodes(self):
        g = path_graph(6)
        assert greedy_ruling_set(g, 1) == set(g.nodes)

    def test_large_alpha_gives_single_ruler(self):
        g = path_graph(10)
        ruling = greedy_ruling_set(g, 100)
        assert len(ruling) == 1

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            greedy_ruling_set(path_graph(3), 0)

    def test_verify_rejects_bad_separation(self):
        g = path_graph(10)
        assert not verify_ruling_set(g, {0, 1}, alpha=3, beta=9)

    def test_verify_rejects_bad_domination(self):
        g = path_graph(10)
        assert not verify_ruling_set(g, {0}, alpha=2, beta=3)

    def test_distributed_wrapper_charges_kmw18_rounds(self):
        g = grid_graph(5, 2)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        mu = 3
        ruling = distributed_ruling_set(sim, mu)
        assert verify_ruling_set(g, ruling, mu + 1, mu * log2_ceil(g.number_of_nodes()))
        assert sim.metrics.charged_rounds == mu * log2_ceil(g.number_of_nodes())

    def test_distributed_wrapper_invalid_mu(self):
        sim = HybridSimulator(path_graph(4), ModelConfig.hybrid0(), seed=0)
        with pytest.raises(ValueError):
            distributed_ruling_set(sim, 0)


class TestClusteringLemma35:
    @pytest.mark.parametrize(
        "graph_builder,k",
        [
            (lambda: path_graph(60), 30),
            (lambda: cycle_graph(48), 24),
            (lambda: grid_graph(7, 2), 40),
            (lambda: grid_graph(8, 2), 64),
            (lambda: star_graph(30), 10),
        ],
    )
    def test_partition_covers_all_nodes_exactly_once(self, graph_builder, k):
        g = graph_builder()
        clustering = nq_clustering(g, k)
        seen = []
        for cluster in clustering.clusters:
            seen.extend(cluster.members)
        assert sorted(seen, key=str) == sorted(g.nodes, key=str)

    @pytest.mark.parametrize(
        "graph_builder,k",
        [
            (lambda: path_graph(60), 30),
            (lambda: grid_graph(7, 2), 40),
            (lambda: cycle_graph(48), 24),
        ],
    )
    def test_cluster_sizes_within_lemma_bounds(self, graph_builder, k):
        g = graph_builder()
        clustering = nq_clustering(g, k)
        nq = clustering.nq
        n = g.number_of_nodes()
        lower = min(n, k / nq)
        upper = 2 * lower
        for cluster in clustering.clusters:
            assert len(cluster) >= math.floor(lower)
            assert len(cluster) <= math.ceil(upper)

    @pytest.mark.parametrize(
        "graph_builder,k",
        [
            (lambda: path_graph(60), 30),
            (lambda: grid_graph(7, 2), 40),
        ],
    )
    def test_weak_diameter_bound(self, graph_builder, k):
        g = graph_builder()
        n = g.number_of_nodes()
        clustering = nq_clustering(g, k)
        bound = 4 * clustering.nq * log2_ceil(n)
        for cluster in clustering.clusters:
            assert weak_diameter(g, cluster.members) <= bound

    def test_each_cluster_has_member_leader(self):
        g = grid_graph(6, 2)
        clustering = nq_clustering(g, 24)
        for cluster in clustering.clusters:
            assert cluster.leader in cluster.members

    def test_cluster_of_lookup(self):
        g = path_graph(40)
        clustering = nq_clustering(g, 20)
        for cluster in clustering.clusters:
            for member in cluster.members:
                assert clustering.cluster_of[member] == cluster.index
                assert clustering.cluster_containing(member) is cluster

    def test_leader_ball_contained_in_some_cluster_before_split(self):
        # Indirect check of Observation 3.2's role: the number of clusters can
        # not exceed n * NQ_k / k (each has >= k / NQ_k members).
        g = path_graph(80)
        k = 40
        clustering = nq_clustering(g, k)
        n = g.number_of_nodes()
        assert len(clustering.clusters) <= math.ceil(n * clustering.nq / k)

    def test_k_larger_than_n_is_capped(self):
        g = grid_graph(4, 2)
        clustering = nq_clustering(g, 10_000)
        assert len(clustering.clusters) >= 1
        total = sum(len(c) for c in clustering.clusters)
        assert total == g.number_of_nodes()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            nq_clustering(path_graph(4), 0)

    def test_nq_hint_respected(self):
        g = path_graph(40)
        nq = neighborhood_quality(g, 20)
        clustering = nq_clustering(g, 20, nq=nq)
        assert clustering.nq == nq

    def test_distributed_wrapper_charges_rounds(self):
        g = grid_graph(5, 2)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        clustering = distributed_nq_clustering(sim, 20)
        assert len(clustering.clusters) >= 1
        assert sim.metrics.charged_rounds > 0
        # Charge scales with NQ_k * log n (three components in the construction).
        log_n = log2_ceil(g.number_of_nodes())
        assert sim.metrics.charged_rounds <= 10 * clustering.nq * log_n + log_n


class TestClusterMembership:
    class _Probe:
        """Hashable node that counts how often its hash is taken."""

        hashes = 0

        def __init__(self, value):
            self.value = value

        def __hash__(self):
            TestClusterMembership._Probe.hashes += 1
            return hash(self.value)

        def __eq__(self, other):
            return isinstance(other, type(self)) and self.value == other.value

        def __repr__(self):  # pragma: no cover - debug aid
            return f"Probe({self.value})"

    def test_repeated_contains_does_not_rematerialise_member_set(self):
        Probe = self._Probe
        members = [Probe(i) for i in range(50)]
        cluster = Cluster(leader=members[0], members=members, index=0)
        Probe.hashes = 0
        assert members[10] in cluster
        after_first = Probe.hashes
        # The first check materialises the frozenset: one hash per member
        # plus the probe itself.
        assert after_first >= len(members)
        for _ in range(20):
            assert members[7] in cluster
            assert Probe(999) not in cluster
        # 40 further probes must cost O(1) hashes each — a per-check rebuild
        # of the 50-element set would add >= 20 * 50 hashes here.
        assert Probe.hashes - after_first < len(members)

    def test_contains_served_from_cached_frozenset(self):
        cluster = Cluster(leader=1, members=[1, 2, 3], index=0)
        assert 2 in cluster
        first = cluster._member_set
        assert isinstance(first, frozenset)
        assert 4 not in cluster
        assert cluster._member_set is first

    def test_contains_semantics_unchanged(self):
        cluster = Cluster(leader="a", members=["a", "b", "c"], index=3)
        assert "a" in cluster and "c" in cluster
        assert "z" not in cluster
        assert len(cluster) == 3


class TestSplitCluster:
    """Boundary cases pinning the size-bound contract of Lemma 3.5's split."""

    def _check_partition(self, chunks, members):
        flat = [node for chunk in chunks for node in chunk]
        assert flat == list(members)  # order-preserving exact partition
        assert all(chunk for chunk in chunks)

    def test_total_exactly_upper_is_single_chunk(self):
        members = list(range(8))
        chunks = _split_cluster(members, lower=4, upper=8)
        assert chunks == [members]

    def test_total_exactly_lower_is_single_chunk(self):
        members = list(range(4))
        chunks = _split_cluster(members, lower=4, upper=8)
        assert chunks == [members]

    def test_just_above_upper_splits_within_bounds(self):
        members = list(range(9))
        chunks = _split_cluster(members, lower=4, upper=8)
        self._check_partition(chunks, members)
        assert len(chunks) == 2
        assert all(4 <= len(chunk) <= 8 for chunk in chunks)

    def test_lower_below_one_is_treated_as_one(self):
        members = list(range(5))
        chunks = _split_cluster(members, lower=0.5, upper=2.0)
        self._check_partition(chunks, members)
        # lower < 1 clamps to 1: as many parts as members, each within bounds.
        assert all(0.5 <= len(chunk) <= 2.0 for chunk in chunks)

    def test_infeasible_bounds_upper_wins(self):
        # No chunk count puts every piece in [4, 6] for 7 members; the split
        # must respect the upper bound even if a chunk dips below lower.
        members = list(range(7))
        chunks = _split_cluster(members, lower=4, upper=6)
        self._check_partition(chunks, members)
        assert all(len(chunk) <= 6 for chunk in chunks)
        assert any(len(chunk) < 4 for chunk in chunks)

    def test_upper_smaller_than_lower_still_respects_upper(self):
        members = list(range(7))
        chunks = _split_cluster(members, lower=5, upper=3)
        self._check_partition(chunks, members)
        assert all(len(chunk) <= 3 for chunk in chunks)

    def test_fractional_bounds_from_lemma_parameters(self):
        # The call sites pass lower = k / NQ_k, upper = 2 * lower, which are
        # generally fractional; balanced chunking guarantees the *floored*
        # lower bound (the contract the Lemma 3.5 size tests assert) and the
        # exact upper bound.
        members = list(range(11))
        lower, upper = 2.5, 5.0
        chunks = _split_cluster(members, lower, upper)
        self._check_partition(chunks, members)
        assert all(
            math.floor(lower) <= len(chunk) <= math.ceil(upper) for chunk in chunks
        )


class TestMaxWeakDiameter:
    def test_matches_per_cluster_weak_diameter(self):
        g = grid_graph(6, 2)
        clustering = nq_clustering(g, 24)
        expected = max(
            weak_diameter(g, cluster.members) for cluster in clustering.clusters
        )
        assert clustering.max_weak_diameter(g) == expected

    def test_uses_one_shared_index(self, monkeypatch):
        import repro.core.clustering as clustering_module
        from repro.graphs.index import get_index

        g = path_graph(40)
        clustering = nq_clustering(g, 20)
        assert len(clustering.clusters) > 1
        calls = []
        real_get_index = clustering_module.get_index

        def counting_get_index(graph):
            calls.append(graph)
            return real_get_index(graph)

        monkeypatch.setattr(clustering_module, "get_index", counting_get_index)
        clustering.max_weak_diameter(g)
        # One index resolution for the whole clustering, not one per cluster.
        assert len(calls) == 1
