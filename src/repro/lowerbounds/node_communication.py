"""The node-communication problem (Appendix C, Lemma 7.1).

An instance consists of two disjoint node sets ``A`` and ``B`` at hop distance
``h``, and a random variable ``X`` with Shannon entropy ``H(X)`` whose outcome
the nodes of ``A`` collectively know and the nodes of ``B`` must learn.

Lemma 7.1: any algorithm solving the instance in HYBRID(infinity, gamma) with
success probability ``p`` needs at least

    ``min( (p * H(X) - 1) / (N * gamma),  h/2 - 1 )``

rounds in expectation, where ``N`` counts the nodes whose global communication
could carry information across the gap before local communication bridges it.
In the Lemma 7.2 construction (``B`` is a single node with a small ball) the
relevant count is ``|B_h(B)|``; we conservatively use the *smaller* of the two
sides' ``(h-1)``-neighborhoods, which is the bottleneck through which the
``H(X)`` bits must flow either way.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Hashable, Iterable, Set

import networkx as nx

from repro.graphs.properties import ball, hop_distances_from

Node = Hashable

__all__ = ["NodeCommunicationInstance", "node_communication_lower_bound"]


@dataclasses.dataclass(frozen=True)
class NodeCommunicationInstance:
    """A concrete node-communication instance on a given graph."""

    set_a: frozenset
    set_b: frozenset
    hop_distance: int
    reachable_count: int  # N = |B_{h-1}(A)|
    entropy_bits: float

    @staticmethod
    def build(
        graph: nx.Graph,
        set_a: Iterable[Node],
        set_b: Iterable[Node],
        entropy_bits: float,
    ) -> "NodeCommunicationInstance":
        a = frozenset(set_a)
        b = frozenset(set_b)
        if not a or not b:
            raise ValueError("both node sets must be non-empty")
        if a & b:
            raise ValueError("the node sets must be disjoint")
        if entropy_bits <= 0:
            raise ValueError("entropy must be positive")
        # hop(A, B) = min over pairs.
        h = math.inf
        for u in a:
            dist = hop_distances_from(graph, u)
            for v in b:
                h = min(h, dist.get(v, math.inf))
        if math.isinf(h):
            raise ValueError("the node sets are disconnected")
        h = int(h)
        # N = min(|B_{h-1}(A)|, |B_{h-1}(B)|): the tighter of the two global
        # communication bottlenecks (see module docstring).
        radius = max(0, h - 1)
        reachable_a: Set[Node] = set()
        for u in a:
            reachable_a |= ball(graph, u, radius)
        reachable_b: Set[Node] = set()
        for u in b:
            reachable_b |= ball(graph, u, radius)
        reachable = reachable_a if len(reachable_a) <= len(reachable_b) else reachable_b
        return NodeCommunicationInstance(
            set_a=a,
            set_b=b,
            hop_distance=h,
            reachable_count=len(reachable),
            entropy_bits=entropy_bits,
        )

    def lower_bound_rounds(self, gamma_bits: float, success_probability: float) -> float:
        return node_communication_lower_bound(
            entropy_bits=self.entropy_bits,
            reachable_count=self.reachable_count,
            hop_distance=self.hop_distance,
            gamma_bits=gamma_bits,
            success_probability=success_probability,
        )


def node_communication_lower_bound(
    *,
    entropy_bits: float,
    reachable_count: int,
    hop_distance: int,
    gamma_bits: float,
    success_probability: float,
) -> float:
    """Lemma 7.1: ``min((p H(X) - 1) / (N gamma), h/2 - 1)`` (never negative)."""
    if not 0 < success_probability <= 1:
        raise ValueError("success_probability must lie in (0, 1]")
    if gamma_bits <= 0 or reachable_count <= 0:
        raise ValueError("gamma and N must be positive")
    information_term = (success_probability * entropy_bits - 1.0) / (
        reachable_count * gamma_bits
    )
    locality_term = hop_distance / 2.0 - 1.0
    return max(0.0, min(information_term, locality_term))
