"""Cached, integer-indexed graph analytics engine (CSR adjacency + flat BFS).

The centralized analytics behind the paper's headline parameter ``NQ_k``
(Definition 3.1) used to run a full BFS from every node *twice* — once inside
``diameter()`` and once in ``ball_sizes_all_radii`` — making every NQ query
Theta(n * m) with large constants.  This module replaces that path with a
shared :class:`GraphIndex`: each ``networkx`` graph gets (at most) one
compressed-sparse-row adjacency built over integer node indices, plus flat-array
BFS primitives and incremental *ball growers* that evaluate Definition 3.1 with
early termination.

Why early termination is correct and fast
-----------------------------------------

``NQ_k(v) = min({t >= 1 : |B_t(v)| >= k / t} U {D})``.  The ball grower runs a
level-by-level BFS from ``v`` and checks the threshold after each level.  The
predicate ``|B_t(v)| >= k / t`` is *monotone in t* (the ball only grows while
``k / t`` only shrinks), so the first radius ``t`` at which it holds is exactly
the minimum in the definition — the BFS can stop there, having visited only
``|B_t(v)| ~ k / t`` nodes instead of the whole graph.  Since on every graph
``NQ_k <= sqrt(k)`` (Lemma 3.6), most nodes stop after a few hops and the
per-node cost is bounded by the ball that certifies the answer, not by ``n``.

The hop diameter ``D`` is only relevant for nodes whose BFS exhausts the graph
*before* the threshold is ever met (``k`` super-polynomial in the reachable
mass, e.g. a star with ``k = 10^6``).  For those nodes the ball size is pinned
at its final value ``S = |B_ecc(v)(v)|``, so the smallest satisfying radius
``t1`` solves ``S >= k / t1`` in O(1); the answer is ``min(t1, D)``.  ``D`` is
therefore computed *lazily* — never as ``n`` BFS passes, but via a cached
eccentricity-bound pruning search (double sweep + iFUB): BFS levels around a
midpoint of an approximately diametral path are scanned outward-in, and the
scan stops as soon as ``2 * level <= best_found``, because any pair realising a
larger diameter would have an endpoint in an already-scanned level.  The result
is exact; on paths/grids/barbells it needs only a handful of BFS passes.  A
running diameter *lower* bound (the largest eccentricity any full sweep has
seen) often answers ``min(t1, D)`` without computing ``D`` at all.

The weighted engine
-------------------

The index carries a weighted CSR (a ``weights`` array parallel to
``targets``), and since the weighted-analytics migration it is the single
substrate for every centralized weighted computation:

* :meth:`GraphIndex.sssp_row` / :meth:`GraphIndex.sssp_rows` — flat-array
  Dijkstra producing dense ``n``-wide distance rows.  The heap holds
  ``(distance, tie_rank)`` pairs whose precomputed integer ranks order ties
  exactly like the ``str`` tie keys of the historical dict+heapq
  implementation (kept as ``_reference_*`` in :mod:`repro.core.sssp`), with
  the same relaxation tolerance, so the produced distances are identical —
  only the containers are flat.
* A cached *rounded-weight* CSR per ``epsilon``: the power-of-``(1 + eps)``
  rounding behind ``approx_sssp_distances`` (Theorem 13's functional
  substitution) is applied to the whole weight array **once per (graph,
  epsilon)** and memoised, instead of once per edge relaxation per query —
  the per-leader / per-skeleton SSSP sweeps of Theorems 5/6/14 share it.
* :meth:`GraphIndex.closest_sources` — one flat multi-source BFS returning
  ``(distance, argmin-source)`` per node with deterministic minimum-rank
  tie-breaking, which is exactly the "closest ruler, ties by minimum
  identifier" assignment of the Lemma 3.5 clustering; the distances double
  as the per-cluster BFS order, so :func:`repro.core.clustering.nq_clustering`
  needs a single sweep where it used to run one BFS per ruler twice.
* :meth:`GraphIndex.ruling_set` — the greedy (alpha, alpha-1)-ruling set
  grown from flat truncated frontiers over the CSR.

Caching
-------

:func:`get_index` memoises one :class:`GraphIndex` per graph object in a
``WeakKeyDictionary`` (the index holds no strong reference back to the graph,
so graphs are collected normally).  Scalar ``NQ_k`` values are additionally
memoised per ``(index, k)``, and rounded-weight CSR arrays per ``epsilon`` —
repeated ``neighborhood_quality(graph, k)`` / ``approx_sssp_distances(graph,
s, eps)`` calls inside one experiment (routing + shortest paths + lower
bounds on the same instance) cost one computation each.

Versioned mutation (the staleness contract)
-------------------------------------------

Graphs are no longer assumed frozen.  Every graph carries a **version stamp**
(:func:`graph_version`, stored weakly so untouched graphs cost nothing), and
every :class:`GraphIndex` records the version it reflects.  :func:`get_index`
serves a cached index only while the stamps match (a node/edge-count
comparison is kept as a backstop for out-of-band ``networkx`` mutations that
nothing stamped) — so rewiring or re-weighting through the supported paths is
always detected, including edits that preserve both counts.

Who bumps: :class:`repro.graphs.mutation.GraphMutator` (the supported edit
API — it additionally patches the cached index *in place*, see the
``apply_*`` methods), the :mod:`repro.graphs.weighted` helpers (via
:func:`invalidate_index`), and :func:`invalidate_index` itself, which both
bumps the stamp and marks the dropped index *retired*.  Who checks:
:func:`get_index`, :class:`SSSPRowCache` reads,
:class:`repro.core.shortest_paths.DenseDistanceTable` reads, and
``HybridSimulator`` plane sends.  A consumer holding state derived from a
retired or out-of-version index raises :class:`StaleIndexError` instead of
returning stale distances.  Code that edits ``graph[u][v]["weight"]`` by
hand (bypassing the mutator) must still call :func:`invalidate_index`
afterwards; see DESIGN.md for the full protocol and the partial-reindex vs
full-drop decision table.
"""

from __future__ import annotations

import heapq
import math
import weakref
from array import array
from collections import OrderedDict
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

Node = Hashable

__all__ = [
    "GraphIndex",
    "SSSPRowCache",
    "StaleIndexError",
    "bump_graph_version",
    "get_index",
    "graph_version",
    "invalidate_index",
    "round_weight_up",
]


class StaleIndexError(RuntimeError):
    """A read through an index (or index-derived state) that mutation killed.

    Raised instead of silently returning distances computed against a dead
    CSR: after :func:`invalidate_index` or a :class:`~repro.graphs.mutation.
    GraphMutator` edit, any :class:`SSSPRowCache` or lazy
    :class:`~repro.core.shortest_paths.DenseDistanceTable` still holding the
    old index refuses further reads.  Re-run the producer against the current
    :func:`get_index` to get fresh values.
    """


# ----------------------------------------------------------------------
# Per-graph version stamps
# ----------------------------------------------------------------------
# Weak so that stamping never extends a graph's lifetime; a graph that was
# never mutated through the supported paths has no entry and reads version 0.
_GRAPH_VERSIONS: "weakref.WeakKeyDictionary[nx.Graph, int]" = (
    weakref.WeakKeyDictionary()
)


def graph_version(graph: nx.Graph) -> int:
    """The current mutation-version stamp of ``graph`` (0 if never bumped).

    Unhashable / non-weakrefable graph-like objects cannot carry a stamp and
    always read 0 — for those, staleness detection falls back to the
    node/edge-count comparison in :func:`get_index`.
    """
    try:
        return _GRAPH_VERSIONS.get(graph, 0)
    except TypeError:
        return 0


def bump_graph_version(graph: nx.Graph) -> Optional[int]:
    """Advance ``graph``'s version stamp; returns the new version.

    Every supported mutation path calls this (directly or via
    :func:`invalidate_index`).  Returns ``None`` when ``graph`` cannot be
    stamped (unhashable / non-weakrefable) — callers must then fall back to
    :func:`invalidate_index` semantics.
    """
    try:
        version = _GRAPH_VERSIONS.get(graph, 0) + 1
        _GRAPH_VERSIONS[graph] = version
        return version
    except TypeError:
        return None


def round_weight_up(weight: float, epsilon: float) -> float:
    """Round ``weight`` up to the nearest integer power of ``(1 + epsilon)``.

    The classical weight-rounding scheme behind the paper's Theorem 13
    substitution (see :mod:`repro.core.sssp`, which re-exports this function):
    running an exact shortest-path computation on the rounded weights
    over-estimates every distance by at most a factor ``(1 + epsilon)``.
    Weights of 0 or less are rejected (the paper assumes positive weights).
    """
    if weight <= 0:
        raise ValueError("edge weights must be positive")
    if epsilon <= 0:
        return float(weight)
    base = 1.0 + epsilon
    exponent = math.ceil(math.log(weight, base) - 1e-12)
    rounded = base**exponent
    # Guard against floating point dipping below the original weight.
    if rounded < weight:
        rounded *= base
    return rounded


class GraphIndex:
    """CSR-style integer-indexed view of one ``networkx`` graph.

    ``nodes[i]`` is the node with index ``i`` and ``index_of[node]`` inverts
    it; the adjacency of index ``u`` is ``targets[offsets[u]:offsets[u + 1]]``.
    All BFS primitives work on flat integer arrays with an epoch-stamped
    ``visited`` scratch vector, so a query touching only a small ball costs
    only that ball — no O(n) per-query (re)initialisation.

    The index records the :func:`graph_version` it reflects (:attr:`version`)
    and supports in-place incremental maintenance for single-edge edits whose
    endpoints already exist (:meth:`apply_edge_insert`,
    :meth:`apply_edge_delete`, :meth:`apply_weight_update`) — used by
    :class:`repro.graphs.mutation.GraphMutator` so an edit costs an O(n)
    offset shift instead of a full O(n + m) rebuild.  Self-loops are rejected
    at construction: the CSR build would write them twice (once per endpoint
    cursor), silently inflating degrees, ball sizes and NQ, and no supported
    workload produces them.
    """

    def __init__(self, graph: nx.Graph) -> None:
        nodes: List[Node] = list(graph.nodes)
        n = len(nodes)
        self.n = n
        self.m = graph.number_of_edges()
        self.nodes = nodes
        # Version-stamp bookkeeping (see the module docstring): ``version`` is
        # the graph version this CSR reflects; ``retired`` flips when
        # ``invalidate_index`` drops the index so derived state can refuse
        # reads instead of serving dead distances.
        self.version = graph_version(graph)
        self.retired = False
        index_of: Dict[Node, int] = {}
        for i, v in enumerate(nodes):
            index_of[v] = i
        self.index_of = index_of

        offsets = [0] * (n + 1)
        for u, v in graph.edges():
            if u == v:
                raise ValueError(
                    f"self-loop at node {u!r}: GraphIndex requires a simple "
                    "graph (a self-loop would be double-counted in the CSR, "
                    "inflating degrees, ball sizes and NQ)"
                )
            offsets[index_of[u] + 1] += 1
            offsets[index_of[v] + 1] += 1
        for i in range(n):
            offsets[i + 1] += offsets[i]
        cursor = list(offsets)
        targets = [0] * (2 * self.m)
        # Edge weights ride along in a CSR array parallel to ``targets`` so the
        # weighted primitives (h-hop limited Bellman-Ford) share the adjacency.
        weights: List[float] = [1] * (2 * self.m)
        for u, v, data in graph.edges(data=True):
            w = data.get("weight", 1)
            ui = index_of[u]
            vi = index_of[v]
            targets[cursor[ui]] = vi
            weights[cursor[ui]] = w
            cursor[ui] += 1
            targets[cursor[vi]] = ui
            weights[cursor[vi]] = w
            cursor[vi] += 1
        self._offsets = offsets
        self._targets = targets
        self._weights = weights

        # Epoch-stamped scratch vectors shared by all single-source queries.
        self._visited = [0] * n
        self._fdist = [0.0] * n  # float distances, valid iff stamped this epoch
        self._epoch = 0

        # Lazily filled analytics caches.
        self._connected: Optional[bool] = None
        self._diameter: Optional[int] = None
        self._diam_lb = 0  # largest eccentricity any full sweep has observed
        self._nq_cache: Dict[float, int] = {}
        # Weighted-engine caches: per-node tie ranks (shared by every Dijkstra
        # query for deterministic heap ordering) and one rounded weight array
        # per epsilon (power-of-(1+eps) rounding applied once per graph, not
        # once per edge relaxation per query).
        self._tie_ranks: Optional[List[int]] = None
        self._by_tie_rank: Optional[List[int]] = None
        self._rounded_weights: Dict[float, List[float]] = {}
        self._adjacency_pairs: Dict[float, List[Tuple[int, float]]] = {}

    # ------------------------------------------------------------------
    # Version-stamp protocol
    # ------------------------------------------------------------------
    def ensure_current(self, expected_version: Optional[int] = None) -> None:
        """Raise :class:`StaleIndexError` if this index is dead or has moved on.

        ``expected_version`` is the version a derived structure (row cache,
        lazy table) recorded when it was built; ``None`` checks only that the
        index was not retired by :func:`invalidate_index`.
        """
        if self.retired:
            raise StaleIndexError(
                "index was retired by invalidate_index(); rebuild via "
                "get_index(graph) and re-run the producer"
            )
        if expected_version is not None and expected_version != self.version:
            raise StaleIndexError(
                f"index moved from version {expected_version} to "
                f"{self.version} (graph mutated); re-run the producer against "
                "the current index"
            )

    # ------------------------------------------------------------------
    # Incremental maintenance (single-edge patches; GraphMutator's substrate)
    # ------------------------------------------------------------------
    # Each patch keeps every memoised CSR derivative aligned: the parallel
    # ``targets`` / ``weights`` arrays, every cached rounded-weight array and
    # every cached ``(target, weight)`` pair array get the same positional
    # edit.  Analytics caches are dropped only when a given edit class can
    # change their answers: topology edits drop connectivity / diameter / NQ
    # memos but keep the tie-rank arrays (the node set is untouched);
    # weight-only edits keep every hop-based cache.  Within-slice entry order
    # may differ from a from-scratch rebuild, but every query result is
    # order-independent (BFS levels, end-of-level tie finalisation in
    # ``closest_sources``, rank-ordered Dijkstra heaps), which the
    # rebuild-oracle property grid pins.
    def _drop_topology_caches(self) -> None:
        self._connected = None
        self._diameter = None
        self._diam_lb = 0
        self._nq_cache.clear()

    def _insert_csr_entry(self, position: int, target: int, weight: float) -> None:
        self._targets.insert(position, target)
        self._weights.insert(position, weight)
        for eps, rounded in self._rounded_weights.items():
            rounded.insert(position, round_weight_up(weight, eps))
        for eps, pairs in self._adjacency_pairs.items():
            w = weight if eps <= 0 else round_weight_up(weight, eps)
            pairs.insert(position, (target, w))

    def _delete_csr_entry(self, position: int) -> None:
        del self._targets[position]
        del self._weights[position]
        for rounded in self._rounded_weights.values():
            del rounded[position]
        for pairs in self._adjacency_pairs.values():
            del pairs[position]

    def _entry_position(self, ui: int, vi: int) -> int:
        """Position of the ``ui -> vi`` CSR entry; KeyError if absent."""
        try:
            return self._targets.index(vi, self._offsets[ui], self._offsets[ui + 1])
        except ValueError:
            raise KeyError(
                f"edge ({self.nodes[ui]!r}, {self.nodes[vi]!r}) not in index"
            ) from None

    def _shift_offsets(self, start: int, delta: int) -> None:
        # Slice re-assignment beats an explicit Python loop for the O(n)
        # suffix shift — this is the whole per-edit cost on sparse graphs.
        offsets = self._offsets
        offsets[start:] = [o + delta for o in offsets[start:]]

    def apply_edge_insert(self, u: Node, v: Node, weight: float = 1) -> None:
        """Patch the CSR for a new edge ``(u, v)`` between existing nodes.

        Appends the entry at the end of each endpoint's adjacency slice and
        shifts the offset suffixes.  Topology analytics caches are dropped;
        tie ranks survive.  Raises ``KeyError`` for unknown endpoints and
        ``ValueError`` for self-loops or non-positive weights.  The caller
        (normally :class:`~repro.graphs.mutation.GraphMutator`) owns graph
        mutation and version stamping.
        """
        if weight <= 0:
            raise ValueError("edge weights must be positive")
        ui = self._require(u)
        vi = self._require(v)
        if ui == vi:
            raise ValueError(f"self-loop at node {u!r}: not supported")
        self._insert_csr_entry(self._offsets[ui + 1], vi, weight)
        self._shift_offsets(ui + 1, 1)
        self._insert_csr_entry(self._offsets[vi + 1], ui, weight)
        self._shift_offsets(vi + 1, 1)
        self.m += 1
        self._drop_topology_caches()

    def apply_edge_delete(self, u: Node, v: Node) -> None:
        """Patch the CSR for the removal of edge ``(u, v)``.

        Raises ``KeyError`` if either endpoint or the edge is missing.
        Topology analytics caches are dropped; tie ranks survive.
        """
        ui = self._require(u)
        vi = self._require(v)
        self._delete_csr_entry(self._entry_position(ui, vi))
        self._shift_offsets(ui + 1, -1)
        self._delete_csr_entry(self._entry_position(vi, ui))
        self._shift_offsets(vi + 1, -1)
        self.m -= 1
        self._drop_topology_caches()

    def apply_weight_update(self, u: Node, v: Node, weight: float) -> None:
        """Patch the weight of the existing edge ``(u, v)`` in place.

        A weight-only edit cannot change any hop-based answer, so every
        analytics cache (connectivity, diameter, NQ, tie ranks) survives —
        only the weight arrays and their rounded/pair derivatives are patched.
        """
        if weight <= 0:
            raise ValueError("edge weights must be positive")
        ui = self._require(u)
        vi = self._require(v)
        for position in (self._entry_position(ui, vi), self._entry_position(vi, ui)):
            self._weights[position] = weight
            for eps, rounded in self._rounded_weights.items():
                rounded[position] = round_weight_up(weight, eps)
            for eps, pairs in self._adjacency_pairs.items():
                w = weight if eps <= 0 else round_weight_up(weight, eps)
                pairs[position] = (pairs[position][0], w)

    # ------------------------------------------------------------------
    # Flat BFS primitives
    # ------------------------------------------------------------------
    def _require(self, node: Node) -> int:
        index = self.index_of.get(node)
        if index is None:
            raise KeyError(f"source {node!r} not in graph")
        return index

    def _sweep(self, s: int):
        """Full BFS from index ``s``: ``(eccentricity, component_size, farthest)``."""
        self._epoch += 1
        epoch = self._epoch
        visited = self._visited
        offsets = self._offsets
        targets = self._targets
        visited[s] = epoch
        frontier = [s]
        size = 1
        ecc = 0
        last = s
        while frontier:
            nxt = []
            for u in frontier:
                for j in range(offsets[u], offsets[u + 1]):
                    v = targets[j]
                    if visited[v] != epoch:
                        visited[v] = epoch
                        nxt.append(v)
            if not nxt:
                break
            ecc += 1
            size += len(nxt)
            last = nxt[0]
            frontier = nxt
        return ecc, size, last

    def _distances_idx(self, sources: Sequence[int]) -> List[int]:
        """Multi-source BFS over indices; ``-1`` marks unreachable nodes."""
        dist = [-1] * self.n
        offsets = self._offsets
        targets = self._targets
        frontier: List[int] = []
        for s in sources:
            if dist[s] < 0:
                dist[s] = 0
                frontier.append(s)
        d = 0
        while frontier:
            d += 1
            nxt = []
            for u in frontier:
                for j in range(offsets[u], offsets[u + 1]):
                    v = targets[j]
                    if dist[v] < 0:
                        dist[v] = d
                        nxt.append(v)
            frontier = nxt
        return dist

    def hop_distances(self, sources: Iterable[Node]) -> List[int]:
        """Multi-source hop distances as a flat list aligned with :attr:`nodes`.

        ``result[i]`` is ``min_{s in sources} hop(s, nodes[i])`` or ``-1`` when
        no source reaches ``nodes[i]``.
        """
        return self._distances_idx([self._require(node) for node in sources])

    def hop_distance_row(self, source: Node) -> List[int]:
        """One dense hop-distance row: ``row[i] = hop(source, nodes[i])``.

        ``-1`` marks unreachable nodes.  This is the flat-array replacement for
        ``hop_distances_from`` when the caller wants a dense (n-wide) row
        instead of a sparse dict — the building block of the all-pairs table
        assemblies in the shortest-paths pipeline.
        """
        return self._distances_idx([self._require(source)])

    def hop_distance_rows(self, sources: Iterable[Node]) -> Dict[Node, List[int]]:
        """Dense (|sources| x n) distance table: one flat BFS row per source."""
        return {source: self.hop_distance_row(source) for source in sources}

    def h_hop_limited_distances(self, source: Node, h: int) -> Dict[Node, float]:
        """``h``-hop limited weighted distances ``d^h(source, .)`` (Section 1.2).

        Flat-array Bellman-Ford over the pre-zipped ``(target, weight)``
        adjacency pairs (shared with the Dijkstra engine, built once per
        graph): ``h`` relaxation rounds with an epoch-stamped distance scratch
        vector, touching only the nodes the relaxation actually reaches — one
        sequence traversal per relaxed edge instead of two indexed reads from
        the parallel CSR arrays.  Produces exactly the same values as the
        dict-based reference (the candidate path sums are identical
        floating-point operations); only the key order of the returned dict may
        differ.  Unreached nodes are omitted.
        """
        if h < 0:
            raise ValueError("h must be non-negative")
        s = self._require(source)
        offsets = self._offsets
        pairs = self._pair_array(0.0)
        self._epoch += 1
        epoch = self._epoch
        stamp = self._visited
        dist = self._fdist
        stamp[s] = epoch
        dist[s] = 0.0
        reached = [s]
        frontier = [s]
        for _ in range(h):
            updates: Dict[int, float] = {}
            for u in frontier:
                du = dist[u]
                for v, weight in pairs[offsets[u] : offsets[u + 1]]:
                    cand = du + weight
                    if stamp[v] == epoch and cand >= dist[v]:
                        continue
                    if cand < updates.get(v, math.inf):
                        updates[v] = cand
            if not updates:
                break
            frontier = []
            for v, d in updates.items():
                if stamp[v] != epoch:
                    stamp[v] = epoch
                    reached.append(v)
                elif d >= dist[v]:
                    continue
                dist[v] = d
                frontier.append(v)
            if not frontier:
                break
        nodes = self.nodes
        return {nodes[i]: dist[i] for i in reached}

    def weak_diameter(self, members: Iterable[Node]):
        """Weak diameter of a member set: max pairwise hop distance *in G*.

        One BFS per distinct member with **unreached-target early exit**: each
        BFS stops the moment every other member has been discovered (the max
        member-to-member distance from that source is then known), and returns
        ``math.inf`` immediately when a BFS exhausts its component with members
        still missing — no per-source scan over the target set.  Members that
        are not nodes of the graph raise ``KeyError`` regardless of their
        position in the iteration order (the reference implementation's
        inf-vs-raise behaviour depended on it).
        """
        sources: List[int] = []
        seen: set = set()
        for member in members:
            i = self._require(member)
            if i not in seen:
                seen.add(i)
                sources.append(i)
        if len(sources) <= 1:
            return 0
        member_set = seen
        offsets = self._offsets
        targets = self._targets
        visited = self._visited
        best = 0
        for s in sources:
            self._epoch += 1
            epoch = self._epoch
            visited[s] = epoch
            remaining = len(sources) - 1
            frontier = [s]
            depth = 0
            farthest = 0
            while frontier and remaining:
                depth += 1
                nxt = []
                for u in frontier:
                    for j in range(offsets[u], offsets[u + 1]):
                        v = targets[j]
                        if visited[v] != epoch:
                            visited[v] = epoch
                            nxt.append(v)
                            if v in member_set:
                                remaining -= 1
                                farthest = depth
                frontier = nxt
            if remaining:
                return math.inf
            if farthest > best:
                best = farthest
        return best

    # ------------------------------------------------------------------
    # Weighted engine: flat-array Dijkstra over the (rounded-)weight CSR
    # ------------------------------------------------------------------
    def _weight_array(self, epsilon: float) -> List[float]:
        """The CSR weight array for ``epsilon``; rounded arrays are memoised.

        ``epsilon <= 0`` selects the original weights.  Rounded arrays apply
        :func:`round_weight_up` to every CSR entry exactly once per
        ``(graph, epsilon)`` — every subsequent approximate-SSSP query on this
        graph reuses the cached array.
        """
        if epsilon <= 0:
            return self._weights
        cached = self._rounded_weights.get(epsilon)
        if cached is None:
            cached = [round_weight_up(w, epsilon) for w in self._weights]
            self._rounded_weights[epsilon] = cached
        return cached

    def _pair_array(self, epsilon: float) -> List[Tuple[int, float]]:
        """CSR adjacency as ``(target, weight)`` pairs, memoised per epsilon.

        The Dijkstra inner loop slices this list per settled node and unpacks
        the pairs directly — one sequence traversal per edge instead of two
        indexed reads from the parallel ``targets`` / ``weights`` arrays.
        """
        key = epsilon if epsilon > 0 else 0.0
        cached = self._adjacency_pairs.get(key)
        if cached is None:
            cached = list(zip(self._targets, self._weight_array(epsilon)))
            self._adjacency_pairs[key] = cached
        return cached

    def _tie_rank_arrays(self) -> Tuple[List[int], List[int]]:
        """``(rank, by_rank)``: each node's position in ``str``-sorted order.

        The historical dict+heapq Dijkstra breaks distance ties by the nodes'
        ``str`` keys; comparing precomputed integer *ranks* in that same order
        reproduces the identical pop order at a fraction of the comparison
        cost (and sidesteps comparing raw node objects on exact collisions).
        """
        if self._tie_ranks is None:
            nodes = self.nodes
            by_rank = sorted(range(self.n), key=lambda i: str(nodes[i]))
            ranks = [0] * self.n
            for position, i in enumerate(by_rank):
                ranks[i] = position
            self._tie_ranks = ranks
            self._by_tie_rank = by_rank
        return self._tie_ranks, self._by_tie_rank

    def _dijkstra_idx(self, s: int, epsilon: float) -> List[float]:
        """One dense Dijkstra row over indices; ``math.inf`` marks unreachable.

        Heap entries are ``(distance, tie_rank)`` pairs whose integer ranks
        order ties exactly like the ``str`` tie keys of the historical
        dict+heapq implementation (kept as ``_reference_*`` in
        :mod:`repro.core.sssp`); the relaxation tolerance matches too, so the
        produced distance values are identical floating-point results.
        """
        offsets = self._offsets
        pairs = self._pair_array(epsilon)
        rank, by_rank = self._tie_rank_arrays()
        heappush = heapq.heappush
        heappop = heapq.heappop
        self._epoch += 1
        epoch = self._epoch
        settled = self._visited
        dist = [math.inf] * self.n
        dist[s] = 0.0
        heap: List[Tuple[float, int]] = [(0.0, rank[s])]
        while heap:
            d, r = heappop(heap)
            u = by_rank[r]
            if settled[u] == epoch:
                continue
            settled[u] = epoch
            for v, w in pairs[offsets[u] : offsets[u + 1]]:
                candidate = d + w
                if candidate < dist[v] - 1e-15:
                    dist[v] = candidate
                    heappush(heap, (candidate, rank[v]))
        return dist

    def sssp_row(self, source: Node, epsilon: float = 0.0) -> List[float]:
        """One dense weighted-distance row: ``row[i] = d~(source, nodes[i])``.

        ``epsilon = 0`` yields exact Dijkstra distances; ``epsilon > 0`` runs
        the same Dijkstra over the cached power-of-``(1 + epsilon)`` rounded
        weights (``d <= d~ <= (1 + eps) d``, Theorem 13's functional
        substitution).  ``math.inf`` marks unreachable nodes.
        """
        return self._dijkstra_idx(self._require(source), epsilon)

    def sssp_rows(
        self, sources: Iterable[Node], epsilon: float = 0.0
    ) -> Dict[Node, List[float]]:
        """Dense (|sources| x n) weighted table: one flat Dijkstra per source.

        All rows share the tie-key and (rounded-)weight arrays, so a batch
        over many sources pays the per-graph setup once.
        """
        return {source: self.sssp_row(source, epsilon) for source in sources}

    def sssp_dict(self, source: Node, epsilon: float = 0.0) -> Dict[Node, float]:
        """Weighted distances from ``source`` as a dict over *reached* nodes.

        The sparse view of :meth:`sssp_row` matching the historical
        ``exact_sssp_distances`` / ``approx_sssp_distances`` contract:
        unreachable nodes are omitted (only the key order may differ from the
        dict-based reference).
        """
        row = self._dijkstra_idx(self._require(source), epsilon)
        nodes = self.nodes
        return {
            nodes[i]: d for i, d in enumerate(row) if d != math.inf
        }

    def sssp_dicts(
        self, sources: Iterable[Node], epsilon: float = 0.0
    ) -> Dict[Node, Dict[Node, float]]:
        """Sparse per-source weighted distance dicts (see :meth:`sssp_dict`)."""
        return {source: self.sssp_dict(source, epsilon) for source in sources}

    # ------------------------------------------------------------------
    # Multi-source sweeps for clustering / ruling sets (Lemma 3.5)
    # ------------------------------------------------------------------
    def closest_sources(
        self, sources: Sequence[Node]
    ) -> Tuple[List[int], List[int]]:
        """One multi-source BFS returning ``(dist, owner)`` flat arrays.

        ``dist[i]`` is the hop distance from ``nodes[i]`` to the closest
        source and ``owner[i]`` the *position in ``sources``* of that source;
        ties are broken deterministically towards the smallest position, so a
        caller that passes sources sorted by identifier gets exactly the
        "closest ruler, ties by minimum identifier" assignment of Lemma 3.5.
        ``-1`` marks nodes no source reaches.

        The tie-break is exact, not an artefact of expansion order: a node
        first reached at level ``d`` takes the minimum owner over *all* its
        level-``d - 1`` neighbours (finalised at the end of the level), and by
        induction that minimum is the least-ranked source among all sources at
        distance ``d`` — every closest source reaches ``v`` through some
        shortest-path parent, whose own owner is already the minimum over the
        closest sources of that parent.
        """
        dist = [-1] * self.n
        owner = [-1] * self.n
        offsets = self._offsets
        targets = self._targets
        frontier: List[int] = []
        for rank, source in enumerate(sources):
            s = self._require(source)
            if dist[s] < 0:
                dist[s] = 0
                owner[s] = rank  # duplicates keep their first (smallest) rank
                frontier.append(s)
        d = 0
        while frontier:
            d += 1
            nxt = []
            for u in frontier:
                ou = owner[u]
                for j in range(offsets[u], offsets[u + 1]):
                    v = targets[j]
                    if dist[v] < 0:
                        dist[v] = d
                        owner[v] = ou
                        nxt.append(v)
                    elif dist[v] == d and ou < owner[v]:
                        owner[v] = ou
            frontier = nxt
        return dist, owner

    def ruling_set(
        self, alpha: int, order: Optional[Sequence[Node]] = None
    ) -> List[Node]:
        """Greedy (alpha, alpha - 1)-ruling set grown from flat frontiers.

        Scans nodes in the given order (default: sorted by ``str`` label,
        matching :func:`repro.core.ruling_sets.greedy_ruling_set`) and adds a
        node whenever no earlier ruler covered it; each new ruler marks its
        radius-``alpha - 1`` ball in a shared flat ``covered`` array via an
        epoch-stamped truncated BFS.  Returns the rulers in scan order.
        """
        if alpha < 1:
            raise ValueError("alpha must be at least 1")
        if order is None:
            # The default scan order (sorted by str label) is exactly the
            # cached Dijkstra tie-rank order — reuse it instead of re-sorting.
            _, order_idx = self._tie_rank_arrays()
        else:
            order_idx = [self._require(node) for node in order]
        offsets = self._offsets
        targets = self._targets
        visited = self._visited
        covered = bytearray(self.n)
        ruling: List[Node] = []
        for s in order_idx:
            if covered[s]:
                continue
            ruling.append(self.nodes[s])
            covered[s] = 1
            # Truncated BFS with a private epoch: coverage by earlier rulers
            # must not block the traversal, only the addability test.
            self._epoch += 1
            epoch = self._epoch
            visited[s] = epoch
            frontier = [s]
            for _ in range(1, alpha):
                nxt = []
                for u in frontier:
                    for j in range(offsets[u], offsets[u + 1]):
                        v = targets[j]
                        if visited[v] != epoch:
                            visited[v] = epoch
                            covered[v] = 1
                            nxt.append(v)
                if not nxt:
                    break
                frontier = nxt
        return ruling

    # ------------------------------------------------------------------
    # Classic structural queries
    # ------------------------------------------------------------------
    def eccentricity(self, node: Node) -> int:
        """Maximum hop distance from ``node`` to any reachable node."""
        return self._sweep(self._require(node))[0]

    def ball_sizes_all_radii(self, center: Node) -> List[int]:
        """``[|B_0(v)|, |B_1(v)|, ..., |B_ecc(v)|]`` from one level BFS."""
        s = self._require(center)
        self._epoch += 1
        epoch = self._epoch
        visited = self._visited
        offsets = self._offsets
        targets = self._targets
        visited[s] = epoch
        frontier = [s]
        size = 1
        sizes = [1]
        while frontier:
            nxt = []
            for u in frontier:
                for j in range(offsets[u], offsets[u + 1]):
                    v = targets[j]
                    if visited[v] != epoch:
                        visited[v] = epoch
                        nxt.append(v)
            if not nxt:
                break
            size += len(nxt)
            sizes.append(size)
            frontier = nxt
        return sizes

    def is_connected(self) -> bool:
        """Whether the graph is connected (empty graphs count as connected)."""
        if self._connected is None:
            if self.n <= 1:
                self._connected = True
            else:
                ecc, size, _ = self._sweep(0)
                self._connected = size == self.n
                if self._connected and ecc > self._diam_lb:
                    self._diam_lb = ecc
        return self._connected

    def diameter(self) -> int:
        """Exact hop diameter via double sweep + iFUB eccentricity pruning.

        Raises ``ValueError`` on empty or disconnected graphs (mirroring the
        reference implementation in :mod:`repro.graphs.properties`).
        """
        if self._diameter is not None:
            return self._diameter
        if self.n == 0:
            raise ValueError("diameter of empty graph is undefined")
        if not self.is_connected():
            raise ValueError("graph is disconnected; diameter undefined")
        if self.n == 1:
            self._diameter = 0
            return 0
        self._diameter = self._ifub()
        if self._diameter > self._diam_lb:
            self._diam_lb = self._diameter
        return self._diameter

    def _ifub(self) -> int:
        offsets = self._offsets
        # Double sweep from a max-degree node: BFS to the farthest node a,
        # then from a to the farthest node b; d(a, b) is a strong diameter
        # lower bound and the a-b path supplies the iFUB midpoint.
        r = max(range(self.n), key=lambda i: offsets[i + 1] - offsets[i])
        ecc_r, _, a = self._sweep(r)
        dist_a = self._distances_idx([a])
        ecc_a = max(dist_a)
        b = dist_a.index(ecc_a)
        dist_b = self._distances_idx([b])
        ecc_b = max(dist_b)
        lb = max(ecc_r, ecc_a, ecc_b)

        half = ecc_a // 2
        mid = a
        for u in range(self.n):
            if dist_a[u] == half and dist_a[u] + dist_b[u] == ecc_a:
                mid = u
                break
        dist_m = self._distances_idx([mid])
        ecc_m = max(dist_m)
        if ecc_m > lb:
            lb = ecc_m

        levels: List[List[int]] = [[] for _ in range(ecc_m + 1)]
        for u, d in enumerate(dist_m):
            levels[d].append(u)

        # Scan levels outward-in.  Any pair realising a diameter > lb has an
        # endpoint at level > lb / 2 (its distance to mid is at least half the
        # diameter), so once 2 * i <= lb every unscanned node is irrelevant.
        i = ecc_m
        while 2 * i > lb:
            for u in levels[i]:
                ecc_u, _, _ = self._sweep(u)
                if ecc_u > lb:
                    lb = ecc_u
                    if 2 * i <= lb:
                        break
            i -= 1
        return lb

    # ------------------------------------------------------------------
    # Neighborhood quality (Definition 3.1) — incremental ball growers
    # ------------------------------------------------------------------
    def _require_nq_preconditions(self) -> None:
        # The reference implementation computes diameter(graph) up front, which
        # raises on empty and disconnected graphs; preserve those errors
        # without paying for the eager diameter.
        if self.n == 0:
            raise ValueError("diameter of empty graph is undefined")
        if not self.is_connected():
            raise ValueError("graph is disconnected; diameter undefined")

    def _nq_grow(self, s: int, k: float, cap: Optional[int]) -> int:
        """First radius ``t`` with ``|B_t(s)| >= k / t``, capped by the diameter.

        ``cap`` is an explicit diameter (when the caller supplied one);
        ``cap=None`` resolves the diameter lazily and only in the rare
        saturated case.
        """
        self._epoch += 1
        epoch = self._epoch
        visited = self._visited
        offsets = self._offsets
        targets = self._targets
        visited[s] = epoch
        frontier = [s]
        size = 1
        t = 0
        while True:
            t += 1
            if cap is not None and t > cap:
                return cap
            nxt = []
            for u in frontier:
                for j in range(offsets[u], offsets[u + 1]):
                    v = targets[j]
                    if visited[v] != epoch:
                        visited[v] = epoch
                        nxt.append(v)
            if not nxt:
                ecc = t - 1
                break
            size += len(nxt)
            if size >= k / t:
                return t
            frontier = nxt
        if self._connected and ecc > self._diam_lb:
            self._diam_lb = ecc
        return self._saturated_nq(size, ecc, k, cap)

    def _saturated_nq(self, size: int, ecc: int, k: float, cap: Optional[int]) -> int:
        """Resolve ``NQ_k(v)`` once the BFS exhausted v's component unmet.

        The ball is pinned at ``size`` for every radius beyond ``ecc``, so the
        smallest satisfying radius solves ``size >= k / t`` directly; the
        definition caps the answer at the diameter.
        """
        if math.isinf(k) or math.isnan(k):
            # Threshold never satisfiable: the definition falls back to D.
            return cap if cap is not None else self.diameter()
        t1 = ecc + 1
        if size < k / t1:
            jump = int(k / size) - 2
            if jump > t1:
                t1 = jump
            while size < k / t1:
                t1 += 1
        if cap is not None:
            return t1 if t1 <= cap else cap
        if t1 <= self._diam_lb:
            return t1
        d = self.diameter()
        return t1 if t1 <= d else d

    def nq_of_node(
        self, node: Node, k: float, graph_diameter: Optional[int] = None
    ) -> int:
        """``NQ_k(node)`` (Definition 3.1) with early termination."""
        if graph_diameter is None:
            self._require_nq_preconditions()
            if self.n == 1:
                return 0
            if k <= 0:
                raise ValueError("k must be positive")
            return self._nq_grow(self._require(node), k, None)
        if graph_diameter == 0:
            return 0
        if k <= 0:
            raise ValueError("k must be positive")
        return self._nq_grow(self._require(node), k, graph_diameter)

    def nq_per_node(self, k: float) -> Dict[Node, int]:
        """``NQ_k(v)`` for every node; each BFS stops at its certifying ball."""
        self._require_nq_preconditions()
        if self.n == 1:
            return {self.nodes[0]: 0}
        if k <= 0:
            raise ValueError("k must be positive")
        grow = self._nq_grow
        return {node: grow(i, k, None) for i, node in enumerate(self.nodes)}

    def nq_value(self, k: float) -> int:
        """``NQ_k(G) = max_v NQ_k(v)``, memoised per ``k``."""
        cached = self._nq_cache.get(k)
        if cached is not None:
            return cached
        self._require_nq_preconditions()
        if self.n == 1:
            value = 0
        else:
            if k <= 0:
                raise ValueError("k must be positive")
            grow = self._nq_grow
            value = 0
            for i in range(self.n):
                candidate = grow(i, k, None)
                if candidate > value:
                    value = candidate
        self._nq_cache[k] = value
        return value

    def nq_profile(self, ks: Iterable[float]) -> Dict[float, int]:
        """``NQ_k(G)`` for several workloads, sharing one exploration per node.

        The satisfying radius is monotone in ``k`` (a larger workload needs a
        larger ball), so one ball grower per node answers every ``k`` on its
        way out: it checks the sorted thresholds smallest-first and stops at
        the largest one.
        """
        ks_list = list(ks)
        self._require_nq_preconditions()
        if self.n == 1:
            return {k: 0 for k in ks_list}
        for k in ks_list:
            if k <= 0:
                raise ValueError("k must be positive")
        if not ks_list:
            return {}
        distinct = sorted(set(ks_list))
        best = [0] * len(distinct)
        for s in range(self.n):
            values = self._nq_profile_grow(s, distinct)
            for j, value in enumerate(values):
                if value > best[j]:
                    best[j] = value
        result = {k: best[j] for j, k in enumerate(distinct)}
        for k, value in result.items():
            self._nq_cache.setdefault(k, value)
        return {k: result[k] for k in ks_list}

    def _nq_profile_grow(self, s: int, ks_asc: Sequence[float]) -> List[int]:
        """One shared ball growth answering every ``k`` in ascending order."""
        self._epoch += 1
        epoch = self._epoch
        visited = self._visited
        offsets = self._offsets
        targets = self._targets
        visited[s] = epoch
        frontier = [s]
        size = 1
        t = 0
        nk = len(ks_asc)
        idx = 0
        values: List[int] = [0] * nk
        while True:
            t += 1
            nxt = []
            for u in frontier:
                for j in range(offsets[u], offsets[u + 1]):
                    v = targets[j]
                    if visited[v] != epoch:
                        visited[v] = epoch
                        nxt.append(v)
            if not nxt:
                ecc = t - 1
                break
            size += len(nxt)
            while idx < nk and size >= ks_asc[idx] / t:
                values[idx] = t
                idx += 1
            if idx == nk:
                return values
            frontier = nxt
        if self._connected and ecc > self._diam_lb:
            self._diam_lb = ecc
        for j in range(idx, nk):
            values[j] = self._saturated_nq(size, ecc, ks_asc[j], None)
        return values


class SSSPRowCache:
    """Lazily computed, caller-owned dense Dijkstra rows of one index.

    ``row(source)`` returns ``index.sssp_row(source, epsilon)`` packed into an
    ``array('d', ...)`` of C doubles, running the Dijkstra only on the first
    request per source.  This is the substrate for the lazy all-pairs tables:
    an APSP producer keeps one cache over its skeleton/spanner index and pulls
    only the rows its consumers actually read, instead of materialising an
    eager dict-of-dicts over every source up front.  The cache is owned by the
    caller (unlike :func:`get_index` it is *not* memoised per graph), so
    dropping the producer drops every cached row with it.

    ``rows_computed`` counts Dijkstra runs — the regression tests use it to
    assert that nothing materialises n^2 state behind a consumer's back.

    The cache records the index version at construction and every read —
    including reads of rows cached *before* a mutation — raises
    :class:`StaleIndexError` once the index is retired or patched past that
    version, instead of returning distances for a graph that no longer
    exists.
    """

    __slots__ = ("index", "epsilon", "rows_computed", "_rows", "_version")

    def __init__(self, index: GraphIndex, epsilon: float = 0.0) -> None:
        self.index = index
        self.epsilon = epsilon
        self.rows_computed = 0
        self._rows: Dict[Node, "array[float]"] = {}
        self._version = index.version

    def row(self, source: Node) -> "array[float]":
        """The dense distance row of ``source`` (computed once, then cached).

        Raises :class:`StaleIndexError` when the underlying index was retired
        or mutated since this cache was created.
        """
        self.index.ensure_current(self._version)
        cached = self._rows.get(source)
        if cached is None:
            cached = array("d", self.index.sssp_row(source, self.epsilon))
            self._rows[source] = cached
            self.rows_computed += 1
        return cached

    def position_of(self, node: Node) -> int:
        """``node``'s column position within every cached row."""
        self.index.ensure_current(self._version)
        return self.index.index_of[node]


# ----------------------------------------------------------------------
# Per-graph cache
# ----------------------------------------------------------------------
_INDEX_CACHE: "weakref.WeakKeyDictionary[nx.Graph, GraphIndex]" = (
    weakref.WeakKeyDictionary()
)

# Bounded fallback for graph-like objects the weak cache cannot hold
# (unhashable or non-weakrefable).  Keyed by ``id()`` with the graph object
# kept as a strong reference — both to memoise repeated queries (the old
# behaviour rebuilt the CSR on *every* call) and to pin the id so a collected
# object's recycled address can never alias a cache hit (an entry only
# matches when ``entry[0] is graph``).  Lifetime note: the cache keeps the
# last ``_FALLBACK_LIMIT`` such graphs alive until evicted in FIFO order or
# dropped via ``invalidate_index``; weak-cacheable graphs (every ``nx.Graph``)
# never enter it.
_FALLBACK_LIMIT = 4
_FALLBACK_CACHE: "OrderedDict[int, Tuple[object, GraphIndex]]" = OrderedDict()


def _fallback_get(graph: nx.Graph) -> Optional[GraphIndex]:
    entry = _FALLBACK_CACHE.get(id(graph))
    if entry is not None and entry[0] is graph:
        return entry[1]
    return None


def _fallback_store(graph: nx.Graph, index: GraphIndex) -> None:
    _FALLBACK_CACHE[id(graph)] = (graph, index)
    _FALLBACK_CACHE.move_to_end(id(graph))
    while len(_FALLBACK_CACHE) > _FALLBACK_LIMIT:
        _FALLBACK_CACHE.popitem(last=False)


def _peek_index(graph: nx.Graph) -> Optional[GraphIndex]:
    """The cached index of ``graph`` without building one (mutator hook)."""
    try:
        cached = _INDEX_CACHE.get(graph)
    except TypeError:
        cached = None
    if cached is None:
        cached = _fallback_get(graph)
    return cached


def _index_is_current(cached: GraphIndex, graph: nx.Graph) -> bool:
    # The version comparison is the real staleness check; the node/edge-count
    # comparison stays as a backstop for out-of-band networkx mutations that
    # bypassed every stamping path.
    return (
        not cached.retired
        and cached.version == graph_version(graph)
        and cached.n == graph.number_of_nodes()
        and cached.m == graph.number_of_edges()
    )


def get_index(graph: nx.Graph) -> GraphIndex:
    """The shared :class:`GraphIndex` of ``graph`` (built on first use).

    Staleness is version-based: the cached index is served only while its
    :attr:`GraphIndex.version` equals :func:`graph_version`, so any mutation
    through :class:`~repro.graphs.mutation.GraphMutator`,
    :mod:`repro.graphs.weighted` or :func:`invalidate_index` forces a
    rebuild — including rewirings that preserve the node and edge counts
    (those defeated the historical count-only check).  The count comparison
    is retained as a backstop for hand mutations that bypassed stamping.
    Unhashable / non-weakrefable graph-like objects are memoised in a small
    bounded strong-reference cache keyed by identity (see the lifetime note
    on the fallback cache above).
    """
    try:
        cached = _INDEX_CACHE.get(graph)
        weak_capable = True
    except TypeError:  # unhashable graph-like object
        cached = None
        weak_capable = False
    if cached is None:
        cached = _fallback_get(graph)
    if cached is not None and _index_is_current(cached, graph):
        return cached
    index = GraphIndex(graph)
    if weak_capable:
        try:
            _INDEX_CACHE[graph] = index
            return index
        except TypeError:  # hashable but not weak-referenceable
            pass
    _fallback_store(graph, index)
    return index


def invalidate_index(graph: nx.Graph) -> None:
    """Drop ``graph``'s cached :class:`GraphIndex` and bump its version.

    The full-drop path of the mutation protocol: the cached index (if any)
    is marked *retired* — so caller-owned row caches and lazy tables built on
    it raise :class:`StaleIndexError` instead of serving dead distances — and
    the graph's version stamp advances, forcing every versioned consumer
    (:func:`get_index`, ``HybridSimulator`` plane sends) to resynchronise.
    The weight-assignment helpers in :mod:`repro.graphs.weighted` call this
    after mutating a graph in place; code that edits ``graph[u][v]["weight"]``
    by hand must do the same.  Single-edge edits should prefer
    :class:`repro.graphs.mutation.GraphMutator`, which patches the index
    incrementally instead of dropping it.
    """
    try:
        cached = _INDEX_CACHE.pop(graph, None)
    except TypeError:
        cached = None
    entry = _FALLBACK_CACHE.get(id(graph))
    if entry is not None and entry[0] is graph:
        if cached is None:
            cached = entry[1]
        del _FALLBACK_CACHE[id(graph)]
    if cached is not None:
        cached.retired = True
    bump_graph_version(graph)
