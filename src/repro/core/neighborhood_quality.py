"""The neighborhood-quality parameter ``NQ_k`` (Section 3).

Definition 3.1: for a graph ``G``, a workload ``k > 0`` and a node ``v``,

    ``NQ_k(v) = min({t : |B_t(v)| >= k / t} U {D})``    and
    ``NQ_k(G) = max_v NQ_k(v)``,

where ``B_t(v)`` is the hop-ball of radius ``t`` around ``v`` and ``D`` is the
hop diameter.  Intuitively ``NQ_k(v)`` is the smallest radius at which ``v``'s
neighborhood is large enough to pull in ``~k`` words of information through the
global network within ``O(t)`` rounds.

This module provides

* the centralized computation, delegated to the shared analytics engine
  (:mod:`repro.graphs.index`): incremental ball growers with early termination
  stop each node's BFS at the radius that certifies its answer, the diameter is
  resolved lazily (only for nodes whose exploration exhausts the graph unmet),
  ``nq_profile`` shares one exploration across all workloads, and graph-level
  ``NQ_k`` values are memoised per ``(graph, k)``;
* ``_reference_*`` twins of every centralized function — the original
  Theta(n * m) formulations kept verbatim (on index-free primitives) as ground
  truth for the equivalence tests in ``tests/properties/test_nq_equivalence.py``;
* :class:`DistributedNQComputation`, the distributed computation of Lemma 3.3
  that runs on the :class:`~repro.simulator.network.HybridSimulator`:
  every node explores its neighborhood to increasing depth ``t`` (one local
  round per depth step) and after each step the global minimum ball size
  ``N_t = min_v |B_t(v)|`` is computed with the eO(1)-round aggregation of
  Lemma 4.4; the exploration stops at the first ``t`` with ``N_t >= k / t``.
  The default ``engine="batch"`` floods *frontiers* (each node forwards only
  the ball members it discovered in the previous round) through the batch
  messaging engine; ``engine="legacy"`` reproduces the original whole-ball
  flooding through the per-message API.  Both engines compute identical balls,
  identical per-node values and identical round counts and charges (pinned by
  ``tests/unit/test_round_regression.py``); the frontier engine moves strictly
  fewer local words, and also fewer local messages once a node's ball
  saturates before the global termination (an empty frontier is not sent).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Hashable, List, Optional, Set

import networkx as nx

from repro.graphs.index import get_index
from repro.simulator import _accel
from repro.graphs.properties import (
    _reference_ball_sizes_all_radii,
    _reference_diameter,
)
from repro.simulator.config import log2_ceil
from repro.simulator.engine import BatchAlgorithm
from repro.simulator.messages import payload_words
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = [
    "neighborhood_quality_of_node",
    "neighborhood_quality_per_node",
    "neighborhood_quality",
    "nq_profile",
    "DistributedNQComputation",
    "NQResult",
]


def _nq_from_ball_sizes(ball_sizes: list, k: float, graph_diameter: int) -> int:
    """Evaluate Definition 3.1 given ``[|B_0(v)|, |B_1(v)|, ...]``."""
    if k <= 0:
        raise ValueError("k must be positive")
    # t ranges over positive integers; the list index is the radius.
    max_radius = len(ball_sizes) - 1
    for t in range(1, graph_diameter + 1):
        size = ball_sizes[t] if t <= max_radius else ball_sizes[max_radius]
        if size >= k / t:
            return t
    return graph_diameter


def neighborhood_quality_of_node(
    graph: nx.Graph, k: float, node: Node, graph_diameter: Optional[int] = None
) -> int:
    """``NQ_k(v)`` for a single node (centralized, early-terminating)."""
    return get_index(graph).nq_of_node(node, k, graph_diameter)


def neighborhood_quality_per_node(graph: nx.Graph, k: float) -> Dict[Node, int]:
    """``NQ_k(v)`` for every node (centralized, early-terminating)."""
    return get_index(graph).nq_per_node(k)


def neighborhood_quality(graph: nx.Graph, k: float) -> int:
    """``NQ_k(G) = max_v NQ_k(v)`` (centralized; memoised per ``(graph, k)``)."""
    return get_index(graph).nq_value(k)


def nq_profile(graph: nx.Graph, ks: list) -> Dict[float, int]:
    """``NQ_k(G)`` for several workloads ``k`` (one shared exploration per node)."""
    return get_index(graph).nq_profile(ks)


# ----------------------------------------------------------------------
# Reference (index-free) twins — ground truth for the equivalence tests
# ----------------------------------------------------------------------
def _reference_neighborhood_quality_of_node(
    graph: nx.Graph, k: float, node: Node, graph_diameter: Optional[int] = None
) -> int:
    """Original Theta(n * m) formulation of ``NQ_k(v)`` (tests only)."""
    if graph_diameter is None:
        graph_diameter = _reference_diameter(graph)
    if graph_diameter == 0:
        # Single-node graph: the ball of radius "D" is the node itself.
        return 0
    sizes = _reference_ball_sizes_all_radii(graph, node)
    return _nq_from_ball_sizes(sizes, k, graph_diameter)


def _reference_neighborhood_quality_per_node(
    graph: nx.Graph, k: float
) -> Dict[Node, int]:
    """Original Theta(n * m) formulation of the per-node map (tests only)."""
    graph_diameter = _reference_diameter(graph)
    result: Dict[Node, int] = {}
    for node in graph.nodes:
        if graph_diameter == 0:
            result[node] = 0
            continue
        sizes = _reference_ball_sizes_all_radii(graph, node)
        result[node] = _nq_from_ball_sizes(sizes, k, graph_diameter)
    return result


def _reference_neighborhood_quality(graph: nx.Graph, k: float) -> int:
    """Original formulation of ``NQ_k(G)`` (tests and speedup benchmarks only)."""
    per_node = _reference_neighborhood_quality_per_node(graph, k)
    return max(per_node.values())


def _reference_nq_profile(graph: nx.Graph, ks: list) -> Dict[float, int]:
    """Original formulation of the workload profile (tests only)."""
    graph_diameter = _reference_diameter(graph)
    sizes_per_node = {
        node: _reference_ball_sizes_all_radii(graph, node) for node in graph.nodes
    }
    profile: Dict[float, int] = {}
    for k in ks:
        if graph_diameter == 0:
            profile[k] = 0
            continue
        profile[k] = max(
            _nq_from_ball_sizes(sizes, k, graph_diameter)
            for sizes in sizes_per_node.values()
        )
    return profile


@dataclasses.dataclass
class NQResult:
    """Result of the distributed NQ_k computation (Lemma 3.3)."""

    nq: int
    per_node: Dict[Node, int]
    metrics: RoundMetrics


class DistributedNQComputation(BatchAlgorithm):
    """Distributed computation of ``NQ_k`` and ``NQ_k(v)`` (Lemma 3.3).

    The algorithm explores neighborhoods to increasing depth.  Depth step ``t``
    costs one round of local flooding, after which the global minimum
    ``N_t = min_v |B_t(v)|`` is obtained via the virtual-tree aggregation of
    Lemma 4.4, charged as ``O(log^2 n)`` rounds per step (the tree construction
    of [GHSS17] is charged once; see DESIGN.md substitution note 1).
    Exploration stops at the first ``t`` with ``N_t >= k / t``; if the entire
    graph is explored first, ``NQ_k = D``.

    ``engine="batch"`` (default) floods only each round's *newly discovered*
    ball members as one id-native token plane per round
    (:meth:`~repro.simulator.network.HybridSimulator.local_send_plane` over a
    precomputed edge plane); ``engine="batch-reference"`` retains the same
    frontier flood over the tuple workload API (the previous hot path);
    ``engine="legacy"`` floods every node's whole known ball as a frozenset
    through the per-message API, as the original implementation did.  All
    engines discover identical balls in identical rounds — a node ``u`` enters
    ``v``'s ball in round ``hop(u, v)`` either way — so per-node values, the
    global value and all round counts and charges coincide exactly.  Message
    and word *volumes* differ only for ``legacy``: the frontier engines never
    re-broadcast known members, and a node whose ball has saturated sends
    nothing at all.
    """

    def __init__(
        self, simulator: HybridSimulator, k: float, *, engine: str = "batch"
    ) -> None:
        super().__init__(simulator, engine=engine)
        if k <= 0:
            raise ValueError("k must be positive")
        self.k = k
        self._per_node_nq: Dict[Node, int] = {}
        self._nq_value: int = 0

    # ------------------------------------------------------------------
    def phases(self):
        return (
            ("overlay", self._phase_overlay),
            ("explore", self._phase_explore),
        )

    def _phase_overlay(self) -> None:
        """One-time overlay construction used by the Lemma 4.4 aggregations."""
        sim = self.simulator
        log_n = log2_ceil(max(sim.n, 2))
        sim.charge_rounds(
            log_n * log_n,
            "virtual-tree overlay construction for basic aggregation",
            "Lemma 4.3 [GHSS17]",
        )

    def _phase_explore(self) -> None:
        if self.use_plane:
            self._explore_frontier()
        elif self.use_batch:
            self._explore_frontier_tuples()
        else:
            self._explore_legacy()

    # ------------------------------------------------------------------
    def _step_bookkeeping(
        self, t: int, known_balls: Dict[Node, Set[Node]]
    ) -> Optional[int]:
        """Shared per-step accounting: per-node thresholds, the charged
        Lemma 4.4 min-aggregation and the two termination conditions.
        Returns the final ``NQ_k`` when exploration should stop."""
        sim = self.simulator
        n = sim.n
        log_n = log2_ceil(max(n, 2))

        # Record per-node NQ_k(v) the first time the node's own ball passes
        # the threshold.
        for v in sim.nodes:
            if v not in self._per_node_nq and len(known_balls[v]) >= self.k / t:
                self._per_node_nq[v] = t

        # Global min-aggregation of |B_t(v)| (Lemma 4.4), charged.
        sim.charge_rounds(
            2 * log_n,
            f"min-aggregation of ball sizes at depth {t}",
            "Lemma 4.4",
        )
        min_ball = min(len(known_balls[v]) for v in sim.nodes)
        if min_ball >= self.k / t:
            return t
        if all(len(known_balls[v]) == n for v in sim.nodes):
            # Entire graph explored: NQ_k = D and t is now >= D.
            return t
        return None

    def _explore_frontier(self) -> None:
        """Frontier-only flooding over the id-native plane engine: each node
        forwards the ball members it learned in the previous round, never its
        whole ball.

        The directed flood edges are precomputed once as index columns; every
        round selects the rows whose sender still has a non-empty frontier and
        submits them as one :class:`~repro.simulator.engine.TokenPlane` via
        ``local_send_plane`` (adjacency validated per unique edge with one
        array sweep, no per-token record objects).  Deliveries are folded
        straight from the plane's columns — the round's record buckets are
        never materialised.
        """
        from repro.simulator.engine import TokenPlane

        sim = self.simulator
        nodes = sim.nodes
        indexer = sim.node_indexer()
        known_balls: List[Set[Node]] = [None] * sim.n  # type: ignore[list-item]
        frontier_of: List[Optional[frozenset]] = [None] * sim.n
        for v in nodes:
            i = indexer[v]
            known_balls[i] = {v}
            frontier_of[i] = frozenset((v,))
        # Directed flood edges (v -> u), grouped by sender in node order —
        # the same (sender, neighbor) enumeration the tuple path used.
        edge_senders: List[int] = []
        edge_receivers: List[int] = []
        for v in nodes:
            i = indexer[v]
            for u in sim.neighbors(v):
                edge_senders.append(i)
                edge_receivers.append(indexer[u])
        np = _accel.np
        if np is not None:
            edge_senders = np.asarray(edge_senders, dtype=np.int64)
            edge_receivers = np.asarray(edge_receivers, dtype=np.int64)

        balls_by_node = {v: known_balls[indexer[v]] for v in nodes}
        t = 0
        nq_value: Optional[int] = None
        max_steps = sim.n  # exploration can never exceed n-1 depth
        while t < max_steps:
            t += 1
            # One local round: every node forwards its newest discoveries.
            if np is not None:
                active = np.fromiter(
                    (frontier_of[i] is not None for i in range(sim.n)),
                    dtype=bool,
                    count=sim.n,
                )
                keep = active[edge_senders]
                senders = edge_senders[keep]
                receivers = edge_receivers[keep]
                sender_list = senders.tolist()
                receiver_list = receivers.tolist()
            else:
                sender_list = [i for i in edge_senders if frontier_of[i] is not None]
                receiver_list = [
                    r
                    for i, r in zip(edge_senders, edge_receivers)
                    if frontier_of[i] is not None
                ]
                senders = sender_list
                receivers = receiver_list
            words_of = [0] * sim.n
            for i, frontier in enumerate(frontier_of):
                if frontier is not None:
                    words_of[i] = payload_words(frontier)
            payloads = [frontier_of[i] for i in sender_list]
            words = [words_of[i] for i in sender_list]
            sim.local_send_plane(
                TokenPlane(senders, receivers, words, payloads), None, "nq-explore"
            )
            sim.advance_round()
            # Fold deliveries from the plane columns (receiver u gets the
            # frontier its neighbor v sent this round).
            fresh_of: Dict[int, Set[Node]] = {}
            for position, receiver in enumerate(receiver_list):
                ball = known_balls[receiver]
                fresh = fresh_of.get(receiver)
                for u in payloads[position]:
                    if u not in ball:
                        if fresh is None:
                            fresh = fresh_of[receiver] = set()
                        fresh.add(u)
            next_frontiers: List[Optional[frozenset]] = [None] * sim.n
            for receiver, fresh in fresh_of.items():
                known_balls[receiver] |= fresh
                next_frontiers[receiver] = frozenset(fresh)
            frontier_of = next_frontiers

            nq_value = self._step_bookkeeping(t, balls_by_node)
            if nq_value is not None:
                break

        self._finalize(t if nq_value is None else nq_value, sim)

    def _explore_frontier_tuples(self) -> None:
        """The retained tuple-workload frontier flood (the previous engine).

        Identical rounds, balls and word accounting to :meth:`_explore_frontier`
        — only the per-token containers differ; kept as the
        ``engine="batch-reference"`` comparison baseline.
        """
        from repro.simulator.messages import LOCAL_MODE

        sim = self.simulator
        known_balls: Dict[Node, Set[Node]] = {v: {v} for v in sim.nodes}
        frontiers: Dict[Node, frozenset] = {v: frozenset((v,)) for v in sim.nodes}
        neighbors = {v: sim.neighbors(v) for v in sim.nodes}

        t = 0
        nq_value: Optional[int] = None
        max_steps = sim.n  # exploration can never exceed n-1 depth
        while t < max_steps:
            t += 1
            # One local round: every node forwards its newest discoveries.
            triples = []
            for v in sim.nodes:
                frontier = frontiers[v]
                if not frontier:
                    continue
                words = payload_words(frontier)
                for u in neighbors[v]:
                    triples.append((v, u, frontier, words))
            sim.local_send_batch(triples, "nq-explore")
            sim.advance_round()
            inbox = sim.per_node_inbox(LOCAL_MODE)
            next_frontiers: Dict[Node, frozenset] = {}
            for v in sim.nodes:
                ball = known_balls[v]
                fresh: Set[Node] = set()
                for sender, payload, tag, _ in inbox.get(v, ()):
                    if tag != "nq-explore":
                        continue
                    for u in payload:
                        if u not in ball:
                            fresh.add(u)
                ball |= fresh
                next_frontiers[v] = frozenset(fresh)
            frontiers = next_frontiers

            nq_value = self._step_bookkeeping(t, known_balls)
            if nq_value is not None:
                break

        self._finalize(t if nq_value is None else nq_value, sim)

    def _explore_legacy(self) -> None:
        """The original whole-ball flooding over the per-message API."""
        sim = self.simulator
        known_balls: Dict[Node, Set[Node]] = {v: {v} for v in sim.nodes}

        t = 0
        nq_value: Optional[int] = None
        max_steps = sim.n  # exploration can never exceed n-1 depth
        while t < max_steps:
            t += 1
            # One local round: every node tells its neighbors its known ball.
            for v in sim.nodes:
                sim.local_broadcast(v, frozenset(known_balls[v]), tag="nq-explore")
            sim.advance_round()
            new_balls: Dict[Node, Set[Node]] = {}
            for v in sim.nodes:
                merged = set(known_balls[v])
                for message in sim.local_inbox(v):
                    if message.tag == "nq-explore":
                        merged.update(message.payload)
                new_balls[v] = merged
            known_balls = new_balls

            nq_value = self._step_bookkeeping(t, known_balls)
            if nq_value is not None:
                break

        self._finalize(t if nq_value is None else nq_value, sim)

    def _finalize(self, nq_value: int, sim: HybridSimulator) -> None:
        self._nq_value = nq_value
        # Nodes whose threshold was never reached have NQ_k(v) = D; at this
        # point the exploration depth equals (an upper bound on) it.
        for v in sim.nodes:
            self._per_node_nq.setdefault(v, nq_value)

    def finish(self) -> NQResult:
        return NQResult(
            nq=self._nq_value,
            per_node=dict(self._per_node_nq),
            metrics=self.simulator.metrics,
        )
