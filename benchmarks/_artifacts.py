"""Machine-readable benchmark artifacts.

The ASCII tables in ``benchmarks/results/`` are for humans; tracking the
performance trajectory across commits needs stable JSON.
:func:`write_bench_artifact` serialises a benchmark's raw result rows — plus
the parameters and environment needed to interpret them — as
``BENCH_<name>.json`` under ``$BENCH_ARTIFACTS_DIR`` (default:
``benchmarks/results/``).  The PR smoke workflow uploads these files as build
artifacts, one trajectory point per commit.
"""

from __future__ import annotations

import json
import os
import pathlib
import platform
import sys
from typing import Any, Dict, Optional, Sequence

_DEFAULT_DIR = pathlib.Path(__file__).parent / "results"


def _environment() -> Dict[str, Any]:
    try:
        import numpy

        numpy_version: Optional[str] = numpy.__version__
    except Exception:
        numpy_version = None
    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "numpy": numpy_version,
        "platform": sys.platform,
        "commit": os.environ.get("GITHUB_SHA"),
    }


def write_bench_artifact(
    name: str, rows: Sequence[Dict[str, Any]], **context: Any
) -> pathlib.Path:
    """Write ``BENCH_<name>.json`` and return its path.

    ``rows`` are the benchmark's raw result rows (JSON-serialisable dicts);
    ``context`` carries the benchmark parameters worth keeping next to the
    numbers (instance sizes, repeat counts, required speedup floors, ...).
    """
    directory = pathlib.Path(os.environ.get("BENCH_ARTIFACTS_DIR") or _DEFAULT_DIR)
    directory.mkdir(parents=True, exist_ok=True)
    payload = {
        "benchmark": name,
        "context": dict(context),
        "environment": _environment(),
        "rows": [dict(row) for row in rows],
    }
    path = directory / f"BENCH_{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
