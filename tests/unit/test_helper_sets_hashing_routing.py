"""Unit tests for adaptive/classic helper sets (Lemma 5.2, Definition 9.1),
kappa-wise independent hashing (Lemma 5.3) and (k, l)-routing (Theorem 3)."""

import math
import random
from collections import Counter

import pytest

from repro.core.clustering import nq_clustering
from repro.core.hashing import PairwiseHash, next_prime
from repro.core.helper_sets import (
    compute_adaptive_helper_sets,
    compute_classic_helper_sets,
)
from repro.core.neighborhood_quality import neighborhood_quality
from repro.core.routing import KLRouting, RoutingScenario
from repro.graphs.generators import cycle_graph, grid_graph, path_graph
from repro.graphs.properties import hop_distances_from
from repro.simulator.config import ModelConfig, log2_ceil
from repro.simulator.network import HybridSimulator


class TestAdaptiveHelperSets:
    def _setup(self, graph, k, count, seed=0):
        sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)
        rng = random.Random(seed)
        targets = rng.sample(sorted(graph.nodes, key=str), count)
        assignment = compute_adaptive_helper_sets(sim, targets, k, seed=seed)
        return sim, targets, assignment

    def test_every_target_gets_helpers(self):
        sim, targets, assignment = self._setup(grid_graph(7, 2), 20, 6)
        assert set(assignment.helpers) == set(targets)
        assert all(len(helpers) >= 1 for helpers in assignment.helpers.values())

    def test_helper_set_size_property_1(self):
        # Definition 5.1 (1): |H_w| >= k / NQ_k (allowing a small rounding slack
        # on tiny instances).
        graph = grid_graph(7, 2)
        k = 20
        nq = neighborhood_quality(graph, k)
        sim, targets, assignment = self._setup(graph, k, 5, seed=1)
        minimum = assignment.min_helper_count()
        assert minimum >= math.floor(k / nq) * 0.5

    def test_helpers_are_nearby_property_2(self):
        # Definition 5.1 (2): helpers within eO(NQ_k) hops of their target.
        graph = grid_graph(7, 2)
        k = 20
        nq = neighborhood_quality(graph, k)
        log_n = log2_ceil(graph.number_of_nodes())
        sim, targets, assignment = self._setup(graph, k, 5, seed=2)
        bound = 4 * nq * log_n
        for target, helpers in assignment.helpers.items():
            dist = hop_distances_from(graph, target)
            assert all(dist[h] <= bound for h in helpers)

    def test_load_is_bounded_property_3(self):
        # Definition 5.1 (3): each node serves in eO(1) = O(log n) helper sets
        # when the targets are sampled sparsely.
        graph = grid_graph(8, 2)
        k = 32
        sim, targets, assignment = self._setup(graph, k, 4, seed=3)
        log_n = log2_ceil(graph.number_of_nodes())
        assert assignment.max_load() <= 4 * log_n

    def test_rejects_bad_k(self):
        sim = HybridSimulator(path_graph(6), ModelConfig.hybrid(), seed=0)
        with pytest.raises(ValueError):
            compute_adaptive_helper_sets(sim, [0], 0)


class TestClassicHelperSets:
    def test_size_and_distance(self):
        graph = grid_graph(8, 2)
        rng = random.Random(0)
        x = 4
        targets = [v for v in graph.nodes if rng.random() < 1.0 / x]
        assignment = compute_classic_helper_sets(graph, targets, x, seed=0)
        for target, helpers in assignment.helpers.items():
            assert len(helpers) >= min(x, graph.number_of_nodes())
            dist = hop_distances_from(graph, target)
            assert all(dist[h] <= 2 * x for h in helpers)

    def test_target_is_its_own_helper(self):
        graph = path_graph(30)
        assignment = compute_classic_helper_sets(graph, [5, 20], 3, seed=0)
        assert 5 in assignment.helpers[5]
        assert 20 in assignment.helpers[20]

    def test_rejects_bad_x(self):
        with pytest.raises(ValueError):
            compute_classic_helper_sets(path_graph(5), [0], 0)


class TestPairwiseHash:
    def test_next_prime(self):
        assert next_prime(10) == 11
        assert next_prime(11) == 11
        assert next_prime(1) == 2

    def test_deterministic_given_seed(self):
        h1 = PairwiseHash(100, 25, 8, seed=3)
        h2 = PairwiseHash(100, 25, 8, seed=3)
        assert all(h1(i, j) == h2(i, j) for i in range(10) for j in range(10))

    def test_range(self):
        h = PairwiseHash(50, 17, 6, seed=0)
        for i in range(50):
            for j in range(0, 50, 7):
                assert 0 <= h(i, j) < 17

    def test_seed_words_equals_independence(self):
        h = PairwiseHash(100, 10, 12, seed=0)
        assert h.seed_words == 12

    def test_balanced_buckets(self):
        # With n^2 pairs thrown into n buckets the max load should stay within a
        # small factor of the mean (kl/n balls-into-bins, Lemma 5.3 property 1).
        n = 40
        h = PairwiseHash(n, n, 16, seed=1)
        counts = Counter(h(i, j) for i in range(n) for j in range(n))
        mean = n * n / n
        assert max(counts.values()) <= 3 * mean

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            PairwiseHash(0, 5, 2)
        with pytest.raises(ValueError):
            PairwiseHash(5, 0, 2)
        with pytest.raises(ValueError):
            PairwiseHash(5, 5, 0)
        h = PairwiseHash(5, 5, 2, seed=0)
        with pytest.raises(ValueError):
            h(-1, 0)


class TestKLRouting:
    def _messages(self, graph, k, l, seed=0):
        rng = random.Random(seed)
        nodes = sorted(graph.nodes, key=str)
        sources = rng.sample(nodes, k)
        targets = rng.sample(nodes, l)
        messages = {
            (s, t): ("m", si, ti)
            for si, s in enumerate(sources)
            for ti, t in enumerate(targets)
        }
        return sources, targets, messages

    @pytest.mark.parametrize(
        "graph_builder,k,l",
        [
            (lambda: grid_graph(6, 2), 6, 3),
            (lambda: path_graph(40), 8, 2),
            (lambda: cycle_graph(30), 5, 5),
        ],
    )
    def test_all_messages_delivered_case1(self, graph_builder, k, l):
        graph = graph_builder()
        sources, targets, messages = self._messages(graph, k, l, seed=1)
        sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=1)
        result = KLRouting(
            sim, messages, scenario=RoutingScenario.ARBITRARY_SOURCES_RANDOM_TARGETS, seed=1
        ).run()
        assert result.all_delivered(messages)
        assert result.k == k
        assert result.l == l

    def test_all_messages_delivered_case3(self):
        graph = grid_graph(7, 2)
        sources, targets, messages = self._messages(graph, 10, 4, seed=2)
        sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=2)
        result = KLRouting(
            sim, messages, scenario=RoutingScenario.RANDOM_SOURCES_RANDOM_TARGETS, seed=2
        ).run()
        assert result.all_delivered(messages)

    def test_send_side_capacity_respected(self):
        graph = grid_graph(6, 2)
        sources, targets, messages = self._messages(graph, 8, 3, seed=3)
        sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=3)
        KLRouting(sim, messages, seed=3).run()
        # Send-side overloads would have raised; we additionally expect few or
        # no recorded receive-side violations on this small instance.
        assert sim.metrics.capacity_violations == 0

    def test_intermediate_load_is_balanced(self):
        graph = grid_graph(7, 2)
        sources, targets, messages = self._messages(graph, 10, 5, seed=4)
        sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=4)
        result = KLRouting(sim, messages, seed=4).run()
        # Lemma 5.3 property (1): no node is the intermediate of >> kl/n + O(NQ) pairs.
        bound = max(4, 4 * (len(messages) / graph.number_of_nodes()) + 4 * result.nq)
        assert max(result.intermediate_load.values()) <= bound

    def test_payload_integrity(self):
        graph = path_graph(30)
        sources, targets, messages = self._messages(graph, 4, 2, seed=5)
        sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=5)
        result = KLRouting(sim, messages, seed=5).run()
        for (s, t), payload in messages.items():
            assert result.delivered[t][s] == payload

    def test_empty_messages_rejected(self):
        sim = HybridSimulator(path_graph(5), ModelConfig.hybrid(), seed=0)
        with pytest.raises(ValueError):
            KLRouting(sim, {})

    def test_unknown_endpoint_rejected(self):
        sim = HybridSimulator(path_graph(5), ModelConfig.hybrid(), seed=0)
        with pytest.raises(KeyError):
            KLRouting(sim, {(0, 99): "x"})

    def test_rounds_scale_with_nq_not_worst_case(self):
        # Routing the same number of messages on a star-like graph (small NQ)
        # must be cheaper than on a path (large NQ).
        k, l = 8, 2
        grid = grid_graph(8, 2)
        path = path_graph(64)
        _, _, grid_messages = self._messages(grid, k, l, seed=6)
        _, _, path_messages = self._messages(path, k, l, seed=6)
        grid_sim = HybridSimulator(grid, ModelConfig.hybrid(), seed=6)
        path_sim = HybridSimulator(path, ModelConfig.hybrid(), seed=6)
        grid_result = KLRouting(grid_sim, grid_messages, seed=6).run()
        path_result = KLRouting(path_sim, path_messages, seed=6).run()
        assert grid_result.nq <= path_result.nq
        assert grid_sim.metrics.total_rounds <= path_sim.metrics.total_rounds
