"""The neighborhood-quality parameter ``NQ_k`` (Section 3).

Definition 3.1: for a graph ``G``, a workload ``k > 0`` and a node ``v``,

    ``NQ_k(v) = min({t : |B_t(v)| >= k / t} U {D})``    and
    ``NQ_k(G) = max_v NQ_k(v)``,

where ``B_t(v)`` is the hop-ball of radius ``t`` around ``v`` and ``D`` is the
hop diameter.  Intuitively ``NQ_k(v)`` is the smallest radius at which ``v``'s
neighborhood is large enough to pull in ``~k`` words of information through the
global network within ``O(t)`` rounds.

This module provides

* a centralized reference computation (used by theory predictions, tests and as
  ground truth for the distributed algorithm), and
* :class:`DistributedNQComputation`, the distributed computation of Lemma 3.3
  that runs on the :class:`~repro.simulator.network.HybridSimulator`:
  every node explores its neighborhood to increasing depth ``t`` (one local
  round per depth step) and after each step the global minimum ball size
  ``N_t = min_v |B_t(v)|`` is computed with the eO(1)-round aggregation of
  Lemma 4.4; the exploration stops at the first ``t`` with ``N_t >= k / t``.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Hashable, Optional

import networkx as nx

from repro.graphs.properties import ball_sizes_all_radii, diameter, hop_distances_from
from repro.simulator.config import log2_ceil
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = [
    "neighborhood_quality_of_node",
    "neighborhood_quality_per_node",
    "neighborhood_quality",
    "nq_profile",
    "DistributedNQComputation",
    "NQResult",
]


def _nq_from_ball_sizes(ball_sizes: list, k: float, graph_diameter: int) -> int:
    """Evaluate Definition 3.1 given ``[|B_0(v)|, |B_1(v)|, ...]``."""
    if k <= 0:
        raise ValueError("k must be positive")
    # t ranges over positive integers; the list index is the radius.
    max_radius = len(ball_sizes) - 1
    for t in range(1, graph_diameter + 1):
        size = ball_sizes[t] if t <= max_radius else ball_sizes[max_radius]
        if size >= k / t:
            return t
    return graph_diameter


def neighborhood_quality_of_node(
    graph: nx.Graph, k: float, node: Node, graph_diameter: Optional[int] = None
) -> int:
    """``NQ_k(v)`` for a single node (centralized reference)."""
    if graph_diameter is None:
        graph_diameter = diameter(graph)
    if graph_diameter == 0:
        # Single-node graph: the ball of radius "D" is the node itself.
        return 0
    sizes = ball_sizes_all_radii(graph, node)
    return _nq_from_ball_sizes(sizes, k, graph_diameter)


def neighborhood_quality_per_node(graph: nx.Graph, k: float) -> Dict[Node, int]:
    """``NQ_k(v)`` for every node (centralized reference)."""
    graph_diameter = diameter(graph)
    result: Dict[Node, int] = {}
    for node in graph.nodes:
        if graph_diameter == 0:
            result[node] = 0
            continue
        sizes = ball_sizes_all_radii(graph, node)
        result[node] = _nq_from_ball_sizes(sizes, k, graph_diameter)
    return result


def neighborhood_quality(graph: nx.Graph, k: float) -> int:
    """``NQ_k(G) = max_v NQ_k(v)`` (centralized reference)."""
    per_node = neighborhood_quality_per_node(graph, k)
    return max(per_node.values())


def nq_profile(graph: nx.Graph, ks: list) -> Dict[float, int]:
    """``NQ_k(G)`` for several workloads ``k`` (shares the diameter computation)."""
    graph_diameter = diameter(graph)
    sizes_per_node = {node: ball_sizes_all_radii(graph, node) for node in graph.nodes}
    profile: Dict[float, int] = {}
    for k in ks:
        if graph_diameter == 0:
            profile[k] = 0
            continue
        profile[k] = max(
            _nq_from_ball_sizes(sizes, k, graph_diameter)
            for sizes in sizes_per_node.values()
        )
    return profile


@dataclasses.dataclass
class NQResult:
    """Result of the distributed NQ_k computation (Lemma 3.3)."""

    nq: int
    per_node: Dict[Node, int]
    metrics: RoundMetrics


class DistributedNQComputation:
    """Distributed computation of ``NQ_k`` and ``NQ_k(v)`` (Lemma 3.3).

    The algorithm explores neighborhoods to increasing depth.  Depth step ``t``
    costs one round of local flooding (simulated: every node broadcasts its
    currently known ball to its neighbors), after which the global minimum
    ``N_t = min_v |B_t(v)|`` is obtained via the virtual-tree aggregation of
    Lemma 4.4, charged as ``O(log^2 n)`` rounds per step (the tree construction
    of [GHSS17] is charged once; see DESIGN.md substitution note 1).
    Exploration stops at the first ``t`` with ``N_t >= k / t``; if the entire
    graph is explored first, ``NQ_k = D``.
    """

    def __init__(self, simulator: HybridSimulator, k: float) -> None:
        if k <= 0:
            raise ValueError("k must be positive")
        self.simulator = simulator
        self.k = k

    def run(self) -> NQResult:
        sim = self.simulator
        n = sim.n
        log_n = log2_ceil(max(n, 2))

        # Each node's current knowledge of its ball (starts with itself).
        known_balls: Dict[Node, set] = {v: {v} for v in sim.nodes}
        per_node_nq: Dict[Node, int] = {}
        aggregation_charge_per_step = 2 * log_n

        # One-time overlay construction used by the Lemma 4.4 aggregations.
        sim.charge_rounds(
            log_n * log_n,
            "virtual-tree overlay construction for basic aggregation",
            "Lemma 4.3 [GHSS17]",
        )

        t = 0
        nq_value: Optional[int] = None
        max_steps = n  # exploration can never exceed n-1 depth
        while t < max_steps:
            t += 1
            # One local round: every node tells its neighbors its known ball.
            for v in sim.nodes:
                sim.local_broadcast(v, frozenset(known_balls[v]), tag="nq-explore")
            sim.advance_round()
            new_balls: Dict[Node, set] = {}
            for v in sim.nodes:
                merged = set(known_balls[v])
                for message in sim.local_inbox(v):
                    if message.tag == "nq-explore":
                        merged.update(message.payload)
                new_balls[v] = merged
            known_balls = new_balls

            # Record per-node NQ_k(v) the first time the node's own ball passes
            # the threshold.
            for v in sim.nodes:
                if v not in per_node_nq and len(known_balls[v]) >= self.k / t:
                    per_node_nq[v] = t

            # Global min-aggregation of |B_t(v)| (Lemma 4.4), charged.
            sim.charge_rounds(
                aggregation_charge_per_step,
                f"min-aggregation of ball sizes at depth {t}",
                "Lemma 4.4",
            )
            min_ball = min(len(known_balls[v]) for v in sim.nodes)
            if min_ball >= self.k / t:
                nq_value = t
                break
            if all(len(known_balls[v]) == n for v in sim.nodes):
                # Entire graph explored: NQ_k = D and t is now >= D.
                nq_value = t
                break

        if nq_value is None:
            nq_value = t
        # Nodes whose threshold was never reached have NQ_k(v) = D; at this
        # point t equals (an upper bound on) the relevant exploration depth.
        for v in sim.nodes:
            per_node_nq.setdefault(v, nq_value)
        return NQResult(nq=nq_value, per_node=per_node_nq, metrics=sim.metrics)
