"""Quickstart: simulate a HYBRID network and run the paper's headline algorithms.

This walks through the core objects in ~60 lines:

1. build a graph (an 8x8 grid — a family on which the paper's universally
   optimal algorithms polynomially beat the existential sqrt(k)/sqrt(n) bounds),
2. compute the neighborhood quality ``NQ_k`` (the paper's central parameter),
3. broadcast k messages with Theorem 1's k-dissemination and compare the round
   count against the prior existential bound and the universal lower bound,
4. approximate all-pairs shortest paths with Theorem 6 and check the stretch.

Run it with ``python examples/quickstart.py``.
"""

from __future__ import annotations

import random

from repro import (
    HybridSimulator,
    KDissemination,
    ModelConfig,
    UnweightedApproxAPSP,
    neighborhood_quality,
)
from repro.baselines.centralized import exact_hop_apsp, max_stretch_of_table
from repro.baselines.existential import ExistentialBounds
from repro.graphs import GraphSpec, generate_graph
from repro.lowerbounds import dissemination_lower_bound


def main() -> None:
    # 1. The local communication graph: an 8x8 grid (64 nodes).
    spec = GraphSpec.of("grid", side=8, dim=2)
    graph = generate_graph(spec)
    n = graph.number_of_nodes()
    print(f"graph: {spec.label()} with n={n} nodes")

    # 2. The neighborhood quality NQ_k for a workload of k = 48 messages.
    k = 48
    nq = neighborhood_quality(graph, k)
    print(f"NQ_{k} = {nq}   (paper, Lemma 3.6: always <= min(D, sqrt k))")

    # 3. k-dissemination (Theorem 1) in the HYBRID_0 model.
    rng = random.Random(0)
    tokens_by_node = {}
    for index in range(k):
        holder = rng.choice(sorted(graph.nodes))
        tokens_by_node.setdefault(holder, []).append(("announcement", index))

    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=0)
    result = KDissemination(sim, tokens_by_node).run()
    assert result.all_nodes_know_all_tokens()

    lower = dissemination_lower_bound(graph, k)
    prior = ExistentialBounds.broadcast_ahk20(n, k)
    print(
        f"k-dissemination: {sim.metrics.total_rounds} rounds total "
        f"({sim.metrics.measured_rounds} physically simulated, "
        f"{sim.metrics.charged_rounds} charged), "
        f"{sim.metrics.global_messages} global messages"
    )
    print(
        f"  prior existential bound ~ sqrt(k) = {prior:.1f} (x polylog), "
        f"universal lower bound (Thm 4) = {lower.rounds:.2f}"
    )

    # 4. (1+eps)-approximate APSP (Theorem 6), checked against BFS ground truth.
    sim2 = HybridSimulator(graph, ModelConfig.hybrid0(), seed=0)
    table = UnweightedApproxAPSP(sim2, epsilon=0.5).run()
    truth = {
        v: {w: float(d) for w, d in row.items()} for v, row in exact_hop_apsp(graph).items()
    }
    stretch = max_stretch_of_table(truth, table.estimates)
    print(
        f"APSP (Thm 6): {sim2.metrics.total_rounds} rounds, "
        f"measured stretch {stretch:.3f} <= bound {table.stretch_bound:.3f}, "
        f"prior existential bound ~ sqrt(n) = {ExistentialBounds.apsp_sqrt_n(n):.1f} (x polylog)"
    )


if __name__ == "__main__":
    main()
