"""Shortest-paths pipeline benchmark: batch vs. legacy engine APSP at n=2000.

Acceptance check for the batch-native shortest-paths migration (PR 3):
``UnweightedApproxAPSP`` on a 2000-node path — whose two Theorem 1 broadcasts
(node identifiers and closest-leader labels, k = n tokens each) are physically
simulated k-dissemination instances — must run at least 5x faster wall-clock
through the batch messaging engine than through the legacy per-message
transport, with identical round counts, identical estimates and zero capacity
violations.  NQ_n and the Lemma 3.5 clustering are precomputed once and shared
by both runs (graph analytics, not message traffic — they would dominate both
timings equally), exactly like ``bench_batch_engine.py`` does for
k-dissemination.

The distance table is a ``DenseDistanceTable``: its rows come from GraphIndex
flat-array sweeps and are materialised on demand, so the timing reflects the
simulated communication, not ``n^2`` Python dict churn.  Estimates are
spot-checked against the exact path-graph distances afterwards.

Run directly (``python benchmarks/bench_shortest_paths.py``) or through pytest
(``pytest benchmarks/bench_shortest_paths.py``).  Each run also writes a
machine-readable ``BENCH_shortest_paths.json`` trajectory artifact next to
the ASCII tables (see ``_artifacts.py``).
"""

from __future__ import annotations

import os
import random
import time
from typing import Any, Dict

from _artifacts import update_trajectory, write_bench_artifact
from repro.core.clustering import nq_clustering
from repro.core.neighborhood_quality import neighborhood_quality
from repro.core.shortest_paths import UnweightedApproxAPSP
from repro.graphs.generators import path_graph
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator

N = 2000
EPSILON = 0.5
SEED = 7
REPEATS = 3
SPOT_CHECKS = 64
#: The acceptance bar on a quiet machine (measured ~9-10x).  Shared CI runners
#: have wall-clock variance that can unfairly fail a ratio assertion, so CI
#: may relax the floor via SHORTEST_PATHS_MIN_SPEEDUP (the correctness checks
#: — identical rounds, identical estimates, zero violations — are never
#: relaxed).
REQUIRED_SPEEDUP = float(os.environ.get("SHORTEST_PATHS_MIN_SPEEDUP", "5.0"))


def _timed_run(graph, nq, clustering, engine: str):
    simulator = HybridSimulator(graph, ModelConfig.hybrid0(), seed=3)
    algorithm = UnweightedApproxAPSP(
        simulator, epsilon=EPSILON, engine=engine, nq=nq, clustering=clustering
    )
    start = time.perf_counter()
    table = algorithm.run()
    elapsed = time.perf_counter() - start
    return elapsed, table, simulator


def run_speedup_comparison() -> Dict[str, Any]:
    graph = path_graph(N)
    warmup = HybridSimulator(graph, ModelConfig.hybrid0(), seed=3)
    nq = max(1, neighborhood_quality(graph, N))
    clustering = nq_clustering(graph, N, nq=nq, id_of=warmup.id_of)

    batch_times, legacy_times = [], []
    batch_table = legacy_table = None
    batch_sim = legacy_sim = None
    for _ in range(REPEATS):
        elapsed, batch_table, batch_sim = _timed_run(graph, nq, clustering, "batch")
        batch_times.append(elapsed)
        elapsed, legacy_table, legacy_sim = _timed_run(graph, nq, clustering, "legacy")
        legacy_times.append(elapsed)

    # Spot-check the dense estimates against the exact path-graph distances
    # (x >= diameter on this instance, so the Algorithm 3 estimate is exact),
    # and against each other.
    rng = random.Random(SEED)
    spot_checks_exact = True
    engines_agree = True
    for _ in range(SPOT_CHECKS):
        u, v = rng.randrange(N), rng.randrange(N)
        batch_estimate = batch_table.estimate(u, v)
        engines_agree &= batch_estimate == legacy_table.estimate(u, v)
        spot_checks_exact &= batch_estimate == float(abs(u - v))

    batch_best = min(batch_times)
    legacy_best = min(legacy_times)
    return {
        "n": N,
        "epsilon": EPSILON,
        "NQ_n": nq,
        "clusters": len(clustering),
        "batch seconds (best of 3)": round(batch_best, 4),
        "legacy seconds (best of 3)": round(legacy_best, 4),
        "speedup": round(legacy_best / batch_best, 2),
        "measured rounds (batch)": batch_sim.metrics.measured_rounds,
        "measured rounds (legacy)": legacy_sim.metrics.measured_rounds,
        "total rounds (batch)": batch_sim.metrics.total_rounds,
        "total rounds (legacy)": legacy_sim.metrics.total_rounds,
        "global messages (batch)": batch_sim.metrics.global_messages,
        "capacity violations (batch)": batch_sim.metrics.capacity_violations,
        "identical metrics": batch_sim.metrics.summary() == legacy_sim.metrics.summary(),
        "estimates agree": engines_agree,
        "estimates exact": spot_checks_exact,
    }


def _check(row: Dict[str, Any]) -> None:
    assert row["identical metrics"], "batch and legacy metrics diverge"
    assert row["estimates agree"], "batch and legacy estimates diverge"
    assert row["estimates exact"], "APSP estimates drifted from exact path distances"
    assert row["measured rounds (batch)"] == row["measured rounds (legacy)"]
    assert row["capacity violations (batch)"] == 0
    assert row["speedup"] >= REQUIRED_SPEEDUP, (
        f"shortest-paths batch speedup {row['speedup']}x below the required "
        f"{REQUIRED_SPEEDUP}x"
    )


def _write_artifact(row: Dict[str, Any]) -> None:
    write_bench_artifact(
        "shortest_paths",
        [row],
        n=N,
        epsilon=EPSILON,
        repeats=REPEATS,
        spot_checks=SPOT_CHECKS,
        required_speedup=REQUIRED_SPEEDUP,
    )
    update_trajectory(
        "shortest_paths",
        f"UnweightedApproxAPSP batch path {row['speedup']}x faster than legacy "
        f"(floor {REQUIRED_SPEEDUP}x) at n={N}, eps={EPSILON}",
    )


def test_shortest_paths_engine_speedup(save_table):
    row = run_speedup_comparison()
    save_table(
        "shortest_paths_speedup",
        [row],
        "Shortest-paths pipeline - UnweightedApproxAPSP n=2000 path, batch vs legacy",
    )
    _write_artifact(row)
    _check(row)


def main() -> None:
    row = run_speedup_comparison()
    width = max(len(key) for key in row)
    for key, value in row.items():
        print(f"{key:<{width}}  {value}")
    _write_artifact(row)
    _check(row)
    print(f"\nOK: shortest-paths pipeline meets the >= {REQUIRED_SPEEDUP}x bar.")


if __name__ == "__main__":
    main()
