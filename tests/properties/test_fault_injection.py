"""Property tests for fault injection and the self-healing layer.

Four groups, mirroring the layer's contract:

* **Empty-schedule identity** — an empty :class:`FaultSchedule` installs no
  fault state, so runs are bit-identical (inboxes, metrics, algorithm
  results) to runs with no schedule at all, on both array backends.
* **Fault semantics** — crash windows silence a node's sends *and* receives
  and count ``crashed_node_rounds``; link failures drop local records on the
  failed edge only; degradation windows shrink the planned budget and recover
  afterwards without ever tripping strict capacity checks.
* **Replay** — a fault trajectory is a deterministic function of
  ``(schedule seed, schedule)``: identical across reruns *and* across the
  NumPy / pure-Python backends.
* **Self-healing** — the ack-tracked resilient exchange delivers everything
  deliverable under drops, waits out crash windows, reports genuinely dead
  receivers; :class:`ResilientDissemination` reaches every live node on a
  6-family x 3-seed crash/drop grid and reruns byte-identically (the
  acceptance criterion).
"""

from __future__ import annotations

import random

import pytest

from repro.core.dissemination import KDissemination
from repro.core.resilience import ResilientDissemination
from repro.graphs.generators import (
    barbell_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
    star_graph,
)
from repro.simulator import _accel
from repro.simulator.config import ModelConfig
from repro.simulator.engine import BatchAlgorithm
from repro.simulator.faults import (
    CapacityDegradation,
    CrashEvent,
    FaultSchedule,
    LinkFailure,
    crash_fraction_schedule,
)
from repro.simulator.messages import GLOBAL_MODE, LOCAL_MODE, payload_words
from repro.simulator.network import HybridSimulator

SEEDS = [0, 1, 2]


@pytest.fixture(params=["numpy", "python"])
def backend(request, monkeypatch):
    """Run the test body under both array backends."""
    if request.param == "python":
        monkeypatch.setattr(_accel, "np", None)
    elif _accel.np is None:
        pytest.skip("NumPy not available; vectorised leg is inactive")
    return request.param


def _mixed_traffic(sim, rng, rounds=4):
    """Drive rounds of mixed global/local traffic; return per-round inboxes.

    Send-side budgets are respected (strict mode must not trip); receivers are
    random, so receive overloads may be *recorded* — identically in the runs
    under comparison.
    """
    n = sim.n
    budget = sim.global_budget_words()
    edges = sorted(sim.graph.edges)
    trace = []
    for r in range(rounds):
        senders, receivers, payloads, spent = [], [], [], {}
        for i in range(rng.randrange(10, 40)):
            sender = rng.randrange(n)
            payload = ("g", r, i)
            cost = payload_words(payload) + payload_words("fi")
            if spent.get(sender, 0) + cost > budget:
                continue
            spent[sender] = spent.get(sender, 0) + cost
            senders.append(sender)
            receivers.append(rng.randrange(n))
            payloads.append(payload)
        sim.global_send_batch_ids(senders, receivers, payloads, tag="fi")
        picks = [edges[rng.randrange(len(edges))] for _ in range(rng.randrange(5, 20))]
        sim.local_send_batch([(u, v, ("l", r, i)) for i, (u, v) in enumerate(picks)])
        sim.advance_round()
        trace.append(
            {
                GLOBAL_MODE: sim.per_node_inbox(GLOBAL_MODE),
                LOCAL_MODE: sim.per_node_inbox(LOCAL_MODE),
            }
        )
    return trace


# ----------------------------------------------------------------------
# Empty-schedule identity (the layer's hard invariant)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_empty_schedule_runs_are_bit_identical(seed, backend):
    graph = erdos_renyi_graph(22, 0.2, seed=seed)

    def run(schedule):
        sim = HybridSimulator(
            graph, ModelConfig.hybrid(), seed=seed, fault_schedule=schedule
        )
        inboxes = _mixed_traffic(sim, random.Random(1000 + seed))
        return inboxes, sim.metrics.summary(), sim.fault_state

    bare_inbox, bare_summary, bare_state = run(None)
    empty_inbox, empty_summary, empty_state = run(FaultSchedule(seed=123))
    assert bare_state is None and empty_state is None
    assert empty_inbox == bare_inbox
    assert empty_summary == bare_summary
    assert empty_summary["dropped_messages"] == 0
    assert empty_summary["retransmissions"] == 0
    assert empty_summary["crashed_node_rounds"] == 0


@pytest.mark.parametrize("seed", SEEDS)
def test_empty_schedule_dissemination_is_identical(seed, backend):
    graph = path_graph(24)
    rng = random.Random(50 + seed)
    tokens = {}
    for index in range(12):
        tokens.setdefault(rng.randrange(24), []).append(("tok", index))

    def run(schedule):
        sim = HybridSimulator(
            graph, ModelConfig.hybrid0(), seed=seed, fault_schedule=schedule
        )
        result = KDissemination(sim, tokens).run()
        assert result.all_nodes_know_all_tokens()
        return sim.metrics.summary()

    assert run(FaultSchedule()) == run(None)


# ----------------------------------------------------------------------
# Crash, link-failure and degradation semantics
# ----------------------------------------------------------------------
def test_crash_window_silences_sends_and_receives(backend):
    graph = path_graph(8)
    schedule = FaultSchedule(
        crashes=(CrashEvent(node=3, crash_round=1, recover_round=3),)
    )
    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=0, fault_schedule=schedule)
    got_from3, got_to3 = [], []
    for _ in range(5):
        # Node 3 both sends and is addressed every round.
        sim.global_send_batch_ids([3, 0], [5, 3], [("from3", sim.round), ("to3", sim.round)])
        sim.advance_round()
        inbox = sim.per_node_inbox(GLOBAL_MODE)
        got_from3.extend(p[1] for _, p, *_ in inbox.get(5, ()))
        got_to3.extend(p[1] for _, p, *_ in inbox.get(3, ()))
    # Rounds 1 and 2 are silenced in both directions; the rest deliver.
    assert got_from3 == [0, 3, 4]
    assert got_to3 == [0, 3, 4]
    assert sim.metrics.dropped_messages == 4
    assert sim.metrics.crashed_node_rounds == 2


def test_link_failure_drops_only_the_failed_edge(backend):
    graph = path_graph(5)
    schedule = FaultSchedule(link_failures=(LinkFailure(1, 2, end_round=2),))
    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=0, fault_schedule=schedule)
    got = {1: [], 2: [], 3: []}
    for _ in range(3):
        sim.local_send_batch(
            [(1, 2, ("down", sim.round)), (2, 1, ("down-rev", sim.round)),
             (2, 3, ("up", sim.round))]
        )
        sim.advance_round()
        inbox = sim.per_node_inbox(LOCAL_MODE)
        for node in got:
            got[node].extend(p[1] for _, p, *_ in inbox.get(node, ()))
    assert got[2] == [2]       # only round 2 survives
    assert got[1] == [2]       # symmetric failure
    assert got[3] == [0, 1, 2]  # untouched edge
    assert sim.metrics.dropped_messages == 4


def test_degradation_window_shrinks_and_restores_the_budget(backend):
    graph = path_graph(10)
    schedule = FaultSchedule(
        degradations=(CapacityDegradation(0.5, start_round=2, end_round=4),)
    )
    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=0, fault_schedule=schedule)
    healthy = HybridSimulator(graph, ModelConfig.hybrid(), seed=0)
    full = healthy.global_budget_words()
    observed = []
    for _ in range(5):
        observed.append(sim.global_budget_words())
        sim.advance_round()
    assert observed == [full, full, full // 2, full // 2, full]


def test_exchange_planned_inside_degraded_window_stays_capacity_clean(backend):
    """Degraded budgets feed the scheduler: more rounds, zero violations."""
    from repro.simulator.engine import batched_global_exchange

    graph = path_graph(12)
    triples = [(i % 6, 6 + (i % 6), ("d", i)) for i in range(90)]

    def run(schedule):
        sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=1, fault_schedule=schedule)
        delivered = batched_global_exchange(sim, list(triples), tag="deg")
        assert sim.metrics.capacity_violations == 0
        return delivered, sim.metrics.measured_rounds

    fault_free_delivered, fault_free_rounds = run(None)
    degraded_delivered, degraded_rounds = run(
        FaultSchedule(degradations=(CapacityDegradation(0.5),))
    )
    assert degraded_delivered == fault_free_delivered
    assert degraded_rounds > fault_free_rounds


def test_node_scoped_degradation_tightens_only_that_node(backend):
    graph = path_graph(10)
    schedule = FaultSchedule(
        degradations=(CapacityDegradation(0.25, node=0),)
    )
    sim = HybridSimulator(
        graph, ModelConfig.hybrid(strict=False), seed=0, fault_schedule=schedule
    )
    budget = sim.global_budget_words()  # node-wide budget is undegraded
    degraded = max(1, int(budget * 0.25))
    per_node = degraded + 1  # over node 0's budget, under everyone else's
    sim.global_send_batch_ids(
        [0] * per_node + [1] * per_node,
        [2 + (i % 7) for i in range(per_node)] + [2 + (i % 7) for i in range(per_node)],
        ["x"] * (2 * per_node),
    )
    sim.advance_round()
    assert sim.metrics.capacity_violations == 1  # node 0 only


# ----------------------------------------------------------------------
# Replay: deterministic across reruns and across backends
# ----------------------------------------------------------------------
@pytest.mark.parametrize("seed", SEEDS)
def test_drop_trajectory_is_identical_across_backends(seed, backend):
    graph = erdos_renyi_graph(20, 0.25, seed=seed)
    schedule = FaultSchedule(seed=seed, global_drop_rate=0.35, local_drop_rate=0.2)
    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed, fault_schedule=schedule)
    inboxes = _mixed_traffic(sim, random.Random(7000 + seed))
    key = (inboxes, sim.metrics.summary())
    assert sim.metrics.dropped_messages > 0
    pins = getattr(test_drop_trajectory_is_identical_across_backends, "_pins", {})
    test_drop_trajectory_is_identical_across_backends._pins = pins
    if seed in pins:
        assert key == pins[seed], f"seed={seed}: backend {backend} diverged"
    else:
        pins[seed] = key


# ----------------------------------------------------------------------
# Self-healing exchange
# ----------------------------------------------------------------------
def _resilient_run(graph, triples, schedule, *, seed=1, max_attempts=16):
    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed, fault_schedule=schedule)
    algo = BatchAlgorithm(sim)
    result = algo.resilient_exchange(list(triples), "rex", max_attempts=max_attempts)
    return result, sim


@pytest.mark.parametrize("seed", SEEDS)
def test_resilient_exchange_completes_under_heavy_drops(seed, backend):
    graph = path_graph(14)
    rng = random.Random(300 + seed)
    triples = [
        (rng.randrange(14), rng.randrange(14), ("r", seed, i)) for i in range(40)
    ]
    schedule = FaultSchedule(seed=seed, global_drop_rate=0.5)
    result, sim = _resilient_run(graph, triples, schedule)
    assert result.complete
    assert result.retransmissions > 0
    assert sim.metrics.retransmissions == result.retransmissions
    assert sim.metrics.dropped_messages > 0
    expected = {}
    for _, receiver, payload in triples:
        expected.setdefault(receiver, []).append(payload)
    delivered = {node: sorted(p, key=str) for node, p in result.delivered.items()}
    assert delivered == {node: sorted(p, key=str) for node, p in expected.items()}
    # Byte-identical rerun from the same (seed, schedule).
    rerun, rerun_sim = _resilient_run(graph, triples, schedule)
    assert rerun.delivered == result.delivered
    assert rerun_sim.metrics.summary() == sim.metrics.summary()


def test_resilient_exchange_waits_out_a_crash_window(backend):
    graph = path_graph(6)
    schedule = FaultSchedule(
        crashes=(CrashEvent(node=4, crash_round=0, recover_round=5),)
    )
    result, sim = _resilient_run(graph, [(1, 4, "late")], schedule)
    assert result.complete
    assert result.delivered == {4: ["late"]}
    assert sim.round >= 5  # delivery had to wait for the recovery


def test_resilient_exchange_reports_dead_receivers(backend):
    graph = path_graph(6)
    schedule = FaultSchedule(crashes=(CrashEvent(node=4, crash_round=0),))
    result, sim = _resilient_run(
        graph, [(1, 4, "never"), (1, 3, "fine")], schedule, max_attempts=4
    )
    assert not result.complete
    assert result.undelivered_positions == [0]
    assert result.delivered == {3: ["fine"]}


# ----------------------------------------------------------------------
# ResilientDissemination: the 6-family x 3-seed acceptance grid
# ----------------------------------------------------------------------
FAMILIES = {
    "path": lambda seed: path_graph(18),
    "cycle": lambda seed: cycle_graph(18),
    "grid": lambda seed: grid_graph(4, 2),
    "barbell": lambda seed: barbell_graph(5, 6),
    "star": lambda seed: star_graph(16),
    "erdos-renyi": lambda seed: erdos_renyi_graph(18, 0.25, seed=seed),
}


def _dissemination_fingerprint(result, sim):
    return (
        result.epochs,
        result.complete,
        sorted(
            (node, tuple(sorted(known, key=str)))
            for node, known in result.known_tokens.items()
        ),
        sim.metrics.summary(),
    )


@pytest.mark.parametrize("family", sorted(FAMILIES))
@pytest.mark.parametrize("seed", SEEDS)
def test_resilient_dissemination_reaches_all_live_nodes(family, seed):
    graph = FAMILIES[family](seed)
    n = graph.number_of_nodes()
    holders = (0, n // 2)
    tokens = {
        holders[0]: [("a", family, i) for i in range(5)],
        holders[1]: [("b", family, i) for i in range(4)],
    }
    schedule = crash_fraction_schedule(
        n, 0.25, seed=seed, crash_round=1, drop_rate=0.25, exclude=holders
    )

    def run():
        sim = HybridSimulator(
            graph, ModelConfig.hybrid(), seed=seed, fault_schedule=schedule
        )
        result = ResilientDissemination(sim, tokens).run()
        return result, sim

    result, sim = run()
    assert result.complete, f"{family}/seed={seed}: did not converge"
    assert result.all_live_nodes_know_all_tokens(), (
        f"{family}/seed={seed}: a live node is missing tokens"
    )
    live = {sim.node_indexer()[node] for node in result.live_nodes}
    assert live == set(range(n)) - {c.node for c in schedule.crashes}
    rerun_result, rerun_sim = run()
    assert _dissemination_fingerprint(rerun_result, rerun_sim) == (
        _dissemination_fingerprint(result, sim)
    ), f"{family}/seed={seed}: rerun diverged"


def test_resilient_dissemination_is_backend_independent(backend):
    graph = cycle_graph(16)
    tokens = {0: [("t", i) for i in range(6)]}
    schedule = crash_fraction_schedule(
        16, 0.25, seed=4, crash_round=1, drop_rate=0.3, exclude=(0,)
    )
    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=2, fault_schedule=schedule)
    result = ResilientDissemination(sim, tokens).run()
    assert result.complete and result.all_live_nodes_know_all_tokens()
    key = _dissemination_fingerprint(result, sim)
    pinned = getattr(test_resilient_dissemination_is_backend_independent, "_pin", None)
    if pinned is None:
        test_resilient_dissemination_is_backend_independent._pin = key
    else:
        assert key == pinned, f"backend={backend} diverged"


def test_resilient_dissemination_survives_crash_recovery_churn(backend):
    graph = path_graph(14)
    tokens = {2: [("c", i) for i in range(4)]}
    schedule = FaultSchedule(
        seed=8,
        crashes=(
            CrashEvent(node=5, crash_round=0, recover_round=6),
            CrashEvent(node=9, crash_round=3, recover_round=10),
            CrashEvent(node=0, crash_round=2, recover_round=8),
        ),
        global_drop_rate=0.2,
    )
    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=6, fault_schedule=schedule)
    result = ResilientDissemination(sim, tokens).run()
    assert result.complete
    # Everyone recovered, so "live" is everybody and all must know everything.
    assert len(result.live_nodes) == 14
    assert result.all_live_nodes_know_all_tokens()
