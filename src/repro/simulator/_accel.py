"""Optional NumPy acceleration gate for the round engine.

NumPy is an *optional* accelerator: the vectorised round engine
(:mod:`repro.simulator.engine`) and the bulk id-native send paths
(:mod:`repro.simulator.network`) consult :data:`np` at call time and fall back
to pure-Python array sweeps when it is ``None``.  The dependency surface of the
package is unchanged — install the ``[fast]`` extra (``pip install .[fast]``)
to pull NumPy in, or set ``REPRO_NO_NUMPY=1`` to force the pure-Python fallback
even when NumPy is importable (one CI leg runs the whole tier-1 suite this way).

Both code paths are exercised by ``tests/properties/test_round_engine.py`` and
produce bit-for-bit identical schedules, inboxes and metrics; only the
wall-clock differs.

Consumers read ``_accel.np`` through the module attribute (never ``from
_accel import np``) so tests can monkeypatch ``_accel.np = None`` and flip
every call site at once.
"""

from __future__ import annotations

import os

__all__ = ["np", "have_numpy", "cpu_count"]

try:  # pragma: no cover - exercised via both CI legs
    import numpy as np  # type: ignore
except ImportError:  # pragma: no cover
    np = None  # type: ignore[assignment]

if os.environ.get("REPRO_NO_NUMPY"):
    np = None  # type: ignore[assignment]


def have_numpy() -> bool:
    """Whether the vectorised (NumPy) paths are active."""
    return np is not None


def cpu_count() -> int:
    """Usable CPU cores, respecting the process affinity mask when the
    platform exposes one (containers and CI runners often grant fewer cores
    than the machine has).  Never less than 1."""
    try:
        return max(1, len(os.sched_getaffinity(0)))
    except (AttributeError, OSError):  # pragma: no cover - non-Linux
        return max(1, os.cpu_count() or 1)
