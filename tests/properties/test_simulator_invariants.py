"""Seeded randomized invariants of the batch messaging engine.

Three conservation/equivalence properties of :class:`HybridSimulator`:

(a) **Flow conservation** — every round, the total number of global words sent
    equals the total number of global words received (and the same for local
    words): messages are never duplicated or dropped by the delivery path.
(b) **Capacity soundness** — ``capacity_violations == 0`` implies every node
    stayed within ``global_budget_words()`` on both the send and the receive
    side in every round (and, conversely, a forced overload is recorded).
(c) **Engine equivalence** — the batch send path and the legacy per-message
    path produce identical inboxes, identical metrics and identical knowledge
    on the same seeded workload.
"""

import dataclasses
import random
from collections import defaultdict

import pytest

from repro.graphs.generators import erdos_renyi_graph
from repro.simulator.config import ModelConfig
from repro.simulator.messages import GLOBAL_MODE, LOCAL_MODE, payload_words
from repro.simulator.network import HybridSimulator

SEEDS = [0, 1, 2, 3, 4]
ROUNDS = 6


def _random_workload(graph, rng, budget, tag_words=0):
    """Per-round lists of local and global (sender, receiver, payload) triples.

    Global traffic is generated within the per-node budget on the send side
    (counting ``tag_words`` per message when the caller will attach a tag);
    the receive side may collide, which is exactly what invariant (a) must
    survive.
    """
    nodes = sorted(graph.nodes)
    edges = sorted(graph.edges)
    workload = []
    for _ in range(ROUNDS):
        local = []
        for _ in range(rng.randrange(0, 3 * len(nodes))):
            u, v = edges[rng.randrange(len(edges))]
            if rng.random() < 0.5:
                u, v = v, u
            local.append((u, v, ("local", rng.randrange(1000))))
        global_, sent = [], defaultdict(int)
        for _ in range(rng.randrange(0, 4 * len(nodes))):
            u = nodes[rng.randrange(len(nodes))]
            v = nodes[rng.randrange(len(nodes))]
            payload = ("global", rng.randrange(1000))
            words = payload_words(payload) + tag_words
            if sent[u] + words > budget:
                continue
            sent[u] += words
            global_.append((u, v, payload))
        workload.append((local, global_))
    return workload


def _fresh_sim(graph, seed):
    return HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)


@pytest.mark.parametrize("seed", SEEDS)
def test_words_sent_equal_words_received_per_round(seed):
    graph = erdos_renyi_graph(40, 0.15, seed=seed)
    sim = _fresh_sim(graph, seed)
    rng = random.Random(1000 + seed)
    workload = _random_workload(graph, rng, sim.global_budget_words())

    for local, global_ in workload:
        local_queued = sum(payload_words(p) for _, _, p in local)
        global_queued = sum(payload_words(p) for _, _, p in global_)
        before_local, before_global = sim.metrics.local_words, sim.metrics.global_words
        sim.local_send_batch(local)
        sim.global_send_batch(global_)
        sim.advance_round()
        # Sent words as accounted by the metrics...
        assert sim.metrics.local_words - before_local == local_queued
        assert sim.metrics.global_words - before_global == global_queued
        # ... equal the words found in the delivered per-node inboxes.
        local_received = sum(
            record[3]
            for records in sim.per_node_inbox(LOCAL_MODE).values()
            for record in records
        )
        global_received = sum(
            record[3]
            for records in sim.per_node_inbox(GLOBAL_MODE).values()
            for record in records
        )
        assert local_received == local_queued
        assert global_received == global_queued
        # Message *counts* are conserved too.
        assert sum(len(r) for r in sim.per_node_inbox(LOCAL_MODE).values()) == len(local)
        assert sum(len(r) for r in sim.per_node_inbox(GLOBAL_MODE).values()) == len(global_)


@pytest.mark.parametrize("seed", SEEDS)
def test_no_violations_implies_within_budget(seed):
    graph = erdos_renyi_graph(40, 0.15, seed=seed)
    sim = _fresh_sim(graph, seed)
    budget = sim.global_budget_words()
    rng = random.Random(2000 + seed)
    workload = _random_workload(graph, rng, budget)

    for _, global_ in workload:
        sent, received = defaultdict(int), defaultdict(int)
        for u, v, payload in global_:
            words = payload_words(payload)
            sent[u] += words
            received[v] += words
        sim.global_send_batch(global_)
        sim.advance_round()
        if sim.metrics.capacity_violations == 0:
            # The implication under test: zero recorded violations means no
            # node exceeded the budget on either side this round.
            assert all(words <= budget for words in sent.values())
            assert all(words <= budget for words in received.values())
        else:
            # Receive-side collisions are the only way this workload can
            # overload (send side is generated within budget).
            assert max(received.values(), default=0) > budget
            break
    else:
        # Force an overload so the implication is demonstrably not vacuous:
        # aim every node's full budget at a single receiver.
        nodes = sim.nodes
        target = nodes[0]
        sim.global_send_batch(
            (u, target, tuple(range(budget - 1))) for u in nodes[1 : budget + 2]
        )
        sim.advance_round()
        assert sim.metrics.capacity_violations > 0


@pytest.mark.parametrize("seed", SEEDS)
@pytest.mark.parametrize("hybrid0", [False, True])
def test_batch_and_legacy_sends_are_equivalent(seed, hybrid0):
    graph = erdos_renyi_graph(32, 0.18, seed=seed)
    config = ModelConfig.hybrid0() if hybrid0 else ModelConfig.hybrid()
    batch_sim = HybridSimulator(graph, config, seed=seed)
    legacy_sim = HybridSimulator(graph, config, seed=seed)
    assert batch_sim.nodes == legacy_sim.nodes
    rng = random.Random(3000 + seed)
    budget = batch_sim.global_budget_words()
    workload = _random_workload(graph, rng, budget, tag_words=payload_words("gt"))

    if hybrid0:
        # HYBRID_0 senders may only address known identifiers; restrict the
        # global traffic to graph neighbors (known from round zero).
        edge_set = {frozenset(edge) for edge in graph.edges}
        workload = [
            (local, [t for t in global_ if frozenset((t[0], t[1])) in edge_set])
            for local, global_ in workload
        ]

    for local, global_ in workload:
        batch_sim.local_send_batch(local, tag="lt")
        batch_sim.global_send_batch(global_, tag="gt")
        for u, v, payload in local:
            legacy_sim.local_send(u, v, payload, tag="lt")
        for u, v, payload in global_:
            legacy_sim.global_send_to_node(u, v, payload, tag="gt")
        batch_sim.advance_round()
        legacy_sim.advance_round()

        # Identical pre-bucketed inboxes (records carry sender/payload/tag/words).
        for mode in (LOCAL_MODE, GLOBAL_MODE):
            assert batch_sim.per_node_inbox(mode) == legacy_sim.per_node_inbox(mode)
        # Identical materialised Message inboxes through the legacy accessors.
        for node in batch_sim.nodes:
            assert batch_sim.inbox(node) == legacy_sim.inbox(node)
        # Identical metrics and knowledge.
        assert batch_sim.metrics.summary() == legacy_sim.metrics.summary()
        assert dataclasses.asdict(batch_sim.metrics) == dataclasses.asdict(legacy_sim.metrics)
        for node in batch_sim.nodes:
            assert batch_sim.known_ids(node) == legacy_sim.known_ids(node)
