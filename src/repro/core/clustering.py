"""NQ_k-clustering (Lemma 3.5).

Lemma 3.5 partitions the node set into clusters such that

* the weak diameter of each cluster is at most ``4 * NQ_k * ceil(log n)``,
* each cluster has between ``k / NQ_k`` and ``2k / NQ_k`` nodes,
* each cluster has a designated leader known to its members.

The construction: compute a ``(2 NQ_k + 1, 2 NQ_k ceil(log n))``-ruling set,
let every node join the cluster of its closest ruler (ties by minimum
identifier), then split oversized clusters locally.  The ball
``B_{NQ_k}(ruler)`` is contained in the ruler's cluster, which by
Observation 3.2 guarantees the lower size bound before splitting.

The size guarantee is stated for ``k <= n`` (for ``k > n`` the paper runs the
same clustering with the cluster-size target capped at ``n``); we cap the
target size at ``n`` accordingly.

Since the weighted-engine migration, :func:`nq_clustering` runs on the cached
:class:`~repro.graphs.index.GraphIndex`: the closest-ruler assignment *and*
the per-cluster BFS order both come out of a single flat multi-source sweep
(:meth:`~repro.graphs.index.GraphIndex.closest_sources`, deterministic
minimum-identifier tie-breaking) instead of two full dict BFS passes per
ruler, and the ruling set grows from flat truncated frontiers.  The pre-index
formulation survives as :func:`_reference_nq_clustering` ground truth;
``tests/properties/test_weighted_equivalence.py`` pins byte-identical output
(assignment, leaders, member order) across graph families.  Clusterings are
built for a frozen graph: :class:`Cluster` memoises its member set for
``in`` checks and :meth:`Clustering.max_weak_diameter` reuses one shared
index across all clusters, so mutating a clustered graph (or a cluster's
``members`` list) afterwards is not supported.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, FrozenSet, Hashable, List, Optional, Set

import networkx as nx

from repro.core.neighborhood_quality import neighborhood_quality
from repro.core.ruling_sets import (
    _reference_greedy_ruling_set,
    distributed_ruling_set,
    greedy_ruling_set,
)
from repro.graphs.index import get_index
from repro.graphs.properties import hop_distances_from, weak_diameter
from repro.simulator.config import log2_ceil
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = ["Cluster", "Clustering", "nq_clustering", "distributed_nq_clustering"]


@dataclasses.dataclass
class Cluster:
    """One cluster of the Lemma 3.5 partition.

    ``members`` is treated as frozen once the cluster is built: membership
    checks are served from a lazily created :class:`frozenset` that is
    materialised exactly once, not rebuilt per ``in`` check.
    """

    leader: Node
    members: List[Node]
    index: int
    _member_set: Optional[FrozenSet[Node]] = dataclasses.field(
        default=None, init=False, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.members)

    def __contains__(self, node: Node) -> bool:
        cached = self._member_set
        if cached is None:
            cached = frozenset(self.members)
            self._member_set = cached
        return node in cached


@dataclasses.dataclass
class Clustering:
    """A partition of ``V`` into clusters, plus the parameters it was built for."""

    clusters: List[Cluster]
    nq: int
    k: float
    cluster_of: Dict[Node, int]

    def __len__(self) -> int:
        return len(self.clusters)

    def cluster_containing(self, node: Node) -> Cluster:
        return self.clusters[self.cluster_of[node]]

    def leaders(self) -> List[Node]:
        return [cluster.leader for cluster in self.clusters]

    def max_weak_diameter(self, graph: nx.Graph) -> int:
        """Largest per-cluster weak diameter, on one shared graph index.

        The index is resolved once and reused for every cluster's
        member-to-member BFS instead of re-resolving (and re-validating the
        cache) once per ``weak_diameter`` call.
        """
        index = get_index(graph)
        return max(index.weak_diameter(cluster.members) for cluster in self.clusters)

    def member_layout(self, np, indexer, identifier_of):
        """Id-native cluster layout: ``(member_perm, starts)`` index ranges.

        Flattens every cluster's member list into parallel (cluster id,
        identifier, node index) columns and sorts them with a single lexsort
        by (cluster, identifier), so cluster ``ci``'s identifier-sorted
        members are the contiguous slice
        ``member_perm[starts[ci] : starts[ci + 1]]`` — array views into one
        ``int64`` buffer instead of a sorted Python list per cluster.  The
        within-cluster order is exactly ``sorted(members, key=identifier_of)``
        (identifiers are unique integers), which is the rank order the
        Theorem 1 workload assembly tiles from.

        ``np`` is the caller's numpy handle; ``indexer`` maps a node to its
        simulator index and ``identifier_of`` to its integer identifier.
        Raises ``TypeError`` when identifiers are not plain integers — callers
        fall back to the per-cluster sorted-list representation.
        """
        clusters = self.clusters
        total = sum(len(c.members) for c in clusters)
        idx_col = np.fromiter(
            (indexer[m] for c in clusters for m in c.members), np.int64, count=total
        )
        ident_col = np.fromiter(
            (identifier_of[m] for c in clusters for m in c.members),
            np.int64,
            count=total,
        )
        sizes = np.fromiter(
            (len(c.members) for c in clusters), np.int64, count=len(clusters)
        )
        cluster_col = np.repeat(np.arange(sizes.size), sizes)
        member_perm = idx_col[np.lexsort((ident_col, cluster_col))]
        starts = np.zeros(sizes.size + 1, dtype=np.int64)
        np.cumsum(sizes, out=starts[1:])
        return member_perm, starts


def _split_cluster(members: List[Node], lower: float, upper: float) -> List[List[Node]]:
    """Split a member list into chunks with sizes in ``[lower, upper]``.

    ``members`` is assumed to have size at least ``lower``; chunks are taken in
    the given order (BFS order from the leader) so the pieces remain local.
    When ``lower`` and ``upper`` conflict (no chunk count satisfies both), the
    upper bound wins: no chunk ever exceeds ``upper``, even if that forces a
    chunk below ``lower``.
    """
    total = len(members)
    if total <= upper:
        return [list(members)]
    # Number of parts: as many as possible while each keeps >= lower members.
    parts = max(1, int(total // max(lower, 1)))
    # Cap so that each part has at most upper members.
    parts = max(parts, int(math.ceil(total / max(upper, 1))))
    base = total // parts
    remainder = total % parts
    chunks: List[List[Node]] = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < remainder else 0)
        chunks.append(members[start : start + size])
        start += size
    return [chunk for chunk in chunks if chunk]


def _bfs_order_from(graph: nx.Graph, root: Node, members: Set[Node]) -> List[Node]:
    """Members of a cluster ordered by BFS (in G) from the leader.

    Reference machinery: :func:`nq_clustering` now reads the same order out of
    the shared multi-source sweep; only :func:`_reference_nq_clustering` still
    runs this per-ruler BFS.
    """
    dist = hop_distances_from(graph, root)
    inside = [m for m in members if m in dist]
    inside.sort(key=lambda m: (dist[m], str(m)))
    missing = sorted((m for m in members if m not in dist), key=str)
    return inside + missing


def nq_clustering(
    graph: nx.Graph,
    k: float,
    nq: Optional[int] = None,
    id_of=None,
) -> Clustering:
    """Centralized construction of the Lemma 3.5 clustering.

    One flat multi-source BFS (over rulers sorted by identifier) yields both
    the closest-ruler assignment — ties to the minimum identifier, exactly as
    the per-ruler formulation resolved them — and each node's hop distance to
    its ruler, which is the BFS order the splitting step chunks by.  Output is
    byte-identical to :func:`_reference_nq_clustering`.

    Parameters
    ----------
    graph: the local communication graph.
    k: the workload parameter.
    nq: ``NQ_k(G)`` if already known (avoids recomputation).
    id_of: optional callable mapping a node to its identifier (used only for
        deterministic tie-breaking "closest ruler, ties by minimum identifier").
    """
    if k <= 0:
        raise ValueError("k must be positive")
    n = graph.number_of_nodes()
    if nq is None:
        nq = neighborhood_quality(graph, k)
    nq = max(1, nq)
    if id_of is None:
        id_of = lambda node: node  # noqa: E731 - trivial default

    index = get_index(graph)
    rulers = greedy_ruling_set(graph, alpha=2 * nq + 1)
    sorted_rulers = sorted(rulers, key=lambda r: (id_of(r), str(r)))

    # Every node joins the cluster of its closest ruler (ties by min
    # identifier) — one multi-source sweep; ``owner`` ranks point into
    # ``sorted_rulers``, so the min-rank tie-break IS the min-identifier rule.
    dist, owner = index.closest_sources(sorted_rulers)
    members_by_rank: List[List[int]] = [[] for _ in sorted_rulers]
    for i, rank in enumerate(owner):
        if rank >= 0:
            members_by_rank[rank].append(i)

    lower = min(float(n), k / nq)
    upper = 2 * lower if lower >= 1 else 2.0

    nodes = index.nodes
    clusters: List[Cluster] = []
    cluster_of: Dict[Node, int] = {}
    for rank, ruler in enumerate(sorted_rulers):
        member_indices = members_by_rank[rank]
        if not member_indices:
            continue
        # The sweep distance to the closest ruler equals the hop distance from
        # the assigned ruler, so sorting by it reproduces the per-ruler BFS
        # order of the reference construction.
        ordered = [
            nodes[i]
            for i in sorted(member_indices, key=lambda i: (dist[i], str(nodes[i])))
        ]
        for chunk in _split_cluster(ordered, lower, upper):
            leader = ruler if ruler in chunk else chunk[0]
            cluster_index = len(clusters)
            clusters.append(
                Cluster(leader=leader, members=list(chunk), index=cluster_index)
            )
            for node in chunk:
                cluster_of[node] = cluster_index

    return Clustering(clusters=clusters, nq=nq, k=k, cluster_of=cluster_of)


def _reference_nq_clustering(
    graph: nx.Graph,
    k: float,
    nq: Optional[int] = None,
    id_of=None,
) -> Clustering:
    """Index-free ground truth for :func:`nq_clustering` (tests only): one
    full dict BFS per ruler for the assignment plus one per-ruler re-BFS for
    the member order — the pre-sweep formulation, kept verbatim."""
    if k <= 0:
        raise ValueError("k must be positive")
    n = graph.number_of_nodes()
    if nq is None:
        nq = neighborhood_quality(graph, k)
    nq = max(1, nq)
    if id_of is None:
        id_of = lambda node: node  # noqa: E731 - trivial default

    rulers = _reference_greedy_ruling_set(graph, alpha=2 * nq + 1)

    # Every node joins the cluster of its closest ruler (ties by min identifier).
    # Multi-source BFS, processing rulers in identifier order so ties resolve
    # to the smallest identifier deterministically.
    assignment: Dict[Node, Node] = {}
    best_dist: Dict[Node, int] = {}
    for ruler in sorted(rulers, key=lambda r: (id_of(r), str(r))):
        dist = hop_distances_from(graph, ruler)
        for node, d in dist.items():
            current = best_dist.get(node)
            if current is None or d < current:
                best_dist[node] = d
                assignment[node] = ruler
    # (Ties keep the earlier, i.e. smaller-identifier, ruler.)

    members_by_ruler: Dict[Node, Set[Node]] = {ruler: set() for ruler in rulers}
    for node, ruler in assignment.items():
        members_by_ruler[ruler].add(node)

    lower = min(float(n), k / nq)
    upper = 2 * lower if lower >= 1 else 2.0

    clusters: List[Cluster] = []
    cluster_of: Dict[Node, int] = {}
    for ruler in sorted(rulers, key=lambda r: (id_of(r), str(r))):
        members = members_by_ruler[ruler]
        if not members:
            continue
        ordered = _bfs_order_from(graph, ruler, members)
        for chunk in _split_cluster(ordered, lower, upper):
            leader = ruler if ruler in chunk else chunk[0]
            index = len(clusters)
            clusters.append(Cluster(leader=leader, members=list(chunk), index=index))
            for node in chunk:
                cluster_of[node] = index

    return Clustering(clusters=clusters, nq=nq, k=k, cluster_of=cluster_of)


def distributed_nq_clustering(
    simulator: HybridSimulator, k: float, nq: Optional[int] = None
) -> Clustering:
    """Lemma 3.5 clustering with the paper's round accounting.

    The cluster structure is produced by :func:`nq_clustering`; the rounds the
    paper's construction needs — the ruling-set computation
    (``O(NQ_k log n)``), learning the ``2 NQ_k ceil(log n)``-hop neighborhood,
    and flooding the ruler choice for ``4 NQ_k ceil(log n)`` rounds — are
    charged on the simulator (DESIGN.md substitution note 1).
    """
    graph = simulator.graph
    if nq is None:
        nq = neighborhood_quality(graph, k)
    nq = max(1, nq)
    log_n = log2_ceil(max(simulator.n, 2))
    clustering = nq_clustering(graph, k, nq=nq, id_of=simulator.id_of)
    simulator.charge_rounds(
        2 * nq * log_n,
        "ruling-set construction for NQ_k clustering",
        "[KMW18] via Lemma 3.5",
    )
    simulator.charge_rounds(
        2 * nq * log_n,
        "learning the 2*NQ_k*ceil(log n)-hop neighborhood",
        "Lemma 3.5",
    )
    simulator.charge_rounds(
        4 * nq * log_n,
        "flooding closest-ruler choices within clusters",
        "Lemma 3.5",
    )
    return clustering
