"""Degraded capacity mode (``ModelConfig(strict=False)``) test coverage.

In strict mode (the default, used everywhere the paper claims a budget holds)
capacity overruns raise; with ``strict=False`` they must be *counted* in
``RoundMetrics.capacity_violations`` while the traffic is still delivered —
and the count must be identical whichever send path (tuple or id-native
plane) or engine (batch / batch-reference / legacy) carried the messages,
including the oversized-message branches where a single token exceeds the
whole per-node or per-edge budget.
"""

from __future__ import annotations

import pytest

from repro.graphs.generators import path_graph
from repro.simulator.config import ModelConfig
from repro.simulator.engine import ENGINES, BatchAlgorithm
from repro.simulator.errors import (
    CapacityExceededError,
    LocalBandwidthExceededError,
)
from repro.simulator.faults import CapacityDegradation, FaultSchedule
from repro.simulator.messages import GLOBAL_MODE, LOCAL_MODE
from repro.simulator.network import HybridSimulator


def _overflow_workload(sim):
    """One sender exceeds its send budget by a few one-word messages."""
    budget = sim.global_budget_words()
    count = budget + 3
    receivers = [1 + (i % (sim.n - 1)) for i in range(count)]
    return [0] * count, receivers, ["x"] * count


# ----------------------------------------------------------------------
# Send-side overflow: counted through both send paths, raised in strict
# ----------------------------------------------------------------------
def test_send_overflow_counted_identically_through_both_paths():
    graph = path_graph(12)
    config = ModelConfig.hybrid(strict=False)

    plane_sim = HybridSimulator(graph, config, seed=0)
    senders, receivers, payloads = _overflow_workload(plane_sim)
    plane_sim.global_send_batch_ids(senders, receivers, payloads)
    plane_sim.advance_round()

    tuple_sim = HybridSimulator(graph, config, seed=0)
    nodes = tuple_sim.nodes
    tuple_sim.global_send_batch(
        (nodes[senders[i]], nodes[receivers[i]], payloads[i])
        for i in range(len(payloads))
    )
    tuple_sim.advance_round()

    assert plane_sim.metrics.capacity_violations == 1
    assert plane_sim.metrics.summary() == tuple_sim.metrics.summary()
    # Degraded mode still delivers everything.
    assert plane_sim.per_node_inbox(GLOBAL_MODE) == tuple_sim.per_node_inbox(GLOBAL_MODE)
    assert sum(len(v) for v in plane_sim.per_node_inbox(GLOBAL_MODE).values()) == len(payloads)


@pytest.mark.parametrize("path", ["plane", "tuple"])
def test_send_overflow_raises_in_strict_mode(path):
    sim = HybridSimulator(path_graph(12), ModelConfig.hybrid(), seed=0)
    senders, receivers, payloads = _overflow_workload(sim)
    if path == "plane":
        sim.global_send_batch_ids(senders, receivers, payloads)
    else:
        nodes = sim.nodes
        sim.global_send_batch(
            (nodes[senders[i]], nodes[receivers[i]], payloads[i])
            for i in range(len(payloads))
        )
    with pytest.raises(CapacityExceededError):
        sim.advance_round()


# ----------------------------------------------------------------------
# Receive-side overflow: recorded in both modes, raised only when enforced
# ----------------------------------------------------------------------
@pytest.mark.parametrize("strict", [True, False])
def test_receive_overflow_is_recorded_identically(strict):
    graph = path_graph(30)
    config = ModelConfig.hybrid(strict=strict)
    budget = HybridSimulator(graph, config).global_budget_words()
    count = budget + 4
    senders = list(range(1, count + 1))

    plane_sim = HybridSimulator(graph, config, seed=1)
    plane_sim.global_send_batch_ids(senders, [0] * count, ["y"] * count)
    plane_sim.advance_round()

    tuple_sim = HybridSimulator(graph, config, seed=1)
    tuple_sim.global_send_batch((s, 0, "y") for s in senders)
    tuple_sim.advance_round()

    # Receive overload raises only under enforce_receive_capacity; by default
    # both strictness modes just count it — one violation, same summary.
    assert plane_sim.metrics.capacity_violations == 1
    assert plane_sim.metrics.summary() == tuple_sim.metrics.summary()

    enforcing = HybridSimulator(graph, config, seed=1)
    enforcing.enforce_receive_capacity = True
    enforcing.global_send_batch_ids(senders, [0] * count, ["y"] * count)
    if strict:
        with pytest.raises(CapacityExceededError):
            enforcing.advance_round()
    else:
        enforcing.advance_round()
        assert enforcing.metrics.capacity_violations == 1


# ----------------------------------------------------------------------
# Local oversized-message branch (finite lambda)
# ----------------------------------------------------------------------
def test_local_oversized_counted_identically_through_both_paths():
    graph = path_graph(8)
    config = ModelConfig.congest(strict=False)
    limit = config.resolve_local_word_limit()
    assert limit is not None
    payload = "z" * (8 * (limit + 2))  # > limit words

    plane_sim = HybridSimulator(graph, config, seed=0)
    plane_sim.local_send_batch_ids([0, 1], [1, 2], [payload, payload])
    plane_sim.advance_round()

    tuple_sim = HybridSimulator(graph, config, seed=0)
    tuple_sim.local_send_batch([(0, 1, payload), (1, 2, payload)])
    tuple_sim.advance_round()

    assert plane_sim.metrics.capacity_violations == 2
    assert plane_sim.metrics.summary() == tuple_sim.metrics.summary()
    assert plane_sim.per_node_inbox(LOCAL_MODE) == tuple_sim.per_node_inbox(LOCAL_MODE)


@pytest.mark.parametrize("path", ["plane", "tuple"])
def test_local_oversized_raises_in_strict_mode(path):
    config = ModelConfig.congest()
    sim = HybridSimulator(path_graph(8), config, seed=0)
    payload = "z" * (8 * (config.resolve_local_word_limit() + 2))
    with pytest.raises(LocalBandwidthExceededError):
        if path == "plane":
            sim.local_send_batch_ids([0], [1], [payload])
        else:
            sim.local_send_batch([(0, 1, payload)])


# ----------------------------------------------------------------------
# Engine agreement: oversized global tokens through the full exchange
# ----------------------------------------------------------------------
class _OversizedExchange(BatchAlgorithm):
    """One-phase algorithm pushing a workload with oversized tokens."""

    def __init__(self, simulator, triples, engine):
        super().__init__(simulator, engine=engine)
        self.triples = triples
        self.delivered = None

    def phases(self):
        return (("oversized-exchange", self._phase),)

    def _phase(self):
        self.delivered = self.exchange(list(self.triples), "dm")

    def finish(self):
        return self.delivered


@pytest.mark.parametrize("engine", ENGINES)
def test_exchange_engines_agree_in_degraded_mode(engine):
    graph = path_graph(16)
    config = ModelConfig.hybrid(strict=False)
    budget = HybridSimulator(graph, config).global_budget_words()
    oversized = "w" * (8 * (budget + 5))
    triples = [(i % 4, 8 + (i % 4), ("t", i)) for i in range(20)]
    triples.insert(7, (5, 9, oversized))
    triples.append((6, 10, oversized))

    sim = HybridSimulator(graph, config, seed=2)
    delivered = _OversizedExchange(sim, triples, engine).run()
    assert delivered[9].count(oversized) == 1
    assert delivered[10].count(oversized) == 1
    summary = sim.metrics.summary()
    assert summary["capacity_violations"] > 0
    key = (
        summary["measured_rounds"],
        summary["global_messages"],
        summary["global_words"],
        summary["capacity_violations"],
    )
    pinned = getattr(test_exchange_engines_agree_in_degraded_mode, "_pin", None)
    if pinned is None:
        test_exchange_engines_agree_in_degraded_mode._pin = key
    else:
        assert key == pinned, f"engine={engine} drifted in degraded mode: {key} != {pinned}"


# ----------------------------------------------------------------------
# Degradation-induced overflow (fault schedule x strictness)
# ----------------------------------------------------------------------
def test_degradation_induced_overflow_is_counted_not_raised():
    graph = path_graph(10)
    schedule = FaultSchedule(degradations=(CapacityDegradation(0.25),))
    full_budget = HybridSimulator(graph, ModelConfig.hybrid()).global_budget_words()

    sim = HybridSimulator(
        graph, ModelConfig.hybrid(strict=False), seed=0, fault_schedule=schedule
    )
    degraded_budget = sim.global_budget_words()
    assert degraded_budget < full_budget
    # Legal under the healthy budget, an overrun under the degraded one.
    receivers = [1 + (i % 8) for i in range(full_budget)]
    sim.global_send_batch_ids([0] * full_budget, receivers, ["d"] * full_budget)
    sim.advance_round()
    assert sim.metrics.capacity_violations == 1

    strict_sim = HybridSimulator(
        graph, ModelConfig.hybrid(), seed=0, fault_schedule=schedule
    )
    strict_sim.global_send_batch_ids([0] * full_budget, receivers, ["d"] * full_budget)
    with pytest.raises(CapacityExceededError):
        strict_sim.advance_round()
