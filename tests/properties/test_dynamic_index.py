"""Property harness for the versioned mutation API (dynamic GraphIndex).

The contract under test: after any sequence of :class:`GraphMutator` edits,
the *patched* cached index served by :func:`get_index` answers every query
with values identical to a from-scratch ``GraphIndex(graph)`` rebuild — the
rebuild stays the oracle, the incremental patcher must never be observable
through query results.  Three layers over six graph families x three seeds:

* **edit-script equivalence** — a seeded script of remove/add/re-weight
  edits, checking after *every* step that (a) ``get_index`` still serves the
  same patched object (no silent rebuild) and (b) a query battery (BFS rows,
  exact and rounded Dijkstra rows, h-hop limited tables, multi-source
  sweeps, ruling sets, connectivity/diameter/NQ when defined) matches the
  fresh oracle;
* **the (n, m)-preserving two-edge swap** — the exact staleness bug-class
  this PR fixes: a rewiring that keeps both counts unchanged used to slip
  past the count-only currency check and serve a dead CSR; under the
  version stamp it is reflected immediately;
* **out-of-band mutations** — direct ``networkx`` edits that change the
  counts are still caught by the (n, m) backstop.

Everything here is pure-Python CSR manipulation: the suite runs identically
under both CI backends (with NumPy and with ``REPRO_NO_NUMPY=1``).
"""

import math
import random

import pytest

from repro.graphs.generators import (
    barbell_graph,
    broom_graph,
    cycle_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
)
from repro.graphs.index import GraphIndex, get_index, graph_version
from repro.graphs.mutation import GraphMutator
from repro.graphs.weighted import assign_random_weights

SEEDS = [0, 1, 2]

GRAPH_FAMILIES = {
    "path": lambda seed: path_graph(30),
    "cycle": lambda seed: cycle_graph(30),
    "grid": lambda seed: grid_graph(6, 2),
    "barbell": lambda seed: barbell_graph(8, 12),
    "broom": lambda seed: broom_graph(18, 10),
    "erdos_renyi": lambda seed: erdos_renyi_graph(30, 0.12, seed=seed),
}

CASES = [(family, seed) for family in sorted(GRAPH_FAMILIES) for seed in SEEDS]


def _ids(case):
    family, seed = case
    return f"{family}-s{seed}"


def _weighted(case):
    family, seed = case
    return assign_random_weights(GRAPH_FAMILIES[family](seed), max_weight=9, seed=seed)


def _rng(case, salt=0):
    family, seed = case
    # str seeds hash deterministically in random.Random (version-2 seeding).
    return random.Random(f"{family}-{seed}-{salt}")


def _battery(index):
    """Deterministic fingerprint of the full query surface of an index.

    Every query here is well-defined on disconnected graphs except diameter
    and NQ, which are gated on connectivity; ``closest_sources`` and the
    Dijkstra rows use ``inf``/``-1`` sentinels for unreachable nodes.
    """
    nodes = sorted(index.nodes, key=str)
    sources = [nodes[0], nodes[len(nodes) // 3], nodes[len(nodes) // 2], nodes[-1]]
    out = {}
    for source in sources:
        out["hop", source] = index.hop_distance_row(source)
        out["sssp", source] = index.sssp_row(source)
        out["sssp-0.5", source] = index.sssp_row(source, 0.5)
        out["h-hop", source] = index.h_hop_limited_distances(source, 2)
    out["closest"] = index.closest_sources(sources)
    out["ruling-2"] = index.ruling_set(2)
    out["connected"] = index.is_connected()
    if out["connected"]:
        out["diameter"] = index.diameter()
        out["nq-2"] = index.nq_value(2.0)
    return out


def _assert_matches_rebuild(graph, step):
    patched = get_index(graph)
    oracle = GraphIndex(graph)
    assert patched.nodes == oracle.nodes
    assert (patched.n, patched.m) == (oracle.n, oracle.m), step
    got, want = _battery(patched), _battery(oracle)
    assert set(got) == set(want), step
    for key in want:
        assert got[key] == want[key], (step, key)


# ----------------------------------------------------------------------
# Seeded edit scripts: patched index == fresh rebuild after every step
# ----------------------------------------------------------------------
def _edit_script(graph, rng, steps=6):
    """Yield (description, thunk) edit steps for a seeded mutation script."""
    mutator = GraphMutator(graph)
    nodes = sorted(graph.nodes)
    removed = []
    for step in range(steps):
        kind = step % 3
        if kind == 0:  # remove an existing edge
            u, v = rng.choice(sorted(graph.edges()))
            removed.append((u, v))
            yield f"step {step}: remove_edge({u}, {v})", (
                lambda u=u, v=v: mutator.remove_edge(u, v)
            )
        elif kind == 1:  # add a fresh edge (re-add a removed one if possible)
            if removed:
                u, v = removed.pop()
            else:
                u, v = _pick_non_edge(graph, nodes, rng)
            w = rng.randint(1, 9)
            yield f"step {step}: add_edge({u}, {v}, weight={w})", (
                lambda u=u, v=v, w=w: mutator.add_edge(u, v, weight=w)
            )
        else:  # re-weight an existing edge
            u, v = rng.choice(sorted(graph.edges()))
            w = rng.randint(1, 9)
            yield f"step {step}: update_weight({u}, {v}, {w})", (
                lambda u=u, v=v, w=w: mutator.update_weight(u, v, w)
            )


def _pick_non_edge(graph, nodes, rng):
    while True:
        u, v = rng.sample(nodes, 2)
        if not graph.has_edge(u, v):
            return u, v


@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_edit_script_matches_rebuild_after_every_step(case):
    graph = _weighted(case)
    rng = _rng(case)
    baseline = get_index(graph)
    _battery(baseline)  # warm every memoised cache before the first edit
    baseline.sssp_row(sorted(graph.nodes)[0], 0.25)  # a second rounded CSR
    for step, apply_edit in _edit_script(graph, rng):
        version = apply_edit()
        assert graph_version(graph) == version, step
        # The cached index was patched in place, not silently rebuilt.
        assert get_index(graph) is baseline, step
        assert baseline.version == version, step
        _assert_matches_rebuild(graph, step)


@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_unweighted_edit_script_matches_rebuild(case):
    # No weight attributes anywhere: add_edge(weight=None) must index the
    # new edge at the default weight 1, exactly like a from-scratch build.
    family, seed = case
    graph = GRAPH_FAMILIES[family](seed)
    rng = _rng(case, salt=1)
    baseline = get_index(graph)
    _battery(baseline)
    mutator = GraphMutator(graph)
    u, v = rng.choice(sorted(graph.edges()))
    mutator.remove_edge(u, v)
    _assert_matches_rebuild(graph, "after remove")
    a, b = _pick_non_edge(graph, sorted(graph.nodes), rng)
    mutator.add_edge(a, b)  # unweighted add
    assert "weight" not in graph[a][b]
    assert get_index(graph) is baseline
    _assert_matches_rebuild(graph, "after unweighted add")


# ----------------------------------------------------------------------
# The bug-class pin: (n, m)-preserving rewiring is no longer invisible
# ----------------------------------------------------------------------
def _find_swap(graph):
    """A two-edge swap (a, b), (c, d) -> (a, c), (b, d) preserving (n, m)."""
    edges = sorted(graph.edges())
    for i, (a, b) in enumerate(edges):
        for c, d in edges[i + 1 :]:
            if len({a, b, c, d}) == 4 and not graph.has_edge(a, c) and not graph.has_edge(b, d):
                return (a, b), (c, d)
    return None


@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_count_preserving_swap_is_reflected_immediately(case):
    graph = _weighted(case)
    swap = _find_swap(graph)
    if swap is None:
        pytest.skip("family admits no disjoint two-edge swap")
    (a, b), (c, d) = swap
    index = get_index(graph)
    n, m = index.n, index.m
    version_before = graph_version(graph)
    mutator = GraphMutator(graph)
    mutator.remove_edge(a, b)
    mutator.remove_edge(c, d)
    mutator.add_edge(a, c, weight=1)
    mutator.add_edge(b, d, weight=1)
    # The rewiring preserved both counts: the historical count-only currency
    # check would have served the pre-swap CSR here.  The version stamp moved.
    assert (graph.number_of_nodes(), graph.number_of_edges()) == (n, m)
    assert graph_version(graph) == version_before + 4
    served = get_index(graph)
    assert served is index and served.version == version_before + 4
    positions = {node: i for i, node in enumerate(served.nodes)}
    row_a = served.hop_distance_row(a)
    assert row_a[positions[c]] == 1  # new edge visible...
    assert row_a[positions[b]] != 1  # ...old edge gone (no multi-edges)
    _assert_matches_rebuild(graph, "after swap")


@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_out_of_band_count_change_still_rebuilds(case):
    # Direct networkx edits never bump the version; the (n, m) backstop in
    # get_index still catches any edit that moves either count.
    graph = _weighted(case)
    stale = get_index(graph)
    u, v = sorted(graph.edges())[0]
    graph.remove_edge(u, v)  # behind the mutator's back
    fresh = get_index(graph)
    assert fresh is not stale
    assert fresh.m == stale.m - 1
    _assert_matches_rebuild(graph, "after out-of-band removal")
