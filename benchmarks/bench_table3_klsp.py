"""Table 3 reproduction: (k, l)-shortest paths.

Paper claim (Table 3): the (k, l)-SP problem is approximable with stretch
(1+eps) in eO(NQ_k) rounds (Theorem 5) under the stated source/target sampling
conditions, against a universal lower bound of eOmega(NQ_k) (Theorems 11, 12)
and a prior existential lower bound of eOmega(sqrt k) [KS20].

The benchmark sweeps (k, l) combinations over the graph grid, measures rounds
and stretch against Dijkstra ground truth, and asserts the stretch bound and
lower-bound consistency; the round columns show the NQ_k (not sqrt k) scaling.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.experiments import run_table3_klsp
from repro.graphs.generators import GraphSpec

CASES = [
    (GraphSpec.of("grid", side=7, dim=2), 8, 3),
    (GraphSpec.of("grid", side=7, dim=2), 16, 4),
    (GraphSpec.of("path", n=64), 8, 2),
    (GraphSpec.of("erdos_renyi", n=64, p=0.1, seed=9), 12, 4),
    (GraphSpec.of("star", n=64), 8, 3),
]


def _klsp_rows():
    return [run_table3_klsp(spec, k, l, epsilon=0.25, seed=2) for spec, k, l in CASES]


def test_table3_klsp(benchmark, save_table):
    rows = benchmark.pedantic(_klsp_rows, rounds=1, iterations=1)
    save_table("table3_klsp", rows, "Table 3 - (k,l)-SP (Theorem 5)")
    for row in rows:
        assert row["stretch measured"] <= row["stretch bound"] + 1e-6
        assert row["rounds (Thm 5, total)"] >= row["universal LB (Thm 11)"]
    # Shape claim: on the low-NQ star the same workload costs no more rounds
    # than on the high-NQ path.
    by_graph = {row["graph"]: row for row in rows}
    star = next(row for name, row in by_graph.items() if name.startswith("star"))
    path = next(row for name, row in by_graph.items() if name.startswith("path"))
    assert star["NQ_k"] <= path["NQ_k"]
    assert star["rounds (Thm 5, total)"] <= 1.6 * path["rounds (Thm 5, total)"]


# ----------------------------------------------------------------------
# Large tier (scheduled CI, BENCH_SCALE=large): Theorem 5 at n >= 2000
# ----------------------------------------------------------------------
LARGE_CASES = [
    (GraphSpec.of("path", n=2000), 24, 8),
    (GraphSpec.of("star", n=2000), 24, 8),
]


def test_table3_klsp_large_tier(save_table):
    """The n >= 2000 Table 3 points; runs in the scheduled CI job."""
    if os.environ.get("BENCH_SCALE") != "large":
        pytest.skip("large tier runs in the scheduled CI job (BENCH_SCALE=large)")
    rows = [run_table3_klsp(spec, k, l, epsilon=0.25, seed=2) for spec, k, l in LARGE_CASES]
    save_table("table3_klsp_large", rows, "Table 3 - (k,l)-SP at n >= 2000")
    for row in rows:
        assert row["stretch measured"] <= row["stretch bound"] + 1e-6
        assert row["rounds (Thm 5, total)"] >= row["universal LB (Thm 11)"]
