"""Batch messaging engine: token-sharded exchanges and the phase driver.

The per-message transport in :mod:`repro.core.transport` schedules one
:class:`~repro.core.transport.GlobalTransfer` object at a time through
``global_send_to_node``; at production scale that is dominated by per-message
object churn.  This module provides the batch equivalents built on
:meth:`~repro.simulator.network.HybridSimulator.global_send_batch`:

* :func:`shard_transfers` — split a workload of ``(sender, receiver, payload,
  words)`` tokens into per-round shards in which every node stays within the
  per-round global budget on both the sending and the receiving side.  The
  greedy FIFO policy is *identical* to the legacy
  :func:`~repro.core.transport.throttled_global_exchange`, so migrating an
  algorithm from the legacy path to the batch path provably does not change
  its round counts (asserted by ``tests/unit/test_round_regression.py``).
* :func:`batched_global_exchange` — run the shards through the simulator, one
  batch send and one ``advance_round`` per shard, and collect the delivered
  payloads from the pre-bucketed inboxes.
* :class:`BatchAlgorithm` — a driver base class for algorithms structured as a
  sequence of named phases, each of which moves whole rounds of traffic via
  :meth:`BatchAlgorithm.exchange`.  The driver records per-phase round and
  message accounting (``phase_log``) and lets callers flip a single ``engine``
  switch between the batch path and the legacy per-message path (used by the
  equivalence tests and the speedup benchmarks).
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import (
    Any,
    Callable,
    Dict,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.simulator.messages import GLOBAL_MODE, payload_words
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = [
    "GlobalTriple",
    "shard_transfers",
    "batched_global_exchange",
    "PhaseRecord",
    "BatchAlgorithm",
]

#: One unit of batch work: ``(sender, receiver, payload)``.
GlobalTriple = Tuple[Node, Node, Any]

#: Internal sharding token: ``(sender, receiver, payload, payload_words)``.
_Token = Tuple[Node, Node, Any, int]


def shard_transfers(
    tokens: Sequence[_Token], budget: int, tag_words: int = 0
) -> Iterable[List[_Token]]:
    """Yield per-round shards of ``tokens`` respecting the per-node ``budget``.

    Greedy FIFO: each round scans the remaining tokens in order and admits a
    token iff its sender and receiver both still have budget left (counting
    ``tag_words`` on top of each token's payload words).  If nothing fits —
    every remaining token is individually larger than the budget — exactly one
    oversized token is forced through (a single oversized message is the
    sender's problem, and the simulator will flag it).  This mirrors the legacy
    per-message scheduler exactly, shard for shard.
    """
    pending: List[_Token] = list(tokens)
    while pending:
        sent: Dict[Node, int] = defaultdict(int)
        received: Dict[Node, int] = defaultdict(int)
        shard: List[_Token] = []
        deferred: List[_Token] = []
        for token in pending:
            sender, receiver, _, words = token
            total = words + tag_words
            if sent[sender] + total <= budget and received[receiver] + total <= budget:
                shard.append(token)
                sent[sender] += total
                received[receiver] += total
            else:
                deferred.append(token)
        if not shard and deferred:
            shard.append(deferred.pop(0))
        yield shard
        pending = deferred


def batched_global_exchange(
    simulator: HybridSimulator,
    triples: Iterable[GlobalTriple],
    *,
    tag: Optional[str] = None,
    max_rounds: Optional[int] = None,
) -> Dict[Node, List[Any]]:
    """Deliver all ``triples`` over the global mode without exceeding capacity.

    The batch counterpart of
    :func:`~repro.core.transport.throttled_global_exchange`: the workload is
    token-sharded once up front (payload sizes computed a single time each),
    then each shard is submitted with one ``global_send_batch`` call and one
    ``advance_round``.  ``triples`` may mix ``(sender, receiver, payload)``
    with ``(sender, receiver, payload, words)`` entries whose payload size the
    caller already knows.  Returns ``receiver -> [payloads in delivery
    order]``.  Raises ``RuntimeError`` if ``max_rounds`` is given and the
    schedule would exceed it.
    """
    tokens: List[_Token] = [
        triple
        if len(triple) == 4
        else (triple[0], triple[1], triple[2], payload_words(triple[2]))
        for triple in triples
    ]
    if not tokens:
        return {}
    tag_words = payload_words(tag) if tag is not None else 0
    budget = simulator.global_budget_words()
    delivered: Dict[Node, List[Any]] = defaultdict(list)
    rounds_used = 0
    for shard in shard_transfers(tokens, budget, tag_words):
        if max_rounds is not None and rounds_used >= max_rounds:
            raise RuntimeError(
                f"batched exchange exceeded the allowed {max_rounds} rounds"
            )
        simulator.global_send_batch(shard, tag)
        simulator.advance_round()
        rounds_used += 1
        # Harvest only this exchange's traffic — receivers scheduled in this
        # shard, records carrying this exchange's tag.  A caller may have
        # queued unrelated global messages before the exchange; those must
        # not leak into its result (they stay readable via per_node_inbox /
        # global_inbox for the round they were delivered in).  Foreign
        # traffic that shares BOTH the tag and a receiver with the shard is
        # indistinguishable — use a distinct tag per concurrent protocol.
        inbox = simulator.per_node_inbox(GLOBAL_MODE)
        for receiver in {token[1] for token in shard}:
            payloads = [record[1] for record in inbox.get(receiver, ()) if record[2] == tag]
            if payloads:
                delivered[receiver].extend(payloads)
    return dict(delivered)


@dataclasses.dataclass(frozen=True)
class PhaseRecord:
    """Round/message accounting of one driver phase (deltas, not totals)."""

    name: str
    measured_rounds: int
    charged_rounds: int
    global_messages: int
    local_messages: int


class BatchAlgorithm:
    """Base class for algorithms driven as a sequence of batch phases.

    Subclasses implement :meth:`phases` — an ordered sequence of
    ``(name, callable)`` pairs, each moving whole rounds of traffic through
    :meth:`exchange` — and :meth:`finish`, which assembles the result object.
    :meth:`run` executes the phases in order and records a
    :class:`PhaseRecord` delta for each in :attr:`phase_log`.

    Parameters
    ----------
    simulator: the network.
    engine: ``"batch"`` (default) routes exchanges through
        :func:`batched_global_exchange`; ``"legacy"`` routes them through the
        per-message :func:`~repro.core.transport.throttled_global_exchange`.
        Both produce identical inboxes, metrics and round counts — the legacy
        path exists so equivalence tests and benchmarks can compare the two.
    """

    def __init__(self, simulator: HybridSimulator, *, engine: str = "batch") -> None:
        if engine not in ("batch", "legacy"):
            raise ValueError(f"unknown engine {engine!r}; use 'batch' or 'legacy'")
        self.simulator = simulator
        self.engine = engine
        self.phase_log: List[PhaseRecord] = []

    # ------------------------------------------------------------------
    def phases(self) -> Sequence[Tuple[str, Callable[[], None]]]:
        """Ordered (name, callable) pairs; override in subclasses."""
        raise NotImplementedError

    def finish(self) -> Any:
        """Assemble the algorithm's result after all phases ran; override."""
        raise NotImplementedError

    def run(self) -> Any:
        metrics = self.simulator.metrics
        for name, phase in self.phases():
            measured = metrics.measured_rounds
            charged = metrics.charged_rounds
            global_msgs = metrics.global_messages
            local_msgs = metrics.local_messages
            phase()
            self.phase_log.append(
                PhaseRecord(
                    name=name,
                    measured_rounds=metrics.measured_rounds - measured,
                    charged_rounds=metrics.charged_rounds - charged,
                    global_messages=metrics.global_messages - global_msgs,
                    local_messages=metrics.local_messages - local_msgs,
                )
            )
        return self.finish()

    # ------------------------------------------------------------------
    @property
    def use_batch(self) -> bool:
        return self.engine == "batch"

    def exchange(
        self,
        triples: Sequence[GlobalTriple],
        tag: Optional[str] = None,
        *,
        max_rounds: Optional[int] = None,
    ) -> Dict[Node, List[Any]]:
        """Move a workload of (sender, receiver, payload) triples globally.

        Token-shards the workload over as many rounds as the per-node budget
        requires.  The triple order is the schedule order, so the two engines
        produce identical shard boundaries and round counts.
        """
        if not triples:
            return {}
        if self.use_batch:
            return batched_global_exchange(
                self.simulator, triples, tag=tag, max_rounds=max_rounds
            )
        from repro.core.transport import GlobalTransfer, throttled_global_exchange

        transfers = [
            GlobalTransfer(sender=triple[0], receiver=triple[1], payload=triple[2], tag=tag)
            for triple in triples
        ]
        return throttled_global_exchange(
            self.simulator, transfers, max_rounds=max_rounds
        )
