"""Existentially optimal (1+eps)-approximate SSSP (Theorem 13).

Theorem 13: a (1+eps)-approximation of single-source shortest paths can be
computed deterministically in ``eO(1/eps^2)`` rounds of HYBRID_0.  The paper
obtains this by simulating the Minor-Aggregation model (Lemma 8.2, see
:mod:`repro.core.minor_aggregation`) and an Eulerian-orientation oracle
(Lemma 8.6, see :mod:`repro.core.euler`) and plugging both into the
transshipment-based SSSP framework of [RGH+22] (Lemma 8.1).

Per the substitution policy (DESIGN.md note 2) the transshipment solver itself
is not replicated; the *functional* (1+eps)-approximation produced here uses
the classical weight-rounding scheme — every edge weight is rounded up to the
nearest power of ``(1 + eps)`` before running an exact shortest-path
computation, which over-estimates every distance by at most a factor
``(1 + eps)`` — and the round cost of Theorem 13,
``ceil(1/eps^2) * polylog(n)``, is charged.  All downstream users (Theorems 5,
6, 14) only rely on (a) the stretch guarantee and (b) the charged round count,
both of which are preserved.

Since the weighted-engine migration, :func:`exact_sssp_distances` and
:func:`approx_sssp_distances` are thin wrappers over the cached
:class:`~repro.graphs.index.GraphIndex`: the Dijkstra runs on flat CSR arrays
with precomputed tie keys, and the power-of-``(1 + eps)`` rounding is applied
to the whole weight array once per ``(graph, epsilon)`` and memoised instead
of once per edge relaxation per query — the per-leader (Theorem 6) and
per-skeleton (Theorems 8/14) SSSP sweeps share one rounded CSR.  The
historical dict+heapq implementation survives as
:func:`_reference_exact_sssp_distances` / :func:`_reference_approx_sssp_distances`
ground truth; ``tests/properties/test_weighted_equivalence.py`` pins exact
agreement (and agreement with ``networkx``) across graph families.
"""

from __future__ import annotations

import dataclasses
import heapq
import math
from typing import Dict, Hashable, List, Optional, Tuple

import networkx as nx

from repro.graphs.index import get_index, round_weight_up
from repro.graphs.properties import edge_weight
from repro.simulator.config import log2_ceil
from repro.simulator.engine import BatchAlgorithm
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = [
    "round_weight_up",
    "approx_sssp_distances",
    "exact_sssp_distances",
    "SSSPResult",
    "ApproxSSSP",
    "sssp_round_cost",
]


def exact_sssp_distances(graph: nx.Graph, source: Node) -> Dict[Node, float]:
    """Exact Dijkstra distances (ground truth / stretch-1 special case).

    Delegates to the cached :class:`~repro.graphs.index.GraphIndex` flat-array
    Dijkstra; identical values to :func:`_reference_exact_sssp_distances`,
    only the key order of the returned dict may differ.
    """
    return get_index(graph).sssp_dict(source)


def approx_sssp_distances(
    graph: nx.Graph, source: Node, epsilon: float
) -> Dict[Node, float]:
    """(1+eps)-approximate SSSP distances via weight rounding.

    Every returned estimate ``d~`` satisfies ``d <= d~ <= (1 + eps) d`` where
    ``d`` is the true weighted distance.  Runs on the index's cached
    rounded-weight CSR (rounded once per ``(graph, epsilon)``, not once per
    query).
    """
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    return get_index(graph).sssp_dict(source, epsilon)


def _reference_exact_sssp_distances(
    graph: nx.Graph, source: Node
) -> Dict[Node, float]:
    """Index-free ground truth for :func:`exact_sssp_distances` (tests only)."""
    return _dijkstra(graph, source, lambda w: float(w))


def _reference_approx_sssp_distances(
    graph: nx.Graph, source: Node, epsilon: float
) -> Dict[Node, float]:
    """Index-free ground truth for :func:`approx_sssp_distances` (tests only)."""
    if epsilon < 0:
        raise ValueError("epsilon must be non-negative")
    if epsilon == 0:
        return _reference_exact_sssp_distances(graph, source)
    return _dijkstra(graph, source, lambda w: round_weight_up(w, epsilon))


def _dijkstra(graph: nx.Graph, source: Node, transform) -> Dict[Node, float]:
    """The pre-index dict+heapq Dijkstra (reference machinery, tests only).

    The flat-array Dijkstra in :mod:`repro.graphs.index` replicates this
    routine's tie-break keys and relaxation tolerance exactly.
    """
    if source not in graph:
        raise KeyError(f"source {source!r} not in graph")
    # Tie-break keys are precomputed once per node: str() per heap push is a
    # measurable cost at n >= 10^3 and the visit order must stay identical.
    tie_key: Dict[Node, str] = {node: str(node) for node in graph.nodes}
    dist: Dict[Node, float] = {source: 0.0}
    visited: Dict[Node, bool] = {}
    heap: List[Tuple[float, str, Node]] = [(0.0, tie_key[source], source)]
    while heap:
        d, _, u = heapq.heappop(heap)
        if visited.get(u):
            continue
        visited[u] = True
        for v in graph.neighbors(u):
            w = transform(edge_weight(graph, u, v))
            candidate = d + w
            if candidate < dist.get(v, math.inf) - 1e-15:
                dist[v] = candidate
                heapq.heappush(heap, (candidate, tie_key[v], v))
    return dist


def sssp_round_cost(n: int, epsilon: float) -> int:
    """The Theorem 13 round cost ``ceil(1/eps^2) * polylog(n)`` we charge."""
    log_n = log2_ceil(max(n, 2))
    eps = max(epsilon, 1e-9)
    return int(math.ceil(1.0 / (eps * eps))) * log_n * log_n


@dataclasses.dataclass
class SSSPResult:
    """Outcome of an SSSP computation."""

    source: Node
    distances: Dict[Node, float]
    epsilon: float
    metrics: RoundMetrics

    def distance_to(self, node: Node) -> float:
        return self.distances.get(node, math.inf)


class ApproxSSSP(BatchAlgorithm):
    """Theorem 13: deterministic (1+eps)-approximate SSSP in ``eO(1/eps^2)`` rounds.

    The distance estimates are produced by :func:`approx_sssp_distances`; the
    Theorem 13 round cost is charged on the simulator (the Minor-Aggregation
    and Euler-oracle components it builds on live in their own modules and are
    tested independently).  The algorithm rides the
    :class:`~repro.simulator.engine.BatchAlgorithm` driver so its phases show
    up in ``phase_log`` next to the physically simulated algorithms; no traffic
    crosses the simulated network, so ``engine`` only selects the (unused)
    transport and both engines are trivially round-identical.
    """

    def __init__(
        self,
        simulator: HybridSimulator,
        source: Node,
        epsilon: float = 0.25,
        *,
        engine: str = "batch",
        charge_only: bool = False,
    ) -> None:
        super().__init__(simulator, engine=engine, charge_only=charge_only)
        if source not in set(simulator.nodes):
            raise KeyError(f"source {source!r} is not a node of the network")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.source = source
        self.epsilon = epsilon
        self._distances: Dict[Node, float] = {}

    def phases(self):
        return (
            ("weight-rounded dijkstra", self._phase_distances),
            ("round-charge", self._phase_charge),
        )

    def _phase_distances(self) -> None:
        self._distances = approx_sssp_distances(
            self.simulator.graph, self.source, self.epsilon
        )

    def _phase_charge(self) -> None:
        self.simulator.charge_rounds(
            sssp_round_cost(self.simulator.n, self.epsilon),
            f"(1+{self.epsilon})-approximate SSSP from {self.source!r}",
            "Theorem 13 via Lemmas 8.1, 8.2, 8.6",
        )

    def finish(self) -> SSSPResult:
        return SSSPResult(
            source=self.source,
            distances=self._distances,
            epsilon=self.epsilon,
            metrics=self.simulator.metrics,
        )
