"""Comparison helpers: scaling-exponent fits and measured/predicted ratios.

Figure 1 of the paper plots the round complexity of k-SSP as ``n^delta``
against the number of sources ``k = n^beta``.  To regenerate the figure we run
the algorithms over a ``k`` sweep and *fit* the observed exponent with an
ordinary least-squares fit in log-log space; the benchmark then reports the
fitted exponent next to the predicted one.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

__all__ = ["fit_power_law_exponent", "ratio_series", "geometric_mean"]


def fit_power_law_exponent(xs: Sequence[float], ys: Sequence[float]) -> Tuple[float, float]:
    """Fit ``y ~ c * x^a`` by least squares in log-log space; returns (a, c)."""
    if len(xs) != len(ys):
        raise ValueError("xs and ys must have the same length")
    if len(xs) < 2:
        raise ValueError("need at least two points to fit an exponent")
    filtered = [(x, y) for x, y in zip(xs, ys) if x > 0 and y > 0]
    if len(filtered) < 2:
        raise ValueError("need at least two positive points to fit an exponent")
    log_x = np.array([math.log(x) for x, _ in filtered])
    log_y = np.array([math.log(y) for _, y in filtered])
    slope, intercept = np.polyfit(log_x, log_y, 1)
    return float(slope), float(math.exp(intercept))


def ratio_series(
    measured: Sequence[float], predicted: Sequence[float]
) -> List[float]:
    """Element-wise measured/predicted ratios (inf-safe)."""
    if len(measured) != len(predicted):
        raise ValueError("series must have the same length")
    ratios: List[float] = []
    for m, p in zip(measured, predicted):
        if p == 0:
            ratios.append(math.inf if m > 0 else 1.0)
        else:
            ratios.append(m / p)
    return ratios


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values (ignores non-positive entries)."""
    logs = [math.log(v) for v in values if v > 0]
    if not logs:
        return 0.0
    return math.exp(sum(logs) / len(logs))
