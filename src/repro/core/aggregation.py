"""Universally optimal multi-message aggregation: ``k-aggregation`` (Theorem 2).

Problem (Definition 1.2): every node ``v`` holds ``k`` values
``f_1(v), ..., f_k(v)``; for an associative and commutative aggregation
function ``F`` every node must learn ``F(f_i(v_1), ..., f_i(v_n))`` for every
index ``i``.

Theorem 2: solvable deterministically in ``eO(NQ_k)`` rounds in HYBRID_0.  The
algorithm mirrors Theorem 1's broadcast: cluster the graph (Lemma 3.5), compute
the ``k`` intermediate aggregates inside each cluster (local flooding, charged),
load balance them so each node is responsible for at most ``NQ_k`` indices,
converge-cast the partial aggregates up the cluster tree (combining per index,
physically simulated over the global mode), and finally disseminate the ``k``
final results with Theorem 1.

Like :class:`~repro.core.dissemination.KDissemination`, the implementation is
a :class:`~repro.simulator.engine.BatchAlgorithm`; the converge-cast moves
whole levels of partial aggregates through the batch messaging engine (or the
legacy per-message transport with ``engine="legacy"``, with identical rounds).
"""

from __future__ import annotations

import dataclasses
from collections import defaultdict
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.core.clustering import Clustering, distributed_nq_clustering
from repro.core.dissemination import (
    ClusterTree,
    KDissemination,
    build_cluster_tree,
    match_cluster_tree_ids,
    rank_matched_triples,
)
from repro.core.neighborhood_quality import neighborhood_quality
from repro.simulator.config import log2_ceil
from repro.simulator.engine import BatchAlgorithm, GlobalTriple
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = ["AggregationResult", "KAggregation"]


@dataclasses.dataclass
class AggregationResult:
    """Outcome of a k-aggregation run."""

    aggregates: List[Any]
    known_aggregates: Dict[Node, List[Any]]
    k: int
    nq: int
    metrics: RoundMetrics

    def all_nodes_know_all_aggregates(self) -> bool:
        return all(known == self.aggregates for known in self.known_aggregates.values())


class KAggregation(BatchAlgorithm):
    """Theorem 2: deterministic ``eO(NQ_k)``-round k-aggregation in HYBRID_0.

    Parameters
    ----------
    simulator: the network.
    values_by_node: mapping ``node -> [f_1(v), ..., f_k(v)]``; every node must
        supply the same number ``k`` of values.
    combine: the aggregation function ``F`` (associative and commutative), e.g.
        ``min``, ``max``, ``operator.add``.
    engine: ``"batch"`` (default) or ``"legacy"`` message path.
    """

    def __init__(
        self,
        simulator: HybridSimulator,
        values_by_node: Dict[Node, Sequence[Any]],
        combine: Callable[[Any, Any], Any],
        *,
        nq: Optional[int] = None,
        engine: str = "batch",
    ) -> None:
        super().__init__(simulator, engine=engine)
        self.combine = combine
        node_set = set(simulator.nodes)
        if set(values_by_node) != node_set:
            raise ValueError("values_by_node must provide values for every node")
        lengths = {len(values) for values in values_by_node.values()}
        if len(lengths) != 1:
            raise ValueError("every node must hold the same number k of values")
        self.k = lengths.pop()
        if self.k == 0:
            raise ValueError("k must be positive")
        self.values_by_node = {node: list(values) for node, values in values_by_node.items()}
        self._nq_hint = nq
        # Phase state.
        self._log_n = log2_ceil(max(simulator.n, 2))
        self.nq = 0
        self.clustering: Optional[Clustering] = None
        self.cluster_tree: Optional[ClusterTree] = None
        self._sorted_members: Dict[int, List[Node]] = {}
        self._cluster_partials: Dict[int, List[Any]] = {}
        self._final_aggregates: List[Any] = []
        self._known_aggregates: Dict[Node, List[Any]] = {}

    # ------------------------------------------------------------------
    def phases(self):
        return (
            ("parameters", self._phase_parameters),
            ("intra-cluster aggregation", self._phase_intra_cluster),
            ("converge-cast", self._phase_converge_cast),
            ("broadcast", self._phase_broadcast),
        )

    def _phase_parameters(self) -> None:
        """Compute NQ_k, the clustering (Lemma 3.5) and the cluster chaining."""
        sim = self.simulator
        log_n = self._log_n
        nq = self._nq_hint
        if nq is None:
            nq = neighborhood_quality(sim.graph, self.k)
        self.nq = max(1, nq)
        sim.charge_rounds(self.nq, "distributed computation of NQ_k", "Lemma 3.3")

        self.clustering = distributed_nq_clustering(sim, self.k, nq=self.nq)
        self.cluster_tree = build_cluster_tree(self.clustering)
        identifier_of = sim.node_identifiers()
        self._sorted_members = {
            cluster.index: sorted(cluster.members, key=identifier_of.__getitem__)
            for cluster in self.clustering.clusters
        }
        sim.charge_rounds(
            log_n * log_n, "cluster-tree construction", "Lemma 4.6 via Theorem 2"
        )
        sim.charge_rounds(
            log_n,
            "matching parent/child cluster nodes rank-by-rank",
            "Theorem 2 via Theorem 1, cluster chaining",
        )
        match_cluster_tree_ids(sim, self.clustering, self.cluster_tree)

    def _phase_intra_cluster(self) -> None:
        """Intra-cluster intermediate aggregation (local flooding, charged)."""
        sim = self.simulator
        k = self.k
        combine = self.combine
        cluster_partials: Dict[int, List[Any]] = {}
        for cluster in self.clustering.clusters:
            partial: List[Any] = [None] * k
            for member in cluster.members:
                for index, value in enumerate(self.values_by_node[member]):
                    if partial[index] is None:
                        partial[index] = value
                    else:
                        partial[index] = combine(partial[index], value)
            cluster_partials[cluster.index] = partial
        self._cluster_partials = cluster_partials
        sim.charge_rounds(
            4 * self.nq * self._log_n,
            "intra-cluster flooding for intermediate aggregation",
            "Theorem 2",
        )
        sim.charge_rounds(
            8 * self.nq * self._log_n,
            "intra-cluster load balancing of intermediate aggregates",
            "Lemma 4.1",
        )

    def _phase_converge_cast(self) -> None:
        """Converge-cast the k partial aggregates up the cluster tree (measured)."""
        sim = self.simulator
        k = self.k
        combine = self.combine
        cluster_tree = self.cluster_tree
        cluster_partials = self._cluster_partials
        levels = cluster_tree.levels()
        for level in reversed(levels[1:]):
            triples: List[GlobalTriple] = []
            incoming: Dict[int, List[Tuple[int, Any]]] = defaultdict(list)
            for cluster_index in level:
                parent_index = cluster_tree.parent[cluster_index]
                partial = cluster_partials[cluster_index]
                payloads = [(index, partial[index]) for index in range(k)]
                triples.extend(
                    rank_matched_triples(
                        self._sorted_members[cluster_index],
                        self._sorted_members[parent_index],
                        payloads,
                    )
                )
                incoming[parent_index].extend(payloads)
            if triples:
                # Deliveries are folded from the locally-known ``incoming``
                # pairs below; the result dict would be discarded.
                self.exchange(triples, "kagg", collect=False)
            for parent_index, pairs in incoming.items():
                parent_partial = cluster_partials[parent_index]
                for index, value in pairs:
                    if value is None:
                        continue
                    if parent_partial[index] is None:
                        parent_partial[index] = value
                    else:
                        parent_partial[index] = combine(parent_partial[index], value)
            sim.charge_rounds(
                8 * self.nq * self._log_n,
                "intra-cluster load balancing between converge-cast levels",
                "Lemma 4.1",
            )
        self._final_aggregates = list(cluster_partials[cluster_tree.root])

    def _phase_broadcast(self) -> None:
        """The root cluster knows the k results; broadcast them with Theorem 1."""
        sim = self.simulator
        root_cluster = self.clustering.clusters[self.cluster_tree.root]
        announcer = root_cluster.leader
        tokens = [
            ("agg-result", index, value)
            for index, value in enumerate(self._final_aggregates)
        ]
        dissemination = KDissemination(
            sim, {announcer: tokens}, nq=None, clustering=None, engine=self.engine
        )
        dissemination_result = dissemination.run()

        known_aggregates: Dict[Node, List[Any]] = {}
        for node, known in dissemination_result.known_tokens.items():
            values: List[Any] = [None] * self.k
            for token in known:
                if isinstance(token, tuple) and len(token) == 3 and token[0] == "agg-result":
                    values[token[1]] = token[2]
            known_aggregates[node] = values
        self._known_aggregates = known_aggregates

    def finish(self) -> AggregationResult:
        return AggregationResult(
            aggregates=self._final_aggregates,
            known_aggregates=self._known_aggregates,
            k=self.k,
            nq=self.nq,
            metrics=self.simulator.metrics,
        )
