"""The synchronous HYBRID(lambda, gamma) network simulator.

The simulator owns the local communication graph ``G`` and advances in
synchronous rounds (Section 1.3):

* **Local mode** — in each round a node may send an arbitrarily large message
  over each incident edge of ``G`` (unless ``lambda`` is finite, as in CONGEST,
  in which case the per-edge payload is capped).
* **Global mode** — in each round a node may send and receive at most
  ``gamma`` bits (equivalently, O(log n) messages of O(log n) bits) addressed to
  *any* node, provided the sender knows the receiver's identifier.  In HYBRID
  all identifiers are globally known; in HYBRID_0 a node initially only knows
  its own identifier and those of its graph neighbors, and knowledge spreads
  only through received messages.

Algorithms drive the simulator directly::

    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=0)
    sim.local_send(u, v, payload)
    sim.global_send(u, target_id, payload)
    sim.advance_round()
    for message in sim.global_inbox(v):
        ...

Every send is size-accounted; capacity violations raise (strict mode) or are
recorded in :class:`~repro.simulator.metrics.RoundMetrics`.
"""

from __future__ import annotations

import random
from collections import defaultdict
from typing import Any, Dict, Hashable, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from repro.simulator.config import IdentifierRegime, ModelConfig
from repro.simulator.errors import (
    CapacityExceededError,
    LocalBandwidthExceededError,
    NotANeighborError,
    RoundLifecycleError,
    UnknownIdentifierError,
    UnknownNodeError,
)
from repro.simulator.knowledge import KnowledgeTracker
from repro.simulator.messages import GLOBAL_MODE, LOCAL_MODE, Message, payload_words
from repro.simulator.metrics import RoundMetrics

Node = Hashable

__all__ = ["HybridSimulator"]


class HybridSimulator:
    """Round-based simulator of a HYBRID(lambda, gamma) network.

    Parameters
    ----------
    graph:
        The local communication graph.  Nodes may be any hashable objects; for
        the HYBRID (dense) identifier regime with integer nodes ``0..n-1`` the
        identifier of node ``v`` is ``v`` itself, matching the paper's "[n]"
        convention up to a shift.
    config:
        The :class:`~repro.simulator.config.ModelConfig` describing lambda,
        gamma, and the identifier regime.
    seed:
        Seed for the simulator's own randomness (sparse identifier assignment).
    capacity_multiplier:
        Slack factor applied to the per-node global budget.  The paper's
        guarantees are "O(log n) messages w.h.p."; on the small instances used
        in tests the hidden constants matter, so callers may allow a small
        constant slack.  The default of 1 enforces the budget exactly.
    enforce_receive_capacity:
        If True, a node receiving more than its budget in one round raises in
        strict mode.  By default receive-side overload is only *recorded*
        (mirroring the paper's remark that an adversary may drop the excess;
        our algorithms are expected to keep the bound and the tests assert
        ``capacity_violations == 0`` where the paper claims it).
    """

    def __init__(
        self,
        graph: nx.Graph,
        config: Optional[ModelConfig] = None,
        *,
        seed: Optional[int] = None,
        capacity_multiplier: int = 1,
        enforce_receive_capacity: bool = False,
    ) -> None:
        if graph.number_of_nodes() == 0:
            raise ValueError("cannot simulate an empty network")
        if capacity_multiplier < 1:
            raise ValueError("capacity_multiplier must be at least 1")
        self.graph = graph
        self.config = config if config is not None else ModelConfig.hybrid()
        self.n = graph.number_of_nodes()
        self.rng = random.Random(seed)
        self.capacity_multiplier = capacity_multiplier
        self.enforce_receive_capacity = enforce_receive_capacity
        self.metrics = RoundMetrics()
        self.round = 0

        self._nodes: List[Node] = sorted(graph.nodes, key=str)
        self._node_set: Set[Node] = set(self._nodes)
        self._assign_identifiers()
        self._init_knowledge()

        # Outboxes for the round currently being composed and inboxes holding
        # the messages delivered by the most recent ``advance_round``.
        self._pending_local: List[Message] = []
        self._pending_global: List[Message] = []
        self._delivered_local: Dict[Node, List[Message]] = {v: [] for v in self._nodes}
        self._delivered_global: Dict[Node, List[Message]] = {v: [] for v in self._nodes}
        self._delivered_round = -1

    # ------------------------------------------------------------------
    # Identifiers and knowledge
    # ------------------------------------------------------------------
    def _assign_identifiers(self) -> None:
        if self.config.identifier_regime is IdentifierRegime.DENSE:
            # HYBRID: identifiers are exactly [n].  When nodes are already the
            # integers 0..n-1 we use them verbatim; otherwise we enumerate.
            if all(isinstance(v, int) for v in self._nodes) and set(self._nodes) == set(
                range(self.n)
            ):
                self._node_to_id: Dict[Node, int] = {v: v for v in self._nodes}
            else:
                self._node_to_id = {v: index for index, v in enumerate(self._nodes)}
        else:
            # HYBRID_0: identifiers from a polynomial range [n^c]; we draw
            # distinct random integers from [n^3].
            universe = max(self.n**3, 8)
            ids = self.rng.sample(range(universe), self.n)
            self._node_to_id = {v: ids[index] for index, v in enumerate(self._nodes)}
        self._id_to_node: Dict[int, Node] = {
            identifier: node for node, identifier in self._node_to_id.items()
        }

    def _init_knowledge(self) -> None:
        self.knowledge = KnowledgeTracker(self._id_to_node.keys())
        if self.config.identifier_regime is IdentifierRegime.DENSE:
            self.knowledge.initialize_all_known()
        else:
            for node in self._nodes:
                neighbor_ids = [self._node_to_id[u] for u in self.graph.neighbors(node)]
                self.knowledge.initialize_node(self._node_to_id[node], neighbor_ids)

    # ------------------------------------------------------------------
    # Introspection helpers
    # ------------------------------------------------------------------
    @property
    def nodes(self) -> List[Node]:
        """All nodes, in a deterministic order."""
        return list(self._nodes)

    def neighbors(self, node: Node) -> List[Node]:
        self._require_node(node)
        return sorted(self.graph.neighbors(node), key=str)

    def id_of(self, node: Node) -> int:
        self._require_node(node)
        return self._node_to_id[node]

    def node_of_id(self, identifier: int) -> Node:
        if identifier not in self._id_to_node:
            raise UnknownNodeError(identifier)
        return self._id_to_node[identifier]

    def all_ids(self) -> List[int]:
        return sorted(self._id_to_node)

    def known_ids(self, node: Node) -> Set[int]:
        return self.knowledge.known_ids(self.id_of(node))

    def knows_id(self, node: Node, identifier: int) -> bool:
        return self.knowledge.knows(self.id_of(node), identifier)

    def declare_learned_ids(self, node: Node, identifiers: Iterable[int]) -> None:
        """Record that ``node`` learned identifiers from received payloads."""
        self.knowledge.learn(self.id_of(node), identifiers)

    def global_budget_words(self) -> int:
        """Per-node, per-round global budget in words."""
        return self.config.resolve_global_word_budget(self.n) * self.capacity_multiplier

    def edge_weight(self, u: Node, v: Node) -> float:
        return self.graph[u][v].get("weight", 1)

    # ------------------------------------------------------------------
    # Sending
    # ------------------------------------------------------------------
    def local_send(self, sender: Node, receiver: Node, payload: Any, tag: Optional[str] = None) -> None:
        """Queue a local-mode message along the edge ``{sender, receiver}``."""
        self._require_node(sender)
        self._require_node(receiver)
        if not self.config.local_mode_enabled():
            raise LocalBandwidthExceededError(
                f"local mode disabled in model {self.config.name!r}"
            )
        if not self.graph.has_edge(sender, receiver):
            raise NotANeighborError(f"{sender!r} and {receiver!r} are not adjacent")
        message = Message(sender, receiver, payload, LOCAL_MODE, tag, self.round)
        limit = self.config.local_bits_per_edge
        if limit is not None and limit > 0:
            # CONGEST-style finite bandwidth: the per-edge payload may use at most
            # limit bits ~= limit / 64 words.
            max_words = max(1, limit // 64)
            if message.words > max_words:
                if self.config.strict:
                    raise LocalBandwidthExceededError(
                        f"local message of {message.words} words exceeds per-edge "
                        f"budget of {max_words} words"
                    )
                self.metrics.record_violation()
        self._pending_local.append(message)

    def local_broadcast(self, sender: Node, payload: Any, tag: Optional[str] = None) -> None:
        """Send the same payload to every neighbor of ``sender``."""
        for neighbor in self.neighbors(sender):
            self.local_send(sender, neighbor, payload, tag)

    def global_send(
        self,
        sender: Node,
        target_id: int,
        payload: Any,
        tag: Optional[str] = None,
    ) -> None:
        """Queue a global-mode message to the node whose identifier is ``target_id``."""
        self._require_node(sender)
        if not self.config.global_mode_enabled():
            raise CapacityExceededError(
                f"global mode disabled in model {self.config.name!r}"
            )
        if target_id not in self._id_to_node:
            raise UnknownNodeError(target_id)
        if self.config.is_hybrid0() and not self.knowledge.knows(
            self.id_of(sender), target_id
        ):
            raise UnknownIdentifierError(
                f"node {sender!r} does not know identifier {target_id!r}"
            )
        receiver = self._id_to_node[target_id]
        message = Message(sender, receiver, payload, GLOBAL_MODE, tag, self.round)
        self._pending_global.append(message)

    def global_send_to_node(
        self, sender: Node, receiver: Node, payload: Any, tag: Optional[str] = None
    ) -> None:
        """Convenience wrapper: address a global message by node rather than id."""
        self.global_send(sender, self.id_of(receiver), payload, tag)

    # ------------------------------------------------------------------
    # Round lifecycle
    # ------------------------------------------------------------------
    def advance_round(self) -> None:
        """Deliver all queued messages and advance the round counter.

        Global-mode capacity is enforced here: the total number of words each
        node *sends* and *receives* in this round must not exceed the per-node
        budget (times the configured slack).  Send-side violations raise in
        strict mode because they are always under the algorithm's control;
        receive-side violations raise only when ``enforce_receive_capacity`` is
        set, and are otherwise recorded.
        """
        budget = self.global_budget_words()
        sent_words: Dict[Node, int] = defaultdict(int)
        received_words: Dict[Node, int] = defaultdict(int)

        for message in self._pending_global:
            sent_words[message.sender] += message.words
            received_words[message.receiver] += message.words

        if self.config.global_mode_enabled():
            for node, words in sent_words.items():
                self.metrics.record_node_round_load(words)
                if words > budget:
                    self.metrics.record_violation()
                    if self.config.strict:
                        raise CapacityExceededError(
                            f"node {node!r} sent {words} global words in round "
                            f"{self.round}, budget is {budget}"
                        )
            for node, words in received_words.items():
                self.metrics.record_node_round_load(words)
                if words > budget:
                    self.metrics.record_violation()
                    if self.config.strict and self.enforce_receive_capacity:
                        raise CapacityExceededError(
                            f"node {node!r} received {words} global words in round "
                            f"{self.round}, budget is {budget}"
                        )

        # Deliver.
        new_local: Dict[Node, List[Message]] = {v: [] for v in self._nodes}
        new_global: Dict[Node, List[Message]] = {v: [] for v in self._nodes}
        for message in self._pending_local:
            new_local[message.receiver].append(message)
            self.metrics.record_local(message.words)
        for message in self._pending_global:
            new_global[message.receiver].append(message)
            self.metrics.record_global(message.words)
            # Receiving a global message always teaches the receiver the
            # sender's identifier (the sender attaches it implicitly).
            self.knowledge.learn(
                self.id_of(message.receiver), [self.id_of(message.sender)]
            )

        # Receiving a local message likewise teaches the sender's identifier
        # (already known — they are neighbors — but harmless and uniform).
        self._delivered_local = new_local
        self._delivered_global = new_global
        self._pending_local = []
        self._pending_global = []
        self._delivered_round = self.round
        self.round += 1
        self.metrics.record_round()

    def advance_rounds(self, count: int) -> None:
        """Advance ``count`` (possibly silent) rounds."""
        if count < 0:
            raise ValueError("count must be non-negative")
        for _ in range(count):
            self.advance_round()

    def charge_rounds(self, rounds: int, reason: str, reference: str = "") -> None:
        """Add an analytic round charge (see DESIGN.md substitution policy)."""
        self.metrics.charge(rounds, reason, reference)

    # ------------------------------------------------------------------
    # Receiving
    # ------------------------------------------------------------------
    def local_inbox(self, node: Node) -> List[Message]:
        """Messages delivered to ``node`` over the local mode in the last round."""
        self._require_delivered()
        self._require_node(node)
        return list(self._delivered_local[node])

    def global_inbox(self, node: Node) -> List[Message]:
        """Messages delivered to ``node`` over the global mode in the last round."""
        self._require_delivered()
        self._require_node(node)
        return list(self._delivered_global[node])

    def inbox(self, node: Node) -> List[Message]:
        """All messages (local then global) delivered to ``node`` in the last round."""
        return self.local_inbox(node) + self.global_inbox(node)

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------
    def _require_node(self, node: Node) -> None:
        if node not in self._node_set:
            raise UnknownNodeError(node)

    def _require_delivered(self) -> None:
        if self._delivered_round < 0:
            raise RoundLifecycleError(
                "no round has been delivered yet; call advance_round() first"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"HybridSimulator(n={self.n}, model={self.config.name!r}, "
            f"round={self.round})"
        )
