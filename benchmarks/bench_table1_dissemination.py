"""Table 1 reproduction: information dissemination.

Paper claim (Table 1): k-dissemination and k-aggregation are solvable in
eO(NQ_k) rounds (Theorems 1, 2) — universally optimal, matching the eOmega(NQ_k)
lower bound of Theorem 4 — whereas prior work achieves eO(sqrt(k) + l)
[AHK+20]; (k, l)-routing is solvable in eO(NQ_k) rounds (Theorem 3) versus
eO(sqrt(k) + kl/n) [KS20].

The benchmark measures the round counts of our implementations across the graph
grid, prints them next to the analytic prior bounds and the universal lower
bound, and asserts the shape claims: rounds track NQ_k (not sqrt k), and the
lower bound never exceeds the measured upper bound.
"""

from __future__ import annotations

import pytest

from repro.analysis.experiments import (
    default_benchmark_specs,
    run_table1_aggregation,
    run_table1_dissemination,
    run_table1_unicast,
)
from repro.graphs.generators import GraphSpec

SPECS = default_benchmark_specs("small")
K_VALUES = [16, 64]


def _dissemination_rows():
    rows = []
    for spec in SPECS:
        for k in K_VALUES:
            rows.append(run_table1_dissemination(spec, k, seed=1))
    return rows


def test_table1_dissemination(benchmark, save_table):
    rows = benchmark.pedantic(_dissemination_rows, rounds=1, iterations=1)
    save_table("table1_dissemination", rows, "Table 1 - k-dissemination (Theorem 1)")
    for row in rows:
        assert row["capacity violations"] == 0
        assert row["rounds (Thm 1, total)"] >= row["universal LB (Thm 4)"]
    # Shape claim: for fixed k, the round count follows NQ_k across graphs.
    for k in K_VALUES:
        subset = sorted((r for r in rows if r["k"] == k), key=lambda r: r["NQ_k"])
        rounds = [r["rounds (Thm 1, total)"] for r in subset]
        assert rounds[0] <= rounds[-1] * 1.05  # lowest-NQ graph is never the most expensive


def _aggregation_rows():
    rows = []
    for spec in SPECS:
        rows.append(run_table1_aggregation(spec, 16, seed=1))
    return rows


def test_table1_aggregation(benchmark, save_table):
    rows = benchmark.pedantic(_aggregation_rows, rounds=1, iterations=1)
    save_table("table1_aggregation", rows, "Table 1 - k-aggregation (Theorem 2)")
    for row in rows:
        assert row["rounds (Thm 2, total)"] >= row["universal LB (Thm 4)"]


def _unicast_rows():
    rows = []
    for spec in SPECS:
        rows.append(run_table1_unicast(spec, 8, 3, seed=1))
    return rows


def test_table1_unicast(benchmark, save_table):
    rows = benchmark.pedantic(_unicast_rows, rounds=1, iterations=1)
    save_table("table1_unicast", rows, "Table 1 - (k,l)-routing (Theorem 3)")
    for row in rows:
        assert row["rounds (Thm 3, total)"] >= row["universal LB (Thm 4)"]


def _scaling_rows():
    spec = GraphSpec.of("path", n=96)
    return [run_table1_dissemination(spec, k, seed=2) for k in (9, 36, 144)]


def test_table1_rounds_scale_like_nq_not_k(benchmark, save_table):
    """On a path NQ_k ~ sqrt(k): quadrupling k should roughly double the rounds
    (and certainly not quadruple them), mirroring the eO(NQ_k) bound."""
    rows = benchmark.pedantic(_scaling_rows, rounds=1, iterations=1)
    save_table("table1_scaling", rows, "Table 1 - round scaling with k on a path")
    r9, r36, r144 = (row["rounds (Thm 1, total)"] for row in rows)
    assert r36 <= 3.5 * r9
    assert r144 <= 3.5 * r36
