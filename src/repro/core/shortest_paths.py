"""Universally optimal shortest-paths algorithms (Section 6).

This module implements the four universally optimal distance-computation
results that sit on top of the information-dissemination toolbox:

* :class:`KLShortestPaths` — Theorem 5: (1+eps)-approximate (k, l)-SP in
  ``eO(NQ_k)`` rounds, by solving one SSSP/k-SSP instance per target and then
  reversing the direction of the obtained labels with a (k, l)-routing instance
  (Theorem 3).
* :class:`UnweightedApproxAPSP` — Theorem 6 / Algorithm 3: deterministic
  (1+eps)-approximate APSP on unweighted graphs in ``eO(NQ_n / eps^2)`` rounds,
  via NQ_n-clustering, SSSP from every cluster leader, an ``x``-hop local
  exploration with ``x = 4 NQ_n ceil(log n) / eps``, and a broadcast of every
  node's closest-leader distance.
* :class:`SpannerAPSP` — Theorem 7: deterministic (1 + eps log n)-approximate
  weighted APSP in ``eO(2^{1/eps} NQ_n)`` rounds, by broadcasting a
  ``(2t-1)``-spanner with ``t = ceil(eps log n / 2)``.
* :class:`SkeletonAPSP` — Theorem 8 / Algorithm 4: randomized (4 alpha - 1)-
  approximate weighted APSP in ``eO(n^{1/(3 alpha + 1)} NQ_n^{2/(3 + 1/alpha)}
  + NQ_n)`` rounds, via a skeleton graph, a spanner of the skeleton, and the
  Algorithm 4 combination formula.

Every algorithm returns per-node distance estimate tables plus the metrics of
the simulator run; the distance *values* are computed exactly as the paper's
formulas prescribe (so the stretch observed in the tests is the real output of
the approximation pipeline, not an artefact), while the broadcast / SSSP
subroutine round costs are charged per their respective theorems.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Hashable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.core.clustering import Clustering, distributed_nq_clustering
from repro.core.neighborhood_quality import neighborhood_quality
from repro.core.routing import KLRouting, RoutingScenario
from repro.core.skeleton import build_skeleton
from repro.core.spanner import distributed_spanner, greedy_spanner
from repro.core.sssp import approx_sssp_distances, sssp_round_cost
from repro.core.ksp import KSourceShortestPaths, ksp_round_cost
from repro.graphs.properties import h_hop_limited_distances, hop_distances_from
from repro.simulator.config import log2_ceil
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = [
    "DistanceTable",
    "KLShortestPaths",
    "UnweightedApproxAPSP",
    "SpannerAPSP",
    "SkeletonAPSP",
]


@dataclasses.dataclass
class DistanceTable:
    """Distance estimates produced by an approximate shortest-paths algorithm.

    ``estimates[target][source]`` is the estimate the target node holds for its
    distance to the source node.  ``stretch_bound`` is the guarantee the
    producing theorem promises (used by the tests).
    """

    estimates: Dict[Node, Dict[Node, float]]
    stretch_bound: float
    metrics: RoundMetrics
    nq: Optional[int] = None

    def estimate(self, target: Node, source: Node) -> float:
        return self.estimates.get(target, {}).get(source, math.inf)

    def targets(self) -> List[Node]:
        return list(self.estimates)


# ----------------------------------------------------------------------
# Theorem 5: (k, l)-SP
# ----------------------------------------------------------------------
class KLShortestPaths:
    """Theorem 5: (1+eps)-approximate (k, l)-SP in ``eO(NQ_k)`` rounds.

    Every target in ``targets`` must learn its (approximate) distance to every
    source in ``sources``.  The algorithm solves the shortest-paths problem "in
    reverse" — one (1+eps)-SSSP per target (Theorem 13), or the k-SSP algorithm
    of Theorem 14 when there are many targets — after which each *source* knows
    its distance to each target; a (k, l)-routing instance (Theorem 3) then
    ships each label to the target that needs it.
    """

    def __init__(
        self,
        simulator: HybridSimulator,
        sources: Sequence[Node],
        targets: Sequence[Node],
        *,
        epsilon: float = 0.25,
        seed: Optional[int] = None,
    ) -> None:
        if not sources or not targets:
            raise ValueError("sources and targets must be non-empty")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.simulator = simulator
        self.sources = sorted(set(sources), key=simulator.id_of)
        self.targets = sorted(set(targets), key=simulator.id_of)
        self.epsilon = epsilon
        self.seed = seed

    def run(self) -> DistanceTable:
        sim = self.simulator
        k = len(self.sources)
        l = len(self.targets)
        # Memoised per (graph, k) by the analytics engine; the KLRouting
        # instance below receives it as a hint, so the whole Theorem 5
        # pipeline evaluates NQ_k exactly once.
        nq = max(1, neighborhood_quality(sim.graph, max(k, 1)))
        sim.charge_rounds(nq, "distributed computation of NQ_k", "Lemma 3.3")

        # Solve l-SSP for the targets acting as SSSP sources ("in reverse").
        if l <= max(2, nq):
            # First claim of Theorem 5: l sequential SSSP instances.
            reversed_estimates: Dict[Node, Dict[Node, float]] = {}
            for target in self.targets:
                reversed_estimates[target] = approx_sssp_distances(
                    sim.graph, target, self.epsilon
                )
                sim.charge_rounds(
                    sssp_round_cost(sim.n, self.epsilon),
                    f"(1+eps)-SSSP from target {target!r}",
                    "Theorem 13 via Theorem 5",
                )
        else:
            # Second claim: one k-SSP instance with the targets as sources.
            ksp = KSourceShortestPaths(
                sim,
                self.targets,
                epsilon=self.epsilon,
                sources_in_skeleton=True,
                seed=self.seed,
            )
            ksp_result = ksp.run()
            reversed_estimates = {
                target: {
                    node: ksp_result.estimate(node, target) for node in sim.nodes
                }
                for target in self.targets
            }

        # Each source now knows d~(s, t) for every target; reverse with
        # (k, l)-routing (Theorem 3).
        messages: Dict[Tuple[Node, Node], float] = {}
        for source in self.sources:
            for target in self.targets:
                messages[(source, target)] = reversed_estimates[target].get(
                    source, math.inf
                )
        routing = KLRouting(
            sim,
            messages,
            scenario=RoutingScenario.ARBITRARY_SOURCES_RANDOM_TARGETS
            if l <= nq
            else RoutingScenario.RANDOM_SOURCES_RANDOM_TARGETS,
            seed=self.seed,
            nq=nq,
        )
        routing_result = routing.run()

        estimates: Dict[Node, Dict[Node, float]] = {
            target: dict(routing_result.delivered.get(target, {}))
            for target in self.targets
        }
        return DistanceTable(
            estimates=estimates,
            stretch_bound=1.0 + self.epsilon,
            metrics=sim.metrics,
            nq=nq,
        )


# ----------------------------------------------------------------------
# Theorem 6: unweighted APSP
# ----------------------------------------------------------------------
class UnweightedApproxAPSP:
    """Theorem 6 / Algorithm 3: (1+eps)-approximate unweighted APSP in
    ``eO(NQ_n / eps^2)`` rounds, deterministically, in HYBRID_0."""

    def __init__(self, simulator: HybridSimulator, *, epsilon: float = 0.5) -> None:
        if not 0 < epsilon < 1:
            raise ValueError("epsilon must lie in (0, 1)")
        self.simulator = simulator
        self.epsilon = epsilon

    def run(self) -> DistanceTable:
        sim = self.simulator
        graph = sim.graph
        n = sim.n
        log_n = log2_ceil(max(n, 2))
        eps = self.epsilon

        nq = max(1, neighborhood_quality(graph, n))
        sim.charge_rounds(nq, "distributed computation of NQ_n", "Lemma 3.3")
        sim.charge_rounds(nq * log_n, "broadcast of all node identifiers", "Theorem 1")

        clustering = distributed_nq_clustering(sim, n, nq=nq)
        leaders = clustering.leaders()

        # (1+eps)-approximate SSSP from every cluster leader (Theorem 13),
        # |R| <= NQ_n instances.
        leader_estimates: Dict[Node, Dict[Node, float]] = {}
        for leader in leaders:
            leader_estimates[leader] = approx_sssp_distances(graph, leader, eps)
        sim.charge_rounds(
            len(leaders) * sssp_round_cost(n, eps),
            f"(1+eps)-SSSP from {len(leaders)} cluster leaders",
            "Theorem 13 via Theorem 6",
        )

        # Every node learns its x-hop neighborhood, x = 4 NQ_n ceil(log n)/eps.
        x = int(math.ceil(4 * nq * log_n / eps))
        sim.charge_rounds(x, "x-hop local neighborhood exploration", "Theorem 6")
        hop_tables: Dict[Node, Dict[Node, int]] = {
            v: hop_distances_from(graph, v) for v in sim.nodes
        }

        # Every node broadcasts (closest leader, distance) — n messages, Theorem 1.
        closest_leader: Dict[Node, Tuple[Node, int]] = {}
        for v in sim.nodes:
            hops = hop_tables[v]
            best = min(leaders, key=lambda r: (hops.get(r, math.inf), str(r)))
            closest_leader[v] = (best, hops.get(best, math.inf))
        sim.charge_rounds(
            nq * log_n,
            "broadcast of every node's closest cluster leader and distance",
            "Theorem 1 via Theorem 6",
        )

        # The Algorithm 3 estimate.
        estimates: Dict[Node, Dict[Node, float]] = {}
        for v in sim.nodes:
            hops_v = hop_tables[v]
            row: Dict[Node, float] = {}
            for w in sim.nodes:
                direct = hops_v.get(w, math.inf)
                if direct <= x:
                    row[w] = float(direct)
                else:
                    c_w, d_w_cw = closest_leader[w]
                    row[w] = leader_estimates[c_w].get(v, math.inf) + d_w_cw
            estimates[v] = row

        # eps' = 3 eps + eps^2 per the Theorem 6 analysis.
        stretch = 1.0 + 3 * eps + eps * eps
        return DistanceTable(
            estimates=estimates, stretch_bound=stretch, metrics=sim.metrics, nq=nq
        )


# ----------------------------------------------------------------------
# Theorem 7: deterministic weighted APSP via a spanner
# ----------------------------------------------------------------------
class SpannerAPSP:
    """Theorem 7: (1 + eps log n)-approximate weighted APSP in
    ``eO(2^{1/eps} NQ_n)`` rounds by broadcasting a ``(2t-1)``-spanner."""

    def __init__(self, simulator: HybridSimulator, *, epsilon: float = 0.5) -> None:
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        self.simulator = simulator
        self.epsilon = epsilon

    def run(self) -> DistanceTable:
        sim = self.simulator
        graph = sim.graph
        n = sim.n
        log_n = log2_ceil(max(n, 2))
        t = max(1, int(math.ceil(self.epsilon * log_n / 2)))

        spanner = distributed_spanner(sim, t)
        spanner_edges = spanner.number_of_edges()

        # Broadcast the m* spanner edges (Theorem 1 with k = m*).  Both NQ
        # evaluations in this method hit the per-(graph, k) memo on repeat
        # runs over the same instance (the Table 2 sweep does exactly that).
        nq_mstar = max(1, neighborhood_quality(graph, max(spanner_edges, 1)))
        sim.charge_rounds(
            nq_mstar * log_n,
            f"broadcast of the {spanner_edges}-edge spanner",
            "Theorem 1 via Theorem 7",
        )

        # Every node locally computes APSP on the (now globally known) spanner.
        estimates: Dict[Node, Dict[Node, float]] = {}
        for source in sim.nodes:
            estimates[source] = nx.single_source_dijkstra_path_length(
                spanner, source, weight="weight"
            )

        stretch = float(2 * t - 1)
        table = DistanceTable(
            estimates=estimates,
            stretch_bound=stretch,
            metrics=sim.metrics,
            nq=neighborhood_quality(graph, n),
        )
        return table


# ----------------------------------------------------------------------
# Theorem 8: randomized weighted APSP via skeleton + spanner
# ----------------------------------------------------------------------
class SkeletonAPSP:
    """Theorem 8 / Algorithm 4: (4 alpha - 1)-approximate weighted APSP."""

    def __init__(
        self,
        simulator: HybridSimulator,
        *,
        alpha: int = 1,
        seed: Optional[int] = None,
    ) -> None:
        if alpha < 1:
            raise ValueError("alpha must be a positive integer")
        self.simulator = simulator
        self.alpha = alpha
        self.seed = seed

    def run(self) -> DistanceTable:
        sim = self.simulator
        graph = sim.graph
        n = sim.n
        log_n = log2_ceil(max(n, 2))
        alpha = self.alpha

        nq = max(1, neighborhood_quality(graph, n))
        sim.charge_rounds(nq * log_n, "broadcast of all node identifiers", "Theorem 1")
        sim.charge_rounds(nq, "distributed computation of NQ_n", "Lemma 3.3")

        # t = n^{1/(3a+1)} * NQ_n^{2/(3+1/a)}.
        t = max(
            1,
            int(
                round(
                    n ** (1.0 / (3 * alpha + 1)) * nq ** (2.0 / (3 + 1.0 / alpha))
                )
            ),
        )
        sampling_probability = min(1.0, 1.0 / t)
        skeleton = build_skeleton(graph, sampling_probability, seed=self.seed)
        sim.charge_rounds(skeleton.h, "skeleton construction", "Lemma 6.3 via Theorem 8")

        # (2 alpha - 1)-spanner of the skeleton, broadcast to everyone.
        spanner = greedy_spanner(skeleton.graph, alpha)
        sim.charge_rounds(
            alpha * log_n * max(1, skeleton.h),
            "spanner construction on the skeleton (simulated over local paths)",
            "Lemma 6.1 via Theorem 8",
        )
        spanner_edges = max(1, spanner.number_of_edges())
        nq_x = max(1, neighborhood_quality(graph, max(spanner_edges, n)))
        sim.charge_rounds(
            nq_x * log_n,
            f"broadcast of the {spanner_edges}-edge skeleton spanner",
            "Theorem 1 via Theorem 8",
        )
        skeleton_estimates: Dict[Node, Dict[Node, float]] = {
            s: nx.single_source_dijkstra_path_length(spanner, s, weight="weight")
            for s in skeleton.skeleton_nodes
        }

        # Every node learns its h-hop neighborhood and its closest skeleton node.
        h = skeleton.h
        sim.charge_rounds(h, "h-hop local neighborhood exploration", "Theorem 8")
        limited: Dict[Node, Dict[Node, float]] = {
            v: h_hop_limited_distances(graph, v, h) for v in sim.nodes
        }
        skeleton_set = set(skeleton.skeleton_nodes)
        closest_skeleton: Dict[Node, Tuple[Node, float]] = {}
        for v in sim.nodes:
            candidates = {u: d for u, d in limited[v].items() if u in skeleton_set}
            if not candidates:
                full = nx.single_source_dijkstra_path_length(graph, v, weight="weight")
                candidates = {u: d for u, d in full.items() if u in skeleton_set}
            best, dist = min(candidates.items(), key=lambda kv: (kv[1], str(kv[0])))
            closest_skeleton[v] = (best, dist)
        sim.charge_rounds(
            nq * log_n,
            "broadcast of every node's closest skeleton node and distance",
            "Theorem 1 via Theorem 8",
        )

        # Algorithm 4 estimate.
        estimates: Dict[Node, Dict[Node, float]] = {}
        for v in sim.nodes:
            v_s, d_v_vs = closest_skeleton[v]
            row: Dict[Node, float] = {}
            for w in sim.nodes:
                direct = limited[v].get(w, math.inf)
                w_s, d_w_ws = closest_skeleton[w]
                via = (
                    d_v_vs
                    + skeleton_estimates.get(v_s, {}).get(w_s, math.inf)
                    + d_w_ws
                )
                row[w] = min(direct, via)
            estimates[v] = row

        stretch = float(4 * alpha - 1)
        return DistanceTable(
            estimates=estimates, stretch_bound=stretch, metrics=sim.metrics, nq=nq
        )
