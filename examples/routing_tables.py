"""Scenario: building approximate routing tables in a hybrid WAN.

The paper motivates shortest-paths computation as the backbone of IP routing
table maintenance.  This example models a wide-area network as a random
geometric graph (routers connected to nearby routers by fibre, plus a shared
low-bandwidth satellite/cellular channel as the global mode) and builds the
distance information routing needs three different ways:

* a handful of gateway routers learn their distance to every other router with
  the (k, l)-SP algorithm of Theorem 5,
* every router learns approximate distances to every other router with the
  spanner-based weighted APSP of Theorem 7, and
* the same task via the skeleton-based APSP of Theorem 8, trading a worse
  stretch for fewer rounds on low-NQ graphs.

All outputs are verified against Dijkstra ground truth and the measured stretch
and rounds are printed next to the existential sqrt(n) baseline.

Run with ``python examples/routing_tables.py``.
"""

from __future__ import annotations

import random

import networkx as nx

from repro import HybridSimulator, ModelConfig, SkeletonAPSP, SpannerAPSP, neighborhood_quality
from repro.core.shortest_paths import KLShortestPaths
from repro.baselines.centralized import exact_apsp, max_stretch_of_table
from repro.baselines.existential import ExistentialBounds
from repro.graphs import GraphSpec, generate_graph
from repro.graphs.weighted import assign_random_weights


def build_wan(seed: int = 7):
    """A 90-router geometric network with link latencies 1..20."""
    spec = GraphSpec.of("geometric", n=90, radius=0.22, seed=seed)
    graph = assign_random_weights(generate_graph(spec), max_weight=20, seed=seed)
    return spec, graph


def gateway_tables(graph, seed: int) -> None:
    """A few gateways learn distances to a set of monitored prefixes (Theorem 5)."""
    rng = random.Random(seed)
    routers = sorted(graph.nodes)
    prefix_holders = rng.sample(routers, 8)  # sources: routers announcing prefixes
    gateways = rng.sample(routers, 3)  # targets: gateways that need the distances

    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=seed)
    table = KLShortestPaths(sim, prefix_holders, gateways, epsilon=0.25, seed=seed).run()

    truth = {
        gw: nx.single_source_dijkstra_path_length(graph, gw, weight="weight")
        for gw in gateways
    }
    pairs = [(gw, src) for gw in gateways for src in prefix_holders]
    stretch = max_stretch_of_table(truth, table.estimates, pairs=pairs)
    print(
        f"  gateway tables (Thm 5, {len(prefix_holders)} prefixes x {len(gateways)} gateways): "
        f"{sim.metrics.total_rounds} rounds, stretch {stretch:.3f} <= 1.25"
    )


def full_tables_via_spanner(graph, seed: int) -> None:
    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    table = SpannerAPSP(sim, epsilon=0.5).run()
    stretch = max_stretch_of_table(exact_apsp(graph), table.estimates)
    print(
        f"  full tables via spanner (Thm 7): {sim.metrics.total_rounds} rounds, "
        f"stretch {stretch:.2f} <= {table.stretch_bound:.0f}"
    )


def full_tables_via_skeleton(graph, seed: int) -> None:
    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    table = SkeletonAPSP(sim, alpha=1, seed=seed).run()
    stretch = max_stretch_of_table(exact_apsp(graph), table.estimates)
    print(
        f"  full tables via skeleton (Thm 8): {sim.metrics.total_rounds} rounds, "
        f"stretch {stretch:.2f} <= {table.stretch_bound:.0f}"
    )


def main() -> None:
    spec, graph = build_wan()
    n = graph.number_of_nodes()
    nq = neighborhood_quality(graph, n)
    print(f"WAN: {spec.label()}, {n} routers, NQ_n = {nq}")
    print(
        f"existential baseline for APSP: ~ sqrt(n) = "
        f"{ExistentialBounds.apsp_sqrt_n(n):.1f} rounds x polylog"
    )
    gateway_tables(graph, seed=11)
    full_tables_via_spanner(graph, seed=11)
    full_tables_via_skeleton(graph, seed=11)


if __name__ == "__main__":
    main()
