"""Shared helpers for the benchmark harness.

Every benchmark regenerates one of the paper's tables or figures.  The raw rows
are rendered as ASCII tables and written to ``benchmarks/results/`` (and echoed
to stdout) so that ``pytest benchmarks/ --benchmark-only | tee bench_output.txt``
leaves a self-contained record; EXPERIMENTS.md summarises the same data.
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Sequence

import pytest

from repro.analysis.tables import ExperimentRow, render_table, rows_to_markdown

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    return RESULTS_DIR


@pytest.fixture(scope="session")
def save_table(results_dir):
    """Persist a list of row dicts as an ASCII table (and echo it)."""

    def _save(name: str, rows: Sequence[Dict], title: str) -> str:
        experiment_rows = [ExperimentRow(dict(row)) for row in rows]
        text = render_table(experiment_rows, title=title)
        markdown = rows_to_markdown(experiment_rows, title=title)
        path = results_dir / f"{name}.txt"
        path.write_text(text + "\n")
        (results_dir / f"{name}.md").write_text(markdown + "\n")
        print("\n" + text)
        return text

    return _save
