"""Existentially optimal k-source shortest paths (Section 9, Theorem 14).

Theorem 14: in HYBRID(infinity, gamma), k-SSP can be approximated w.h.p.

* with stretch 1+eps in ``eO(sqrt(k) / eps^2)`` rounds when the sources are
  sampled with probability ``k/n`` (standard HYBRID),
* with stretch 3+eps in ``eO(sqrt(k / gamma) / eps^2)`` rounds for arbitrary
  sources,
* with stretch 1+eps in ``eO(1/eps^2)`` rounds for ``k <= gamma`` arbitrary
  sources.

The algorithm (Lemmas 9.3, 9.4):

1. build a skeleton graph with sampling probability ``sqrt(gamma / k)``
   (Definition 6.2); for the random-sources case the sources are added to the
   skeleton,
2. compute classic helper sets (Definition 9.1) and schedule one Theorem 13
   SSSP instance per source on the skeleton, all in parallel, with each helper
   simulating ``eO(sqrt(k * gamma))`` instances — total
   ``eO(sqrt(k / gamma) * T_SSSP)`` rounds (Lemma 9.3, charged),
3. every node learns its ``h``-hop limited distances to nearby skeleton nodes
   over the local mode (``h`` rounds, charged) and combines them with the
   skeleton estimates (Lemma 9.4); for arbitrary sources the sources first tag
   *proxy sources* on the skeleton and broadcast the proxy offsets
   (k-dissemination, Theorem 1, charged).

The skeleton construction, the per-source skeleton SSSP estimates, the h-hop
limited local distances, and the combination formulas are all computed for
real (they produce genuinely approximate distances whose stretch the tests
check against Dijkstra ground truth); the parallel-scheduling round cost is
charged per Lemma 9.3.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Dict, Hashable, Iterable, List, Optional, Sequence, Tuple

import networkx as nx

from repro.core.helper_sets import compute_classic_helper_sets
from repro.core.skeleton import SkeletonGraph, build_skeleton
from repro.core.sssp import approx_sssp_distances, sssp_round_cost
from repro.graphs.properties import h_hop_limited_distances
from repro.simulator.config import log2_ceil
from repro.simulator.metrics import RoundMetrics
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = ["KSPResult", "KSourceShortestPaths", "ksp_round_cost"]


def ksp_round_cost(n: int, k: int, gamma_words: int, epsilon: float) -> int:
    """The Lemma 9.3 / Theorem 14 scheduling cost ``eO(sqrt(k/gamma)/eps^2)``."""
    log_n = log2_ceil(max(n, 2))
    eps = max(epsilon, 1e-9)
    if k <= gamma_words:
        parallel_factor = 1.0
    else:
        parallel_factor = math.sqrt(k / max(1, gamma_words))
    return int(math.ceil(parallel_factor / (eps * eps))) * log_n * log_n


@dataclasses.dataclass
class KSPResult:
    """Outcome of a k-SSP computation."""

    sources: List[Node]
    distances: Dict[Node, Dict[Node, float]]
    stretch_bound: float
    epsilon: float
    skeleton: SkeletonGraph
    proxy_of: Dict[Node, Node]
    metrics: RoundMetrics

    def estimate(self, node: Node, source: Node) -> float:
        return self.distances.get(node, {}).get(source, math.inf)


class KSourceShortestPaths:
    """Theorem 14: approximate k-SSP via parallel SSSP scheduling on a skeleton.

    Parameters
    ----------
    simulator: the network.
    sources: the k source nodes.
    epsilon: approximation parameter of the underlying SSSP instances.
    sources_in_skeleton: set True for the "random sources" case (the sources are
        forced into the skeleton, giving stretch 1+eps); False for arbitrary
        sources routed through proxy sources (stretch 3+eps).
    gamma_words: the per-node global capacity in words (defaults to the
        simulator's budget), which controls the skeleton density and the
        scheduling cost — this is the ``HYBRID(infinity, gamma)`` knob of
        Theorem 14.
    seed: randomness for the skeleton sampling and helper sets.
    """

    def __init__(
        self,
        simulator: HybridSimulator,
        sources: Sequence[Node],
        *,
        epsilon: float = 0.25,
        sources_in_skeleton: bool = True,
        gamma_words: Optional[int] = None,
        seed: Optional[int] = None,
    ) -> None:
        if not sources:
            raise ValueError("sources must be non-empty")
        if epsilon <= 0:
            raise ValueError("epsilon must be positive")
        node_set = set(simulator.nodes)
        for source in sources:
            if source not in node_set:
                raise KeyError(f"source {source!r} is not a node of the network")
        self.simulator = simulator
        self.sources = sorted(set(sources), key=simulator.id_of)
        self.epsilon = epsilon
        self.sources_in_skeleton = sources_in_skeleton
        self.gamma_words = (
            gamma_words if gamma_words is not None else simulator.global_budget_words()
        )
        self.seed = seed

    # ------------------------------------------------------------------
    def run(self) -> KSPResult:
        sim = self.simulator
        graph = sim.graph
        n = sim.n
        k = len(self.sources)
        log_n = log2_ceil(max(n, 2))

        # Step 1: skeleton with sampling probability sqrt(gamma / k).
        probability = min(1.0, math.sqrt(self.gamma_words / max(k, 1)))
        forced = self.sources if self.sources_in_skeleton else None
        skeleton = build_skeleton(
            graph, probability, seed=self.seed, forced_nodes=forced
        )
        sim.charge_rounds(
            skeleton.h,
            "skeleton construction (h-hop local exploration)",
            "Definition 6.2 / Lemma 6.3",
        )

        # Step 2: helper sets + parallel SSSP scheduling on the skeleton.
        x = max(1, int(round(1.0 / probability)))
        compute_classic_helper_sets(graph, skeleton.skeleton_nodes, x, seed=self.seed)
        sim.charge_rounds(
            2 * x * log_n,
            "classic helper-set computation for skeleton nodes",
            "Definition 9.1 / Lemma 9.2",
        )

        # Proxy sources: for arbitrary sources, each source tags the closest
        # skeleton node within h hops (Lemma 6.3 guarantees one exists w.h.p.).
        proxy_of: Dict[Node, Node] = {}
        proxy_offset: Dict[Node, float] = {}
        h = skeleton.h
        skeleton_set = set(skeleton.skeleton_nodes)
        for source in self.sources:
            if source in skeleton_set:
                proxy_of[source] = source
                proxy_offset[source] = 0.0
                continue
            limited = h_hop_limited_distances(graph, source, h)
            candidates = {
                node: dist for node, dist in limited.items() if node in skeleton_set
            }
            if not candidates:
                # Fall back to the globally closest skeleton node (can only
                # happen on tiny or pathological instances).
                full = nx.single_source_dijkstra_path_length(graph, source, weight="weight")
                candidates = {
                    node: dist for node, dist in full.items() if node in skeleton_set
                }
            proxy, offset = min(candidates.items(), key=lambda kv: (kv[1], str(kv[0])))
            proxy_of[source] = proxy
            proxy_offset[source] = offset
        if not self.sources_in_skeleton:
            # The proxy offsets d^h(u_s, s) are made public with Theorem 1.
            sim.charge_rounds(
                max(1, int(math.ceil(math.sqrt(k)))) * log_n,
                "broadcasting proxy-source offsets (k-dissemination)",
                "Theorem 14 via Theorem 1",
            )

        # One SSSP per (proxy) source on the skeleton, scheduled in parallel
        # (Lemma 9.3); the estimates are computed for real, the scheduling
        # rounds are charged.
        proxies = sorted({proxy_of[source] for source in self.sources}, key=str)
        skeleton_estimates: Dict[Node, Dict[Node, float]] = {}
        for proxy in proxies:
            skeleton_estimates[proxy] = approx_sssp_distances(
                skeleton.graph, proxy, self.epsilon
            )
        sim.charge_rounds(
            ksp_round_cost(n, k, self.gamma_words, self.epsilon),
            f"parallel scheduling of {len(proxies)} SSSP instances on the skeleton",
            "Lemma 9.3 / Theorem 14",
        )

        # Step 3: every node combines its h-hop limited distances to nearby
        # skeleton nodes with the skeleton estimates (Lemma 9.4 / Theorem 14).
        sim.charge_rounds(
            h,
            "h-hop limited distance computation over the local mode",
            "Lemma 9.4",
        )
        distances: Dict[Node, Dict[Node, float]] = {}
        limited_from_node: Dict[Node, Dict[Node, float]] = {}
        for node in sim.nodes:
            limited_from_node[node] = h_hop_limited_distances(graph, node, h)
        for node in sim.nodes:
            limited = limited_from_node[node]
            nearby_skeleton = [u for u in limited if u in skeleton_set]
            per_source: Dict[Node, float] = {}
            for source in self.sources:
                proxy = proxy_of[source]
                offset = proxy_offset[source]
                best = limited.get(source, math.inf)
                for u in nearby_skeleton:
                    via = limited[u] + skeleton_estimates[proxy].get(u, math.inf) + offset
                    if via < best:
                        best = via
                per_source[source] = best
            distances[node] = per_source

        stretch_bound = (1.0 + self.epsilon) if self.sources_in_skeleton else (3.0 + 3 * self.epsilon)
        return KSPResult(
            sources=list(self.sources),
            distances=distances,
            stretch_bound=stretch_bound,
            epsilon=self.epsilon,
            skeleton=skeleton,
            proxy_of=proxy_of,
            metrics=sim.metrics,
        )
