"""Identifier-knowledge tracking for HYBRID_0.

In HYBRID_0 (Section 1.3) a node may only address global messages to nodes whose
identifiers it *knows*; initially it knows its own identifier and those of its
graph neighbors.  Knowledge grows when a node receives a message whose payload
contains identifiers (the application must declare them) or simply by having
exchanged a message with a node (sender identifiers are always learned).

The tracker is deliberately explicit: algorithms call
``simulator.declare_learned_ids(node, ids)`` when a received payload taught the
node new identifiers (e.g. the broadcast of all identifiers used as a
preprocessing step in Theorem 1's corollary).  Sending to an unknown identifier
raises :class:`~repro.simulator.errors.UnknownIdentifierError`.

Representation: each node's knowledge is a *personal* mutable set plus a list
of **shared frozensets** appended by :meth:`KnowledgeTracker.learn_shared` —
the broadcast idiom ("every cluster member learns all leader identifiers",
"everyone knows everything" in the dense regime) stores one frozenset object
referenced by every learner instead of copying it into n per-node sets, which
keeps the bookkeeping O(n) instead of O(n * |ids|) in both time and memory.
The bulk plane-delivery path adds a third layer, **packed** per-node sorted
``int64`` identifier arrays (:meth:`KnowledgeTracker.learn_known_array`):
sender-id learning at n ~ 10^6..10^7 is dominated by Python ``set`` inserts
of boxed ints, while merging sorted arrays is a C-speed operation an order of
magnitude cheaper in both time and memory.  Each node keeps a big snapshot
array plus a small recent buffer merged geometrically (recent >= 1/4 of the
snapshot), so total re-sorting stays linearithmic however ids trickle in.
Membership checks probe the personal set first, then the (short) shared
list, then the packed levels by bisection; :meth:`known_ids` materialises
the union of all three layers on demand.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, FrozenSet, Hashable, Iterable, List, Set

from repro.simulator import _accel
from repro.simulator.errors import UnknownNodeError

__all__ = ["KnowledgeTracker"]


def _in_packed(levels, target) -> bool:
    """Bisection probe of the packed levels (backend-agnostic: ``bisect``
    works on NumPy arrays through ``__getitem__``, so probes keep working
    even if the accelerator gate is switched off after arrays were stored)."""
    for level in levels:
        if len(level):
            slot = bisect_left(level, target)
            if slot < len(level) and level[slot] == target:
                return True
    return False


class _KnownView:
    """Read-only membership view over a personal set, shared frozensets and
    packed identifier arrays."""

    __slots__ = ("_personal", "_shared", "_packed")

    def __init__(self, personal, shared, packed=()) -> None:
        self._personal = personal
        self._shared = shared
        self._packed = packed

    def __contains__(self, target: Hashable) -> bool:
        if target in self._personal:
            return True
        for ids in self._shared:
            if target in ids:
                return True
        return _in_packed(self._packed, target)


class KnowledgeTracker:
    """Tracks, per node, the set of identifiers the node currently knows."""

    def __init__(self, all_ids: Iterable[Hashable]) -> None:
        self._all_ids: Set[Hashable] = set(all_ids)
        self._known: Dict[Hashable, Set[Hashable]] = {}
        self._shared: Dict[Hashable, List[FrozenSet[Hashable]]] = {}
        #: Packed layer: per-node sorted int64 identifier arrays — a big
        #: snapshot plus a small recent buffer (see the module docstring).
        self._packed: Dict[Hashable, object] = {}
        self._packed_recent: Dict[Hashable, object] = {}

    def initialize_node(self, node_id: Hashable, neighbor_ids: Iterable[Hashable]) -> None:
        """A node starts knowing its own identifier and its neighbors' (Section 1.3)."""
        self._validate(node_id)
        known = {node_id}
        known.update(neighbor_ids)
        self._known[node_id] = known

    def initialize_all_known(self) -> None:
        """HYBRID (dense regime): every node knows every identifier from the start.

        One shared frozenset referenced by all nodes — O(n), not O(n^2).
        """
        universe = frozenset(self._all_ids)
        for node_id in self._all_ids:
            self._shared[node_id] = [universe]

    def _packed_levels(self, node_id: Hashable):
        """The node's packed arrays as a (possibly empty) tuple of levels."""
        snapshot = self._packed.get(node_id)
        recent = self._packed_recent.get(node_id)
        if snapshot is None:
            return () if recent is None else (recent,)
        return (snapshot,) if recent is None else (snapshot, recent)

    def knows(self, node_id: Hashable, target_id: Hashable) -> bool:
        self._validate(node_id)
        if target_id in self._known.get(node_id, ()):
            return True
        for ids in self._shared.get(node_id, ()):
            if target_id in ids:
                return True
        return _in_packed(self._packed_levels(node_id), target_id)

    def known_ids(self, node_id: Hashable) -> Set[Hashable]:
        self._validate(node_id)
        result = set(self._known.get(node_id, ()))
        for ids in self._shared.get(node_id, ()):
            result |= ids
        for level in self._packed_levels(node_id):
            result.update(level.tolist() if hasattr(level, "tolist") else level)
        return result

    def known_ids_view(self, node_id: Hashable):
        """The node's knowledge *without* a defensive copy.

        Used by the batch send paths, which probe membership once per queued
        message (or unique pair); supports only the ``in`` operator and must
        be treated as read-only.  Returns the personal set itself when the
        node has no shared or packed knowledge.
        """
        self._validate(node_id)
        shared = self._shared.get(node_id)
        personal = self._known.get(node_id, set())
        packed = self._packed_levels(node_id)
        if not shared and not packed:
            return personal
        return _KnownView(personal, shared or (), packed)

    def learn(self, node_id: Hashable, new_ids: Iterable[Hashable]) -> None:
        """Record that ``node_id`` learned the identifiers in ``new_ids``.

        Identifiers that do not exist in the network are ignored (a node may be
        told about identifiers that turn out to be bogus; it simply cannot reach
        anyone with them).
        """
        self._validate(node_id)
        bucket = self._known.setdefault(node_id, {node_id})
        if not isinstance(new_ids, (set, frozenset)):
            new_ids = set(new_ids)
        bucket |= new_ids & self._all_ids

    def learn_known(self, node_id: Hashable, new_ids: Iterable[Hashable]) -> None:
        """:meth:`learn` for identifier collections already known to be valid.

        The bulk plane paths derive both arguments from the simulator's own
        identifier table, so the existence validation and the bogus-id
        intersection of :meth:`learn` would be pure overhead on the hot path.
        """
        self._known.setdefault(node_id, {node_id}).update(new_ids)

    def learn_known_array(self, node_id: Hashable, new_ids) -> None:
        """:meth:`learn_known` for a **sorted** int64 NumPy array of valid ids.

        The bulk plane-delivery path learns sender identifiers as array
        slices; folding them into per-node sorted arrays replaces millions of
        boxed-int ``set`` inserts with C-speed merges.  Two levels per node —
        a big snapshot and a recent buffer, merged geometrically (recent >=
        1/4 of the snapshot) — keep total re-sorting linearithmic.  The array
        is stored by reference: callers must not mutate it afterwards.
        Duplicates across layers are harmless (membership is a disjunction,
        :meth:`known_ids` a union).
        """
        np = _accel.np
        if np is None:  # gate off: degrade to the set layer, same semantics
            self.learn_known(
                node_id,
                new_ids.tolist() if hasattr(new_ids, "tolist") else new_ids,
            )
            return
        recent = self._packed_recent.get(node_id)
        if recent is not None and len(recent):
            recent = np.concatenate((recent, new_ids))
            recent.sort()
        else:
            recent = new_ids
        snapshot = self._packed.get(node_id)
        if snapshot is None or 4 * len(recent) >= len(snapshot):
            if snapshot is not None and len(snapshot):
                snapshot = np.concatenate((snapshot, recent))
                snapshot.sort()
            else:
                snapshot = recent
            self._packed[node_id] = snapshot
            self._packed_recent.pop(node_id, None)
        else:
            self._packed_recent[node_id] = recent

    def packed_known_mask(self, np, node_id: Hashable, targets):
        """Boolean mask: which ``targets`` the *packed* layer alone knows.

        A vectorised pre-filter for grouped HYBRID_0 validation: the caller
        probes the personal/shared layers only for the ``False`` entries.
        ``targets`` is an int64 array; probes are one ``searchsorted`` sweep
        per packed level.
        """
        mask = np.zeros(len(targets), dtype=bool)
        for level in self._packed_levels(node_id):
            if len(level):
                slots = np.searchsorted(level, targets)
                slots[slots == len(level)] = 0
                mask |= level[slots] == targets
        return mask

    def learn_shared(
        self, node_ids: Iterable[Hashable], ids: FrozenSet[Hashable]
    ) -> None:
        """Every node in ``node_ids`` learns the same (validated) frozenset.

        Stored by reference — one append per learner, however large ``ids``
        is.  The caller is responsible for filtering bogus identifiers (see
        :meth:`valid_ids`) and for not mutating the set afterwards.
        """
        shared = self._shared
        for node_id in node_ids:
            shared.setdefault(node_id, []).append(ids)

    def valid_ids(self, ids: Iterable[Hashable]) -> Set[Hashable]:
        """The subset of ``ids`` that exist in the network.

        Lets a bulk caller apply :meth:`learn`'s bogus-id filtering once per
        shared identifier set instead of once per learning node (pair with
        :meth:`learn_known` / :meth:`learn_shared`).
        """
        if not isinstance(ids, (set, frozenset)):
            ids = set(ids)
        return ids & self._all_ids

    def knowledge_count(self, node_id: Hashable) -> int:
        return len(self.known_ids(node_id))

    def _validate(self, node_id: Hashable) -> None:
        if node_id not in self._all_ids:
            raise UnknownNodeError(node_id)
