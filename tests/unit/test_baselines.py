"""Unit tests for the baselines: centralized references, analytic existential
bounds, and the simulatable naive algorithms."""

import math
import random

import pytest

from repro.baselines.centralized import (
    exact_apsp,
    exact_hop_apsp,
    exact_sssp,
    max_stretch_of_table,
    measure_stretch,
)
from repro.baselines.existential import ExistentialBounds
from repro.baselines.naive import (
    LocalFloodingBroadcast,
    NaiveGlobalBroadcast,
    SqrtNSkeletonAPSP,
)
from repro.graphs.generators import grid_graph, path_graph, star_graph
from repro.graphs.properties import diameter
from repro.graphs.weighted import assign_random_weights, unit_weights
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator


class TestCentralizedReferences:
    def test_exact_sssp_matches_hops_on_unweighted(self):
        g = path_graph(10)
        dist = exact_sssp(g, 0)
        assert dist[9] == 9

    def test_exact_apsp_symmetry(self):
        g = assign_random_weights(grid_graph(4, 2), max_weight=5, seed=0)
        apsp = exact_apsp(g)
        assert apsp[0][15] == apsp[15][0]

    def test_hop_apsp(self):
        g = star_graph(6)
        hops = exact_hop_apsp(g)
        assert hops[1][2] == 2

    def test_measure_stretch(self):
        assert measure_stretch(4.0, 6.0) == pytest.approx(1.5)
        assert measure_stretch(0.0, 0.0) == 1.0
        assert measure_stretch(0.0, 1.0) == math.inf
        assert measure_stretch(2.0, None) == math.inf

    def test_max_stretch_of_table(self):
        truth = {0: {1: 2.0, 2: 4.0}}
        estimates = {0: {1: 3.0, 2: 4.0}}
        assert max_stretch_of_table(truth, estimates) == pytest.approx(1.5)

    def test_max_stretch_rejects_underestimates(self):
        truth = {0: {1: 2.0}}
        estimates = {0: {1: 1.0}}
        with pytest.raises(AssertionError):
            max_stretch_of_table(truth, estimates)


class TestExistentialBounds:
    def test_broadcast_bound(self):
        assert ExistentialBounds.broadcast_ahk20(100, 64) == pytest.approx(9.0)

    def test_unicast_bound(self):
        assert ExistentialBounds.unicast_ks20(100, 25, 4) == pytest.approx(6.0)

    def test_apsp_bound(self):
        assert ExistentialBounds.apsp_sqrt_n(400) == pytest.approx(20.0)

    def test_ksp_bounds_monotone_in_k(self):
        assert ExistentialBounds.ksp_this_work(16) < ExistentialBounds.ksp_this_work(64)
        assert ExistentialBounds.ksp_chlp21(1000, 4) > ExistentialBounds.ksp_this_work(4)

    def test_sssp_bounds_ordering(self):
        # For large n the new polylog bound beats every prior polynomial bound.
        n = 10**8
        new = ExistentialBounds.sssp_this_work(n, 0.5)
        assert new < ExistentialBounds.sssp_chlp21(n)
        assert new < ExistentialBounds.sssp_ag21(n)

    def test_universal_bound_sandwich(self):
        nq, n = 10, 1000
        assert ExistentialBounds.universal_lower_bound(nq, n) <= nq
        assert ExistentialBounds.universal_upper_bound(nq, n) >= nq


class TestLocalFloodingBroadcast:
    def test_all_tokens_delivered(self):
        g = grid_graph(5, 2)
        sim = HybridSimulator(g, ModelConfig.local(), seed=0)
        outcome = LocalFloodingBroadcast(sim, {0: ["a", "b"], 24: ["c"]}).run()
        assert outcome.all_nodes_know_all_tokens()

    def test_round_count_close_to_eccentricity(self):
        g = path_graph(30)
        sim = HybridSimulator(g, ModelConfig.local(), seed=0)
        outcome = LocalFloodingBroadcast(sim, {0: ["x"]}).run()
        assert outcome.all_nodes_know_all_tokens()
        assert sim.metrics.measured_rounds == diameter(g)

    def test_empty_tokens(self):
        g = path_graph(5)
        sim = HybridSimulator(g, ModelConfig.local(), seed=0)
        outcome = LocalFloodingBroadcast(sim, {}).run()
        assert outcome.tokens == set()


class TestNaiveGlobalBroadcast:
    def test_all_tokens_delivered(self):
        g = path_graph(20)
        sim = HybridSimulator(g, ModelConfig.hybrid(), seed=0)
        tokens = {0: [("t", i) for i in range(5)]}
        outcome = NaiveGlobalBroadcast(sim, tokens).run()
        assert outcome.all_nodes_know_all_tokens()
        assert sim.metrics.capacity_violations == 0

    def test_rounds_grow_linearly_in_k(self):
        g = path_graph(20)
        costs = []
        for k in (4, 16):
            sim = HybridSimulator(g, ModelConfig.hybrid(), seed=0)
            NaiveGlobalBroadcast(sim, {0: [("t", i) for i in range(k)]}).run()
            costs.append(sim.metrics.measured_rounds)
        assert costs[1] >= 2 * costs[0]

    def test_batch_and_legacy_engines_agree_exactly(self):
        g = grid_graph(4, 2)
        tokens = {0: [("t", i) for i in range(6)], 9: [("u", i) for i in range(3)]}

        def run(engine):
            sim = HybridSimulator(g, ModelConfig.hybrid(), seed=0)
            return NaiveGlobalBroadcast(sim, tokens, engine=engine).run()

        batch, legacy = run("batch"), run("legacy")
        assert batch.known_tokens == legacy.known_tokens
        assert batch.metrics.summary() == legacy.metrics.summary()
        assert batch.all_nodes_know_all_tokens()

    def test_rejects_unknown_engine(self):
        sim = HybridSimulator(path_graph(4), ModelConfig.hybrid(), seed=0)
        with pytest.raises(ValueError):
            NaiveGlobalBroadcast(sim, {0: ["x"]}, engine="bogus")


class TestSqrtNSkeletonAPSP:
    def test_exact_on_small_weighted_grid(self):
        g = assign_random_weights(grid_graph(4, 2), max_weight=4, seed=1)
        sim = HybridSimulator(g, ModelConfig.hybrid(), seed=1)
        table = SqrtNSkeletonAPSP(sim, seed=1).run()
        truth = exact_apsp(g)
        stretch = max_stretch_of_table(truth, table.estimates)
        assert stretch == pytest.approx(1.0)

    def test_charges_sqrt_n_order_rounds(self):
        g = path_graph(36)
        sim = HybridSimulator(g, ModelConfig.hybrid(), seed=2)
        SqrtNSkeletonAPSP(sim, seed=2).run()
        assert sim.metrics.charged_rounds >= math.sqrt(36)
