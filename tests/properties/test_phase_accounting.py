"""Phase accounting and lazy-table invariants.

Two families of properties:

* **Phase-log conservation** — :attr:`BatchAlgorithm.phase_log` records
  per-phase *deltas*; summed over a whole run they must reproduce the
  simulator's final :class:`RoundMetrics` totals exactly, on every engine
  (``batch``, ``batch-reference``, ``legacy``), so no round, charge, or
  message is ever accounted outside a named phase.
* **Lazy all-pairs tables** — the lazy ``SkeletonAPSP`` /
  ``SqrtNSkeletonAPSP`` / ``KSourceShortestPaths`` assemblies moved only the
  table *construction* to first use: round/charge totals are pinned to the
  values the eager dict-of-dicts implementations produced, reading rows moves
  no metrics, and row-factory call counting proves no eager n^2 table is
  built behind the consumer's back.
"""

import math
from array import array

import pytest

from repro.baselines.naive import SqrtNSkeletonAPSP
from repro.core.dissemination import KDissemination
from repro.core.ksp import KSourceShortestPaths
from repro.core.shortest_paths import SkeletonAPSP
from repro.graphs.generators import (
    broom_graph,
    erdos_renyi_graph,
    grid_graph,
    path_graph,
)
from repro.graphs.weighted import assign_random_weights
from repro.simulator.config import ModelConfig
from repro.simulator.network import HybridSimulator

ENGINES = ("batch", "batch-reference", "legacy")

GRAPH_FAMILIES = {
    "path": lambda seed: path_graph(24),
    "grid": lambda seed: grid_graph(5, 2),
    "broom": lambda seed: broom_graph(14, 8),
    "erdos_renyi": lambda seed: erdos_renyi_graph(24, 0.15, seed=seed),
}

CASES = [(family, seed) for family in sorted(GRAPH_FAMILIES) for seed in (0, 1)]


def _ids(case):
    family, seed = case
    return f"{family}-s{seed}"


def _assert_log_matches_totals(algorithm, metrics):
    log = algorithm.phase_log
    assert [record.name for record in log] == [
        name for name, _ in algorithm.phases()
    ]
    assert sum(r.measured_rounds for r in log) == metrics.measured_rounds
    assert sum(r.charged_rounds for r in log) == metrics.charged_rounds
    assert sum(r.global_messages for r in log) == metrics.global_messages
    assert sum(r.local_messages for r in log) == metrics.local_messages


# ----------------------------------------------------------------------
# phase_log deltas sum to the RoundMetrics totals, on all three engines
# ----------------------------------------------------------------------
@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("case", CASES, ids=_ids)
def test_dissemination_phase_log_sums_to_totals(case, engine):
    family, seed = case
    graph = GRAPH_FAMILIES[family](seed)
    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    tokens = {v: [("acct", sim.id_of(v))] for v in sim.nodes}
    algorithm = KDissemination(sim, tokens, engine=engine)
    algorithm.run()
    _assert_log_matches_totals(algorithm, sim.metrics)


@pytest.mark.parametrize("engine", ENGINES)
@pytest.mark.parametrize("case", CASES[:4], ids=_ids)
def test_skeleton_apsp_phase_log_sums_to_totals(case, engine):
    """Nested KDissemination runs inside phases stay within the phase delta."""
    family, seed = case
    graph = assign_random_weights(GRAPH_FAMILIES[family](seed), max_weight=7, seed=seed)
    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=seed)
    algorithm = SkeletonAPSP(sim, alpha=1, seed=seed, engine=engine)
    algorithm.run()
    _assert_log_matches_totals(algorithm, sim.metrics)


# ----------------------------------------------------------------------
# Lazy tables: pinned rounds/charges, metrics-free reads, lazy row factories
# ----------------------------------------------------------------------
def _count_factory_calls(table):
    calls = {"count": 0}
    inner = table._row_factory

    def wrapped(target):
        calls["count"] += 1
        return inner(target)

    table._row_factory = wrapped
    return calls


def test_skeleton_apsp_rounds_pinned_and_rows_lazy():
    graph = assign_random_weights(grid_graph(5, 2), max_weight=7, seed=3)
    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=3)
    algorithm = SkeletonAPSP(sim, alpha=1, seed=3)
    table = algorithm.run()
    # Laziness moved no rounds and no charges (eager-era pin).
    assert sim.metrics.measured_rounds == 40
    assert sim.metrics.charged_rounds == 2790

    calls = _count_factory_calls(table)
    assert table._rows == {} and calls["count"] == 0  # nothing built eagerly
    assert algorithm._skeleton_rows.rows_computed == 0  # no Dijkstra yet

    nodes = table.targets()
    before = sim.metrics.summary()
    first = table.estimate(nodes[0], nodes[1])
    table.estimate(nodes[0], nodes[2])
    assert calls["count"] == 1  # one row serves both queries
    assert algorithm._skeleton_rows.rows_computed == 1
    assert math.isfinite(first)

    _ = table.estimates  # full materialisation: one factory call per new row
    assert calls["count"] == len(nodes)
    assert sim.metrics.summary() == before  # reading rows moves no metrics


def test_sqrtn_skeleton_apsp_rounds_pinned_and_rows_lazy():
    graph = assign_random_weights(grid_graph(4, 2), max_weight=4, seed=1)
    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=1)
    table = SqrtNSkeletonAPSP(sim, seed=1).run()
    assert sim.metrics.measured_rounds == 0
    assert sim.metrics.charged_rounds == 72

    calls = _count_factory_calls(table)
    assert table._rows == {} and calls["count"] == 0
    target = table.targets()[0]
    row = table.row(target)
    assert table.row(target) is row  # packed and cached, not rebuilt
    assert isinstance(row, array)
    assert calls["count"] == 1


def test_ksp_rounds_pinned_and_skeleton_rows_cover_only_proxies():
    graph = assign_random_weights(grid_graph(5, 2), max_weight=9, seed=4)
    sim = HybridSimulator(graph, ModelConfig.hybrid(), seed=4)
    sources = sorted(graph.nodes)[:3]
    algorithm = KSourceShortestPaths(
        sim, sources, epsilon=0.25, sources_in_skeleton=False, seed=4
    )
    result = algorithm.run()
    assert sim.metrics.measured_rounds == 11
    assert sim.metrics.charged_rounds == 786

    # One flat Dijkstra row per *distinct proxy* — never an all-skeleton
    # dict-of-dicts — and the output is k-wide per node, not n-wide.
    proxies = set(algorithm._proxy_of.values())
    assert algorithm._skeleton_rows.rows_computed == len(proxies)
    assert all(
        set(per_source) == set(result.sources)
        for per_source in result.distances.values()
    )


# ----------------------------------------------------------------------
# Materialise-then-clear regression: never two n^2 copies at once
# ----------------------------------------------------------------------
def test_dense_table_materialisation_drops_row_cache():
    graph = assign_random_weights(grid_graph(5, 2), max_weight=7, seed=3)
    sim = HybridSimulator(graph, ModelConfig.hybrid0(), seed=3)
    table = SkeletonAPSP(sim, alpha=1, seed=3).run()
    nodes = table.targets()

    # A consumer iterates row() first, fully warming the dense cache ...
    warmed = {target: table.row(target) for target in nodes}
    assert len(table._rows) == len(nodes)

    # ... then materialises the dict view.  The dense cache and the factory
    # must be dropped at that moment — holding both representations would
    # double the n^2 footprint.
    estimates = table.estimates
    assert table._rows == {}
    assert table._row_factory is None

    # The views agree entry for entry, and post-materialisation row() reads
    # are re-packed into cached C-double rows (not fresh boxed lists per
    # call) without resurrecting the factory.
    for target in nodes:
        assert list(warmed[target]) == [
            estimates[target][column] for column in table.columns()
        ]
    reread = table.row(nodes[0])
    assert isinstance(reread, array)
    assert table.row(nodes[0]) is reread
    assert table._row_factory is None
