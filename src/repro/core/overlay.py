"""Virtual-tree overlay networks (Lemmas 4.3 - 4.6).

The broadcast/aggregation algorithms need, even in HYBRID_0, a constant-degree
virtual rooted tree of depth ``O(log n)`` spanning all nodes (Lemma 4.3) or a
given subset (Lemma 4.6), such that every tree node knows the identifiers of
its parent and children and can therefore talk to them over the global mode.

The paper constructs these trees with the deterministic overlay machinery of
[GHSS17] plus sparse neighborhood covers [RG20]; per the substitution policy
(DESIGN.md note 1) we build the same *object* — a balanced binary tree over the
identifier-sorted node list, depth ``ceil(log2 n)``, degree at most 3 — and
charge the polylogarithmic construction cost.  The tree is then *used* with
physically simulated global messages: :func:`aggregate_via_tree` and
:func:`broadcast_via_tree` implement Lemma 4.4 (``1``-aggregation and
``1``-dissemination in eO(1) rounds) by converge-casting / down-casting along
tree edges, one tree level per round, which respects the per-node global
budget because the degree is constant.
"""

from __future__ import annotations

import dataclasses
import math
from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.simulator import _accel
from repro.simulator.config import log2_ceil
from repro.simulator.engine import TokenPlane
from repro.simulator.messages import GLOBAL_MODE, payload_words
from repro.simulator.network import HybridSimulator

Node = Hashable

__all__ = [
    "VirtualTree",
    "build_virtual_tree",
    "build_virtual_tree_on_subset",
    "aggregate_via_tree",
    "broadcast_via_tree",
    "basic_aggregation",
    "basic_dissemination",
]


@dataclasses.dataclass
class VirtualTree:
    """A rooted virtual tree over a subset of the network's nodes.

    ``parent[v]`` is ``None`` for the root; ``children[v]`` lists v's children.
    ``order`` is the identifier-sorted list of participating nodes (the implicit
    array backing the binary-heap layout).
    """

    root: Node
    parent: Dict[Node, Optional[Node]]
    children: Dict[Node, List[Node]]
    order: List[Node]

    @property
    def nodes(self) -> List[Node]:
        return list(self.order)

    @property
    def depth(self) -> int:
        if len(self.order) <= 1:
            return 0
        return int(math.floor(math.log2(len(self.order))))

    def max_degree(self) -> int:
        best = 0
        for node in self.order:
            degree = len(self.children[node]) + (0 if self.parent[node] is None else 1)
            best = max(best, degree)
        return best

    def levels(self) -> List[List[Node]]:
        """Nodes grouped by depth (root first)."""
        result: List[List[Node]] = []
        current = [self.root]
        while current:
            result.append(current)
            nxt: List[Node] = []
            for node in current:
                nxt.extend(self.children[node])
            current = nxt
        return result


def _heap_tree(order: Sequence[Node]) -> VirtualTree:
    """Balanced binary tree in heap layout over ``order``."""
    order = list(order)
    if not order:
        raise ValueError("cannot build a virtual tree over an empty node set")
    parent: Dict[Node, Optional[Node]] = {}
    children: Dict[Node, List[Node]] = {node: [] for node in order}
    parent[order[0]] = None
    for index, node in enumerate(order):
        if index == 0:
            continue
        parent_index = (index - 1) // 2
        parent_node = order[parent_index]
        parent[node] = parent_node
        children[parent_node].append(node)
    return VirtualTree(root=order[0], parent=parent, children=children, order=order)


def build_virtual_tree(simulator: HybridSimulator) -> VirtualTree:
    """Lemma 4.3: constant-degree, O(log n)-depth virtual tree over all nodes.

    The construction cost ``O(log^2 n)`` is charged; afterwards every
    participating node is taught the identifiers of its tree neighbors
    (``declare_learned_ids``), which is exactly the post-condition of
    Lemma 4.3.
    """
    order = sorted(simulator.nodes, key=simulator.node_identifiers().__getitem__)
    tree = _heap_tree(order)
    log_n = log2_ceil(max(simulator.n, 2))
    simulator.charge_rounds(
        log_n * log_n,
        "virtual-tree overlay construction over all nodes",
        "Lemma 4.3 [GHSS17]",
    )
    _teach_tree_ids(simulator, tree)
    return tree


def build_virtual_tree_on_subset(
    simulator: HybridSimulator, subset: Sequence[Node]
) -> VirtualTree:
    """Lemma 4.6: virtual tree with degree/depth O(log n) over a subset ``U``.

    Built by pruning the full tree in the paper; here directly as a balanced
    tree over the identifier-sorted subset, with the combined construction and
    pruning cost of Lemmas 4.3 + 4.5 charged.
    """
    members = sorted(set(subset), key=simulator.id_of)
    if not members:
        raise ValueError("subset must be non-empty")
    tree = _heap_tree(members)
    log_n = log2_ceil(max(simulator.n, 2))
    simulator.charge_rounds(
        log_n * log_n + log_n * log_n,
        "virtual tree over a subset (construction + pruning)",
        "Lemmas 4.3, 4.5, 4.6",
    )
    _teach_tree_ids(simulator, tree)
    return tree


def _teach_tree_ids(simulator: HybridSimulator, tree: VirtualTree) -> None:
    identifiers = simulator.node_identifiers()
    learn_known = simulator.knowledge.learn_known
    for node in tree.order:
        relatives = {identifiers[child] for child in tree.children[node]}
        parent = tree.parent[node]
        if parent is not None:
            relatives.add(identifiers[parent])
        if relatives:
            learn_known(identifiers[node], relatives)


def _tree_plane_layout(simulator: HybridSimulator, tree: VirtualTree):
    """Id-native heap layout of ``tree`` (NumPy active), cached on the tree.

    ``idx[slot]`` is the simulator node index of the tree node in heap slot
    ``slot`` (``tree.order`` position) and ``parent_idx[slot]`` that of its
    parent (slot 0 maps to itself; the root never appears as a plane
    receiver/sender pair).  Level ``l`` is the slot range
    ``[2^l - 1, min(2^(l+1) - 1, n))``, so every per-level plane is a pair of
    array slices — no per-node indexer lookups after the first build.
    """
    np = _accel.np
    cached = getattr(tree, "_plane_layout", None)
    if cached is not None and cached[0] is simulator:
        return cached[1], cached[2]
    indexer = simulator.node_indexer()
    count = len(tree.order)
    idx = np.fromiter(
        (indexer[node] for node in tree.order), dtype=np.int64, count=count
    )
    slots = np.arange(count, dtype=np.int64)
    slots[1:] = (slots[1:] - 1) // 2
    parent_idx = idx[slots]
    tree._plane_layout = (simulator, idx, parent_idx)
    return idx, parent_idx


def _resolve_tree_engine(batch: bool, engine: Optional[str]) -> str:
    """Map the historical ``batch`` flag and the driver ``engine`` switch.

    ``engine`` (when given) wins: ``"batch"`` selects the id-native plane
    path, ``"batch-reference"`` the retained tuple path, ``"legacy"`` the
    per-message path.  Plain ``batch=True/False`` keeps the historical
    tuple/legacy behaviour for existing callers.
    """
    if engine is not None:
        return engine
    return "batch-reference" if batch else "legacy"


def aggregate_via_tree(
    simulator: HybridSimulator,
    tree: VirtualTree,
    values: Dict[Node, Any],
    combine: Callable[[Any, Any], Any],
    *,
    batch: bool = True,
    engine: Optional[str] = None,
) -> Any:
    """Converge-cast ``values`` up the tree, combining with ``combine``.

    One tree level per round (leaf level first); every node sends a single
    global message to its parent, so the per-node budget is respected.  Returns
    the aggregate as known by the root.  ``engine="batch"`` moves each level as
    one id-native token plane and folds the combine step directly from the
    plane's columns (no inbox rebuild); ``batch=False`` routes the sends
    through the legacy per-message API (identical rounds and inboxes).
    """
    mode = _resolve_tree_engine(batch, engine)
    if mode == "batch" and _accel.np is not None:
        # Heap-slot formulation: level planes are array slices of the cached
        # layout, partials live in a slot-ordered list, and the combine fold
        # walks slots in the same child order as the generic path.
        idx, parent_idx = _tree_plane_layout(simulator, tree)
        slot_values = [values.get(node) for node in tree.order]
        nslots = len(slot_values)
        for level in range(nslots.bit_length() - 1, 0, -1):
            lo = (1 << level) - 1
            hi = min((1 << (level + 1)) - 1, nslots)
            payloads = slot_values[lo:hi]
            plane = TokenPlane(
                idx[lo:hi],
                parent_idx[lo:hi],
                [payload_words(payload) for payload in payloads],
                payloads,
            )
            simulator.global_send_plane(plane, None, "tree-agg")
            simulator.advance_round()
            for slot in range(lo, hi):
                incoming = slot_values[slot]
                if incoming is None:
                    continue
                target = (slot - 1) >> 1
                acc = slot_values[target]
                slot_values[target] = (
                    incoming if acc is None else combine(acc, incoming)
                )
        return slot_values[0]
    partial: Dict[Node, Any] = {node: values.get(node) for node in tree.order}
    levels = tree.levels()
    if mode == "batch":
        indexer = simulator.node_indexer()
        for level in reversed(levels[1:]):
            parents = [tree.parent[node] for node in level]
            payloads = [partial[node] for node in level]
            plane = TokenPlane(
                [indexer[node] for node in level],
                [indexer[parent] for parent in parents],
                [payload_words(payload) for payload in payloads],
                payloads,
            )
            simulator.global_send_plane(plane, None, "tree-agg")
            simulator.advance_round()
            for parent, incoming in zip(parents, payloads):
                if incoming is None:
                    continue
                acc = partial[parent]
                partial[parent] = incoming if acc is None else combine(acc, incoming)
        return partial[tree.root]
    for level in reversed(levels[1:]):
        if mode == "batch-reference":
            simulator.global_send_batch(
                [(node, tree.parent[node], partial[node]) for node in level],
                "tree-agg",
            )
            simulator.advance_round()
            inbox = simulator.per_node_inbox(GLOBAL_MODE)
            for parent in {tree.parent[node] for node in level}:
                acc = partial[parent]
                for _, incoming, tag, _ in inbox.get(parent, ()):
                    if tag != "tree-agg":
                        continue
                    if acc is None:
                        acc = incoming
                    elif incoming is not None:
                        acc = combine(acc, incoming)
                partial[parent] = acc
            continue
        for node in level:
            parent = tree.parent[node]
            simulator.global_send_to_node(node, parent, partial[node], tag="tree-agg")
        simulator.advance_round()
        receivers = {tree.parent[node] for node in level}
        for parent in receivers:
            acc = partial[parent]
            for message in simulator.global_inbox(parent):
                if message.tag != "tree-agg":
                    continue
                incoming = message.payload
                if acc is None:
                    acc = incoming
                elif incoming is not None:
                    acc = combine(acc, incoming)
            partial[parent] = acc
    return partial[tree.root]


def broadcast_via_tree(
    simulator: HybridSimulator,
    tree: VirtualTree,
    value: Any,
    *,
    batch: bool = True,
    engine: Optional[str] = None,
) -> Dict[Node, Any]:
    """Down-cast ``value`` from the root to every tree node (one level per round)."""
    received: Dict[Node, Any] = {tree.root: value}
    mode = _resolve_tree_engine(batch, engine)
    np = _accel.np
    if mode == "batch" and np is not None:
        # Down-cast of a single value: every level plane carries the same
        # payload object, so the words column is one ``payload_words`` call
        # and the sender/receiver columns are slices of the cached layout.
        idx, parent_idx = _tree_plane_layout(simulator, tree)
        nslots = len(tree.order)
        size = payload_words(value)
        for level in range(1, nslots.bit_length()):
            lo = (1 << level) - 1
            hi = min((1 << (level + 1)) - 1, nslots)
            count = hi - lo
            plane = TokenPlane(
                parent_idx[lo:hi],
                idx[lo:hi],
                np.full(count, size, dtype=np.int64),
                [value] * count,
            )
            simulator.global_send_plane(plane, None, "tree-bcast")
            simulator.advance_round()
        for node in tree.order:
            received[node] = value
        return received
    if mode == "batch":
        indexer = simulator.node_indexer()
        for level in tree.levels():
            senders: List[int] = []
            receivers: List[int] = []
            words: List[int] = []
            payloads: List[Any] = []
            children: List[Node] = []
            for node in level:
                if node not in received:
                    continue
                payload = received[node]
                size = payload_words(payload)
                sender_index = indexer[node]
                for child in tree.children[node]:
                    senders.append(sender_index)
                    receivers.append(indexer[child])
                    words.append(size)
                    payloads.append(payload)
                    children.append(child)
            if not children:
                continue
            simulator.global_send_plane(
                TokenPlane(senders, receivers, words, payloads), None, "tree-bcast"
            )
            simulator.advance_round()
            for child, payload in zip(children, payloads):
                received[child] = payload
        return received
    for level in tree.levels():
        sends = [
            (node, child, received[node])
            for node in level
            if node in received
            for child in tree.children[node]
        ]
        if not sends:
            continue
        if mode == "batch-reference":
            simulator.global_send_batch(sends, "tree-bcast")
            simulator.advance_round()
            inbox = simulator.per_node_inbox(GLOBAL_MODE)
            for _, child, _ in sends:
                for _, payload, tag, _ in inbox.get(child, ()):
                    if tag == "tree-bcast":
                        received[child] = payload
            continue
        for sender, child, payload in sends:
            simulator.global_send_to_node(sender, child, payload, tag="tree-bcast")
        simulator.advance_round()
        for _, child, _ in sends:
            for message in simulator.global_inbox(child):
                if message.tag == "tree-bcast":
                    received[child] = message.payload
    return received


def basic_aggregation(
    simulator: HybridSimulator,
    values: Dict[Node, Any],
    combine: Callable[[Any, Any], Any],
    tree: Optional[VirtualTree] = None,
    *,
    batch: bool = True,
    engine: Optional[str] = None,
) -> Any:
    """Lemma 4.4 for ``k = 1``: every node learns ``combine`` over all values.

    Converge-cast to the root, then broadcast the result back down.  Returns the
    aggregate (which after the broadcast every node knows).
    """
    if tree is None:
        tree = build_virtual_tree(simulator)
    aggregate = aggregate_via_tree(
        simulator, tree, values, combine, batch=batch, engine=engine
    )
    broadcast_via_tree(simulator, tree, aggregate, batch=batch, engine=engine)
    return aggregate


def basic_dissemination(
    simulator: HybridSimulator,
    source: Node,
    value: Any,
    tree: Optional[VirtualTree] = None,
) -> Dict[Node, Any]:
    """Lemma 4.4 for ``k = 1``: a single value becomes known to every node.

    The source first converge-casts the value to the root (by sending it up its
    root path), then the root broadcasts it down the tree.
    """
    if tree is None:
        tree = build_virtual_tree(simulator)
    # Send the value up the path from the source to the root, one hop per round.
    current = source
    payload = value
    while tree.parent[current] is not None:
        parent = tree.parent[current]
        simulator.global_send_to_node(current, parent, payload, tag="tree-up")
        simulator.advance_round()
        for message in simulator.global_inbox(parent):
            if message.tag == "tree-up":
                payload = message.payload
        current = parent
    return broadcast_via_tree(simulator, tree, payload)
