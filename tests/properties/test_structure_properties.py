"""Property-based tests for the structural building blocks: clustering
(Lemma 3.5), load balancing (Lemma 4.1), ruling sets (Definition 3.4), the
Eulerian orientation, spanners and the payload-size model."""

import math
from collections import Counter

import networkx as nx
from hypothesis import assume, given, settings, strategies as st

from repro.core.clustering import nq_clustering
from repro.core.euler import eulerian_orientation, is_eulerian, verify_orientation_balanced
from repro.core.load_balancing import balance_items
from repro.core.neighborhood_quality import neighborhood_quality
from repro.core.ruling_sets import greedy_ruling_set, verify_ruling_set
from repro.core.spanner import greedy_spanner, spanner_stretch
from repro.graphs.properties import weak_diameter
from repro.simulator.config import log2_ceil
from repro.simulator.messages import payload_words


@st.composite
def connected_graphs(draw, min_nodes=4, max_nodes=32):
    n = draw(st.integers(min_value=min_nodes, max_value=max_nodes))
    parents = [draw(st.integers(min_value=0, max_value=i - 1)) for i in range(1, n)]
    graph = nx.Graph()
    graph.add_nodes_from(range(n))
    for child, parent in enumerate(parents, start=1):
        graph.add_edge(child, parent)
    extra_edges = draw(st.integers(min_value=0, max_value=n))
    for _ in range(extra_edges):
        u = draw(st.integers(min_value=0, max_value=n - 1))
        v = draw(st.integers(min_value=0, max_value=n - 1))
        if u != v:
            graph.add_edge(u, v)
    return graph


# ----------------------------------------------------------------------
# Ruling sets
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(connected_graphs(), st.integers(min_value=1, max_value=6))
def test_greedy_ruling_set_is_valid(graph, alpha):
    ruling = greedy_ruling_set(graph, alpha)
    assert ruling
    assert verify_ruling_set(graph, ruling, alpha, max(0, alpha - 1))


# ----------------------------------------------------------------------
# Clustering (Lemma 3.5)
# ----------------------------------------------------------------------
@settings(max_examples=25, deadline=None)
@given(connected_graphs(min_nodes=6), st.integers(min_value=2, max_value=40))
def test_clustering_is_partition_with_size_and_diameter_bounds(graph, k):
    n = graph.number_of_nodes()
    clustering = nq_clustering(graph, k)
    members = [m for cluster in clustering.clusters for m in cluster.members]
    assert sorted(members) == sorted(graph.nodes)

    nq = max(1, clustering.nq)
    lower = min(n, k / nq)
    upper = 2 * lower
    log_n = log2_ceil(n)
    for cluster in clustering.clusters:
        assert len(cluster) >= math.floor(lower)
        assert len(cluster) <= math.ceil(upper)
        assert weak_diameter(graph, cluster.members) <= 4 * nq * log_n


# ----------------------------------------------------------------------
# Load balancing (Lemma 4.1)
# ----------------------------------------------------------------------
@settings(max_examples=50, deadline=None)
@given(
    st.integers(min_value=1, max_value=12),
    st.lists(st.integers(min_value=0, max_value=20), min_size=1, max_size=12),
)
def test_load_balancing_quota_and_conservation(member_count, item_counts):
    members = list(range(member_count))
    items = {
        index % member_count: [(index, i) for i in range(count)]
        for index, count in enumerate(item_counts)
    }
    merged = {}
    for node, bucket in items.items():
        merged.setdefault(node, []).extend(bucket)
    allocation = balance_items(members, merged)
    total = sum(len(bucket) for bucket in merged.values())
    quota = math.ceil(total / member_count) if total else 0
    assert sum(len(v) for v in allocation.values()) == total
    assert all(len(v) <= max(quota, 0) for v in allocation.values())
    flat_before = sorted(item for bucket in merged.values() for item in bucket)
    flat_after = sorted(item for bucket in allocation.values() for item in bucket)
    assert flat_before == flat_after


# ----------------------------------------------------------------------
# Eulerian orientation (Lemma 8.5)
# ----------------------------------------------------------------------
@settings(max_examples=30, deadline=None)
@given(connected_graphs(min_nodes=4, max_nodes=24))
def test_eulerian_orientation_balances_even_graphs(graph):
    # Make the graph Eulerian by pairing up odd-degree nodes along a matching of
    # added edges (classic T-join trick on a multigraph).
    multigraph = nx.MultiGraph(graph)
    odd = [v for v in multigraph.nodes if multigraph.degree(v) % 2 == 1]
    for u, v in zip(odd[0::2], odd[1::2]):
        multigraph.add_edge(u, v)
    assume(is_eulerian(multigraph))
    orientation = eulerian_orientation(multigraph)
    out_degree = Counter(u for u, _ in orientation)
    in_degree = Counter(v for _, v in orientation)
    assert len(orientation) == multigraph.number_of_edges()
    for node in multigraph.nodes:
        assert out_degree[node] == in_degree[node]


# ----------------------------------------------------------------------
# Spanner stretch (Lemma 6.1)
# ----------------------------------------------------------------------
@settings(max_examples=20, deadline=None)
@given(connected_graphs(min_nodes=5, max_nodes=20), st.integers(min_value=1, max_value=3))
def test_greedy_spanner_stretch_property(graph, t):
    spanner = greedy_spanner(graph, t)
    assert spanner_stretch(graph, spanner) <= 2 * t - 1 + 1e-9
    for u, v in spanner.edges:
        assert graph.has_edge(u, v)


# ----------------------------------------------------------------------
# Payload size model
# ----------------------------------------------------------------------
@settings(max_examples=100, deadline=None)
@given(
    st.recursive(
        st.one_of(
            st.integers(min_value=-(10**6), max_value=10**6),
            st.text(max_size=20),
            st.floats(allow_nan=False, allow_infinity=False),
            st.none(),
        ),
        lambda children: st.lists(children, max_size=4).map(tuple),
        max_leaves=10,
    )
)
def test_payload_words_positive_and_monotone_under_nesting(payload):
    words = payload_words(payload)
    assert words >= 1
    assert payload_words((payload, payload)) >= words
