"""Assemble a Markdown experiment report from saved benchmark results.

The benchmarks under ``benchmarks/`` persist every regenerated table both as
aligned ASCII (``*.txt``) and as Markdown (``*.md``) under
``benchmarks/results/``.  :func:`build_report` stitches those fragments into a
single document (in the fixed table/figure order of the paper) so that
EXPERIMENTS.md can be refreshed after a benchmark run with::

    python -c "from repro.analysis.report import write_report; write_report()"
"""

from __future__ import annotations

import pathlib
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["RESULT_SECTIONS", "build_report", "write_report"]

#: (result-file stem, section heading) in the paper's presentation order.
RESULT_SECTIONS: Sequence[Tuple[str, str]] = (
    ("table1_dissemination", "Table 1 — k-dissemination (Theorem 1)"),
    ("table1_aggregation", "Table 1 — k-aggregation (Theorem 2)"),
    ("table1_unicast", "Table 1 — (k,l)-routing (Theorem 3)"),
    ("table1_scaling", "Table 1 — round scaling with k"),
    ("table2_apsp", "Table 2 — APSP (Theorems 6, 7, 8)"),
    ("table2_baseline", "Table 2 — existential baseline"),
    ("table3_klsp", "Table 3 — (k,l)-SP (Theorem 5)"),
    ("table4_sssp", "Table 4 — SSSP (Theorem 13)"),
    ("fig1_ksp_landscape", "Figure 1 — k-SSP complexity landscape (Theorem 14)"),
    ("fig2_broadcast_structure", "Figure 2 — broadcast cluster structure (Lemma 3.5)"),
    ("nq_families", "Theorems 15-17 — NQ_k on special graph families"),
)


def _default_results_dir() -> pathlib.Path:
    return pathlib.Path(__file__).resolve().parents[3] / "benchmarks" / "results"


def build_report(results_dir: Optional[pathlib.Path] = None) -> str:
    """Concatenate the saved Markdown result tables into one report string.

    Sections whose result file is missing (the corresponding benchmark has not
    been run yet) are listed as such rather than silently dropped.
    """
    directory = pathlib.Path(results_dir) if results_dir is not None else _default_results_dir()
    parts: List[str] = [
        "# Measured benchmark results",
        "",
        "Regenerated from the files under `benchmarks/results/`; see",
        "EXPERIMENTS.md for the paper-vs-measured interpretation of each section.",
        "",
    ]
    for stem, heading in RESULT_SECTIONS:
        parts.append(f"## {heading}")
        parts.append("")
        path = directory / f"{stem}.md"
        if path.exists():
            parts.append(path.read_text().strip())
        else:
            parts.append("_not yet generated — run `pytest benchmarks/ --benchmark-only`_")
        parts.append("")
    return "\n".join(parts).rstrip() + "\n"


def write_report(
    output_path: Optional[pathlib.Path] = None,
    results_dir: Optional[pathlib.Path] = None,
) -> pathlib.Path:
    """Write the assembled report next to the results (default:
    ``benchmarks/results/REPORT.md``) and return its path."""
    directory = pathlib.Path(results_dir) if results_dir is not None else _default_results_dir()
    target = (
        pathlib.Path(output_path)
        if output_path is not None
        else directory / "REPORT.md"
    )
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(build_report(directory))
    return target
