"""Theorems 15-17 / Appendix B reproduction: NQ_k on special graph families.

Paper claims:

* Theorem 15: on paths and cycles, NQ_k = Theta(min(sqrt k, D)).
* Theorem 16: on d-dimensional grids, NQ_k = Theta(min(k^{1/(d+1)}, D)).
* Lemma 3.6: on every graph, sqrt(Dk/3n) < NQ_k <= min(D, sqrt k).
* Lemma 3.7: NQ_{alpha k} <= 6 sqrt(alpha) NQ_k.

The benchmark measures NQ_k across the families and k sweeps, prints measured
vs. predicted, fits the growth exponent of NQ_k in k on each family, and
asserts the exponents land near the predicted 1/2 (paths/cycles), 1/3 (2-d
grids) and 1/4 (3-d grids/tori).
"""

from __future__ import annotations

import math

import pytest

from repro.analysis.comparison import fit_power_law_exponent
from repro.analysis.experiments import run_nq_family_point
from repro.graphs.generators import GraphSpec

K_VALUES = [16, 64, 256, 1024]

FAMILIES = {
    "path": (GraphSpec.of("path", n=400), 0.5),
    "cycle": (GraphSpec.of("cycle", n=400), 0.5),
    "grid-2d": (GraphSpec.of("grid", side=20, dim=2), 1.0 / 3.0),
    "torus-3d": (GraphSpec.of("torus", side=8, dim=3), 0.25),
}


def _family_rows():
    rows = []
    for name, (spec, _) in FAMILIES.items():
        for k in K_VALUES:
            row = run_nq_family_point(spec, k)
            row["family"] = name
            rows.append(row)
    return rows


def test_nq_special_families(benchmark, save_table):
    rows = benchmark.pedantic(_family_rows, rounds=1, iterations=1)
    save_table("nq_families", rows, "Theorems 15/16 - NQ_k on special families")
    # Lemma 3.6 bounds hold on every row.
    for row in rows:
        assert row["NQ_k measured"] <= row["upper bound min(D, sqrt k)"] + 1
        assert row["NQ_k measured"] > row["lower bound sqrt(Dk/3n)"] - 1
    # Growth exponents match the predictions (within a generous band that still
    # separates 1/2 from 1/3 from 1/4).
    for name, (spec, predicted_exponent) in FAMILIES.items():
        subset = [row for row in rows if row["family"] == name]
        # Only fit over the k range where the diameter cap is not active.
        active = [row for row in subset if row["NQ_k measured"] < row["D"]]
        if len(active) < 2:
            continue
        exponent, _ = fit_power_law_exponent(
            [row["k"] for row in active], [row["NQ_k measured"] for row in active]
        )
        assert abs(exponent - predicted_exponent) < 0.15, (
            f"{name}: fitted {exponent:.3f}, predicted {predicted_exponent:.3f}"
        )
