"""Unit tests for the declarative fault-injection layer.

Covers the schedule/event value objects (window semantics, validation), the
:class:`FaultState` oracle (caching, range checks, deterministic drop RNG),
the ``crash_fraction_schedule`` convenience builder, the simulator wiring
(empty schedule installs no state at all), and the
``HybridSimulator.invalidate_index`` regression: invalidation must also reset
the pair memos and cached identifier/member-index arrays, not just the edge
keys.
"""

from __future__ import annotations

import pytest

from repro.graphs.generators import path_graph
from repro.simulator.config import ModelConfig
from repro.simulator.faults import (
    CapacityDegradation,
    CrashEvent,
    FaultSchedule,
    FaultState,
    LinkFailure,
    crash_fraction_schedule,
)
from repro.simulator.messages import GLOBAL_MODE, LOCAL_MODE
from repro.simulator.network import HybridSimulator


# ----------------------------------------------------------------------
# Event window semantics
# ----------------------------------------------------------------------
def test_crash_event_window_is_half_open():
    crash = CrashEvent(node=3, crash_round=2, recover_round=5)
    assert [crash.crashed_at(r) for r in range(7)] == [
        False, False, True, True, True, False, False,
    ]


def test_crash_event_without_recovery_is_permanent():
    crash = CrashEvent(node=0, crash_round=4)
    assert not crash.crashed_at(3)
    assert crash.crashed_at(4)
    assert crash.crashed_at(10_000)


def test_link_failure_window_is_half_open_and_symmetric():
    failure = LinkFailure(1, 2, start_round=1, end_round=3)
    assert [failure.active_at(r) for r in range(4)] == [False, True, True, False]
    state = FaultState(FaultSchedule(link_failures=(failure,)), n=5)
    assert state.failed_edge_keys(1) == frozenset({1 * 5 + 2, 2 * 5 + 1})
    assert state.failed_edge_keys(3) == frozenset()


def test_degradation_window_semantics():
    degradation = CapacityDegradation(0.5, start_round=2, end_round=4)
    assert [degradation.active_at(r) for r in range(5)] == [
        False, False, True, True, False,
    ]


@pytest.mark.parametrize(
    "build",
    [
        lambda: CrashEvent(node=-1, crash_round=0),
        lambda: CrashEvent(node=0, crash_round=-1),
        lambda: CrashEvent(node=0, crash_round=5, recover_round=5),
        lambda: LinkFailure(0, 0),
        lambda: LinkFailure(-1, 2),
        lambda: LinkFailure(0, 1, start_round=3, end_round=2),
        lambda: CapacityDegradation(0.0),
        lambda: CapacityDegradation(1.5),
        lambda: CapacityDegradation(0.5, node=-2),
        lambda: FaultSchedule(global_drop_rate=1.0),
        lambda: FaultSchedule(local_drop_rate=-0.1),
    ],
)
def test_invalid_events_are_rejected(build):
    with pytest.raises(ValueError):
        build()


def test_schedule_rejects_mistyped_events_and_normalises_lists():
    with pytest.raises(TypeError):
        FaultSchedule(crashes=(LinkFailure(0, 1),))
    schedule = FaultSchedule(crashes=[CrashEvent(node=1, crash_round=0)])
    assert isinstance(schedule.crashes, tuple)


# ----------------------------------------------------------------------
# Schedule-level queries
# ----------------------------------------------------------------------
def test_default_schedule_is_empty_and_any_fault_is_not():
    assert FaultSchedule().is_empty()
    assert not FaultSchedule(crashes=(CrashEvent(node=0, crash_round=0),)).is_empty()
    assert not FaultSchedule(link_failures=(LinkFailure(0, 1),)).is_empty()
    assert not FaultSchedule(degradations=(CapacityDegradation(0.5),)).is_empty()
    assert not FaultSchedule(global_drop_rate=0.1).is_empty()
    assert not FaultSchedule(local_drop_rate=0.1).is_empty()
    # A bare seed changes nothing: the schedule stays empty.
    assert FaultSchedule(seed=99).is_empty()


def test_horizon_is_the_last_finite_window_boundary():
    schedule = FaultSchedule(
        crashes=(
            CrashEvent(node=0, crash_round=1, recover_round=7),
            CrashEvent(node=1, crash_round=10),  # open-ended: contributes 10
        ),
        link_failures=(LinkFailure(0, 1, start_round=2, end_round=5),),
        degradations=(CapacityDegradation(0.5, start_round=3, end_round=12),),
        global_drop_rate=0.2,  # rates have no horizon
    )
    assert schedule.horizon() == 12
    assert FaultSchedule(global_drop_rate=0.5).horizon() == 0


def test_forever_crashed_reports_only_unrecovered_nodes():
    schedule = FaultSchedule(
        crashes=(
            CrashEvent(node=2, crash_round=0),
            CrashEvent(node=5, crash_round=1, recover_round=4),
        )
    )
    assert schedule.forever_crashed() == frozenset({2})


# ----------------------------------------------------------------------
# crash_fraction_schedule
# ----------------------------------------------------------------------
def test_crash_fraction_schedule_is_deterministic_and_respects_exclude():
    first = crash_fraction_schedule(40, 0.25, seed=7, exclude=(0, 1, 2))
    second = crash_fraction_schedule(40, 0.25, seed=7, exclude=(0, 1, 2))
    assert first == second
    picked = {crash.node for crash in first.crashes}
    assert len(picked) == 10
    assert picked.isdisjoint({0, 1, 2})
    assert all(0 <= node < 40 for node in picked)
    other = crash_fraction_schedule(40, 0.25, seed=8, exclude=(0, 1, 2))
    assert {crash.node for crash in other.crashes} != picked


def test_crash_fraction_schedule_carries_windows_and_drops():
    schedule = crash_fraction_schedule(
        10, 0.2, seed=3, crash_round=2, recover_round=6, drop_rate=0.3
    )
    assert schedule.seed == 3
    assert schedule.global_drop_rate == 0.3
    assert all(crash.crash_round == 2 for crash in schedule.crashes)
    assert all(crash.recover_round == 6 for crash in schedule.crashes)
    assert crash_fraction_schedule(10, 0.0, seed=1).crashes == ()
    with pytest.raises(ValueError):
        crash_fraction_schedule(10, 1.0)


# ----------------------------------------------------------------------
# FaultState oracle
# ----------------------------------------------------------------------
def test_fault_state_refuses_empty_schedules():
    with pytest.raises(ValueError):
        FaultState(FaultSchedule(), n=5)


@pytest.mark.parametrize(
    "schedule",
    [
        FaultSchedule(crashes=(CrashEvent(node=5, crash_round=0),)),
        FaultSchedule(link_failures=(LinkFailure(0, 5),)),
        FaultSchedule(degradations=(CapacityDegradation(0.5, node=5),)),
    ],
)
def test_fault_state_checks_node_index_range(schedule):
    with pytest.raises(ValueError):
        FaultState(schedule, n=5)
    FaultState(schedule, n=6)  # index 5 is fine in a 6-node network


def test_crashed_indices_are_cached_per_round():
    state = FaultState(
        FaultSchedule(crashes=(CrashEvent(node=1, crash_round=0, recover_round=2),)),
        n=4,
    )
    assert state.crashed_indices(0) == frozenset({1})
    assert state.crashed_indices(0) is state.crashed_indices(0)
    assert state.crashed_indices(2) == frozenset()
    assert state.is_crashed(1, 1)
    assert not state.is_crashed(1, 2)


def test_degradation_factors_multiply_and_floor_at_one_word():
    state = FaultState(
        FaultSchedule(
            degradations=(
                CapacityDegradation(0.5, start_round=0, end_round=10),
                CapacityDegradation(0.5, start_round=5, end_round=10),
                CapacityDegradation(0.25, start_round=0, end_round=10, node=2),
            )
        ),
        n=4,
    )
    assert state.global_capacity_factor(0) == 0.5
    assert state.global_capacity_factor(5) == 0.25  # overlapping windows multiply
    assert state.global_capacity_factor(10) == 1.0
    assert state.degraded_budget(40, 0) == 20
    assert state.degraded_budget(40, 10) == 40
    assert state.degraded_budget(1, 5) == 1  # never below one word
    # Node-scoped factors are reported separately, node-wide ones are not.
    assert state.node_capacity_factors(0) == {2: 0.25}
    assert state.node_capacity_factors(10) == {}


def test_drop_rate_lookup_and_unknown_mode():
    state = FaultState(
        FaultSchedule(global_drop_rate=0.2, local_drop_rate=0.1), n=3
    )
    assert state.drop_rate(GLOBAL_MODE) == 0.2
    assert state.drop_rate(LOCAL_MODE) == 0.1
    with pytest.raises(ValueError):
        state.drop_rate("carrier-pigeon")


def test_round_rng_is_deterministic_per_round_and_mode():
    state = FaultState(FaultSchedule(seed=9, global_drop_rate=0.5), n=3)

    def draws(round_index, mode):
        rng = state.round_rng(round_index, mode)
        return [rng.random() for _ in range(8)]

    assert draws(4, GLOBAL_MODE) == draws(4, GLOBAL_MODE)
    assert draws(4, GLOBAL_MODE) != draws(5, GLOBAL_MODE)
    assert draws(4, GLOBAL_MODE) != draws(4, LOCAL_MODE)
    other = FaultState(FaultSchedule(seed=10, global_drop_rate=0.5), n=3)
    assert draws(4, GLOBAL_MODE) != [
        other.round_rng(4, GLOBAL_MODE).random() for _ in range(8)
    ]


# ----------------------------------------------------------------------
# Simulator wiring
# ----------------------------------------------------------------------
def test_empty_schedule_installs_no_fault_state():
    graph = path_graph(6)
    bare = HybridSimulator(graph, ModelConfig.hybrid())
    empty = HybridSimulator(graph, ModelConfig.hybrid(), fault_schedule=FaultSchedule())
    assert bare.fault_state is None
    assert empty.fault_state is None
    faulty = HybridSimulator(
        graph,
        ModelConfig.hybrid(),
        fault_schedule=FaultSchedule(global_drop_rate=0.1),
    )
    assert isinstance(faulty.fault_state, FaultState)
    assert faulty.fault_state.n == 6


def test_fault_schedule_range_errors_surface_at_construction():
    with pytest.raises(ValueError):
        HybridSimulator(
            path_graph(4),
            ModelConfig.hybrid(),
            fault_schedule=FaultSchedule(crashes=(CrashEvent(node=9, crash_round=0),)),
        )


# ----------------------------------------------------------------------
# Permanent link failures: committed topology churn
# ----------------------------------------------------------------------
def test_permanent_link_failure_requires_finite_window():
    LinkFailure(0, 1, start_round=0, end_round=3, permanent=True)  # fine
    with pytest.raises(ValueError, match="finite end_round"):
        LinkFailure(0, 1, permanent=True)  # open-ended: nothing to commit


def test_take_permanent_closures_drains_each_failure_exactly_once():
    schedule = FaultSchedule(
        link_failures=(
            LinkFailure(2, 3, start_round=0, end_round=3, permanent=True),
            LinkFailure(0, 1, start_round=0, end_round=2, permanent=True),
            LinkFailure(4, 5, start_round=0, end_round=2),  # window-scoped
        )
    )
    state = FaultState(schedule, n=6)
    assert state.take_permanent_closures(1) == []
    assert state.take_permanent_closures(2) == [(0, 1)]
    assert state.take_permanent_closures(2) == []  # handed out once
    assert state.take_permanent_closures(10) == [(2, 3)]
    assert state.take_permanent_closures(10) == []


def test_permanent_failure_commits_edge_deletion_at_window_close():
    from repro.graphs.index import get_index, graph_version
    from repro.graphs.generators import cycle_graph

    graph = cycle_graph(6)
    index = get_index(graph)
    schedule = FaultSchedule(
        link_failures=(
            LinkFailure(0, 1, start_round=0, end_round=2, permanent=True),
            LinkFailure(3, 4, start_round=0, end_round=2),  # not permanent
        )
    )
    sim = HybridSimulator(graph, ModelConfig.hybrid(), fault_schedule=schedule)
    sim.advance_round()  # round 0 -> 1: window still open
    assert graph.has_edge(0, 1)
    assert sim.committed_link_removals == []
    sim.advance_round()  # round 1 -> 2: window closed, deletion committed
    assert not graph.has_edge(0, 1)
    assert graph.has_edge(3, 4)  # the window-scoped outage left no trace
    assert sim.committed_link_removals == [(0, 1)]
    assert graph_version(graph) == 1
    # The analytics index was patched in place, not rebuilt.
    assert get_index(graph) is index
    assert index.m == 5
    # Committing exactly once: further rounds change nothing.
    sim.advance_round()
    assert sim.committed_link_removals == [(0, 1)]
    # The simulator resynchronised itself: plane sends work on the new graph.
    sim.global_send_batch_ids([2], [5], ["post-churn"])
    sim.advance_round()


def test_resilient_dissemination_reports_removed_edges():
    from repro.core.resilience import ResilientDissemination
    from repro.graphs.generators import cycle_graph

    graph = cycle_graph(8)
    schedule = FaultSchedule(
        link_failures=(LinkFailure(2, 3, start_round=0, end_round=2, permanent=True),)
    )
    sim = HybridSimulator(
        graph, ModelConfig.hybrid(), seed=5, fault_schedule=schedule
    )
    result = ResilientDissemination(sim, {0: ["alpha", "beta"]}).run()
    assert result.complete
    assert result.all_live_nodes_know_all_tokens()
    assert result.removed_edges == [(2, 3)]
    assert not graph.has_edge(2, 3)


# ----------------------------------------------------------------------
# invalidate_index regression (satellite: memos and cached arrays reset)
# ----------------------------------------------------------------------
def test_invalidate_index_resets_arrays_and_pair_memos():
    sim = HybridSimulator(path_graph(8), ModelConfig.hybrid0(), seed=1)
    indexer = sim.node_indexer()
    # Populate every cache the plane paths maintain: identifier arrays and
    # edge keys via a local plane send, the pair memos via a global send
    # between neighbors (validation + teaching).
    sim.local_send_batch_ids([indexer[0]], [indexer[1]], ["l"])
    sim.global_send_batch_ids([indexer[2]], [indexer[3]], ["g"])
    sim.advance_round()
    assert sim._ids_by_index is not None
    assert sim._edge_keys is not None
    assert sim._validated_global_pairs.known
    assert sim._taught_pairs.known
    memo_before = sim._validated_global_pairs

    sim.invalidate_index()

    assert sim._ids_by_index is None
    assert sim._ids_np is None
    assert sim._edge_keys is None
    # Fresh, empty memo objects — not the stale ones emptied in place.
    assert sim._validated_global_pairs is not memo_before
    assert not sim._validated_global_pairs.known
    assert not sim._taught_pairs.known
    # The simulator still works after invalidation: caches rebuild lazily.
    sim.global_send_batch_ids([indexer[2]], [indexer[3]], ["g2"])
    sim.advance_round()
    assert ("g2" in [record[1] for record in sim.per_node_inbox(GLOBAL_MODE)[3]])
