"""Unit tests for ruling sets (Definition 3.4) and the NQ_k-clustering (Lemma 3.5)."""

import math

import pytest

from repro.core.clustering import Cluster, distributed_nq_clustering, nq_clustering
from repro.core.neighborhood_quality import neighborhood_quality
from repro.core.ruling_sets import (
    distributed_ruling_set,
    greedy_ruling_set,
    verify_ruling_set,
)
from repro.graphs.generators import cycle_graph, grid_graph, path_graph, star_graph
from repro.graphs.properties import hop_distances_from, weak_diameter
from repro.simulator.config import ModelConfig, log2_ceil
from repro.simulator.network import HybridSimulator


class TestRulingSets:
    @pytest.mark.parametrize("alpha", [1, 2, 3, 5])
    def test_greedy_separation(self, alpha):
        g = grid_graph(6, 2)
        ruling = greedy_ruling_set(g, alpha)
        for w in ruling:
            dist = hop_distances_from(g, w)
            for other in ruling:
                if other != w:
                    assert dist[other] >= alpha

    @pytest.mark.parametrize("alpha", [1, 2, 3, 5])
    def test_greedy_domination(self, alpha):
        g = grid_graph(6, 2)
        ruling = greedy_ruling_set(g, alpha)
        assert verify_ruling_set(g, ruling, alpha, max(0, alpha - 1))

    def test_alpha_one_is_all_nodes(self):
        g = path_graph(6)
        assert greedy_ruling_set(g, 1) == set(g.nodes)

    def test_large_alpha_gives_single_ruler(self):
        g = path_graph(10)
        ruling = greedy_ruling_set(g, 100)
        assert len(ruling) == 1

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            greedy_ruling_set(path_graph(3), 0)

    def test_verify_rejects_bad_separation(self):
        g = path_graph(10)
        assert not verify_ruling_set(g, {0, 1}, alpha=3, beta=9)

    def test_verify_rejects_bad_domination(self):
        g = path_graph(10)
        assert not verify_ruling_set(g, {0}, alpha=2, beta=3)

    def test_distributed_wrapper_charges_kmw18_rounds(self):
        g = grid_graph(5, 2)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        mu = 3
        ruling = distributed_ruling_set(sim, mu)
        assert verify_ruling_set(g, ruling, mu + 1, mu * log2_ceil(g.number_of_nodes()))
        assert sim.metrics.charged_rounds == mu * log2_ceil(g.number_of_nodes())

    def test_distributed_wrapper_invalid_mu(self):
        sim = HybridSimulator(path_graph(4), ModelConfig.hybrid0(), seed=0)
        with pytest.raises(ValueError):
            distributed_ruling_set(sim, 0)


class TestClusteringLemma35:
    @pytest.mark.parametrize(
        "graph_builder,k",
        [
            (lambda: path_graph(60), 30),
            (lambda: cycle_graph(48), 24),
            (lambda: grid_graph(7, 2), 40),
            (lambda: grid_graph(8, 2), 64),
            (lambda: star_graph(30), 10),
        ],
    )
    def test_partition_covers_all_nodes_exactly_once(self, graph_builder, k):
        g = graph_builder()
        clustering = nq_clustering(g, k)
        seen = []
        for cluster in clustering.clusters:
            seen.extend(cluster.members)
        assert sorted(seen, key=str) == sorted(g.nodes, key=str)

    @pytest.mark.parametrize(
        "graph_builder,k",
        [
            (lambda: path_graph(60), 30),
            (lambda: grid_graph(7, 2), 40),
            (lambda: cycle_graph(48), 24),
        ],
    )
    def test_cluster_sizes_within_lemma_bounds(self, graph_builder, k):
        g = graph_builder()
        clustering = nq_clustering(g, k)
        nq = clustering.nq
        n = g.number_of_nodes()
        lower = min(n, k / nq)
        upper = 2 * lower
        for cluster in clustering.clusters:
            assert len(cluster) >= math.floor(lower)
            assert len(cluster) <= math.ceil(upper)

    @pytest.mark.parametrize(
        "graph_builder,k",
        [
            (lambda: path_graph(60), 30),
            (lambda: grid_graph(7, 2), 40),
        ],
    )
    def test_weak_diameter_bound(self, graph_builder, k):
        g = graph_builder()
        n = g.number_of_nodes()
        clustering = nq_clustering(g, k)
        bound = 4 * clustering.nq * log2_ceil(n)
        for cluster in clustering.clusters:
            assert weak_diameter(g, cluster.members) <= bound

    def test_each_cluster_has_member_leader(self):
        g = grid_graph(6, 2)
        clustering = nq_clustering(g, 24)
        for cluster in clustering.clusters:
            assert cluster.leader in cluster.members

    def test_cluster_of_lookup(self):
        g = path_graph(40)
        clustering = nq_clustering(g, 20)
        for cluster in clustering.clusters:
            for member in cluster.members:
                assert clustering.cluster_of[member] == cluster.index
                assert clustering.cluster_containing(member) is cluster

    def test_leader_ball_contained_in_some_cluster_before_split(self):
        # Indirect check of Observation 3.2's role: the number of clusters can
        # not exceed n * NQ_k / k (each has >= k / NQ_k members).
        g = path_graph(80)
        k = 40
        clustering = nq_clustering(g, k)
        n = g.number_of_nodes()
        assert len(clustering.clusters) <= math.ceil(n * clustering.nq / k)

    def test_k_larger_than_n_is_capped(self):
        g = grid_graph(4, 2)
        clustering = nq_clustering(g, 10_000)
        assert len(clustering.clusters) >= 1
        total = sum(len(c) for c in clustering.clusters)
        assert total == g.number_of_nodes()

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            nq_clustering(path_graph(4), 0)

    def test_nq_hint_respected(self):
        g = path_graph(40)
        nq = neighborhood_quality(g, 20)
        clustering = nq_clustering(g, 20, nq=nq)
        assert clustering.nq == nq

    def test_distributed_wrapper_charges_rounds(self):
        g = grid_graph(5, 2)
        sim = HybridSimulator(g, ModelConfig.hybrid0(), seed=0)
        clustering = distributed_nq_clustering(sim, 20)
        assert len(clustering.clusters) >= 1
        assert sim.metrics.charged_rounds > 0
        # Charge scales with NQ_k * log n (three components in the construction).
        log_n = log2_ceil(g.number_of_nodes())
        assert sim.metrics.charged_rounds <= 10 * clustering.nq * log_n + log_n
